//! Capacity planning with operational laws: predict the bottleneck tier
//! and the servers needed for a target load from the fitted models
//! (paper §III, Eq. 1–4), then validate the prediction by simulation.
//!
//! ```text
//! cargo run -p dcm-bench --release --example capacity_planning
//! ```

use dcm_core::experiment::{steady_state_throughput, SteadyStateOptions};
use dcm_model::laws::{analyze_bottleneck, TierDemand};
use dcm_ntier::topology::SoftConfig;
use dcm_sim::time::SimDuration;

fn main() {
    // Per-tier service demands at the optimal operating point, measured
    // from the reference deployment (effective service time S*(N*)/N* per
    // visit, visit ratios V = [1, 1, 2]).
    let app_law = dcm_ntier::law::reference::tomcat();
    let db_law = dcm_ntier::law::reference::mysql();
    let app_s = app_law.effective_service_time(app_law.optimal_concurrency());
    let db_s = db_law.effective_service_time(db_law.optimal_concurrency());

    println!("per-visit effective service times at each tier's knee:");
    println!(
        "  web ≈ negligible, app = {:.2} ms, db = {:.2} ms/query\n",
        app_s * 1e3,
        db_s * 1e3
    );

    let target_load = 250.0; // requests/second the site must sustain
    println!("target: {target_load} req/s of browse-only traffic\n");

    // Size each scalable tier: K_m = ceil(X · V_m · S_m), then check the
    // bottleneck analysis agrees.
    let mut app_servers = (target_load * 1.0 * app_s).ceil() as u32;
    let mut db_servers = (target_load * 2.0 * db_s).ceil() as u32;
    app_servers = app_servers.max(1);
    db_servers = db_servers.max(1);
    println!("operational-law sizing: {app_servers} app server(s), {db_servers} db server(s)");

    let tiers = [
        TierDemand {
            visit_ratio: 1.0,
            service_time: 6.0e-4,
            servers: 1,
        },
        TierDemand {
            visit_ratio: 1.0,
            service_time: app_s,
            servers: app_servers,
        },
        TierDemand {
            visit_ratio: 2.0,
            service_time: db_s,
            servers: db_servers,
        },
    ];
    let analysis = analyze_bottleneck(&tiers, 1.0);
    println!(
        "predicted ceiling {:.0} req/s, bottleneck tier {} (utilizations {:?})\n",
        analysis.max_throughput,
        analysis.bottleneck,
        analysis
            .utilizations
            .iter()
            .map(|u| format!("{u:.2}"))
            .collect::<Vec<_>>(),
    );

    // Validate by simulation: drive the sized system with enough users to
    // demand the target load (X = U/(RT+Z) → U ≈ X·(Z+RT)).
    let users = (target_load * 3.4).ceil() as u32;
    let options = SteadyStateOptions {
        warmup: SimDuration::from_secs(20),
        measure: SimDuration::from_secs(60),
        think_time_secs: 3.0,
        seed: 5,
        ..SteadyStateOptions::default()
    };
    // Soft resources at each tier's optimum: app pools at N*_app, conn
    // pools sharing N*_db per db server across app servers.
    let n_app = app_law.optimal_concurrency();
    let n_db = db_law.optimal_concurrency();
    let conns = (n_db * db_servers).div_ceil(app_servers).max(1);
    let soft = SoftConfig::new(1000, n_app, conns);
    println!(
        "validating with {} users on 1/{}/{} at soft 1000/{}/{} ...",
        users, app_servers, db_servers, n_app, conns
    );
    let measured = steady_state_throughput((1, app_servers, db_servers), soft, users, &options);
    println!(
        "measured: {:.1} req/s at mean RT {:.0} ms (target {target_load} req/s)",
        measured.throughput,
        measured.mean_rt * 1e3
    );
    let attainment = measured.throughput / target_load;
    println!("attainment: {:.0} %", attainment * 100.0);
}
