//! Quickstart: build the paper's three-tier RUBBoS deployment, drive it
//! with think-time clients, then fix its soft-resource allocation at
//! runtime and watch throughput improve.
//!
//! ```text
//! cargo run -p dcm-bench --release --example quickstart
//! ```

use dcm_ntier::flow;
use dcm_ntier::topology::{SoftConfig, ThreeTierBuilder};
use dcm_sim::time::SimTime;
use dcm_workload::generator::UserPopulation;
use dcm_workload::profile::ProfileFactory;
use dcm_workload::report::LoadReport;

fn main() {
    // The paper's 1/1/1 hardware with the *default* soft allocation
    // 1000-100-80: 1000 Apache threads, 100 Tomcat threads, 80 DB
    // connections.
    let (mut world, mut engine) = ThreeTierBuilder::new()
        .counts(1, 1, 1)
        .soft(SoftConfig::DEFAULT)
        .seed(7)
        .build();

    // 300 virtual users browsing with ~3 s think time (the RUBBoS client).
    let horizon = SimTime::from_secs(240);
    let population = UserPopulation::start_think_time(
        &mut world,
        &mut engine,
        ProfileFactory::rubbos(),
        300,
        3.0,
        horizon,
    );

    // Phase 1: one minute under the default allocation.
    engine.run_until(&mut world, SimTime::from_secs(120));
    let phase1 = population.with_completions(|log| {
        LoadReport::from_completions(log, SimTime::from_secs(30), SimTime::from_secs(120))
    });

    // Runtime re-allocation, no restart: shrink the Tomcat pool to the
    // model's optimal concurrency (the APP-agent's actuation).
    println!("resizing Tomcat thread pools 100 -> 20 at t=120s (no restart) ...");
    flow::set_tier_thread_pools(&mut world, &mut engine, 1, 20).expect("app tier exists");

    // Phase 2: another minute at the optimal allocation.
    engine.run_until(&mut world, horizon);
    let phase2 = population.with_completions(|log| {
        LoadReport::from_completions(log, SimTime::from_secs(150), SimTime::from_secs(240))
    });

    println!(
        "default  1000/100/80: {:6.1} req/s, mean RT {:5.1} ms",
        phase1.throughput(),
        phase1.mean_response_time() * 1e3
    );
    println!(
        "optimal  1000/20/80 : {:6.1} req/s, mean RT {:5.1} ms",
        phase2.throughput(),
        phase2.mean_response_time() * 1e3
    );
    println!(
        "improvement: {:+.0} % throughput (paper Fig. 4(a): ≈ +30 %)",
        100.0 * (phase2.throughput() - phase1.throughput()) / phase1.throughput()
    );

    let counters = world.system.counters();
    assert_eq!(counters.in_flight(), 0, "all requests drained");
}
