//! Autoscaler comparison on a flash crowd: DCM (hardware + soft-resource
//! scaling) versus the EC2-AutoScale-style hardware-only baseline, on the
//! identical workload and with identical VM policies — the paper's Fig. 5
//! methodology on a compact trace.
//!
//! ```text
//! cargo run -p dcm-bench --release --example autoscale_comparison
//! ```

use dcm_core::controller::{Dcm, DcmConfig, DcmModels, Ec2AutoScale};
use dcm_core::experiment::{run_trace_experiment, TraceExperimentConfig};
use dcm_core::policy::ScalingConfig;
use dcm_core::training::{train_app_model, train_db_model, SweepOptions};
use dcm_sim::time::{SimDuration, SimTime};
use dcm_workload::traces;

fn main() {
    // Offline training (paper §V-A): fit both tier models from sweeps.
    println!("training concurrency-aware models (offline sweeps) ...");
    let sweep = SweepOptions {
        warmup: SimDuration::from_secs(5),
        measure: SimDuration::from_secs(20),
        seed: 11,
        deterministic: false,
    };
    let app = train_app_model(&sweep).expect("app fit converges").report;
    let db = train_db_model(&sweep).expect("db fit converges").report;
    println!(
        "  app model: N* = {} (R² {:.3});  db model: N* = {} (R² {:.3})\n",
        app.model.optimal_concurrency(),
        app.r_squared,
        db.model.optimal_concurrency(),
        db.r_squared
    );
    let models = DcmModels {
        app: app.model,
        db: db.model,
    };

    // A flash crowd: 120 users, spiking to 600 for 90 seconds.
    let mut config = TraceExperimentConfig::figure5(traces::flash_crowd(120, 600, 60.0, 90.0));
    config.horizon = SimTime::from_secs(300);

    let ec2 = run_trace_experiment(&config, |bus| {
        Ec2AutoScale::new(bus, ScalingConfig::default())
    });
    let dcm = run_trace_experiment(&config, |bus| Dcm::new(bus, DcmConfig::default(), models));

    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>12}",
        "controller", "req/s", "meanRT(s)", "p95RT(s)", "VM-seconds"
    );
    for run in [&dcm, &ec2] {
        let mut overall = run.overall();
        println!(
            "{:<16} {:>10.1} {:>10.3} {:>10.3} {:>12.0}",
            run.controller,
            overall.throughput(),
            overall.mean_response_time(),
            overall.response_time_quantile(0.95).unwrap_or(0.0),
            run.total_vm_seconds(),
        );
    }

    println!("\nscaling actions:");
    for run in [&dcm, &ec2] {
        println!("  {}:", run.controller);
        for a in &run.actions {
            println!("    {:>6.1}s  {:?}", a.at.as_secs_f64(), a.action);
        }
    }
}
