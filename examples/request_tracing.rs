//! Request tracing: follow individual requests through the tiers and see
//! exactly where time goes when a soft resource is undersized — the
//! fine-grained visibility the paper's monitoring layer is built for.
//!
//! ```text
//! cargo run -p dcm-bench --release --example request_tracing
//! ```

use dcm_ntier::flow;
use dcm_ntier::spans::{tier_breakdown, waterfall};
use dcm_ntier::topology::{SoftConfig, ThreeTierBuilder};
use dcm_sim::time::SimTime;
use dcm_workload::generator::UserPopulation;
use dcm_workload::profile::ProfileFactory;

const TIER_NAMES: [&str; 3] = ["web", "app", "db "];

fn trace_under(soft: SoftConfig, label: &str) {
    let (mut world, mut engine) = ThreeTierBuilder::new().soft(soft).seed(3).build();
    world.system.enable_tracing();

    // Background load plus one traced probe request at t = 5 s.
    UserPopulation::start_think_time(
        &mut world,
        &mut engine,
        ProfileFactory::rubbos(),
        250,
        3.0,
        SimTime::from_secs(10),
    );
    let probe = std::rc::Rc::new(std::cell::Cell::new(None));
    {
        let probe = std::rc::Rc::clone(&probe);
        engine.schedule_at(SimTime::from_secs(5), move |w, e| {
            let factory = ProfileFactory::rubbos_deterministic();
            let profile = factory.sample(&mut w.rng);
            let rid = flow::submit(w, e, profile, Box::new(|_, _, _| {}));
            probe.set(Some(rid));
        });
    }
    engine.run(&mut world);

    let spans = world.system.take_spans();
    println!("── {label} ──");
    let rid = probe.get().expect("probe submitted");
    let t0 = waterfall(&spans, rid)
        .first()
        .map(|s| s.arrived_at)
        .expect("probe traced");
    println!("probe request {rid} waterfall (ms relative to arrival):");
    for s in waterfall(&spans, rid) {
        let rel = |t: SimTime| t.saturating_since(t0).as_millis_f64();
        println!(
            "  {}  [{:>8.1} … {:>8.1}]  queued {:>7.1} ms, served {:>7.1} ms",
            TIER_NAMES[s.tier.min(2)],
            rel(s.started_at),
            rel(s.finished_at),
            s.queue_time().as_millis_f64(),
            s.service_time().as_millis_f64(),
        );
    }
    println!("per-tier means over all {} spans:", spans.len());
    for (tier, timing) in tier_breakdown(&spans) {
        println!(
            "  {}  visits {:>6}  queue {:>7.1} ms  service {:>7.1} ms",
            TIER_NAMES[tier.min(2)],
            timing.visits,
            timing.mean_queue * 1e3,
            timing.mean_service * 1e3,
        );
    }
    println!();
}

fn main() {
    println!("250 users; where does a request's time go?\n");
    trace_under(
        SoftConfig::new(1000, 22, 40),
        "well-sized pools (1000/22/40)",
    );
    trace_under(
        SoftConfig::new(1000, 200, 40),
        "oversized app pool (1000/200/40): app-tier contention",
    );
    trace_under(
        SoftConfig::new(1000, 22, 2),
        "starved conn pool (1000/22/2): waits surface in the app span",
    );
}
