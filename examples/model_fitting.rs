//! Model fitting walkthrough: sweep the bottleneck tier with a closed-loop
//! (Jmeter-style) workload, fit the concurrency-aware model by least
//! squares, and read off the optimal pool size — the paper's §V-A
//! training procedure end to end.
//!
//! ```text
//! cargo run -p dcm-bench --release --example model_fitting
//! ```

use dcm_core::training::{app_tier_sweep, fit_sweep_robust, SweepOptions};
use dcm_sim::time::SimDuration;

fn main() {
    let options = SweepOptions {
        warmup: SimDuration::from_secs(10),
        measure: SimDuration::from_secs(30),
        seed: 42,
        deterministic: false,
    };

    // Jmeter-style sweep: zero think time, so offered users = request
    // processing concurrency at the bottleneck tier.
    let levels = [1, 2, 4, 8, 12, 16, 20, 25, 30, 40, 60, 80, 100, 140, 200];
    println!("sweeping 1/1/1 with closed-loop users 1..200 (app tier is the bottleneck)\n");
    let points = app_tier_sweep(&levels, &options);

    println!("{:>8}  {:>12}  {:>12}", "users", "concurrency", "req/s");
    for p in &points {
        println!(
            "{:>8}  {:>12.1}  {:>12.1}",
            p.offered, p.concurrency, p.throughput
        );
    }

    let report = fit_sweep_robust(&points, 1, 0.25).expect("least squares converges");
    let m = report.model;
    println!("\nfitted X(N) = γ·K·N / (S0 + α(N−1) + βN(N−1)):");
    println!("  S0    = {:.4} s", m.s0);
    println!("  alpha = {:.5} s", m.alpha);
    println!("  beta  = {:.3e} s", m.beta);
    println!("  gamma = {:.3}", m.gamma);
    println!(
        "  R²    = {:.3}  ({} LM iterations)",
        report.r_squared, report.iterations
    );
    println!(
        "\noptimal concurrency N* = {}  →  predicted max throughput {:.1} req/s",
        m.optimal_concurrency(),
        m.predicted_max_throughput()
    );
    println!(
        "(paper Table I: N* = 20 for the Tomcat model; the dome's peak \
         region is flat, so anything in ≈18–30 performs within ~1 %)"
    );
}
