//! Burstiness injection: turn a calm think-time workload into a bursty one
//! with a two-state MMPP (the methodology of the paper's reference [23]),
//! measure the index of dispersion, and watch DCM absorb the bursts.
//!
//! ```text
//! cargo run -p dcm-bench --release --example bursty_workload
//! ```

use dcm_core::controller::{Controller, Dcm, DcmConfig, DcmModels};
use dcm_core::monitor::{install_monitor, new_metrics_bus, MonitorConfig};
use dcm_model::concurrency::ConcurrencyModel;
use dcm_ntier::law::reference;
use dcm_ntier::topology::{SoftConfig, ThreeTierBuilder};
use dcm_ntier::world::{SimEngine, World};
use dcm_sim::time::{SimDuration, SimTime};
use dcm_workload::burstiness::{index_of_dispersion, MmppConfig, MmppModulator};
use dcm_workload::generator::UserPopulation;
use dcm_workload::profile::ProfileFactory;
use dcm_workload::report::LoadReport;

fn models() -> DcmModels {
    let app = reference::tomcat();
    let db = reference::mysql();
    DcmModels {
        app: ConcurrencyModel::new(app.s0(), app.alpha(), app.beta(), 1.0, 1),
        db: ConcurrencyModel::new(db.s0(), db.alpha(), db.beta(), 1.0, 1),
    }
}

fn run(mmpp: Option<MmppConfig>, label: &str) {
    let horizon = SimTime::from_secs(400);
    let (mut world, mut engine) = ThreeTierBuilder::new()
        .soft(SoftConfig::new(1000, 200, 40))
        .seed(17)
        .build();

    // Full DCM stack so the controller reacts to the bursts.
    let bus = new_metrics_bus();
    install_monitor(
        &mut engine,
        std::rc::Rc::clone(&bus),
        MonitorConfig::every_second_until(horizon),
    );
    let controller = std::rc::Rc::new(std::cell::RefCell::new(Dcm::new(
        bus,
        DcmConfig::default(),
        models(),
    )));
    schedule_controller(&mut engine, controller, horizon);

    let modulator = mmpp.map(|config| MmppModulator::install(&mut engine, config, horizon));
    let population = UserPopulation::start_think_time_modulated(
        &mut world,
        &mut engine,
        ProfileFactory::rubbos(),
        150,
        3.0,
        modulator.as_ref().map(MmppModulator::multiplier_cell),
        horizon,
    );
    engine.run(&mut world);

    let (dispersion, mut report) = population.with_completions(|log| {
        let finishes: Vec<SimTime> = log.iter().map(|c| c.finished).collect();
        let dispersion = index_of_dispersion(
            &finishes,
            SimTime::from_secs(20),
            horizon,
            SimDuration::from_secs(5),
        )
        .unwrap_or(0.0);
        (
            dispersion,
            LoadReport::from_completions(log, SimTime::from_secs(20), horizon),
        )
    });
    println!(
        "{label:<22} I = {dispersion:5.1}   X = {:5.1} req/s   mean RT = {:6.0} ms   p95 = {:6.0} ms",
        report.throughput(),
        report.mean_response_time() * 1e3,
        report.response_time_quantile(0.95).unwrap_or(0.0) * 1e3,
    );
}

fn schedule_controller(
    engine: &mut SimEngine,
    controller: std::rc::Rc<std::cell::RefCell<Dcm>>,
    stop_at: SimTime,
) {
    let next = engine.now() + SimDuration::from_secs(15);
    if next > stop_at {
        return;
    }
    engine.schedule_at(next, move |world: &mut World, engine: &mut SimEngine| {
        controller.borrow_mut().on_tick(world, engine);
        schedule_controller(engine, controller, stop_at);
    });
}

fn main() {
    println!("150 users, mean think 3 s, 400 s horizon, DCM managing the system\n");
    println!(
        "{:<22} {:>9}   {:>13}   {:>16}   {:>12}",
        "workload", "dispersion", "throughput", "mean RT", "p95 RT"
    );
    run(None, "Poisson-like (calm)");
    run(Some(MmppConfig::with_intensity(4.0)), "MMPP intensity 4");
    run(Some(MmppConfig::with_intensity(8.0)), "MMPP intensity 8");
    println!(
        "\nindex of dispersion I ≈ 1 means Poisson-like arrivals; production-like\n\
         bursty traffic has I in the tens (Mi et al., ICAC 2009)."
    );
}
