//! Minimal, API-compatible shim for the subset of the `rand` crate this
//! workspace uses: the [`RngCore`] / [`SeedableRng`] plumbing traits and the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`).
//!
//! The workspace's own generator ([`dcm_sim::rng`]) implements these traits;
//! this shim exists so the repository builds fully offline with no registry
//! access. Uniform sampling here uses Lemire-style widening multiplication,
//! which is unbiased enough for simulation use and — critically — fully
//! deterministic and pinned in-tree.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type mirroring `rand::Error` (never produced by in-tree RNGs).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// Core random-number generation trait (mirrors `rand::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill (infallible for all in-tree generators).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// Seedable construction (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed byte-array type.
    type Seed;
    /// Builds a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;
    /// Builds a generator from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (stand-in for the `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`] (stand-in for `SampleRange`).
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                let draw = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start + draw as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                let draw = ((u128::from(rng.next_u64()) * (u128::from(span) + 1)) >> 64) as u64;
                lo + draw as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                let draw = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                (self.start as $u).wrapping_add(draw as $u) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let draw = ((u128::from(rng.next_u64()) * (u128::from(span) + 1)) >> 64) as u64;
                (lo as $u).wrapping_add(draw as $u) as $t
            }
        }
    )*};
}

impl_sample_range_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// User-facing convenience methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 so draws look uniform.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..10_000 {
            let a: usize = rng.gen_range(0..13);
            assert!(a < 13);
            let b: u32 = rng.gen_range(1..=6);
            assert!((1..=6).contains(&b));
            let c: f64 = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&c));
            let d: i64 = rng.gen_range(-10..10);
            assert!((-10..10).contains(&d));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(3);
        assert!(!rng.gen_bool(0.0));
        assert!((0..64).any(|_| rng.gen_bool(0.5)));
    }

    #[test]
    fn standard_draws_cover_types() {
        let mut rng = Counter(1);
        let _: u64 = rng.gen();
        let x: f64 = rng.gen();
        assert!((0.0..1.0).contains(&x));
        let _: bool = rng.gen();
    }
}
