//! Derive macros for the in-tree serde shim.
//!
//! The shim's `Serialize`/`Deserialize` are marker traits, so the derives
//! only need the type's name (and generics, which no in-tree derived type
//! uses). Input is parsed with plain `proc_macro` token inspection — no
//! `syn`/`quote`, keeping the workspace dependency-free.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type identifier from a `struct`/`enum`/`union` definition.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tree) = tokens.next() {
        if let TokenTree::Ident(ident) = &tree {
            let word = ident.to_string();
            if word == "struct" || word == "enum" || word == "union" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    return name.to_string();
                }
                panic!("serde shim derive: missing type name after `{word}`");
            }
        }
    }
    panic!("serde shim derive: no struct/enum/union found in input");
}

/// Emits `impl ::serde::Serialize for T {}`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Emits `impl<'de> ::serde::Deserialize<'de> for T {}`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
