//! Minimal in-tree shim for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its result and config
//! types to advertise that they are plain data, but nothing in-tree actually
//! serializes through serde (tables and CSVs are rendered by hand). The shim
//! therefore reduces both traits to markers, which keeps every `#[derive]`
//! site compiling byte-for-byte unchanged while the workspace builds fully
//! offline.
//!
//! If a future PR needs real serialization, replace this shim with the real
//! crate (the path override lives in the workspace `Cargo.toml`) — no call
//! site changes needed.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
