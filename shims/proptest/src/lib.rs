//! Minimal in-tree shim for the subset of `proptest` this workspace uses.
//!
//! Provides the `proptest! { fn case(x in strategy) { ... } }` macro, the
//! [`Strategy`] trait with `prop_map`, range/tuple/`Just`/`any` strategies,
//! `prop::collection::vec`, `prop::option::of`, `prop_oneof!`, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the fully-expanded inputs and
//!   the case number; inputs are deterministic per (test name, case index),
//!   so a failure reproduces exactly by re-running the test.
//! * **Deterministic by default.** Case seeds derive from the test's name,
//!   not OS entropy, so CI failures reproduce locally bit-for-bit.
//! * Case count defaults to 64 and is overridable via `PROPTEST_CASES`.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic per-case RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives the RNG for one test case from the test's identity.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the name, then mix in the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut rng = TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        rng.next_u64(); // decorrelate adjacent cases
        rng
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A failed `prop_assert*` with its rendered message.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure from a rendered message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-case result type the `proptest!` body closure returns.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The number of cases each property runs (env `PROPTEST_CASES`, default 64).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A generator of values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy (for `prop_oneof!` arms of differing types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a full-domain default strategy (the `any::<T>()` form).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                (self.start as $u).wrapping_add(rng.below(span) as $u) as $t
            }
        }
    )*};
}

impl_range_strategy_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Uniform choice among boxed alternatives (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].sample(rng)
    }
}

impl<T> fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

/// Sizes accepted by [`prop::collection::vec`]: a fixed `usize` or a range.
pub trait SizeBounds {
    /// Draws a concrete length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeBounds for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeBounds for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SizeBounds for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty size range");
        lo + rng.below((hi - lo) as u64 + 1) as usize
    }
}

/// The `prop::` namespace.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeBounds, Strategy, TestRng};

        /// Strategy producing vectors of `element` values.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S, B> {
            element: S,
            size: B,
        }

        impl<S: Strategy, B: SizeBounds> Strategy for VecStrategy<S, B> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// `vec(element, size)` — size may be a `usize` or a range.
        pub fn vec<S: Strategy, B: SizeBounds>(element: S, size: B) -> VecStrategy<S, B> {
            VecStrategy { element, size }
        }
    }

    /// Option strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};

        /// Strategy producing `Option<T>` (`None` one time in four).
        #[derive(Debug, Clone)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.inner.sample(rng))
                }
            }
        }

        /// `of(inner)` — `Some` three times in four.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }
    }
}

/// Everything a `use proptest::prelude::*;` site expects.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Just, Strategy,
    };
}

/// Declares property tests. Each function runs [`cases()`] deterministic
/// cases; a failure reports the case index and the expanded inputs.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::cases();
                for case in 0..cases {
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::sample(&$strat, &mut rng);)+
                    let rendered = format!("{:#?}", ($(&$arg,)+));
                    let outcome: $crate::TestCaseResult = (move || {
                        $body
                        Ok(())
                    })();
                    if let Err(err) = outcome {
                        panic!(
                            "proptest case {case} of {} failed: {err}\ninputs {}: {rendered}",
                            stringify!($name),
                            stringify!(($($arg),+)),
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*),
                l,
                r
            )));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skips the current case when its precondition does not hold (the case
/// counts as a vacuous pass; no shrinking/retry in this shim).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn sampling_is_deterministic_per_case() {
        let strat = prop::collection::vec(0u64..100, 1..20);
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        let mut c = crate::TestRng::for_case("t", 4);
        // Overwhelmingly likely to differ across cases.
        assert_ne!(strat.sample(&mut c), {
            let mut a2 = crate::TestRng::for_case("t", 3);
            strat.sample(&mut a2)
        });
    }

    proptest! {
        #[test]
        fn shim_macro_round_trip(
            xs in prop::collection::vec(1u32..50, 1..30),
            flag in any::<bool>(),
            scale in 0.5f64..2.0,
        ) {
            prop_assert!(!xs.is_empty());
            prop_assert!(xs.iter().all(|&x| (1..50).contains(&x)));
            prop_assert!((0.5..2.0).contains(&scale));
            let doubled: Vec<u32> = xs.iter().map(|&x| x * 2).collect();
            prop_assert_eq!(doubled.len(), xs.len());
            if flag {
                prop_assert_ne!(doubled[0], xs[0]);
            }
        }

        #[test]
        fn oneof_and_map_compose(ops in prop::collection::vec(prop_oneof![
            (0u8..4).prop_map(Some),
            Just(None),
        ], 1..40)) {
            for v in ops.iter().flatten() {
                prop_assert!(*v < 4);
            }
        }
    }
}
