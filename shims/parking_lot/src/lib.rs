//! Minimal in-tree shim for the `parking_lot` API surface this workspace
//! uses: a [`Mutex`] whose `lock()` returns a guard directly (no poison
//! `Result`) and a [`Condvar`] whose wait methods take the guard by `&mut`
//! and re-fill it, matching parking_lot semantics over `std::sync`.
//!
//! Poisoning is deliberately transparent: a panic while holding the lock
//! does not poison it for other threads, which is parking_lot's behaviour.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Duration;

/// Mutex with parking_lot's panic-transparent `lock()` signature.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never returns a poison
    /// error — a panicked holder is treated as having unlocked cleanly.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(sync::PoisonError::into_inner),
            ),
        }
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// Guard for [`Mutex::lock`]. The `Option` indirection lets [`Condvar`]
/// temporarily take the underlying std guard during waits.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable with parking_lot's `&mut guard` wait signature.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guarded lock while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present before wait");
        guard.inner = Some(
            self.inner
                .wait(inner)
                .unwrap_or_else(sync::PoisonError::into_inner),
        );
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present before wait");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let signaller = Arc::clone(&pair);
        let handle = thread::spawn(move || {
            *signaller.0.lock() = true;
            signaller.1.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            let result = cv.wait_for(&mut ready, Duration::from_secs(5));
            assert!(!result.timed_out(), "signaller never arrived");
        }
        handle.join().expect("signaller exits");
    }

    #[test]
    fn wait_for_times_out() {
        let pair = (Mutex::new(()), Condvar::new());
        let mut guard = pair.0.lock();
        let result = pair.1.wait_for(&mut guard, Duration::from_millis(10));
        assert!(result.timed_out());
    }
}
