//! Minimal in-tree shim for the subset of `criterion` this workspace uses:
//! `Criterion::bench_function`, benchmark groups, `Bencher::iter`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: warm up for `warm_up_time`, then run `sample_size`
//! samples, each a timed batch sized so one batch lasts roughly
//! `measurement_time / sample_size`. Reports min/mean/median per-iteration
//! time on stdout in a stable, grep-friendly format:
//!
//! ```text
//! bench: engine_schedule_run_10k ... min 412.3 µs  mean 428.9 µs  median 425.1 µs  (20 samples)
//! ```
//!
//! No statistical regression analysis, HTML reports, or plotting — this is
//! a deliberately small, dependency-free harness so benches build offline.
//! Numbers print with enough precision to compare runs by hand or via
//! `results/perf.json` produced by the `repro` binary.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver (mirrors `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples to take per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut bencher = Bencher {
            config: self.clone(),
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some(report) => println!(
                "bench: {name} ... min {}  mean {}  median {}  ({} samples)",
                format_duration(report.min),
                format_duration(report.mean),
                format_duration(report.median),
                report.samples,
            ),
            None => println!("bench: {name} ... no iterations recorded"),
        }
        self
    }

    /// Opens a named benchmark group (names are prefixed `group/`).
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.into(),
        }
    }

    /// Criterion calls this after all groups; a no-op here.
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks (mirrors `criterion::BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.prefix, name.into());
        self.criterion.bench_function(full, f);
        self
    }

    /// Closes the group; a no-op here.
    pub fn finish(self) {}
}

#[derive(Debug, Clone, Copy)]
struct Report {
    min: f64,
    mean: f64,
    median: f64,
    samples: usize,
}

/// Timing handle passed to the closure (mirrors `criterion::Bencher`).
#[derive(Debug)]
pub struct Bencher {
    config: Criterion,
    report: Option<Report>,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate one iteration's cost.
        let warm_until = Instant::now() + self.config.warm_up_time;
        let mut warm_iters: u64 = 0;
        let warm_started = Instant::now();
        while Instant::now() < warm_until || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_started.elapsed().as_secs_f64() / warm_iters as f64;

        // Size batches so sample_size batches fill measurement_time.
        let samples = self.config.sample_size;
        let batch_budget = self.config.measurement_time.as_secs_f64() / samples as f64;
        let batch = ((batch_budget / per_iter.max(1e-12)) as u64).clamp(1, 1_000_000_000);

        let mut times: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            times.push(start.elapsed().as_secs_f64() / batch as f64);
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let report = Report {
            min: times[0],
            mean: times.iter().sum::<f64>() / times.len() as f64,
            median: times[times.len() / 2],
            samples,
        };
        self.report = Some(report);
    }
}

fn format_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.2} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.2} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group runner (both criterion forms supported).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_produces_a_report() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("g");
        group.bench_function(format!("inner_{}", 1), |b| b.iter(|| black_box(2 * 2)));
        group.finish();
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(format_duration(2.0).ends_with(" s"));
        assert!(format_duration(2e-3).ends_with(" ms"));
        assert!(format_duration(2e-6).ends_with(" µs"));
        assert!(format_duration(2e-9).ends_with(" ns"));
    }
}
