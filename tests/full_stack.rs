//! Cross-crate integration tests: the full monitoring → broker →
//! controller → actuator pipeline over the simulated n-tier system, plus
//! system-level conservation and determinism properties.

use dcm_core::controller::{Controller, Dcm, DcmConfig, DcmModels, Ec2AutoScale};
use dcm_core::experiment::{
    run_trace_experiment, steady_state_throughput, SteadyStateOptions, TraceExperimentConfig,
};
use dcm_core::policy::ScalingConfig;
use dcm_model::concurrency::ConcurrencyModel;
use dcm_ntier::law::reference;
use dcm_ntier::topology::SoftConfig;
use dcm_sim::time::{SimDuration, SimTime};
use dcm_workload::traces;

fn models() -> DcmModels {
    let app = reference::tomcat();
    let db = reference::mysql();
    DcmModels {
        app: ConcurrencyModel::new(app.s0(), app.alpha(), app.beta(), 1.0, 1),
        db: ConcurrencyModel::new(db.s0(), db.alpha(), db.beta(), 1.0, 1),
    }
}

fn quick_config(trace: traces::WorkloadTrace, horizon: u64, seed: u64) -> TraceExperimentConfig {
    let mut config = TraceExperimentConfig::figure5(trace);
    config.horizon = SimTime::from_secs(horizon);
    config.seed = seed;
    config
}

#[test]
fn trace_runs_conserve_requests_and_resources() {
    for seed in [1, 77] {
        let config = quick_config(traces::large_variation(), 150, seed);
        let run =
            run_trace_experiment(&config, |bus| Dcm::new(bus, DcmConfig::default(), models()));
        let c = run.counters;
        assert_eq!(
            c.submitted,
            c.completed + c.rejected,
            "conservation failed at seed {seed}"
        );
        assert_eq!(c.rejected, 0, "no rejections expected in this scenario");
        assert_eq!(run.completions.len() as u64, c.completed);
    }
}

#[test]
fn identical_seeds_give_identical_runs() {
    let run = |seed| {
        let config = quick_config(traces::large_variation(), 120, seed);
        run_trace_experiment(&config, |bus| {
            Ec2AutoScale::new(bus, ScalingConfig::default())
        })
    };
    let a = run(42);
    let b = run(42);
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.completions.len(), b.completions.len());
    assert_eq!(a.actions.len(), b.actions.len());
    // Response times identical request-by-request.
    for (x, y) in a.completions.iter().zip(b.completions.iter()) {
        assert_eq!(x.finished, y.finished);
    }
    let c = run(43);
    assert_ne!(
        a.completions.len(),
        0,
        "sanity: the run actually did something"
    );
    assert!(
        a.completions.len() != c.completions.len()
            || a.completions
                .iter()
                .zip(c.completions.iter())
                .any(|(x, y)| x.finished != y.finished),
        "different seeds should differ"
    );
}

#[test]
fn dcm_actuates_soft_resources_and_ec2_does_not() {
    let config = quick_config(traces::step(50, 400, 30.0), 150, 5);
    let dcm_run =
        run_trace_experiment(&config, |bus| Dcm::new(bus, DcmConfig::default(), models()));
    let ec2_run = run_trace_experiment(&config, |bus| {
        Ec2AutoScale::new(bus, ScalingConfig::default())
    });
    use dcm_core::agents::Action;
    let soft = |actions: &[dcm_core::agents::ActionRecord]| {
        actions
            .iter()
            .filter(|a| {
                matches!(
                    a.action,
                    Action::SetThreadPools { .. } | Action::SetConnPools { .. }
                )
            })
            .count()
    };
    assert!(soft(&dcm_run.actions) >= 2, "DCM adjusts pools");
    assert_eq!(
        soft(&ec2_run.actions),
        0,
        "the baseline never touches pools"
    );
    assert!(
        ec2_run
            .actions
            .iter()
            .any(|a| matches!(a.action, Action::ScaleOut { .. })),
        "the baseline still scales VMs"
    );
}

#[test]
fn dcm_beats_hardware_only_scaling_under_burst() {
    let config = quick_config(traces::flash_crowd(100, 550, 40.0, 70.0), 200, 9);
    let dcm_run =
        run_trace_experiment(&config, |bus| Dcm::new(bus, DcmConfig::default(), models()));
    let ec2_run = run_trace_experiment(&config, |bus| {
        Ec2AutoScale::new(bus, ScalingConfig::default())
    });
    let mut dcm_report = dcm_run.overall();
    let mut ec2_report = ec2_run.overall();
    assert!(
        dcm_report.throughput() >= ec2_report.throughput(),
        "DCM {:.1} req/s vs EC2 {:.1} req/s",
        dcm_report.throughput(),
        ec2_report.throughput()
    );
    let dcm_p95 = dcm_report.response_time_quantile(0.95).unwrap_or(0.0);
    let ec2_p95 = ec2_report.response_time_quantile(0.95).unwrap_or(0.0);
    assert!(
        dcm_p95 <= ec2_p95,
        "DCM p95 {dcm_p95:.2}s vs EC2 p95 {ec2_p95:.2}s"
    );
}

#[test]
fn scale_out_crossover_reproduces_fig2b() {
    // The motivating phenomenon end-to-end: 1/2/1 with the default soft
    // allocation does WORSE than 1/1/1 at high load.
    let options = SteadyStateOptions {
        warmup: SimDuration::from_secs(10),
        measure: SimDuration::from_secs(30),
        think_time_secs: 3.0,
        seed: 3,
        audit: true,
    };
    let soft = SoftConfig::DEFAULT;
    let baseline = steady_state_throughput((1, 1, 1), soft, 400, &options);
    let scaled = steady_state_throughput((1, 2, 1), soft, 400, &options);
    assert!(
        scaled.throughput < baseline.throughput,
        "scaled-out {:.1} should underperform baseline {:.1} at 400 users",
        scaled.throughput,
        baseline.throughput
    );
    // And fixing the soft allocation (paper's remedy: split the optimal 36
    // connections across the two app servers) recovers the scaling win.
    let fixed = steady_state_throughput((1, 2, 1), SoftConfig::new(1000, 100, 18), 400, &options);
    assert!(
        fixed.throughput > baseline.throughput * 1.2,
        "reallocated 1/2/1 {:.1} should clearly beat 1/1/1 {:.1}",
        fixed.throughput,
        baseline.throughput
    );
}

#[test]
fn online_refit_controller_still_functions() {
    let config = quick_config(traces::large_variation(), 150, 21);
    let run = run_trace_experiment(&config, |bus| {
        Dcm::new(bus, DcmConfig::default(), models()).with_online_refit(12, 4)
    });
    assert!(run.counters.completed > 1000);
    assert_eq!(run.counters.in_flight(), 0);
}

#[test]
fn vm_second_accounting_matches_action_log() {
    let config = quick_config(traces::step(50, 450, 30.0), 150, 13);
    let run = run_trace_experiment(&config, |bus| {
        Ec2AutoScale::new(bus, ScalingConfig::default())
    });
    // Web tier never scales: exactly horizon VM-seconds.
    assert!((run.vm_seconds[0] - 150.0).abs() < 1e-6);
    // Scalable tiers: at least the base server for the whole horizon, plus
    // something for every scale-out that happened.
    use dcm_core::agents::Action;
    for tier in [1usize, 2] {
        let outs = run
            .actions
            .iter()
            .filter(|a| matches!(a.action, Action::ScaleOut { tier: t } if t == tier))
            .count();
        assert!(
            run.vm_seconds[tier] >= 150.0 - 1e-6,
            "tier {tier} below baseline"
        );
        if outs > 0 {
            assert!(
                run.vm_seconds[tier] > 150.0 + 10.0,
                "tier {tier} scaled out but accrued no extra VM-seconds"
            );
        }
    }
}

#[test]
fn controller_trait_objects_compose() {
    // The Controller trait is usable as a trait object (for heterogeneous
    // controller registries).
    let bus = dcm_core::monitor::new_metrics_bus();
    let mut controllers: Vec<Box<dyn Controller>> = vec![
        Box::new(Ec2AutoScale::new(
            std::rc::Rc::clone(&bus),
            ScalingConfig::default(),
        )),
        Box::new(Dcm::new(bus, DcmConfig::default(), models())),
    ];
    let (mut world, mut engine) = dcm_ntier::topology::ThreeTierBuilder::new().build();
    for c in controllers.iter_mut() {
        c.on_tick(&mut world, &mut engine);
        let _ = c.name();
    }
}

#[test]
fn monitor_outage_leaves_controller_holding() {
    // A controller consuming an empty/stale bus must hold rather than act:
    // run a system where the monitor stops at t=30s but the controller
    // keeps ticking to t=120s under rising load.
    use dcm_core::monitor::{install_monitor, new_metrics_bus, MonitorConfig};
    use dcm_ntier::topology::ThreeTierBuilder;
    use dcm_workload::generator::UserPopulation;
    use dcm_workload::profile::ProfileFactory;

    let (mut world, mut engine) = ThreeTierBuilder::new().seed(31).build();
    let bus = new_metrics_bus();
    install_monitor(
        &mut engine,
        std::rc::Rc::clone(&bus),
        MonitorConfig::every_second_until(SimTime::from_secs(30)),
    );
    let controller = std::rc::Rc::new(std::cell::RefCell::new(Ec2AutoScale::new(
        std::rc::Rc::clone(&bus),
        ScalingConfig::default(),
    )));
    fn tick(
        engine: &mut dcm_ntier::world::SimEngine,
        c: std::rc::Rc<std::cell::RefCell<Ec2AutoScale>>,
        stop: SimTime,
    ) {
        let next = engine.now() + SimDuration::from_secs(15);
        if next > stop {
            return;
        }
        engine.schedule_at(next, move |w: &mut dcm_ntier::world::World, e| {
            c.borrow_mut().on_tick(w, e);
            tick(e, c, stop);
        });
    }
    tick(
        &mut engine,
        std::rc::Rc::clone(&controller),
        SimTime::from_secs(120),
    );
    // Load that would normally trigger scale-out arrives AFTER the outage.
    UserPopulation::start_trace_driven(
        &mut world,
        &mut engine,
        ProfileFactory::rubbos(),
        &traces::step(50, 500, 40.0),
        3.0,
        SimTime::from_secs(120),
    );
    engine.run(&mut world);
    // No metrics after 30 s → no scale decisions for the burst; the system
    // stays at 1/1/1 and keeps serving (degraded but alive).
    let actions = controller.borrow().actions();
    assert!(
        actions.is_empty(),
        "controller acted on stale/no data: {actions:?}"
    );
    assert_eq!(world.system.running_count(1), 1);
    assert_eq!(world.system.counters().in_flight(), 0);
}

#[test]
fn least_connections_balances_heterogeneous_backends_better() {
    // With highly variable per-request demands, least-connections spreads
    // in-flight work more evenly than round-robin.
    use dcm_ntier::balancer::BalancerPolicy;
    use dcm_ntier::topology::{SoftConfig, ThreeTierBuilder};
    use dcm_sim::dist::Dist;
    use dcm_workload::generator::UserPopulation;
    use dcm_workload::profile::ProfileFactory;

    let run = |policy: BalancerPolicy| {
        let (mut world, mut engine) = ThreeTierBuilder::new()
            .counts(1, 3, 1)
            .soft(SoftConfig::new(1000, 60, 20))
            .balancer(policy)
            .seed(77)
            .build();
        // Heavy-tailed app demand makes imbalance expensive.
        let factory = ProfileFactory::rubbos().with_bases(
            Dist::constant(6.0e-4),
            Dist::log_normal((0.0284f64).ln() - 0.72, 1.2),
            Dist::exponential_mean(0.0296),
        );
        let pop = UserPopulation::start_think_time(
            &mut world,
            &mut engine,
            factory,
            250,
            3.0,
            SimTime::from_secs(120),
        );
        engine.run(&mut world);
        pop.with_completions(|log| {
            let mut r = dcm_workload::report::LoadReport::from_completions(
                log,
                SimTime::from_secs(20),
                SimTime::from_secs(120),
            );
            r.response_time_quantile(0.95).unwrap_or(f64::INFINITY)
        })
    };
    let rr = run(BalancerPolicy::RoundRobin);
    let lc = run(BalancerPolicy::LeastConnections);
    assert!(
        lc <= rr * 1.1,
        "least-connections p95 {lc:.3}s should not lose badly to round-robin {rr:.3}s"
    );
}

#[test]
fn four_tier_deployment_matches_three_tier() {
    // The DB load-balancer tier is a transparent pass-through: the
    // four-tier deployment's steady-state throughput must match the
    // three-tier one within a few percent.
    use dcm_ntier::topology::ThreeTierBuilder;
    use dcm_workload::generator::UserPopulation;
    use dcm_workload::profile::ProfileFactory;
    use dcm_workload::report::LoadReport;

    let run = |four_tier: bool| {
        let mut builder = ThreeTierBuilder::new()
            .counts(1, 2, 1)
            .soft(SoftConfig::new(1000, 30, 18))
            .seed(13);
        if four_tier {
            builder = builder.with_db_load_balancer();
        }
        let (mut world, mut engine) = builder.build();
        let factory = if four_tier {
            ProfileFactory::rubbos_four_tier()
        } else {
            ProfileFactory::rubbos()
        };
        let pop = UserPopulation::start_think_time(
            &mut world,
            &mut engine,
            factory,
            250,
            3.0,
            SimTime::from_secs(120),
        );
        engine.run(&mut world);
        assert_eq!(world.system.counters().in_flight(), 0);
        pop.with_completions(|log| {
            LoadReport::from_completions(log, SimTime::from_secs(20), SimTime::from_secs(120))
                .throughput()
        })
    };
    let three = run(false);
    let four = run(true);
    assert!(
        (three - four).abs() / three < 0.05,
        "lb tier should be transparent: 3-tier {three:.1} vs 4-tier {four:.1}"
    );
}

#[test]
fn dcm_controls_the_four_tier_deployment() {
    // DCM's tier indices are configurable: on the four-tier deployment the
    // database sits at index 3 (behind the LB tier at 2).
    use dcm_core::monitor::{install_monitor, new_metrics_bus, MonitorConfig};
    use dcm_ntier::topology::{SoftConfig, ThreeTierBuilder};
    use dcm_workload::generator::UserPopulation;
    use dcm_workload::profile::ProfileFactory;

    let (mut world, mut engine) = ThreeTierBuilder::new()
        .soft(SoftConfig::new(1000, 200, 40))
        .with_db_load_balancer()
        .seed(19)
        .build();
    let horizon = SimTime::from_secs(150);
    let bus = new_metrics_bus();
    install_monitor(
        &mut engine,
        std::rc::Rc::clone(&bus),
        MonitorConfig::every_second_until(horizon),
    );
    let config = DcmConfig {
        app_tier: 1,
        db_tier: 3,
        scaling: ScalingConfig {
            scalable_tiers: vec![1, 3],
            ..ScalingConfig::default()
        },
        ..DcmConfig::default()
    };
    let controller = std::rc::Rc::new(std::cell::RefCell::new(Dcm::new(bus, config, models())));
    fn tick(
        engine: &mut dcm_ntier::world::SimEngine,
        c: std::rc::Rc<std::cell::RefCell<Dcm>>,
        stop: SimTime,
    ) {
        let next = engine.now() + SimDuration::from_secs(15);
        if next > stop {
            return;
        }
        engine.schedule_at(next, move |w: &mut dcm_ntier::world::World, e| {
            c.borrow_mut().on_tick(w, e);
            tick(e, c, stop);
        });
    }
    tick(&mut engine, std::rc::Rc::clone(&controller), horizon);
    UserPopulation::start_trace_driven(
        &mut world,
        &mut engine,
        ProfileFactory::rubbos_four_tier(),
        &traces::step(80, 450, 30.0),
        3.0,
        horizon,
    );
    engine.run(&mut world);

    use dcm_core::agents::Action;
    let actions = controller.borrow().actions();
    assert!(
        actions
            .iter()
            .any(|a| matches!(a.action, Action::SetThreadPools { tier: 1, .. })),
        "app pools actuated: {actions:?}"
    );
    assert!(
        actions
            .iter()
            .any(|a| matches!(a.action, Action::ScaleOut { tier: 1 })),
        "app tier scaled under the step: {actions:?}"
    );
    assert_eq!(world.system.counters().in_flight(), 0);
    // The LB tier was never scaled (not in scalable_tiers).
    assert_eq!(world.system.running_count(2), 1);
}

#[test]
fn chaos_run_passes_conservation_audit() {
    // The full chaos schedule — VM crash, straggler episode, transient
    // failures, client retries, deadlines, inter-tier retries — under the
    // conservation auditor. run_trace_experiment panics on any violated
    // conservation law when `audit` is set, so completing is the assertion.
    let (mut config, _) =
        dcm_bench::experiments::chaos::chaos_config(dcm_bench::experiments::Fidelity::Quick);
    config.audit = true;
    let run = run_trace_experiment(&config, |bus| {
        Ec2AutoScale::new(bus, ScalingConfig::default())
    });
    assert!(run.counters.failed > 0, "chaos must strike in-flight work");
    assert_eq!(run.counters.in_flight(), 0);
}

#[test]
fn spans_reconcile_with_request_outcomes_under_faults() {
    // Span-conservation regression: with tracing on through a faulted run
    // (crash + transient failures, so Outcome::Failed occurs), every span
    // is time-ordered and the span log reconciles with the per-request
    // outcome counters.
    use dcm_ntier::faults::install_fault_plan;
    use dcm_ntier::topology::ThreeTierBuilder;
    use dcm_sim::faults::FaultPlan;
    use dcm_workload::generator::UserPopulation;
    use dcm_workload::profile::ProfileFactory;
    use std::collections::BTreeMap;

    let (mut world, mut engine) = ThreeTierBuilder::new()
        .counts(1, 2, 1)
        .soft(SoftConfig::new(1000, 200, 40))
        .seed(47)
        .build();
    world.system.enable_tracing();
    let plan = FaultPlan::none()
        .with_crash(60.0, 1, 1)
        .with_transient_failures(0.01);
    install_fault_plan(&mut world, &mut engine, &plan);
    UserPopulation::start_trace_driven(
        &mut world,
        &mut engine,
        ProfileFactory::rubbos(),
        &traces::step(60, 200, 30.0),
        1.0,
        SimTime::from_secs(120),
    );
    engine.run(&mut world);

    let spans = world.system.take_spans();
    let counters = world.system.counters();
    assert_eq!(counters.in_flight(), 0);
    assert!(counters.failed > 0, "faults must produce Outcome::Failed");
    assert!(
        dcm_ntier::audit::check_span_ordering(&spans).is_empty(),
        "every span must satisfy arrived <= started <= finished"
    );
    assert!(
        dcm_ntier::audit::check_span_statuses(&spans).is_empty(),
        "terminal span statuses must be consistent per request"
    );

    // Exactly one completed entry-tier span per completed request, none
    // for requests that failed; failures leave incomplete spans behind.
    let mut entry_completions: BTreeMap<dcm_ntier::ids::RequestId, u64> = BTreeMap::new();
    for s in &spans {
        if s.tier == 0 && s.is_completed() {
            *entry_completions.entry(s.request).or_insert(0) += 1;
        }
    }
    assert!(
        entry_completions.values().all(|&n| n == 1),
        "a request must complete its entry tier at most once"
    );
    assert_eq!(
        entry_completions.len() as u64,
        counters.completed,
        "completed entry-tier spans must match the completion counter"
    );
    assert!(
        spans.iter().any(|s| !s.is_completed()),
        "failed requests must leave incomplete spans"
    );
    assert!(
        spans
            .iter()
            .any(|s| s.status == dcm_ntier::spans::SpanStatus::Crashed),
        "the injected crash must stamp Crashed spans"
    );
}

#[test]
fn long_soak_under_oscillating_load_stays_clean() {
    // 2000 s of diurnal-like oscillation: DCM repeatedly scales out and in;
    // nothing may leak, counters must conserve, VM counts stay bounded.
    let mut config = quick_config(traces::sine(80, 520, 300.0, 2000.0, 10.0), 2000, 23);
    config.initial_soft = SoftConfig::new(1000, 200, 40);
    let run = run_trace_experiment(&config, |bus| Dcm::new(bus, DcmConfig::default(), models()));
    assert_eq!(run.counters.in_flight(), 0);
    assert_eq!(run.counters.rejected, 0);
    // Multiple scale-out AND scale-in cycles happened.
    use dcm_core::agents::Action;
    let outs = run
        .actions
        .iter()
        .filter(|a| matches!(a.action, Action::ScaleOut { .. }))
        .count();
    let ins = run
        .actions
        .iter()
        .filter(|a| matches!(a.action, Action::ScaleIn { .. }))
        .count();
    assert!(outs >= 3, "expected repeated scale-outs, saw {outs}");
    assert!(ins >= 3, "expected repeated scale-ins, saw {ins}");
    // VM counts stayed within the policy cap.
    for tier in [1usize, 2] {
        let max_vms = run.tier_vm_counts[tier].max().unwrap_or(0.0);
        assert!(
            max_vms <= 8.0,
            "tier {tier} exceeded max_servers: {max_vms}"
        );
    }
    // The oscillation is served: overall throughput in a sane band.
    let overall = run.overall();
    assert!(overall.throughput() > 40.0, "X {}", overall.throughput());
    assert!(
        overall.sla_attainment(1.0) > 0.7,
        "SLA {}",
        overall.sla_attainment(1.0)
    );
}
