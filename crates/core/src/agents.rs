//! The two-level actuator (paper §IV-A/§IV-B): VM-agent for hardware
//! scaling, APP-agent for runtime soft-resource re-allocation.

use dcm_ntier::flow;
use dcm_ntier::ids::ServerId;
use dcm_ntier::world::{SimEngine, World};
use dcm_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// One actuation, for the experiment timeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// A VM was launched in `tier`.
    ScaleOut {
        /// Tier index.
        tier: usize,
    },
    /// A VM began draining in `tier`.
    ScaleIn {
        /// Tier index.
        tier: usize,
    },
    /// Every server in `tier` had its thread pool set to `size`.
    SetThreadPools {
        /// Tier index.
        tier: usize,
        /// New per-server pool size.
        size: u32,
    },
    /// Every server in `tier` had its downstream connection pool set to
    /// `size`.
    SetConnPools {
        /// Tier index.
        tier: usize,
        /// New per-server pool size.
        size: u32,
    },
}

/// A timestamped actuation record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActionRecord {
    /// When the action was taken.
    pub at: SimTime,
    /// What was done.
    pub action: Action,
}

/// VM-agent: boots and drains VMs through the hypervisor API
/// ([`flow::provision_server`] / [`flow::decommission_one`]).
#[derive(Debug, Default)]
pub struct VmAgent {
    log: Vec<ActionRecord>,
}

impl VmAgent {
    /// Creates an agent with an empty action log.
    pub fn new() -> Self {
        VmAgent { log: Vec::new() }
    }

    /// Launches one VM in `tier` (15-second preparation applies). Returns
    /// the new server id, or `None` if the tier does not exist.
    pub fn scale_out(
        &mut self,
        world: &mut World,
        engine: &mut SimEngine,
        tier: usize,
    ) -> Option<ServerId> {
        match flow::provision_server(world, engine, tier) {
            Ok(sid) => {
                self.log.push(ActionRecord {
                    at: engine.now(),
                    action: Action::ScaleOut { tier },
                });
                Some(sid)
            }
            Err(_) => None,
        }
    }

    /// Drains one VM from `tier`. Returns the draining server id, or
    /// `None` if the tier is already at its last server.
    pub fn scale_in(
        &mut self,
        world: &mut World,
        engine: &mut SimEngine,
        tier: usize,
    ) -> Option<ServerId> {
        match flow::decommission_one(world, engine, tier) {
            Ok(sid) => {
                self.log.push(ActionRecord {
                    at: engine.now(),
                    action: Action::ScaleIn { tier },
                });
                Some(sid)
            }
            Err(_) => None,
        }
    }

    /// The actuation timeline.
    pub fn log(&self) -> &[ActionRecord] {
        &self.log
    }

    /// Consumes the agent, returning its log.
    pub fn into_log(self) -> Vec<ActionRecord> {
        self.log
    }
}

/// APP-agent: adjusts thread/connection pools of a whole tier at runtime.
/// Re-applying an unchanged size is a no-op (not logged), so the controller
/// can call it idempotently every period.
#[derive(Debug, Default)]
pub struct AppAgent {
    log: Vec<ActionRecord>,
    current_threads: std::collections::BTreeMap<usize, u32>,
    current_conns: std::collections::BTreeMap<usize, u32>,
}

impl AppAgent {
    /// Creates an agent with an empty action log.
    pub fn new() -> Self {
        AppAgent::default()
    }

    /// Sets every server of `tier` to `size` threads (and makes `size` the
    /// default for future servers of the tier). No-op if `size` is already
    /// in effect.
    pub fn set_tier_threads(
        &mut self,
        world: &mut World,
        engine: &mut SimEngine,
        tier: usize,
        size: u32,
    ) {
        if self.current_threads.get(&tier) == Some(&size) {
            return;
        }
        if flow::set_tier_thread_pools(world, engine, tier, size).is_ok() {
            world.system.set_tier_defaults(tier, size, None);
            self.current_threads.insert(tier, size);
            self.log.push(ActionRecord {
                at: engine.now(),
                action: Action::SetThreadPools { tier, size },
            });
        }
    }

    /// Sets every server of `tier` to `size` downstream connections (and
    /// updates the tier default). No-op if already in effect.
    pub fn set_tier_conns(
        &mut self,
        world: &mut World,
        engine: &mut SimEngine,
        tier: usize,
        size: u32,
    ) {
        if self.current_conns.get(&tier) == Some(&size) {
            return;
        }
        if flow::set_tier_conn_pools(world, engine, tier, size).is_ok() {
            let threads = world.system.tier(tier).spec().default_threads;
            world.system.set_tier_defaults(tier, threads, Some(size));
            self.current_conns.insert(tier, size);
            self.log.push(ActionRecord {
                at: engine.now(),
                action: Action::SetConnPools { tier, size },
            });
        }
    }

    /// The actuation timeline.
    pub fn log(&self) -> &[ActionRecord] {
        &self.log
    }

    /// Consumes the agent, returning its log.
    pub fn into_log(self) -> Vec<ActionRecord> {
        self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcm_ntier::topology::ThreeTierBuilder;
    use dcm_sim::time::SimTime;

    #[test]
    fn vm_agent_logs_scaling() {
        let (mut world, mut engine) = ThreeTierBuilder::new().build();
        let mut agent = VmAgent::new();
        let sid = agent.scale_out(&mut world, &mut engine, 1);
        assert!(sid.is_some());
        assert_eq!(agent.log().len(), 1);
        // Scale-in of the last routable server is refused and not logged.
        assert!(agent.scale_in(&mut world, &mut engine, 2).is_none());
        assert_eq!(agent.log().len(), 1);
        engine.run_until(&mut world, SimTime::from_secs(16));
        assert!(agent.scale_in(&mut world, &mut engine, 1).is_some());
        assert_eq!(agent.into_log().len(), 2);
    }

    #[test]
    fn app_agent_is_idempotent_and_updates_defaults() {
        let (mut world, mut engine) = ThreeTierBuilder::new().build();
        let mut agent = AppAgent::new();
        agent.set_tier_threads(&mut world, &mut engine, 1, 20);
        agent.set_tier_threads(&mut world, &mut engine, 1, 20);
        agent.set_tier_conns(&mut world, &mut engine, 1, 36);
        agent.set_tier_conns(&mut world, &mut engine, 1, 36);
        assert_eq!(agent.log().len(), 2, "repeats are no-ops");
        let spec = world.system.tier(1).spec();
        assert_eq!(spec.default_threads, 20);
        assert_eq!(spec.default_conns, Some(36));
        // Live server resized too.
        let sid = world.system.tier(1).members()[0];
        let server = world.system.server(sid).unwrap();
        assert_eq!(server.thread_pool().capacity(), 20);
        assert_eq!(server.conn_pool().unwrap().capacity(), 36);
    }

    #[test]
    fn app_agent_ignores_bad_tier() {
        let (mut world, mut engine) = ThreeTierBuilder::new().build();
        let mut agent = AppAgent::new();
        agent.set_tier_threads(&mut world, &mut engine, 9, 20);
        assert!(agent.log().is_empty());
    }
}
