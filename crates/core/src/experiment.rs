//! The Fig. 5 experiment harness: a trace-driven run of the full stack —
//! workload, monitor, broker, controller — producing every series the
//! paper's evaluation plots.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};

use dcm_bus::{Entry, GroupConsumer};
use dcm_ntier::audit::ConservationAuditor;
use dcm_ntier::ids::ServerId;
use dcm_ntier::metrics::ServerSample;
use dcm_ntier::request::Completion;
use dcm_ntier::spans::Span;
use dcm_ntier::graph::TopologyGraph;
use dcm_ntier::system::{InterTierRetry, SystemCounters};
use dcm_ntier::topology::{MeshBuilder, MeshNode, SoftConfig, ThreeTierBuilder};
use dcm_ntier::world::{SimEngine, World};
use dcm_obs::journal::DecisionJournal;
use dcm_obs::metrics::{Registry, SeriesTable};
use dcm_obs::recorder::{SamplerConfig, SpanRecorder};
use dcm_obs::trace::{ControlTick, TraceData};
use dcm_sim::faults::FaultPlan;
use dcm_sim::stats::TimeSeries;
use dcm_sim::time::{SimDuration, SimTime};
use dcm_workload::generator::{RetryPolicy, UserPopulation};
use dcm_workload::profile::{CacheEdge, MeshProfileFactory, NodeDemand, ProfileFactory, WorkloadFactory};
use dcm_workload::report::{windowed_series, LoadReport, WindowedSeries};
use dcm_workload::traces::WorkloadTrace;

use crate::agents::ActionRecord;
use crate::controller::Controller;
use crate::monitor::{install_monitor, new_metrics_bus, MetricsBus, MonitorConfig, METRICS_TOPIC};

/// Process-wide default for the conservation audit, consulted by the
/// config constructors ([`TraceExperimentConfig::figure5`],
/// [`SteadyStateOptions::default`]). Set once at startup (e.g. from a
/// `--audit` CLI flag) before building configs; individual configs can
/// still override their own `audit` field.
static GLOBAL_AUDIT: AtomicBool = AtomicBool::new(false);

/// Makes every subsequently-constructed experiment config carry a
/// [`ConservationAuditor`] across its run (`assert_clean` at the end).
pub fn set_global_audit(enabled: bool) {
    GLOBAL_AUDIT.store(enabled, Ordering::SeqCst);
}

/// The current process-wide conservation-audit default.
pub fn global_audit() -> bool {
    GLOBAL_AUDIT.load(Ordering::SeqCst)
}

/// Configuration of a trace-driven scaling experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceExperimentConfig {
    /// The user-count trace to follow.
    pub trace: WorkloadTrace,
    /// Run length.
    pub horizon: SimTime,
    /// Client think time (the paper's RUBBoS clients average 3 s).
    pub think_time_secs: f64,
    /// Initial `#W_T/#A_T/#A_C` soft allocation (the paper's Fig. 5 run
    /// starts at `1000-200-40`).
    pub initial_soft: SoftConfig,
    /// Initial `#W/#A/#D` hardware configuration.
    pub initial_counts: (u32, u32, u32),
    /// Controller invocation period (15 s in the paper).
    pub control_period: SimDuration,
    /// RNG seed.
    pub seed: u64,
    /// Probability that a VM boot fails (failure injection; 0 in the
    /// paper's environment).
    pub boot_failure_prob: f64,
    /// Scheduled fault injection (crashes, stragglers, transient
    /// failures); `None` runs the paper's fault-free environment.
    pub fault_plan: Option<FaultPlan>,
    /// Client-side retry with exponential backoff and a shared budget;
    /// `None` means clients give up on the first failure.
    pub client_retry: Option<RetryPolicy>,
    /// Per-request client deadline in seconds; `None` waits forever.
    pub request_deadline_secs: Option<f64>,
    /// Inter-tier retry (park + backoff when a tier momentarily has no
    /// routable server); `None` rejects outright as before.
    pub inter_tier_retry: Option<InterTierRetry>,
    /// Run a [`ConservationAuditor`] across the whole run and panic on any
    /// violated conservation law (flow balance, Little's law, utilization
    /// law, work conservation).
    pub audit: bool,
    /// With `audit` set, collect the [`AuditReport`] into
    /// [`TraceRunResult::audit`] instead of panicking on violations. The
    /// fuzz harness uses this to treat violations as data (shrink and pin
    /// them) rather than aborting the campaign.
    pub audit_tolerant: bool,
    /// Observability capture ([`dcm_obs`]): span recording, per-period
    /// metric snapshots, and the controller decision journal. `None` (the
    /// default) records nothing and costs nothing on the hot path.
    pub obs: Option<ObsConfig>,
}

/// Observability capture settings for a trace run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObsConfig {
    /// Per-request head-sampling probability in `[0, 1]` (the coin is
    /// seeded from the experiment seed, so the sampled set is identical
    /// across `--jobs`).
    pub sample_rate: f64,
    /// Hard span ring-buffer capacity (oldest evicted, with counters).
    pub span_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            sample_rate: 1.0,
            span_capacity: 65_536,
        }
    }
}

impl TraceExperimentConfig {
    /// The paper's Fig. 5 setup around the given trace.
    pub fn figure5(trace: WorkloadTrace) -> Self {
        TraceExperimentConfig {
            trace,
            horizon: SimTime::from_secs(700),
            think_time_secs: 3.0,
            initial_soft: SoftConfig::new(1000, 200, 40),
            initial_counts: (1, 1, 1),
            control_period: SimDuration::from_secs(15),
            seed: 42,
            boot_failure_prob: 0.0,
            fault_plan: None,
            client_retry: None,
            request_deadline_secs: None,
            inter_tier_retry: None,
            audit: global_audit(),
            audit_tolerant: false,
            obs: None,
        }
    }
}

/// Everything a Fig. 5 style run produces.
#[derive(Debug, Clone)]
pub struct TraceRunResult {
    /// Controller display name.
    pub controller: &'static str,
    /// Every request completion (successes and rejections).
    pub completions: Vec<Completion>,
    /// Offered user-count series.
    pub offered: TimeSeries,
    /// Per-tier routable-server counts — one series per tier, one point
    /// per second.
    pub tier_vm_counts: Vec<TimeSeries>,
    /// Per-tier mean CPU utilization, one point per second.
    pub tier_cpu_util: Vec<TimeSeries>,
    /// The controller's actuation timeline.
    pub actions: Vec<ActionRecord>,
    /// Candidate-plan evaluations the controller performed over the run —
    /// the deterministic decision-latency proxy (0 for model-free
    /// controllers).
    pub planner_evals: u64,
    /// Per-tier VM-seconds consumed (the resource-cost metric).
    pub vm_seconds: Vec<f64>,
    /// Per-tier dollars consumed. With a homogeneous fleet this is
    /// VM-seconds times a constant; with mixed VM types it is the metric
    /// that actually ranks controllers on spend.
    pub vm_cost: Vec<f64>,
    /// System conservation counters at the end of the run.
    pub counters: SystemCounters,
    /// The configured horizon.
    pub horizon: SimTime,
    /// Observability artifacts, present when the config asked for them.
    pub obs: Option<ObsArtifacts>,
    /// The conservation-audit report, present when the config set `audit`.
    /// Clean unless `audit_tolerant` allowed violations through.
    pub audit: Option<dcm_ntier::audit::AuditReport>,
}

/// Everything [`dcm_obs`] captured from one run.
#[derive(Debug, Clone)]
pub struct ObsArtifacts {
    /// Exporter input: sampled spans, lifecycle events, control ticks,
    /// server names, recorder keep/drop accounting.
    pub trace: TraceData,
    /// The controller's per-tick decision journal.
    pub journal: DecisionJournal,
    /// Per-control-period metric snapshots (queue depth, occupancy,
    /// utilization, goodput, timeout/retry rates per tier).
    pub series: SeriesTable,
}

impl TraceRunResult {
    /// Per-window throughput/response-time series over the full horizon.
    pub fn series(&self, window: SimDuration) -> WindowedSeries {
        windowed_series(&self.completions, SimTime::ZERO, self.horizon, window)
    }

    /// Summary over `[start, end)`.
    pub fn report(&self, start: SimTime, end: SimTime) -> LoadReport {
        LoadReport::from_completions(&self.completions, start, end)
    }

    /// Whole-run summary (excluding nothing).
    pub fn overall(&self) -> LoadReport {
        self.report(SimTime::ZERO, self.horizon)
    }

    /// Total VM-seconds across tiers.
    pub fn total_vm_seconds(&self) -> f64 {
        self.vm_seconds.iter().sum()
    }

    /// Total dollars across tiers.
    pub fn total_vm_cost(&self) -> f64 {
        self.vm_cost.iter().sum()
    }
}

/// Configuration of a trace-driven scaling experiment on a microservice
/// mesh (arbitrary tree-shaped call graph, optional warming cache edge,
/// per-tier VM policies) instead of the paper's fixed chain.
#[derive(Debug, Clone)]
pub struct MeshExperimentConfig {
    /// Everything shared with the chain harness: trace, horizon, think
    /// time, control period, seed, faults, retries, audit, obs. The
    /// chain-only `initial_soft` / `initial_counts` fields are ignored —
    /// a mesh world takes its pools, counts, and VM types from `nodes`.
    pub run: TraceExperimentConfig,
    /// One node per tier, in tier order (node 0 is the entry tier).
    pub nodes: Vec<MeshNode>,
    /// The per-request call graph (must match `nodes` in tier count).
    pub graph: TopologyGraph,
    /// Per-node demand specs, aligned with `nodes`.
    pub demands: Vec<NodeDemand>,
    /// Optional cache edge: hits skip the downstream hop, and the hit
    /// ratio warms over served requests ([`dcm_workload::CacheDynamics`]).
    pub cache: Option<CacheEdge>,
}

/// Runs a trace experiment on a mesh topology with the controller
/// produced by `make`. Identical harness to [`run_trace_experiment`] —
/// monitor, per-second recorder, controller loop, optional obs/audit —
/// over a [`MeshBuilder`] world driven by a [`MeshProfileFactory`].
pub fn run_mesh_trace_experiment<C, F>(config: &MeshExperimentConfig, make: F) -> TraceRunResult
where
    C: Controller + 'static,
    F: FnOnce(MetricsBus) -> C,
{
    let mut builder = MeshBuilder::new().seed(config.run.seed);
    for node in config.nodes.clone() {
        builder = builder.node(node);
    }
    builder.check_graph(&config.graph);
    let (world, engine) = builder.build();
    let mut factory = MeshProfileFactory::new(config.graph.clone(), config.demands.clone());
    if let Some(cache) = config.cache.clone() {
        factory = factory.with_cache(cache.from, cache.to, cache.dynamics);
    }
    run_trace_on_world(&config.run, world, engine, factory.into(), make)
}

/// Options for a steady-state throughput measurement under think-time
/// clients (the validation-phase workload of Fig. 2(b)/Fig. 4).
#[derive(Debug, Clone, PartialEq)]
pub struct SteadyStateOptions {
    /// Settling time excluded from measurement.
    pub warmup: SimDuration,
    /// Measurement window.
    pub measure: SimDuration,
    /// Mean think time between a user's requests (the RUBBoS client's 3 s).
    pub think_time_secs: f64,
    /// RNG seed.
    pub seed: u64,
    /// Run a [`ConservationAuditor`] across the run and panic on any
    /// violated conservation law.
    pub audit: bool,
}

impl Default for SteadyStateOptions {
    fn default() -> Self {
        SteadyStateOptions {
            warmup: SimDuration::from_secs(30),
            measure: SimDuration::from_secs(90),
            think_time_secs: 3.0,
            seed: 1,
            audit: global_audit(),
        }
    }
}

/// Result of one steady-state measurement.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SteadyStateReport {
    /// Concurrent users offered.
    pub users: u32,
    /// Completions per second over the measurement window.
    pub throughput: f64,
    /// Mean response time (seconds).
    pub mean_rt: f64,
    /// 95th-percentile response time (seconds).
    pub p95_rt: f64,
}

/// Measures steady-state throughput and response time of a fixed topology
/// under `users` think-time clients (no controllers; this is the paper's
/// validation methodology for Fig. 2(b) and Fig. 4).
pub fn steady_state_throughput(
    counts: (u32, u32, u32),
    soft: SoftConfig,
    users: u32,
    options: &SteadyStateOptions,
) -> SteadyStateReport {
    let (mut world, mut engine) = ThreeTierBuilder::new()
        .counts(counts.0, counts.1, counts.2)
        .soft(soft)
        .seed(dcm_sim::rng::derive_seed(options.seed, u64::from(users)))
        .build();
    let auditor = options.audit.then(|| {
        world.system.enable_tracing();
        ConservationAuditor::begin(&world.system, engine.now())
    });
    let warmup_end = SimTime::ZERO + options.warmup;
    let measure_end = warmup_end + options.measure;
    let population = UserPopulation::start_think_time(
        &mut world,
        &mut engine,
        ProfileFactory::rubbos(),
        users,
        options.think_time_secs,
        measure_end,
    );
    engine.run_until(&mut world, measure_end);
    if let Some(auditor) = auditor {
        let spans = world.system.take_spans();
        auditor
            .finish(&world.system, &spans, engine.now())
            .assert_clean();
    }
    population.with_completions(|log| {
        let mut report = LoadReport::from_completions(log, warmup_end, measure_end);
        SteadyStateReport {
            users,
            throughput: report.throughput(),
            mean_rt: report.mean_response_time(),
            p95_rt: report.response_time_quantile(0.95).unwrap_or(0.0),
        }
    })
}

#[derive(Debug, Default)]
struct RecorderState {
    tier_vm_counts: Vec<TimeSeries>,
    tier_cpu_util: Vec<TimeSeries>,
}

/// Stream index for the span-sampling coin, derived from the experiment
/// seed so the sampled set is a pure function of the config.
const OBS_SEED_STREAM: u64 = 0x6f62_735f_7370_616e; // "obs_span"

/// Live observability capture state, driven once per control period.
#[derive(Debug)]
struct ObsState {
    recorder: SpanRecorder,
    registry: Registry,
    series: SeriesTable,
    consumer: GroupConsumer,
    ticks: Vec<ControlTick>,
    /// Spans drained from the system en route to the recorder, kept whole
    /// for the conservation auditor when one is running.
    audit_spans: Vec<Span>,
    last_counters: SystemCounters,
    last_actions: usize,
    auditing: bool,
}

impl ObsState {
    /// One control-period capture: drain spans, fold this period's monitor
    /// samples into per-tier gauges, convert system-counter deltas into
    /// rates, mark the controller tick, snapshot a series row.
    fn capture<C: Controller>(
        &mut self,
        world: &mut World,
        controller: &Rc<RefCell<C>>,
        bus: &MetricsBus,
        now: SimTime,
        period: SimDuration,
    ) {
        let spans = world.system.take_spans();
        // Fetch each per-tier histogram once per period rather than paying a
        // name format + map lookup per span: span volume scales with
        // throughput, and this loop used to dominate the trace experiment's
        // per-event cost.
        for tier in 0..world.system.tier_count() {
            let h = self
                .registry
                .histogram_entry(&format!("tier{tier}.queue_s"), 0.0, 30.0, 300);
            for s in spans.iter().filter(|s| s.tier == tier) {
                h.record(s.queue_time().as_secs_f64());
            }
            let h = self
                .registry
                .histogram_entry(&format!("tier{tier}.service_s"), 0.0, 30.0, 300);
            for s in spans.iter().filter(|s| s.tier == tier) {
                h.record(s.service_time().as_secs_f64());
            }
        }
        self.recorder.record_all(&spans);
        if self.auditing {
            self.audit_spans.extend(spans);
        }

        let records = {
            let broker = bus.borrow();
            self.consumer
                .poll(&broker, 100_000)
                .expect("metrics topic exists")
        };
        {
            let mut broker = bus.borrow_mut();
            self.consumer
                .commit(&mut broker)
                .expect("metrics topic exists");
        }
        self.fold_samples(&records);
        for tier in 0..world.system.tier_count() {
            self.registry.gauge_set(
                &format!("tier{tier}.running"),
                world.system.running_count(tier) as f64,
            );
            self.registry.gauge_set(
                &format!("tier{tier}.booting"),
                world.system.booting_count(tier) as f64,
            );
        }

        let counters = world.system.counters();
        let secs = period.as_secs_f64().max(1e-9);
        let deltas = [
            (
                "sys.completed",
                counters.completed,
                self.last_counters.completed,
            ),
            (
                "sys.rejected",
                counters.rejected,
                self.last_counters.rejected,
            ),
            (
                "sys.timed_out",
                counters.timed_out,
                self.last_counters.timed_out,
            ),
            ("sys.failed", counters.failed, self.last_counters.failed),
            ("sys.retried", counters.retried, self.last_counters.retried),
        ];
        for (name, cur, prev) in deltas {
            let delta = cur.saturating_sub(prev);
            self.registry.counter_add(name, delta);
            self.registry
                .gauge_set(&format!("{name}_per_sec"), delta as f64 / secs);
        }
        self.last_counters = counters;

        let (name, total_actions) = {
            let c = controller.borrow();
            (c.name().to_string(), c.actions().len())
        };
        self.ticks.push(ControlTick {
            at: now,
            controller: name,
            actions: total_actions - self.last_actions,
        });
        self.last_actions = total_actions;

        self.series.snapshot(now.as_secs_f64(), &self.registry);
    }

    /// Per-tier gauges from one period's raw monitor samples: each server
    /// is first averaged over its own samples, then servers are averaged
    /// (throughput summed) across the tier — the same convention as
    /// [`crate::aggregate::aggregate_by_tier`], extended with pool
    /// occupancy and connection-queue depth.
    fn fold_samples(&mut self, records: &[Entry<ServerSample>]) {
        #[derive(Default)]
        struct Acc {
            n: f64,
            cpu: f64,
            xput: f64,
            threads: f64,
            thread_queue: f64,
            conn_queue: f64,
            occupancy: f64,
        }
        let mut tiers: BTreeMap<usize, BTreeMap<String, Acc>> = BTreeMap::new();
        for e in records {
            let s = &e.value;
            let acc = tiers
                .entry(s.tier)
                .or_default()
                .entry(s.server.clone())
                .or_default();
            acc.n += 1.0;
            acc.cpu += s.cpu_util;
            acc.xput += s.throughput;
            acc.threads += s.active_threads;
            acc.thread_queue += s.thread_queue as f64;
            acc.conn_queue += s.conn_queue as f64;
            acc.occupancy += if s.thread_pool_size > 0 {
                s.active_threads / f64::from(s.thread_pool_size)
            } else {
                0.0
            };
        }
        for (tier, servers) in tiers {
            let k = servers.len() as f64;
            let mut sums = Acc::default();
            for a in servers.values() {
                sums.cpu += a.cpu / a.n;
                sums.xput += a.xput / a.n;
                sums.threads += a.threads / a.n;
                sums.thread_queue += a.thread_queue / a.n;
                sums.conn_queue += a.conn_queue / a.n;
                sums.occupancy += a.occupancy / a.n;
            }
            self.registry
                .gauge_set(&format!("tier{tier}.utilization"), sums.cpu / k);
            self.registry
                .gauge_set(&format!("tier{tier}.goodput"), sums.xput);
            self.registry
                .gauge_set(&format!("tier{tier}.concurrency"), sums.threads / k);
            self.registry
                .gauge_set(&format!("tier{tier}.thread_queue"), sums.thread_queue / k);
            self.registry
                .gauge_set(&format!("tier{tier}.conn_queue"), sums.conn_queue / k);
            self.registry
                .gauge_set(&format!("tier{tier}.occupancy"), sums.occupancy / k);
        }
    }
}

/// Runs a trace experiment with the controller produced by `make` (which
/// receives the metrics bus the monitor publishes to).
pub fn run_trace_experiment<C, F>(config: &TraceExperimentConfig, make: F) -> TraceRunResult
where
    C: Controller + 'static,
    F: FnOnce(MetricsBus) -> C,
{
    let (world, engine) = ThreeTierBuilder::new()
        .counts(
            config.initial_counts.0,
            config.initial_counts.1,
            config.initial_counts.2,
        )
        .soft(config.initial_soft)
        .seed(config.seed)
        .build();
    run_trace_on_world(config, world, engine, ProfileFactory::rubbos().into(), make)
}

/// The shared experiment core: full monitoring/control/obs stack over a
/// pre-built world (chain or mesh) and workload factory. The config's
/// `initial_soft` / `initial_counts` are NOT consulted here — topology is
/// the caller's job; this function owns everything that happens after.
fn run_trace_on_world<C, F>(
    config: &TraceExperimentConfig,
    mut world: World,
    mut engine: SimEngine,
    factory: WorkloadFactory,
    make: F,
) -> TraceRunResult
where
    C: Controller + 'static,
    F: FnOnce(MetricsBus) -> C,
{
    world.system.boot_failure_prob = config.boot_failure_prob;
    world.system.inter_tier_retry = config.inter_tier_retry;
    if let Some(plan) = &config.fault_plan {
        dcm_ntier::faults::install_fault_plan(&mut world, &mut engine, plan);
    }
    let auditor = config.audit.then(|| {
        world.system.enable_tracing();
        ConservationAuditor::begin(&world.system, engine.now())
    });
    if config.obs.is_some() {
        world.system.enable_tracing();
        world.system.enable_event_log();
    }
    let tier_count = world.system.tier_count();

    // Monitoring pipeline.
    let bus = new_metrics_bus();
    install_monitor(
        &mut engine,
        Rc::clone(&bus),
        MonitorConfig::every_second_until(config.horizon),
    );

    // Per-second recorder for the Fig. 5(c)–(f) series.
    let recorder = Rc::new(RefCell::new(RecorderState {
        tier_vm_counts: vec![TimeSeries::new(); tier_count],
        tier_cpu_util: vec![TimeSeries::new(); tier_count],
    }));
    let rec_consumer = {
        let broker = bus.borrow();
        GroupConsumer::new("recorder", METRICS_TOPIC, &broker).expect("metrics topic exists")
    };
    schedule_recorder(
        &mut engine,
        Rc::clone(&recorder),
        Rc::clone(&bus),
        Rc::new(RefCell::new(rec_consumer)),
        config.horizon,
    );

    // Workload.
    let population = UserPopulation::start_trace_driven(
        &mut world,
        &mut engine,
        factory,
        &config.trace,
        config.think_time_secs,
        config.horizon,
    );
    if let Some(policy) = config.client_retry {
        population.set_client_retry(policy);
    }
    if let Some(secs) = config.request_deadline_secs {
        population.set_request_deadline(SimDuration::from_secs_f64(secs));
    }

    // Controller loop. The controller is scheduled before the obs tick so
    // that at every shared period boundary the engine (FIFO at equal
    // times) runs the controller first and the obs capture sees the
    // decisions of the tick it stamps.
    let controller = Rc::new(RefCell::new(make(Rc::clone(&bus))));
    schedule_controller(
        &mut engine,
        Rc::clone(&controller),
        config.control_period,
        config.horizon,
    );

    // Observability capture (spans, metrics, journal), one event per
    // control period.
    let journal = Rc::new(RefCell::new(DecisionJournal::new()));
    let obs_state = config.obs.map(|obs_config| {
        controller.borrow_mut().attach_journal(Rc::clone(&journal));
        let consumer = {
            let broker = bus.borrow();
            GroupConsumer::new("obs", METRICS_TOPIC, &broker).expect("metrics topic exists")
        };
        let state = Rc::new(RefCell::new(ObsState {
            recorder: SpanRecorder::new(SamplerConfig {
                rate: obs_config.sample_rate,
                seed: dcm_sim::rng::derive_seed(config.seed, OBS_SEED_STREAM),
                capacity: obs_config.span_capacity,
            }),
            registry: Registry::new(),
            series: SeriesTable::new(),
            consumer,
            ticks: Vec::new(),
            audit_spans: Vec::new(),
            last_counters: world.system.counters(),
            last_actions: 0,
            auditing: config.audit,
        }));
        schedule_obs(
            &mut engine,
            Rc::clone(&state),
            Rc::clone(&controller),
            Rc::clone(&bus),
            config.control_period,
            config.horizon,
        );
        state
    });

    // Run to the horizon, then drain in-flight work.
    engine.run_until(&mut world, config.horizon);
    let vm_seconds: Vec<f64> = (0..tier_count)
        .map(|t| world.system.vm_seconds(t, config.horizon))
        .collect();
    let vm_cost: Vec<f64> = (0..tier_count)
        .map(|t| world.system.vm_cost(t, config.horizon))
        .collect();
    engine.run(&mut world);

    let mut obs_final = obs_state.map(|state| {
        Rc::try_unwrap(state)
            .expect("obs events finished")
            .into_inner()
    });
    // Tail spans finished after the last periodic drain (or, with obs off,
    // every span of the run).
    let tail = world.system.take_spans();
    if let Some(state) = obs_final.as_mut() {
        state.recorder.record_all(&tail);
    }
    let audit_report = auditor.map(|auditor| {
        let mut spans = obs_final
            .as_mut()
            .map_or_else(Vec::new, |state| std::mem::take(&mut state.audit_spans));
        spans.extend(tail);
        let report = auditor.finish(&world.system, &spans, engine.now());
        if !config.audit_tolerant {
            report.assert_clean();
        }
        report
    });
    let obs = obs_final.map(|state| {
        let server_names: BTreeMap<ServerId, (String, usize)> = world
            .system
            .servers()
            .map(|s| (s.id(), (s.name().to_string(), s.tier())))
            .collect();
        let events = world.system.take_server_events();
        let (spans, stats) = state.recorder.finish();
        ObsArtifacts {
            trace: TraceData {
                spans,
                events,
                ticks: state.ticks,
                server_names,
                stats,
            },
            journal: journal.borrow().clone(),
            series: state.series,
        }
    });

    let recorder = Rc::try_unwrap(recorder)
        .expect("recorder events finished")
        .into_inner();
    let controller = controller.borrow();
    TraceRunResult {
        controller: controller.name(),
        completions: population.completions(),
        offered: population.offered_series(),
        tier_vm_counts: recorder.tier_vm_counts,
        tier_cpu_util: recorder.tier_cpu_util,
        actions: controller.actions(),
        planner_evals: controller.planner_evals(),
        vm_seconds,
        vm_cost,
        counters: world.system.counters(),
        horizon: config.horizon,
        obs,
        audit: audit_report,
    }
}

fn schedule_obs<C: Controller + 'static>(
    engine: &mut SimEngine,
    state: Rc<RefCell<ObsState>>,
    controller: Rc<RefCell<C>>,
    bus: MetricsBus,
    period: SimDuration,
    stop_at: SimTime,
) {
    let next = engine.now() + period;
    if next > stop_at {
        return;
    }
    engine.schedule_at(next, move |world: &mut World, engine: &mut SimEngine| {
        let now = engine.now();
        state
            .borrow_mut()
            .capture(world, &controller, &bus, now, period);
        schedule_obs(engine, state, controller, bus, period, stop_at);
    });
}

fn schedule_controller<C: Controller + 'static>(
    engine: &mut SimEngine,
    controller: Rc<RefCell<C>>,
    period: SimDuration,
    stop_at: SimTime,
) {
    let next = engine.now() + period;
    if next > stop_at {
        return;
    }
    engine.schedule_at(next, move |world: &mut World, engine: &mut SimEngine| {
        controller.borrow_mut().on_tick(world, engine);
        schedule_controller(engine, controller, period, stop_at);
    });
}

fn schedule_recorder(
    engine: &mut SimEngine,
    recorder: Rc<RefCell<RecorderState>>,
    bus: MetricsBus,
    consumer: Rc<RefCell<GroupConsumer>>,
    stop_at: SimTime,
) {
    let next = engine.now() + SimDuration::from_secs(1);
    if next > stop_at {
        return;
    }
    engine.schedule_at(next, move |world: &mut World, engine: &mut SimEngine| {
        let now = engine.now();
        {
            let mut rec = recorder.borrow_mut();
            for tier in 0..world.system.tier_count() {
                rec.tier_vm_counts[tier].push(now, world.system.running_count(tier) as f64);
            }
            let records = {
                let broker = bus.borrow();
                consumer
                    .borrow_mut()
                    .poll(&broker, 10_000)
                    .expect("metrics topic exists")
            };
            let windows = crate::aggregate::aggregate_by_tier(&records);
            for tier in 0..world.system.tier_count() {
                let util = windows.get(&tier).map_or(0.0, |w| w.mean_cpu_util);
                rec.tier_cpu_util[tier].push(now, util);
            }
        }
        schedule_recorder(engine, recorder, bus, consumer, stop_at);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{DcmConfig, DcmModels, Ec2AutoScale};
    use crate::policy::ScalingConfig;
    use dcm_model::concurrency::ConcurrencyModel;
    use dcm_ntier::law::reference;
    use dcm_workload::traces;

    fn quick_config(trace: WorkloadTrace) -> TraceExperimentConfig {
        TraceExperimentConfig {
            trace,
            horizon: SimTime::from_secs(120),
            think_time_secs: 1.0,
            initial_soft: SoftConfig::new(1000, 200, 40),
            initial_counts: (1, 1, 1),
            control_period: SimDuration::from_secs(15),
            seed: 5,
            boot_failure_prob: 0.0,
            fault_plan: None,
            client_retry: None,
            request_deadline_secs: None,
            inter_tier_retry: None,
            audit: true,
            audit_tolerant: false,
            obs: None,
        }
    }

    #[test]
    fn ec2_run_scales_out_under_step_load() {
        let config = quick_config(traces::step(20, 320, 30.0));
        let result = run_trace_experiment(&config, |bus| {
            Ec2AutoScale::new(bus, ScalingConfig::default())
        });
        assert_eq!(result.controller, "EC2-AutoScale");
        assert!(
            result
                .actions
                .iter()
                .any(|a| matches!(a.action, crate::agents::Action::ScaleOut { .. })),
            "step load should trigger a scale-out: {:?}",
            result.actions
        );
        // Series recorded every second.
        assert_eq!(result.tier_vm_counts.len(), 3);
        assert!(result.tier_vm_counts[1].len() >= 118);
        assert!(result.counters.in_flight() == 0);
        assert!(result.overall().completed() > 500);
        // VM-seconds: tier 1 grew beyond one server at some point.
        assert!(result.vm_seconds[1] > 120.0 - 1e-9);
    }

    #[test]
    fn dcm_run_applies_soft_allocations() {
        let config = quick_config(traces::step(20, 320, 30.0));
        let app = reference::tomcat();
        let db = reference::mysql();
        let models = DcmModels {
            app: ConcurrencyModel::new(app.s0(), app.alpha(), app.beta(), 1.0, 1),
            db: ConcurrencyModel::new(db.s0(), db.alpha(), db.beta(), 1.0, 1),
        };
        let result = run_trace_experiment(&config, |bus| {
            crate::controller::Dcm::new(bus, DcmConfig::default(), models)
        });
        assert_eq!(result.controller, "DCM");
        assert!(
            result
                .actions
                .iter()
                .any(|a| matches!(a.action, crate::agents::Action::SetThreadPools { .. })),
            "DCM must actuate thread pools: {:?}",
            result.actions
        );
        assert!(result.counters.in_flight() == 0);
    }

    #[test]
    fn obs_capture_journals_every_action_with_reasons() {
        let mut config = quick_config(traces::step(20, 320, 30.0));
        config.obs = Some(ObsConfig::default());
        let app = reference::tomcat();
        let db = reference::mysql();
        let models = DcmModels {
            app: ConcurrencyModel::new(app.s0(), app.alpha(), app.beta(), 1.0, 1),
            db: ConcurrencyModel::new(db.s0(), db.alpha(), db.beta(), 1.0, 1),
        };
        let result = run_trace_experiment(&config, |bus| {
            crate::controller::Dcm::new(bus, DcmConfig::default(), models)
        });
        let obs = result.obs.as_ref().expect("obs requested");
        // One journal entry, control tick, and series row per control
        // period (120 s horizon / 15 s period).
        assert_eq!(obs.journal.len(), 8);
        assert_eq!(obs.trace.ticks.len(), 8);
        assert_eq!(obs.series.len(), 8);
        // Every actuation in the timeline is reconstructable from the
        // journal: same tick, same tier, marked applied.
        assert!(!result.actions.is_empty());
        for action in &result.actions {
            let entry = obs
                .journal
                .entries()
                .iter()
                .find(|e| e.at == action.at)
                .unwrap_or_else(|| panic!("no journal entry at {:?}", action.at));
            let (kinds, tier): (&[&str], usize) = match &action.action {
                crate::agents::Action::ScaleOut { tier } => (&["scale-out", "replace-lost"], *tier),
                crate::agents::Action::ScaleIn { tier } => (&["scale-in"], *tier),
                crate::agents::Action::SetThreadPools { tier, .. } => (&["set-threads"], *tier),
                crate::agents::Action::SetConnPools { tier, .. } => (&["set-conns"], *tier),
            };
            assert!(
                entry.decisions.iter().any(|d| d.applied
                    && d.tier == tier
                    && kinds.contains(&d.action.as_str())
                    && !d.reason.is_empty()),
                "action {action:?} has no applied journal decision: {:?}",
                entry.decisions
            );
        }
        // DCM journals its model state with provenance every tick.
        let entry = &obs.journal.entries()[0];
        assert_eq!(entry.fits.len(), 2);
        assert!(entry.fits.iter().all(|f| f.source == "offline"));
        // Recorder accounting is conserved and spans were captured.
        let stats = obs.trace.stats;
        assert_eq!(stats.seen, stats.recorded + stats.unsampled);
        assert!(stats.seen > 0, "spans must flow into the recorder");
        assert!(!obs.trace.spans.is_empty());
        assert!(!obs.trace.server_names.is_empty());
        // Per-tier gauges landed in the series.
        assert!(obs.series.column("tier1.utilization").is_some());
        assert!(obs.series.column("tier1.occupancy").is_some());
        assert!(obs.series.column("sys.completed").is_some());
        // The audit ran alongside obs (quick_config sets audit: true), so
        // the periodic span drain fed both consumers without conflict.
    }

    #[test]
    fn audit_report_is_surfaced_in_the_result() {
        let mut config = quick_config(traces::step(20, 120, 30.0));
        config.audit_tolerant = true;
        let run = run_trace_experiment(&config, |bus| {
            Ec2AutoScale::new(bus, ScalingConfig::default())
        });
        let report = run.audit.as_ref().expect("audit requested");
        assert!(report.is_clean(), "clean run: {:?}", report.violations);
        assert!(report.spans_audited > 0, "audit must have seen spans");
    }

    #[test]
    fn obs_disabled_run_carries_no_artifacts() {
        let config = quick_config(traces::step(20, 320, 30.0));
        let result = run_trace_experiment(&config, |bus| {
            Ec2AutoScale::new(bus, ScalingConfig::default())
        });
        assert!(result.obs.is_none());
    }

    #[test]
    fn mesh_run_with_cache_and_mixed_vms_conserves_requests() {
        use dcm_ntier::server::VmType;
        use dcm_ntier::system::VmPolicy;
        use dcm_sim::dist::Dist;
        use dcm_workload::cache::CacheDynamics;

        // Fan-out mesh: web -> app -> {svc, db×2}, a warming cache on the
        // app -> db edge, and a mixed small/large DB fleet. The full
        // monitoring/control/audit stack must hold on this topology too.
        let graph = TopologyGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (1, 3, 2)]);
        let config = MeshExperimentConfig {
            run: quick_config(traces::step(20, 200, 30.0)),
            nodes: vec![
                MeshNode::new("web", reference::apache(), 1000),
                MeshNode::new("app", reference::tomcat(), 100).conns(80),
                MeshNode::new("svc", reference::tomcat(), 50),
                MeshNode::new("db", reference::mysql(), 800)
                    .count(2)
                    .vm_policy(VmPolicy::cycle(vec![VmType::SMALL, VmType::LARGE])),
            ],
            graph: graph.clone(),
            demands: vec![
                NodeDemand::split(Dist::constant(0.002)),
                NodeDemand::split(Dist::constant(0.008)),
                NodeDemand::leaf(Dist::exponential_mean(0.01)).iid_visits(),
                NodeDemand::leaf(Dist::exponential_mean(0.02)).iid_visits(),
            ],
            cache: Some(CacheEdge {
                from: 1,
                to: 3,
                dynamics: CacheDynamics::new(0.5, 200.0),
            }),
        };
        let result = run_mesh_trace_experiment(&config, |bus| {
            Ec2AutoScale::new(bus, ScalingConfig::default())
        });
        assert_eq!(result.counters.in_flight(), 0, "mesh conservation");
        assert!(result.overall().completed() > 200);
        assert_eq!(result.vm_seconds.len(), 4);
        assert_eq!(result.vm_cost.len(), 4);
        // Two DB servers for the whole horizon, one small + one large:
        // the dollar metric must price the pair above two smalls.
        let horizon_h = result.horizon.as_secs_f64() / 3600.0;
        let two_smalls = 2.0 * VmType::SMALL.price_per_hour * horizon_h;
        assert!(
            result.vm_cost[3] > two_smalls * 1.2,
            "mixed fleet must cost more than homogeneous small: {} vs {}",
            result.vm_cost[3],
            two_smalls
        );
        assert!(result.total_vm_cost() > result.vm_cost[3]);
    }

    #[test]
    fn faulted_run_conserves_requests() {
        let mut config = quick_config(traces::step(20, 200, 30.0));
        config.fault_plan = Some(
            FaultPlan::none()
                .with_crash(40.0, 1, 0)
                .with_straggler(60.0, 2, 0, 4.0, 20.0)
                .with_transient_failures(0.005),
        );
        config.client_retry = Some(RetryPolicy::default());
        config.request_deadline_secs = Some(10.0);
        config.inter_tier_retry = Some(InterTierRetry::default());
        let result = run_trace_experiment(&config, |bus| {
            Ec2AutoScale::new(bus, ScalingConfig::default())
        });
        assert_eq!(result.counters.in_flight(), 0, "conservation under faults");
        assert!(
            result.counters.failed > 0,
            "the crash must fail in-flight work: {:?}",
            result.counters
        );
        // The app tier lost its only server at t=40; the controller must
        // have booted a replacement rather than holding a dead tier.
        assert!(
            result
                .actions
                .iter()
                .any(|a| matches!(a.action, crate::agents::Action::ScaleOut { tier: 1, .. })),
            "crashed tier must be re-provisioned: {:?}",
            result.actions
        );
    }
}
