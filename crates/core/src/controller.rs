//! The Optimization Controller (paper §IV) and the EC2-AutoScale baseline
//! (paper §V-B).
//!
//! Both controllers wake every control period (15 s), consume the monitor
//! stream from the bus, aggregate it per tier, and make VM-level decisions
//! with the same quick-start/slow-stop threshold policy. **DCM additionally
//! runs the APP-agent**: after every (potential) topology change it pushes
//! the concurrency-aware model's optimal soft-resource allocation into the
//! live pools — Tomcat thread pools sized to the app model's `N*`, MySQL
//! concurrency capped via the Tomcat connection pools at the db model's
//! `N* × K_db`, split across app servers.

use std::cell::RefCell;
use std::rc::Rc;

use dcm_bus::GroupConsumer;
use dcm_model::concurrency::ConcurrencyModel;
use dcm_ntier::world::{SimEngine, World};
use dcm_obs::journal::{Decision, DecisionJournal, FitSnapshot, JournalEntry, TierObservation};

use crate::agents::{ActionRecord, AppAgent, VmAgent};
use crate::aggregate::{aggregate_by_tier, TierWindow};
use crate::monitor::{MetricsBus, METRICS_TOPIC};
use crate::policy::{ScaleDecision, ScalingConfig, ThresholdPolicy, TriggerSignal};
use crate::predictor::{HoltConfig, HoltTrend};

/// A scaling controller invoked once per control period.
pub trait Controller {
    /// One control period: consume metrics, decide, actuate.
    fn on_tick(&mut self, world: &mut World, engine: &mut SimEngine);

    /// The actuation timeline so far (VM and soft-resource actions merged,
    /// in time order).
    fn actions(&self) -> Vec<ActionRecord>;

    /// Short display name for reports.
    fn name(&self) -> &'static str;

    /// Attaches a decision journal: the controller appends one
    /// [`JournalEntry`] per tick — inputs, model state, decisions, reasons.
    /// The default implementation journals nothing.
    fn attach_journal(&mut self, _journal: Rc<RefCell<DecisionJournal>>) {}

    /// Total candidate-plan evaluations the controller has performed — the
    /// deterministic proxy for decision latency the league ranks on (wall
    /// clocks are banned in Strict crates). Model-free controllers cost 0.
    fn planner_evals(&self) -> u64 {
        0
    }
}

/// Shared metric-consumption plumbing.
pub(crate) struct MetricsFeed {
    bus: MetricsBus,
    consumer: GroupConsumer,
}

impl MetricsFeed {
    pub(crate) fn new(bus: MetricsBus, group: &str) -> Self {
        let consumer = {
            let broker = bus.borrow();
            GroupConsumer::new(group, METRICS_TOPIC, &broker)
                .expect("metrics topic exists on the bus")
        };
        MetricsFeed { bus, consumer }
    }

    pub(crate) fn poll_windows(&mut self) -> std::collections::BTreeMap<usize, TierWindow> {
        let records = {
            let broker = self.bus.borrow();
            self.consumer
                .poll(&broker, 100_000)
                .expect("metrics topic exists")
        };
        {
            let mut broker = self.bus.borrow_mut();
            self.consumer
                .commit(&mut broker)
                .expect("metrics topic exists");
        }
        aggregate_by_tier(&records)
    }
}

/// Consecutive silent control periods before a tier that *has* capacity is
/// treated as wedged (a tier with no capacity at all is flagged on the
/// first silent period — there is nothing to wait for).
pub(crate) const SILENT_TICKS_FOR_PRESSURE: u32 = 2;

/// Per-tier outcome of the shared VM-scaling pass: the journal-ready
/// observation, the policy's decision, whether the agent executed it, and
/// the reason with the numbers that drove it.
pub(crate) struct TierTickReport {
    pub(crate) observation: TierObservation,
    pub(crate) decision: ScaleDecision,
    pub(crate) applied: bool,
    pub(crate) reason: String,
}

impl TierTickReport {
    pub(crate) fn to_decision(&self) -> Decision {
        let action = match self.decision {
            ScaleDecision::Out => "scale-out",
            ScaleDecision::In => "scale-in",
            ScaleDecision::Hold => "hold",
        };
        Decision {
            action: action.to_string(),
            tier: self.observation.tier,
            value: None,
            applied: self.applied,
            reason: self.reason.clone(),
        }
    }
}

/// Shared VM-scaling pass. Returns one report per scalable tier; the
/// applied flag is false for holds and for requested actions the agent
/// could not execute (e.g. scale-in of the last server).
///
/// A tier absent from `windows` is *silent*. When the whole map is empty
/// the monitoring pipeline itself produced nothing, so every tier holds
/// (no evidence of anything). But when other tiers are reporting and a
/// scalable tier is not, that silence is itself a signal: its servers
/// crashed or wedged so hard they stopped sampling. Such a tier used to be
/// skipped — held forever — and is now treated as maximal pressure,
/// mirroring the wedged-tier `mean_dwell: None` rule below.
pub(crate) fn vm_decisions(
    world: &mut World,
    engine: &mut SimEngine,
    policy: &mut ThresholdPolicy,
    vm: &mut VmAgent,
    windows: &std::collections::BTreeMap<usize, TierWindow>,
    silence: &mut std::collections::BTreeMap<usize, u32>,
) -> Vec<TierTickReport> {
    let tiers: Vec<usize> = policy.config().scalable_tiers.clone();
    let trigger = policy.config().trigger;
    let (up, down, down_consecutive) = {
        let c = policy.config();
        (c.up_threshold, c.down_threshold, c.down_consecutive)
    };
    let mut reports = Vec::new();
    for tier in tiers {
        let running = world.system.running_count(tier);
        let booting = world.system.booting_count(tier);
        let mut observation = TierObservation {
            tier,
            pressure: 0.0,
            signal: String::new(),
            utilization: None,
            throughput: None,
            concurrency: None,
            mean_dwell: None,
            queue: None,
            running,
            booting,
            silent_streak: 0,
        };
        let pressure = match windows.get(&tier) {
            Some(window) => {
                silence.insert(tier, 0);
                observation.utilization = Some(window.mean_cpu_util);
                observation.throughput = Some(window.total_throughput);
                observation.concurrency = Some(window.mean_concurrency);
                observation.mean_dwell = window.mean_dwell;
                observation.queue = Some(window.mean_thread_queue);
                match trigger {
                    TriggerSignal::CpuUtil => {
                        observation.signal = "cpu-util".to_string();
                        window.mean_cpu_util
                    }
                    TriggerSignal::DwellPressure { sla_secs } => {
                        observation.signal = format!("dwell-pressure(sla={sla_secs}s)");
                        match window.mean_dwell {
                            Some(dwell) => dwell / sla_secs.max(1e-9),
                            // No completions: a wedged-but-loaded tier is
                            // maximal pressure; a genuinely idle one is zero.
                            None if window.mean_concurrency > 1.0 => f64::INFINITY,
                            None => 0.0,
                        }
                    }
                }
            }
            None => {
                let streak = silence.entry(tier).or_insert(0);
                *streak += 1;
                observation.signal = "silent".to_string();
                observation.silent_streak = *streak;
                if windows.is_empty() {
                    // No metrics from anywhere: the monitor is not
                    // running. Hold rather than guess.
                    reports.push(TierTickReport {
                        observation,
                        decision: ScaleDecision::Hold,
                        applied: false,
                        reason: "no metrics from any tier: monitor silent, holding".to_string(),
                    });
                    continue;
                }
                let dead = running == 0 && booting == 0;
                if dead || *streak >= SILENT_TICKS_FOR_PRESSURE {
                    f64::INFINITY
                } else {
                    let reason = format!(
                        "tier silent {streak}/{SILENT_TICKS_FOR_PRESSURE} period(s) \
                         but has capacity; waiting before treating as wedged"
                    );
                    reports.push(TierTickReport {
                        observation,
                        decision: ScaleDecision::Hold,
                        applied: false,
                        reason,
                    });
                    continue;
                }
            }
        };
        observation.pressure = pressure;
        let decision = policy.decide(tier, pressure, running, booting);
        let streak = policy.below_count(tier);
        let (applied, reason) = match decision {
            ScaleDecision::Out => {
                let why = if pressure.is_finite() {
                    format!("pressure {pressure:.3} > up_threshold {up:.2}")
                } else {
                    "tier silent/dead under load: treated as maximal pressure".to_string()
                };
                let ok = vm.scale_out(world, engine, tier).is_some();
                let reason = if ok {
                    why
                } else {
                    format!("{why}, but provisioning failed")
                };
                (ok, reason)
            }
            ScaleDecision::In => {
                let why = format!(
                    "pressure {pressure:.3} < down_threshold {down:.2} \
                     for {down_consecutive} consecutive periods"
                );
                let ok = vm.scale_in(world, engine, tier).is_some();
                let reason = if ok {
                    why
                } else {
                    format!("{why}, but scale-in refused")
                };
                (ok, reason)
            }
            ScaleDecision::Hold => {
                let why = if pressure > up {
                    if booting > 0 {
                        format!("pressure {pressure:.3} above up_threshold {up:.2} but a boot is already pending")
                    } else {
                        format!("pressure {pressure:.3} above up_threshold {up:.2} but tier is at max_servers")
                    }
                } else if pressure < down {
                    format!(
                        "pressure {pressure:.3} < down_threshold {down:.2}, \
                         cold streak {streak}/{down_consecutive} (slow stop)"
                    )
                } else {
                    format!("pressure {pressure:.3} within [{down:.2}, {up:.2}] band")
                };
                (false, why)
            }
        };
        reports.push(TierTickReport {
            observation,
            decision,
            applied,
            reason,
        });
    }
    reports
}

/// The hardware-only baseline: Amazon EC2-AutoScale–style threshold scaling
/// with **no** soft-resource adaptation — new servers join with whatever
/// pool sizes the tier was configured with.
pub struct Ec2AutoScale {
    feed: MetricsFeed,
    policy: ThresholdPolicy,
    vm: VmAgent,
    silence: std::collections::BTreeMap<usize, u32>,
    journal: Option<Rc<RefCell<DecisionJournal>>>,
}

impl std::fmt::Debug for Ec2AutoScale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ec2AutoScale")
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl Ec2AutoScale {
    /// Creates the baseline controller reading from `bus`.
    pub fn new(bus: MetricsBus, config: ScalingConfig) -> Self {
        Ec2AutoScale {
            feed: MetricsFeed::new(bus, "ec2-autoscale"),
            policy: ThresholdPolicy::new(config),
            vm: VmAgent::new(),
            silence: std::collections::BTreeMap::new(),
            journal: None,
        }
    }
}

impl Controller for Ec2AutoScale {
    fn on_tick(&mut self, world: &mut World, engine: &mut SimEngine) {
        let windows = self.feed.poll_windows();
        let reports = vm_decisions(
            world,
            engine,
            &mut self.policy,
            &mut self.vm,
            &windows,
            &mut self.silence,
        );
        if let Some(journal) = &self.journal {
            journal.borrow_mut().push(JournalEntry {
                at: engine.now(),
                controller: "EC2-AutoScale".to_string(),
                observations: reports.iter().map(|r| r.observation.clone()).collect(),
                fits: Vec::new(),
                decisions: reports.iter().map(TierTickReport::to_decision).collect(),
                plan: None,
            });
        }
    }

    fn actions(&self) -> Vec<ActionRecord> {
        self.vm.log().to_vec()
    }

    fn name(&self) -> &'static str {
        "EC2-AutoScale"
    }

    fn attach_journal(&mut self, journal: Rc<RefCell<DecisionJournal>>) {
        self.journal = Some(journal);
    }
}

/// The fitted models DCM drives its soft-resource decisions with (trained
/// offline as in the paper's §V-A, or refined online).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcmModels {
    /// Application-tier model (per-server `N*` → thread pool size).
    pub app: ConcurrencyModel,
    /// Database-tier model (per-server `N*` → total connection budget).
    pub db: ConcurrencyModel,
}

/// DCM configuration on top of the shared scaling policy.
#[derive(Debug, Clone, PartialEq)]
pub struct DcmConfig {
    /// VM-level policy (same defaults as the baseline).
    pub scaling: ScalingConfig,
    /// Index of the application tier (thread-pool actuated).
    pub app_tier: usize,
    /// Index of the database tier (connection-pool actuated via the app
    /// tier).
    pub db_tier: usize,
    /// Multiplier on `N*` for the realistic pool size — the paper notes
    /// the configured `maxThreads` should exceed the theoretical optimum
    /// because not every pooled thread is active (its Fig. 5 run uses 40
    /// connections for `N* = 36`).
    pub headroom: f64,
    /// Actuate app-tier thread pools (ablation switch).
    pub adapt_threads: bool,
    /// Actuate DB connection pools (ablation switch).
    pub adapt_conns: bool,
    /// Optional predictive VM scaling: scale out on the utilization
    /// *forecast* one boot-delay ahead instead of the current reading (the
    /// related-work extension; `None` = reactive, as in the paper).
    pub predictive: Option<HoltConfig>,
}

impl Default for DcmConfig {
    fn default() -> Self {
        DcmConfig {
            scaling: ScalingConfig::default(),
            app_tier: 1,
            db_tier: 2,
            headroom: 1.1,
            adapt_threads: true,
            adapt_conns: true,
            predictive: None,
        }
    }
}

/// Cap on each online-refit point buffer. At one saturated window per 15 s
/// control period this is a bit over an hour of history — plenty for a
/// refit, while keeping memory flat on multi-hour runs and letting the fit
/// track drift instead of being anchored by ancient samples.
const MAX_FIT_POINTS: usize = 256;

/// Online-refit state: accumulate `(concurrency, throughput)` points from
/// saturated windows and refit the tier model periodically. The buffers
/// are sliding windows (oldest point evicted past [`MAX_FIT_POINTS`]) and
/// are cleared wholesale whenever the topology or soft allocation changes,
/// because points measured under a different configuration lie on a
/// different throughput curve.
#[derive(Debug, Clone)]
struct OnlineFit {
    app_points: std::collections::VecDeque<(f64, f64)>,
    db_points: std::collections::VecDeque<(f64, f64)>,
    refit_every_ticks: u32,
    min_points: usize,
    ticks: u32,
}

impl OnlineFit {
    fn push_capped(points: &mut std::collections::VecDeque<(f64, f64)>, point: (f64, f64)) {
        points.push_back(point);
        if points.len() > MAX_FIT_POINTS {
            points.pop_front();
        }
    }

    fn clear(&mut self) {
        self.app_points.clear();
        self.db_points.clear();
    }
}

/// Dynamic Concurrency Management: threshold VM scaling plus model-driven
/// runtime adaptation of thread and connection pools.
///
/// # Examples
///
/// ```
/// use dcm_core::controller::{Controller, Dcm, DcmConfig, DcmModels};
/// use dcm_core::monitor::new_metrics_bus;
/// use dcm_model::concurrency::ConcurrencyModel;
/// use dcm_ntier::topology::ThreeTierBuilder;
///
/// let (mut world, mut engine) = ThreeTierBuilder::new().build();
/// let bus = new_metrics_bus();
/// let models = DcmModels {
///     app: ConcurrencyModel::new(0.0284, 0.016, 7.0e-5, 1.0, 1),
///     db: ConcurrencyModel::new(0.0296, 0.0045, 1.93e-5, 1.0, 1),
/// };
/// let mut dcm = Dcm::new(bus, DcmConfig::default(), models);
/// dcm.on_tick(&mut world, &mut engine); // applies the optimal pools
/// assert!(!dcm.actions().is_empty());
/// ```
pub struct Dcm {
    feed: MetricsFeed,
    policy: ThresholdPolicy,
    vm: VmAgent,
    app: AppAgent,
    models: DcmModels,
    config: DcmConfig,
    online: Option<OnlineFit>,
    trends: std::collections::BTreeMap<usize, HoltTrend>,
    silence: std::collections::BTreeMap<usize, u32>,
    /// Capacity DCM believes each scalable tier should have, updated by
    /// its own scaling decisions. When actual capacity falls below this
    /// (a VM crashed), the gap is re-provisioned on the next tick without
    /// waiting for thresholds to re-trip.
    desired: std::collections::BTreeMap<usize, usize>,
    /// Per-tier server count at the previous tick; a change resets that
    /// tier's Holt smoother (per-server utilization shifts discontinuously
    /// across scale events, so the old trend is meaningless).
    last_counts: std::collections::BTreeMap<usize, usize>,
    /// `(k_app, k_db, threads, conns)` of the last applied soft
    /// allocation; a change invalidates the online-refit buffers.
    last_shape: Option<(usize, usize, u32, u32)>,
    /// Provenance of the current app/db models for the journal:
    /// `("offline", None)` until an online refit is accepted, then
    /// `("online-refit", Some(r²))`.
    app_fit: (&'static str, Option<f64>),
    db_fit: (&'static str, Option<f64>),
    journal: Option<Rc<RefCell<DecisionJournal>>>,
}

impl std::fmt::Debug for Dcm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dcm")
            .field("models", &self.models)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Dcm {
    /// Creates the DCM controller with offline-trained models.
    pub fn new(bus: MetricsBus, config: DcmConfig, models: DcmModels) -> Self {
        Dcm {
            feed: MetricsFeed::new(bus, "dcm"),
            policy: ThresholdPolicy::new(config.scaling.clone()),
            vm: VmAgent::new(),
            app: AppAgent::new(),
            models,
            config,
            online: None,
            trends: std::collections::BTreeMap::new(),
            silence: std::collections::BTreeMap::new(),
            desired: std::collections::BTreeMap::new(),
            last_counts: std::collections::BTreeMap::new(),
            last_shape: None,
            app_fit: ("offline", None),
            db_fit: ("offline", None),
            journal: None,
        }
    }

    /// Enables online model refinement: windows where a modeled tier looks
    /// saturated contribute `(concurrency, throughput)` samples; every
    /// `refit_every_ticks` control periods with at least `min_points`
    /// samples, the tier model is refitted.
    pub fn with_online_refit(mut self, min_points: usize, refit_every_ticks: u32) -> Self {
        self.online = Some(OnlineFit {
            app_points: std::collections::VecDeque::new(),
            db_points: std::collections::VecDeque::new(),
            refit_every_ticks: refit_every_ticks.max(1),
            min_points: min_points.max(8),
            ticks: 0,
        });
        self
    }

    /// The models currently in use.
    pub fn models(&self) -> DcmModels {
        self.models
    }

    /// The soft allocation DCM wants for the current topology:
    /// `(app threads per server, app→db conns per server)`. Booting
    /// servers count toward the split so they join correctly sized.
    pub fn desired_soft_allocation(&self, world: &World) -> (u32, u32) {
        let k_app = (world.system.running_count(self.config.app_tier)
            + world.system.booting_count(self.config.app_tier))
        .max(1) as u32;
        let k_db = (world.system.running_count(self.config.db_tier)
            + world.system.booting_count(self.config.db_tier))
        .max(1) as u32;
        let alloc = dcm_model::allocation::optimal_soft_allocation(
            &self.models.app,
            &self.models.db,
            k_app,
            k_db,
            self.config.headroom,
        );
        (alloc.app_threads, alloc.db_conns_per_app)
    }

    fn collect_online(&mut self, windows: &std::collections::BTreeMap<usize, TierWindow>) {
        let (app_tier, db_tier) = (self.config.app_tier, self.config.db_tier);
        let Some(online) = self.online.as_mut() else {
            return;
        };
        online.ticks += 1;
        for (&tier, w) in windows {
            // Only saturated windows lie on the X(N) curve the model fits.
            if w.mean_cpu_util < 0.7 || w.mean_concurrency < 1.0 {
                continue;
            }
            if tier == app_tier {
                OnlineFit::push_capped(
                    &mut online.app_points,
                    (w.mean_concurrency, w.total_throughput),
                );
            } else if tier == db_tier {
                OnlineFit::push_capped(
                    &mut online.db_points,
                    (w.mean_concurrency, w.total_throughput),
                );
            }
        }
        if online.ticks % online.refit_every_ticks == 0 {
            use dcm_model::concurrency::{fit_throughput_curve, FitOptions};
            if online.app_points.len() >= online.min_points {
                if let Ok(report) = fit_throughput_curve(
                    online.app_points.make_contiguous(),
                    1,
                    FitOptions::default(),
                ) {
                    if report.r_squared > 0.8 {
                        self.models.app = report.model;
                        self.app_fit = ("online-refit", Some(report.r_squared));
                    }
                }
            }
            if online.db_points.len() >= online.min_points {
                if let Ok(report) = fit_throughput_curve(
                    online.db_points.make_contiguous(),
                    1,
                    FitOptions::default(),
                ) {
                    if report.r_squared > 0.8 {
                        self.models.db = report.model;
                        self.db_fit = ("online-refit", Some(report.r_squared));
                    }
                }
            }
        }
    }

    /// Buffered online-refit point counts `(app, db)`; `None` when online
    /// refinement is disabled. Exposed for tests and diagnostics.
    pub fn online_point_counts(&self) -> Option<(usize, usize)> {
        self.online
            .as_ref()
            .map(|o| (o.app_points.len(), o.db_points.len()))
    }

    /// Observation count of a tier's Holt smoother; `None` when predictive
    /// scaling is off or the tier has never reported. Exposed for tests
    /// and diagnostics.
    pub fn trend_observations(&self, tier: usize) -> Option<u64> {
        self.trends.get(&tier).map(|t| t.observations())
    }
}

/// Journal snapshot of one fitted model with its provenance.
fn fit_snapshot(
    name: &str,
    model: &ConcurrencyModel,
    (source, r_squared): (&'static str, Option<f64>),
) -> FitSnapshot {
    FitSnapshot {
        name: name.to_string(),
        s0: model.s0,
        alpha: model.alpha,
        beta: model.beta,
        gamma: model.gamma,
        n_star: model.optimal_concurrency(),
        r_squared,
        source: source.to_string(),
    }
}

impl Controller for Dcm {
    fn on_tick(&mut self, world: &mut World, engine: &mut SimEngine) {
        let mut windows = self.feed.poll_windows();
        self.collect_online(&windows);
        // Optional predictive extension: replace each tier's utilization
        // with its forecast so scale-out decisions lead the ramp by one
        // boot delay. The forecast never *suppresses* a hot reading —
        // reacting to genuine saturation must stay instant.
        if let Some(holt) = self.config.predictive {
            for (tier, window) in windows.iter_mut() {
                // A scale event shifts per-server utilization
                // discontinuously; extrapolating the old trend across it
                // produces phantom forecasts, so restart the smoother.
                let count = world.system.running_count(*tier) + world.system.booting_count(*tier);
                if self.last_counts.insert(*tier, count) != Some(count) {
                    self.trends.remove(tier);
                }
                let trend = self
                    .trends
                    .entry(*tier)
                    .or_insert_with(|| HoltTrend::new(holt));
                trend.observe(window.mean_cpu_util);
                window.mean_cpu_util = window.mean_cpu_util.max(trend.forecast());
            }
        }
        // First level: VM scaling, identical policy to the baseline. DCM
        // additionally tracks the capacity its own decisions aimed for, so
        // that lost VMs (crashes) are re-detected and replaced on the very
        // next tick instead of waiting for thresholds to re-trip.
        let scalable: Vec<usize> = self.policy.config().scalable_tiers.clone();
        for &tier in &scalable {
            let have = world.system.running_count(tier) + world.system.booting_count(tier);
            self.desired.entry(tier).or_insert(have);
        }
        let reports = vm_decisions(
            world,
            engine,
            &mut self.policy,
            &mut self.vm,
            &windows,
            &mut self.silence,
        );
        let (min_servers, max_servers) = (
            self.config.scaling.min_servers,
            self.config.scaling.max_servers,
        );
        for report in &reports {
            if !report.applied {
                continue;
            }
            let desired = self.desired.entry(report.observation.tier).or_insert(1);
            match report.decision {
                ScaleDecision::Out => *desired = (*desired + 1).min(max_servers),
                ScaleDecision::In => *desired = desired.saturating_sub(1).max(min_servers),
                ScaleDecision::Hold => {}
            }
        }
        let mut extra_decisions: Vec<Decision> = Vec::new();
        for &tier in &scalable {
            let desired = self.desired[&tier].clamp(min_servers, max_servers);
            let before = world.system.running_count(tier) + world.system.booting_count(tier);
            let mut have = before;
            while have < desired {
                if self.vm.scale_out(world, engine, tier).is_none() {
                    break;
                }
                have += 1;
            }
            if before < desired {
                let booted = have - before;
                extra_decisions.push(Decision {
                    action: "replace-lost".to_string(),
                    tier,
                    value: Some(desired as u32),
                    applied: booted > 0,
                    reason: format!(
                        "capacity {before} below remembered desired {desired} \
                         (VM loss); re-provisioned {booted} VM(s)"
                    ),
                });
            }
        }
        // Second level: soft-resource re-allocation for the (possibly new)
        // topology. Idempotent; the APP-agent skips unchanged sizes.
        let (threads, conns) = self.desired_soft_allocation(world);
        if self.config.adapt_threads {
            let before = self.app.log().len();
            self.app
                .set_tier_threads(world, engine, self.config.app_tier, threads);
            if self.app.log().len() > before {
                extra_decisions.push(Decision {
                    action: "set-threads".to_string(),
                    tier: self.config.app_tier,
                    value: Some(threads),
                    applied: true,
                    reason: format!(
                        "app model N*={} with headroom {:.2} -> {threads} threads/server",
                        self.models.app.optimal_concurrency(),
                        self.config.headroom,
                    ),
                });
            }
        }
        if self.config.adapt_conns {
            let before = self.app.log().len();
            self.app
                .set_tier_conns(world, engine, self.config.app_tier, conns);
            if self.app.log().len() > before {
                let k_app = (world.system.running_count(self.config.app_tier)
                    + world.system.booting_count(self.config.app_tier))
                .max(1);
                let k_db = (world.system.running_count(self.config.db_tier)
                    + world.system.booting_count(self.config.db_tier))
                .max(1);
                extra_decisions.push(Decision {
                    action: "set-conns".to_string(),
                    tier: self.config.app_tier,
                    value: Some(conns),
                    applied: true,
                    reason: format!(
                        "db model N*={} x {k_db} db server(s), headroom {:.2}, \
                         split across {k_app} app server(s) -> {conns} conns each",
                        self.models.db.optimal_concurrency(),
                        self.config.headroom,
                    ),
                });
            }
        }
        if let Some(journal) = &self.journal {
            let mut decisions: Vec<Decision> =
                reports.iter().map(TierTickReport::to_decision).collect();
            decisions.extend(extra_decisions);
            journal.borrow_mut().push(JournalEntry {
                at: engine.now(),
                controller: "DCM".to_string(),
                observations: reports.iter().map(|r| r.observation.clone()).collect(),
                fits: vec![
                    fit_snapshot("app", &self.models.app, self.app_fit),
                    fit_snapshot("db", &self.models.db, self.db_fit),
                ],
                decisions,
                plan: None,
            });
        }
        // Online-refit points are only comparable within one configuration:
        // if the topology or pool sizes changed, flush the buffers.
        let k_app = world.system.running_count(self.config.app_tier)
            + world.system.booting_count(self.config.app_tier);
        let k_db = world.system.running_count(self.config.db_tier)
            + world.system.booting_count(self.config.db_tier);
        let shape = (k_app, k_db, threads, conns);
        if self.last_shape != Some(shape) {
            if self.last_shape.is_some() {
                if let Some(online) = self.online.as_mut() {
                    online.clear();
                }
            }
            self.last_shape = Some(shape);
        }
    }

    fn actions(&self) -> Vec<ActionRecord> {
        let mut all: Vec<ActionRecord> = self
            .vm
            .log()
            .iter()
            .chain(self.app.log().iter())
            .cloned()
            .collect();
        all.sort_by_key(|r| r.at);
        all
    }

    fn name(&self) -> &'static str {
        "DCM"
    }

    fn attach_journal(&mut self, journal: Rc<RefCell<DecisionJournal>>) {
        self.journal = Some(journal);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{new_metrics_bus, METRICS_TOPIC};
    use dcm_ntier::flow;
    use dcm_ntier::law::reference;
    use dcm_ntier::metrics::ServerSample;
    use dcm_ntier::topology::ThreeTierBuilder;
    use dcm_sim::time::SimTime;
    use std::rc::Rc;

    fn models() -> DcmModels {
        let app = reference::tomcat();
        let db = reference::mysql();
        DcmModels {
            app: ConcurrencyModel::new(app.s0(), app.alpha(), app.beta(), 1.0, 1),
            db: ConcurrencyModel::new(db.s0(), db.alpha(), db.beta(), 1.0, 1),
        }
    }

    #[test]
    fn dcm_desired_allocation_tracks_topology() {
        let (world, _engine) = ThreeTierBuilder::new().build();
        let bus = new_metrics_bus();
        let dcm = Dcm::new(bus, DcmConfig::default(), models());
        // 1/1/1 with headroom 1.1 over the tier-local laws: threads =
        // ceil(N*_app·1.1), conns = ceil(36·1·1.1/1) = 40 (the paper's
        // Fig. 5 initial 40). Production use passes *fitted* system-level
        // models, whose app knee lands near the paper's 20.
        let n_app = models().app.optimal_concurrency() as f64;
        let expect_threads = (n_app * 1.1).ceil() as u32;
        let (threads, conns) = dcm.desired_soft_allocation(&world);
        assert_eq!(threads, expect_threads);
        assert_eq!(conns, 40);

        let (world2, _e2) = ThreeTierBuilder::new().counts(1, 2, 1).build();
        let (_t2, conns2) = dcm.desired_soft_allocation(&world2);
        assert_eq!(conns2, 20, "two app servers split the 40-conn budget");

        let (world3, _e3) = ThreeTierBuilder::new().counts(1, 2, 2).build();
        let (_t3, conns3) = dcm.desired_soft_allocation(&world3);
        assert_eq!(conns3, 40, "two db servers double the budget");
    }

    #[test]
    fn dcm_tick_applies_soft_allocation() {
        let (mut world, mut engine) = ThreeTierBuilder::new().build();
        let bus = new_metrics_bus();
        let mut dcm = Dcm::new(std::rc::Rc::clone(&bus), DcmConfig::default(), models());
        dcm.on_tick(&mut world, &mut engine);
        let sid = world.system.tier(1).members()[0];
        let server = world.system.server(sid).unwrap();
        let expect_threads = (models().app.optimal_concurrency() as f64 * 1.1).ceil() as u32;
        assert_eq!(server.thread_pool().capacity(), expect_threads);
        assert_eq!(server.conn_pool().unwrap().capacity(), 40);
        let actions = dcm.actions();
        assert_eq!(actions.len(), 2);
        assert_eq!(dcm.name(), "DCM");
    }

    #[test]
    fn ablation_switches_disable_actuation() {
        let (mut world, mut engine) = ThreeTierBuilder::new().build();
        let bus = new_metrics_bus();
        let config = DcmConfig {
            adapt_threads: false,
            adapt_conns: false,
            ..DcmConfig::default()
        };
        let mut dcm = Dcm::new(bus, config, models());
        dcm.on_tick(&mut world, &mut engine);
        assert!(dcm.actions().is_empty());
    }

    #[test]
    fn ec2_tick_without_metrics_holds() {
        let (mut world, mut engine) = ThreeTierBuilder::new().build();
        let bus = new_metrics_bus();
        let mut ec2 = Ec2AutoScale::new(bus, ScalingConfig::default());
        ec2.on_tick(&mut world, &mut engine);
        assert!(ec2.actions().is_empty());
        assert_eq!(world.system.running_count(1), 1);
        assert_eq!(ec2.name(), "EC2-AutoScale");
    }

    fn sample(server: &str, tier: usize, cpu: f64) -> ServerSample {
        ServerSample {
            server: server.into(),
            tier,
            window_start: SimTime::ZERO,
            window_end: SimTime::from_secs(1),
            cpu_util: cpu,
            busy_fraction: cpu,
            active_threads: 10.0,
            active_conns: None,
            completed: 50,
            throughput: 50.0,
            mean_dwell: None,
            thread_pool_size: 100,
            conn_pool_size: None,
            thread_queue: 0,
            conn_queue: 0,
        }
    }

    fn produce(bus: &MetricsBus, ts_ms: u64, sample: ServerSample) {
        let key = sample.server.clone();
        bus.borrow_mut()
            .produce(METRICS_TOPIC, ts_ms, Some(key), sample)
            .expect("metrics topic exists");
    }

    /// Regression: a tier whose every server crashed goes silent; the
    /// controller used to skip it (`continue`) and hold it dead forever.
    #[test]
    fn silent_crashed_tier_triggers_scale_out() {
        let (mut world, mut engine) = ThreeTierBuilder::new().build();
        let bus = new_metrics_bus();
        let mut ec2 = Ec2AutoScale::new(Rc::clone(&bus), ScalingConfig::default());
        let victim = world.system.tier(1).members()[0];
        flow::crash_server(&mut world, &mut engine, victim);
        assert_eq!(world.system.running_count(1), 0);
        // The web tier keeps reporting, so the monitoring pipeline is
        // demonstrably alive — tier 1's silence is the signal.
        produce(&bus, 1_000, sample("web-1", 0, 0.3));
        ec2.on_tick(&mut world, &mut engine);
        assert_eq!(
            world.system.booting_count(1),
            1,
            "a dead-silent tier must be re-provisioned, not held forever"
        );
    }

    /// A silent tier that still has capacity needs a streak of silent
    /// periods before it is treated as wedged (one missed window can be a
    /// sampling hiccup), and an all-empty poll still holds everything.
    #[test]
    fn silent_wedged_tier_scales_out_after_streak() {
        let (mut world, mut engine) = ThreeTierBuilder::new().build();
        let bus = new_metrics_bus();
        let mut ec2 = Ec2AutoScale::new(Rc::clone(&bus), ScalingConfig::default());
        produce(&bus, 1_000, sample("web-1", 0, 0.3));
        ec2.on_tick(&mut world, &mut engine);
        assert_eq!(
            world.system.booting_count(1),
            0,
            "one silent period is not evidence of a wedge"
        );
        produce(&bus, 2_000, sample("web-1", 0, 0.3));
        ec2.on_tick(&mut world, &mut engine);
        assert_eq!(
            world.system.booting_count(1),
            1,
            "consecutive silence on a loaded system means wedged"
        );
    }

    /// Regression: DCM remembers the capacity its decisions aimed for and
    /// replaces a crashed VM on the next tick, even though the surviving
    /// servers' pressure is below every threshold.
    #[test]
    fn dcm_replaces_crashed_vm_within_one_period() {
        let (mut world, mut engine) = ThreeTierBuilder::new().counts(1, 2, 1).build();
        let bus = new_metrics_bus();
        let mut dcm = Dcm::new(Rc::clone(&bus), DcmConfig::default(), models());
        for name_tier in [("web-1", 0), ("app-1", 1), ("app-2", 1), ("db-1", 2)] {
            produce(&bus, 1_000, sample(name_tier.0, name_tier.1, 0.5));
        }
        dcm.on_tick(&mut world, &mut engine);
        assert_eq!(world.system.running_count(1), 2);
        let victim = world.system.tier(1).members()[0];
        flow::crash_server(&mut world, &mut engine, victim);
        assert_eq!(world.system.running_count(1), 1);
        // The survivor reports mid-band load: threshold policy says hold.
        for name_tier in [("web-1", 0), ("app-2", 1), ("db-1", 2)] {
            produce(&bus, 2_000, sample(name_tier.0, name_tier.1, 0.5));
        }
        dcm.on_tick(&mut world, &mut engine);
        assert_eq!(
            world.system.booting_count(1),
            1,
            "lost capacity must be re-provisioned without a threshold re-trip"
        );
    }

    /// The baseline has no capacity memory: after a partial crash with
    /// mid-band survivor load it holds — the blind spot DCM closes above.
    #[test]
    fn ec2_holds_after_partial_crash_below_threshold() {
        let (mut world, mut engine) = ThreeTierBuilder::new().counts(1, 2, 1).build();
        let bus = new_metrics_bus();
        let mut ec2 = Ec2AutoScale::new(Rc::clone(&bus), ScalingConfig::default());
        let victim = world.system.tier(1).members()[0];
        flow::crash_server(&mut world, &mut engine, victim);
        for name_tier in [("web-1", 0), ("app-2", 1), ("db-1", 2)] {
            produce(&bus, 1_000, sample(name_tier.0, name_tier.1, 0.5));
        }
        ec2.on_tick(&mut world, &mut engine);
        assert_eq!(world.system.booting_count(1), 0);
    }

    /// Regression: the online-refit point buffers used to grow without
    /// bound — a multi-hour saturated run accumulated one point per tier
    /// per tick forever.
    #[test]
    fn online_refit_buffers_stay_bounded() {
        let (mut world, mut engine) = ThreeTierBuilder::new().build();
        let bus = new_metrics_bus();
        let config = DcmConfig {
            scaling: ScalingConfig {
                max_servers: 1,
                ..ScalingConfig::default()
            },
            ..DcmConfig::default()
        };
        let mut dcm = Dcm::new(Rc::clone(&bus), config, models()).with_online_refit(8, 100_000);
        for k in 0..600u64 {
            let ts = (k + 1) * 1_000;
            produce(&bus, ts, sample("app-1", 1, 0.9));
            produce(&bus, ts, sample("db-1", 2, 0.9));
            dcm.on_tick(&mut world, &mut engine);
        }
        let (app_pts, db_pts) = dcm.online_point_counts().unwrap();
        assert!(app_pts > 0 && db_pts > 0, "saturated windows must collect");
        assert!(app_pts <= MAX_FIT_POINTS, "app buffer unbounded: {app_pts}");
        assert!(db_pts <= MAX_FIT_POINTS, "db buffer unbounded: {db_pts}");
    }

    /// Regression: points measured under one topology used to survive into
    /// the next; they lie on a different throughput curve and poison fits.
    #[test]
    fn online_refit_buffers_reset_on_scale_event() {
        let (mut world, mut engine) = ThreeTierBuilder::new().build();
        let bus = new_metrics_bus();
        let mut dcm =
            Dcm::new(Rc::clone(&bus), DcmConfig::default(), models()).with_online_refit(8, 100_000);
        for k in 0..3u64 {
            let ts = (k + 1) * 1_000;
            produce(&bus, ts, sample("app-1", 1, 0.75));
            produce(&bus, ts, sample("db-1", 2, 0.75));
            dcm.on_tick(&mut world, &mut engine);
        }
        assert_eq!(dcm.online_point_counts(), Some((3, 3)));
        // Saturate the app tier: DCM scales out, changing the topology.
        produce(&bus, 4_000, sample("app-1", 1, 0.9));
        produce(&bus, 4_000, sample("db-1", 2, 0.75));
        dcm.on_tick(&mut world, &mut engine);
        assert_eq!(world.system.booting_count(1), 1);
        assert_eq!(
            dcm.online_point_counts(),
            Some((0, 0)),
            "points from the old topology must be dropped"
        );
    }

    /// Regression: a tier's Holt smoother used to keep extrapolating the
    /// pre-scale trend across scale events, producing phantom forecasts
    /// from discontinuous per-server utilization.
    #[test]
    fn holt_trend_resets_on_scale_event() {
        let (mut world, mut engine) = ThreeTierBuilder::new().build();
        let bus = new_metrics_bus();
        let config = DcmConfig {
            predictive: Some(HoltConfig::default()),
            ..DcmConfig::default()
        };
        let mut dcm = Dcm::new(Rc::clone(&bus), config, models());
        for k in 0..4u64 {
            let ts = (k + 1) * 1_000;
            produce(&bus, ts, sample("app-1", 1, 0.2 + 0.05 * k as f64));
            produce(&bus, ts, sample("db-1", 2, 0.5));
            dcm.on_tick(&mut world, &mut engine);
        }
        assert_eq!(dcm.trend_observations(1), Some(4));
        // A scale event (operator-driven here) changes the server count.
        flow::provision_server(&mut world, &mut engine, 1).unwrap();
        produce(&bus, 5_000, sample("app-1", 1, 0.2));
        produce(&bus, 5_000, sample("db-1", 2, 0.5));
        dcm.on_tick(&mut world, &mut engine);
        assert_eq!(
            dcm.trend_observations(1),
            Some(1),
            "stale trend must not survive a scale event"
        );
    }
}
