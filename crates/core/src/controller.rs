//! The Optimization Controller (paper §IV) and the EC2-AutoScale baseline
//! (paper §V-B).
//!
//! Both controllers wake every control period (15 s), consume the monitor
//! stream from the bus, aggregate it per tier, and make VM-level decisions
//! with the same quick-start/slow-stop threshold policy. **DCM additionally
//! runs the APP-agent**: after every (potential) topology change it pushes
//! the concurrency-aware model's optimal soft-resource allocation into the
//! live pools — Tomcat thread pools sized to the app model's `N*`, MySQL
//! concurrency capped via the Tomcat connection pools at the db model's
//! `N* × K_db`, split across app servers.

use dcm_bus::GroupConsumer;
use dcm_model::concurrency::ConcurrencyModel;
use dcm_ntier::world::{SimEngine, World};

use crate::agents::{ActionRecord, AppAgent, VmAgent};
use crate::aggregate::{aggregate_by_tier, TierWindow};
use crate::monitor::{MetricsBus, METRICS_TOPIC};
use crate::policy::{ScaleDecision, ScalingConfig, ThresholdPolicy, TriggerSignal};
use crate::predictor::{HoltConfig, HoltTrend};

/// A scaling controller invoked once per control period.
pub trait Controller {
    /// One control period: consume metrics, decide, actuate.
    fn on_tick(&mut self, world: &mut World, engine: &mut SimEngine);

    /// The actuation timeline so far (VM and soft-resource actions merged,
    /// in time order).
    fn actions(&self) -> Vec<ActionRecord>;

    /// Short display name for reports.
    fn name(&self) -> &'static str;
}

/// Shared metric-consumption plumbing.
struct MetricsFeed {
    bus: MetricsBus,
    consumer: GroupConsumer,
}

impl MetricsFeed {
    fn new(bus: MetricsBus, group: &str) -> Self {
        let consumer = {
            let broker = bus.borrow();
            GroupConsumer::new(group, METRICS_TOPIC, &broker)
                .expect("metrics topic exists on the bus")
        };
        MetricsFeed { bus, consumer }
    }

    fn poll_windows(&mut self) -> std::collections::BTreeMap<usize, TierWindow> {
        let records = {
            let broker = self.bus.borrow();
            self.consumer
                .poll(&broker, 100_000)
                .expect("metrics topic exists")
        };
        {
            let mut broker = self.bus.borrow_mut();
            self.consumer
                .commit(&mut broker)
                .expect("metrics topic exists");
        }
        aggregate_by_tier(&records)
    }
}

fn vm_decisions(
    world: &mut World,
    engine: &mut SimEngine,
    policy: &mut ThresholdPolicy,
    vm: &mut VmAgent,
    windows: &std::collections::BTreeMap<usize, TierWindow>,
) {
    let tiers: Vec<usize> = policy.config().scalable_tiers.clone();
    let trigger = policy.config().trigger;
    for tier in tiers {
        let Some(window) = windows.get(&tier) else {
            continue;
        };
        let pressure = match trigger {
            TriggerSignal::CpuUtil => window.mean_cpu_util,
            TriggerSignal::DwellPressure { sla_secs } => match window.mean_dwell {
                Some(dwell) => dwell / sla_secs.max(1e-9),
                // No completions: a wedged-but-loaded tier is maximal
                // pressure; a genuinely idle one is zero.
                None if window.mean_concurrency > 1.0 => f64::INFINITY,
                None => 0.0,
            },
        };
        let running = world.system.running_count(tier);
        let booting = world.system.booting_count(tier);
        match policy.decide(tier, pressure, running, booting) {
            ScaleDecision::Out => {
                vm.scale_out(world, engine, tier);
            }
            ScaleDecision::In => {
                vm.scale_in(world, engine, tier);
            }
            ScaleDecision::Hold => {}
        }
    }
}

/// The hardware-only baseline: Amazon EC2-AutoScale–style threshold scaling
/// with **no** soft-resource adaptation — new servers join with whatever
/// pool sizes the tier was configured with.
pub struct Ec2AutoScale {
    feed: MetricsFeed,
    policy: ThresholdPolicy,
    vm: VmAgent,
}

impl std::fmt::Debug for Ec2AutoScale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ec2AutoScale")
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl Ec2AutoScale {
    /// Creates the baseline controller reading from `bus`.
    pub fn new(bus: MetricsBus, config: ScalingConfig) -> Self {
        Ec2AutoScale {
            feed: MetricsFeed::new(bus, "ec2-autoscale"),
            policy: ThresholdPolicy::new(config),
            vm: VmAgent::new(),
        }
    }
}

impl Controller for Ec2AutoScale {
    fn on_tick(&mut self, world: &mut World, engine: &mut SimEngine) {
        let windows = self.feed.poll_windows();
        vm_decisions(world, engine, &mut self.policy, &mut self.vm, &windows);
    }

    fn actions(&self) -> Vec<ActionRecord> {
        self.vm.log().to_vec()
    }

    fn name(&self) -> &'static str {
        "EC2-AutoScale"
    }
}

/// The fitted models DCM drives its soft-resource decisions with (trained
/// offline as in the paper's §V-A, or refined online).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcmModels {
    /// Application-tier model (per-server `N*` → thread pool size).
    pub app: ConcurrencyModel,
    /// Database-tier model (per-server `N*` → total connection budget).
    pub db: ConcurrencyModel,
}

/// DCM configuration on top of the shared scaling policy.
#[derive(Debug, Clone, PartialEq)]
pub struct DcmConfig {
    /// VM-level policy (same defaults as the baseline).
    pub scaling: ScalingConfig,
    /// Index of the application tier (thread-pool actuated).
    pub app_tier: usize,
    /// Index of the database tier (connection-pool actuated via the app
    /// tier).
    pub db_tier: usize,
    /// Multiplier on `N*` for the realistic pool size — the paper notes
    /// the configured `maxThreads` should exceed the theoretical optimum
    /// because not every pooled thread is active (its Fig. 5 run uses 40
    /// connections for `N* = 36`).
    pub headroom: f64,
    /// Actuate app-tier thread pools (ablation switch).
    pub adapt_threads: bool,
    /// Actuate DB connection pools (ablation switch).
    pub adapt_conns: bool,
    /// Optional predictive VM scaling: scale out on the utilization
    /// *forecast* one boot-delay ahead instead of the current reading (the
    /// related-work extension; `None` = reactive, as in the paper).
    pub predictive: Option<HoltConfig>,
}

impl Default for DcmConfig {
    fn default() -> Self {
        DcmConfig {
            scaling: ScalingConfig::default(),
            app_tier: 1,
            db_tier: 2,
            headroom: 1.1,
            adapt_threads: true,
            adapt_conns: true,
            predictive: None,
        }
    }
}

/// Online-refit state: accumulate `(concurrency, throughput)` points from
/// saturated windows and refit the tier model periodically.
#[derive(Debug, Clone)]
struct OnlineFit {
    app_points: Vec<(f64, f64)>,
    db_points: Vec<(f64, f64)>,
    refit_every_ticks: u32,
    min_points: usize,
    ticks: u32,
}

/// Dynamic Concurrency Management: threshold VM scaling plus model-driven
/// runtime adaptation of thread and connection pools.
///
/// # Examples
///
/// ```
/// use dcm_core::controller::{Controller, Dcm, DcmConfig, DcmModels};
/// use dcm_core::monitor::new_metrics_bus;
/// use dcm_model::concurrency::ConcurrencyModel;
/// use dcm_ntier::topology::ThreeTierBuilder;
///
/// let (mut world, mut engine) = ThreeTierBuilder::new().build();
/// let bus = new_metrics_bus();
/// let models = DcmModels {
///     app: ConcurrencyModel::new(0.0284, 0.016, 7.0e-5, 1.0, 1),
///     db: ConcurrencyModel::new(0.0296, 0.0045, 1.93e-5, 1.0, 1),
/// };
/// let mut dcm = Dcm::new(bus, DcmConfig::default(), models);
/// dcm.on_tick(&mut world, &mut engine); // applies the optimal pools
/// assert!(!dcm.actions().is_empty());
/// ```
pub struct Dcm {
    feed: MetricsFeed,
    policy: ThresholdPolicy,
    vm: VmAgent,
    app: AppAgent,
    models: DcmModels,
    config: DcmConfig,
    online: Option<OnlineFit>,
    trends: std::collections::HashMap<usize, HoltTrend>,
}

impl std::fmt::Debug for Dcm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dcm")
            .field("models", &self.models)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Dcm {
    /// Creates the DCM controller with offline-trained models.
    pub fn new(bus: MetricsBus, config: DcmConfig, models: DcmModels) -> Self {
        Dcm {
            feed: MetricsFeed::new(bus, "dcm"),
            policy: ThresholdPolicy::new(config.scaling.clone()),
            vm: VmAgent::new(),
            app: AppAgent::new(),
            models,
            config,
            online: None,
            trends: std::collections::HashMap::new(),
        }
    }

    /// Enables online model refinement: windows where a modeled tier looks
    /// saturated contribute `(concurrency, throughput)` samples; every
    /// `refit_every_ticks` control periods with at least `min_points`
    /// samples, the tier model is refitted.
    pub fn with_online_refit(mut self, min_points: usize, refit_every_ticks: u32) -> Self {
        self.online = Some(OnlineFit {
            app_points: Vec::new(),
            db_points: Vec::new(),
            refit_every_ticks: refit_every_ticks.max(1),
            min_points: min_points.max(8),
            ticks: 0,
        });
        self
    }

    /// The models currently in use.
    pub fn models(&self) -> DcmModels {
        self.models
    }

    /// The soft allocation DCM wants for the current topology:
    /// `(app threads per server, app→db conns per server)`. Booting
    /// servers count toward the split so they join correctly sized.
    pub fn desired_soft_allocation(&self, world: &World) -> (u32, u32) {
        let k_app = (world.system.running_count(self.config.app_tier)
            + world.system.booting_count(self.config.app_tier))
        .max(1) as u32;
        let k_db = (world.system.running_count(self.config.db_tier)
            + world.system.booting_count(self.config.db_tier))
        .max(1) as u32;
        let alloc = dcm_model::allocation::optimal_soft_allocation(
            &self.models.app,
            &self.models.db,
            k_app,
            k_db,
            self.config.headroom,
        );
        (alloc.app_threads, alloc.db_conns_per_app)
    }

    fn collect_online(&mut self, windows: &std::collections::BTreeMap<usize, TierWindow>) {
        let (app_tier, db_tier) = (self.config.app_tier, self.config.db_tier);
        let Some(online) = self.online.as_mut() else {
            return;
        };
        online.ticks += 1;
        for (&tier, w) in windows {
            // Only saturated windows lie on the X(N) curve the model fits.
            if w.mean_cpu_util < 0.7 || w.mean_concurrency < 1.0 {
                continue;
            }
            if tier == app_tier {
                online
                    .app_points
                    .push((w.mean_concurrency, w.total_throughput));
            } else if tier == db_tier {
                online
                    .db_points
                    .push((w.mean_concurrency, w.total_throughput));
            }
        }
        if online.ticks % online.refit_every_ticks == 0 {
            use dcm_model::concurrency::{fit_throughput_curve, FitOptions};
            if online.app_points.len() >= online.min_points {
                if let Ok(report) =
                    fit_throughput_curve(&online.app_points, 1, FitOptions::default())
                {
                    if report.r_squared > 0.8 {
                        self.models.app = report.model;
                    }
                }
            }
            if online.db_points.len() >= online.min_points {
                if let Ok(report) =
                    fit_throughput_curve(&online.db_points, 1, FitOptions::default())
                {
                    if report.r_squared > 0.8 {
                        self.models.db = report.model;
                    }
                }
            }
        }
    }
}

impl Controller for Dcm {
    fn on_tick(&mut self, world: &mut World, engine: &mut SimEngine) {
        let mut windows = self.feed.poll_windows();
        self.collect_online(&windows);
        // Optional predictive extension: replace each tier's utilization
        // with its forecast so scale-out decisions lead the ramp by one
        // boot delay. The forecast never *suppresses* a hot reading —
        // reacting to genuine saturation must stay instant.
        if let Some(holt) = self.config.predictive {
            for (tier, window) in windows.iter_mut() {
                let trend = self
                    .trends
                    .entry(*tier)
                    .or_insert_with(|| HoltTrend::new(holt));
                trend.observe(window.mean_cpu_util);
                window.mean_cpu_util = window.mean_cpu_util.max(trend.forecast());
            }
        }
        // First level: VM scaling, identical policy to the baseline.
        vm_decisions(world, engine, &mut self.policy, &mut self.vm, &windows);
        // Second level: soft-resource re-allocation for the (possibly new)
        // topology. Idempotent; the APP-agent skips unchanged sizes.
        let (threads, conns) = self.desired_soft_allocation(world);
        if self.config.adapt_threads {
            self.app
                .set_tier_threads(world, engine, self.config.app_tier, threads);
        }
        if self.config.adapt_conns {
            self.app
                .set_tier_conns(world, engine, self.config.app_tier, conns);
        }
    }

    fn actions(&self) -> Vec<ActionRecord> {
        let mut all: Vec<ActionRecord> = self
            .vm
            .log()
            .iter()
            .chain(self.app.log().iter())
            .cloned()
            .collect();
        all.sort_by_key(|r| r.at);
        all
    }

    fn name(&self) -> &'static str {
        "DCM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::new_metrics_bus;
    use dcm_ntier::law::reference;
    use dcm_ntier::topology::ThreeTierBuilder;

    fn models() -> DcmModels {
        let app = reference::tomcat();
        let db = reference::mysql();
        DcmModels {
            app: ConcurrencyModel::new(app.s0(), app.alpha(), app.beta(), 1.0, 1),
            db: ConcurrencyModel::new(db.s0(), db.alpha(), db.beta(), 1.0, 1),
        }
    }

    #[test]
    fn dcm_desired_allocation_tracks_topology() {
        let (world, _engine) = ThreeTierBuilder::new().build();
        let bus = new_metrics_bus();
        let dcm = Dcm::new(bus, DcmConfig::default(), models());
        // 1/1/1 with headroom 1.1 over the tier-local laws: threads =
        // ceil(N*_app·1.1), conns = ceil(36·1·1.1/1) = 40 (the paper's
        // Fig. 5 initial 40). Production use passes *fitted* system-level
        // models, whose app knee lands near the paper's 20.
        let n_app = models().app.optimal_concurrency() as f64;
        let expect_threads = (n_app * 1.1).ceil() as u32;
        let (threads, conns) = dcm.desired_soft_allocation(&world);
        assert_eq!(threads, expect_threads);
        assert_eq!(conns, 40);

        let (world2, _e2) = ThreeTierBuilder::new().counts(1, 2, 1).build();
        let (_t2, conns2) = dcm.desired_soft_allocation(&world2);
        assert_eq!(conns2, 20, "two app servers split the 40-conn budget");

        let (world3, _e3) = ThreeTierBuilder::new().counts(1, 2, 2).build();
        let (_t3, conns3) = dcm.desired_soft_allocation(&world3);
        assert_eq!(conns3, 40, "two db servers double the budget");
    }

    #[test]
    fn dcm_tick_applies_soft_allocation() {
        let (mut world, mut engine) = ThreeTierBuilder::new().build();
        let bus = new_metrics_bus();
        let mut dcm = Dcm::new(std::rc::Rc::clone(&bus), DcmConfig::default(), models());
        dcm.on_tick(&mut world, &mut engine);
        let sid = world.system.tier(1).members()[0];
        let server = world.system.server(sid).unwrap();
        let expect_threads = (models().app.optimal_concurrency() as f64 * 1.1).ceil() as u32;
        assert_eq!(server.thread_pool().capacity(), expect_threads);
        assert_eq!(server.conn_pool().unwrap().capacity(), 40);
        let actions = dcm.actions();
        assert_eq!(actions.len(), 2);
        assert_eq!(dcm.name(), "DCM");
    }

    #[test]
    fn ablation_switches_disable_actuation() {
        let (mut world, mut engine) = ThreeTierBuilder::new().build();
        let bus = new_metrics_bus();
        let config = DcmConfig {
            adapt_threads: false,
            adapt_conns: false,
            ..DcmConfig::default()
        };
        let mut dcm = Dcm::new(bus, config, models());
        dcm.on_tick(&mut world, &mut engine);
        assert!(dcm.actions().is_empty());
    }

    #[test]
    fn ec2_tick_without_metrics_holds() {
        let (mut world, mut engine) = ThreeTierBuilder::new().build();
        let bus = new_metrics_bus();
        let mut ec2 = Ec2AutoScale::new(bus, ScalingConfig::default());
        ec2.on_tick(&mut world, &mut engine);
        assert!(ec2.actions().is_empty());
        assert_eq!(world.system.running_count(1), 1);
        assert_eq!(ec2.name(), "EC2-AutoScale");
    }
}
