//! Aggregating per-server monitor samples into per-tier control inputs.

use std::collections::BTreeMap;

use dcm_bus::Entry;
use dcm_ntier::metrics::ServerSample;
use serde::{Deserialize, Serialize};

/// Per-tier summary of one control window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierWindow {
    /// Tier index.
    pub tier: usize,
    /// Distinct servers that reported.
    pub servers: usize,
    /// Mean CPU utilization across servers (each server first averaged
    /// over its samples).
    pub mean_cpu_util: f64,
    /// Largest per-server mean CPU utilization (imbalance indicator).
    pub max_cpu_util: f64,
    /// Tier throughput: sum of per-server mean throughputs.
    pub total_throughput: f64,
    /// Mean per-server request-processing concurrency (active threads).
    pub mean_concurrency: f64,
    /// Mean thread-queue length at sample times (pressure indicator).
    pub mean_thread_queue: f64,
    /// Mean per-completion dwell time (seconds) across servers, when any
    /// server reported completions.
    pub mean_dwell: Option<f64>,
}

/// Groups a batch of bus entries by tier and summarizes each.
///
/// # Examples
///
/// ```
/// use dcm_core::aggregate::aggregate_by_tier;
///
/// let windows = aggregate_by_tier(&[]);
/// assert!(windows.is_empty());
/// ```
pub fn aggregate_by_tier(records: &[Entry<ServerSample>]) -> BTreeMap<usize, TierWindow> {
    // tier -> server -> accumulators
    #[derive(Default)]
    struct ServerAcc {
        n: usize,
        cpu: f64,
        throughput: f64,
        threads: f64,
        queue: f64,
        dwell_sum: f64,
        dwell_n: usize,
    }
    let mut tiers: BTreeMap<usize, BTreeMap<&str, ServerAcc>> = BTreeMap::new();
    for entry in records {
        let s = &entry.value;
        let acc = tiers
            .entry(s.tier)
            .or_default()
            .entry(s.server.as_str())
            .or_default();
        acc.n += 1;
        acc.cpu += s.cpu_util;
        acc.throughput += s.throughput;
        acc.threads += s.active_threads;
        acc.queue += s.thread_queue as f64;
        if let Some(dwell) = s.mean_dwell {
            acc.dwell_sum += dwell;
            acc.dwell_n += 1;
        }
    }
    tiers
        .into_iter()
        .map(|(tier, servers)| {
            let k = servers.len();
            let mut mean_cpu = 0.0;
            let mut max_cpu: f64 = 0.0;
            let mut throughput = 0.0;
            let mut threads = 0.0;
            let mut queue = 0.0;
            let mut dwell_sum = 0.0;
            let mut dwell_n = 0usize;
            for acc in servers.values() {
                let n = acc.n as f64;
                let server_cpu = acc.cpu / n;
                mean_cpu += server_cpu;
                max_cpu = max_cpu.max(server_cpu);
                throughput += acc.throughput / n;
                threads += acc.threads / n;
                queue += acc.queue / n;
                if acc.dwell_n > 0 {
                    dwell_sum += acc.dwell_sum / acc.dwell_n as f64;
                    dwell_n += 1;
                }
            }
            let kf = k as f64;
            (
                tier,
                TierWindow {
                    tier,
                    servers: k,
                    mean_cpu_util: mean_cpu / kf,
                    max_cpu_util: max_cpu,
                    total_throughput: throughput,
                    mean_concurrency: threads / kf,
                    mean_thread_queue: queue / kf,
                    mean_dwell: (dwell_n > 0).then(|| dwell_sum / dwell_n as f64),
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcm_sim::time::SimTime;

    fn sample(server: &str, tier: usize, cpu: f64, x: f64, threads: f64) -> ServerSample {
        ServerSample {
            server: server.into(),
            tier,
            window_start: SimTime::ZERO,
            window_end: SimTime::from_secs(1),
            cpu_util: cpu,
            busy_fraction: cpu,
            active_threads: threads,
            active_conns: None,
            completed: x as u64,
            throughput: x,
            mean_dwell: None,
            thread_pool_size: 100,
            conn_pool_size: None,
            thread_queue: 0,
            conn_queue: 0,
        }
    }

    fn entry(s: ServerSample) -> Entry<ServerSample> {
        Entry {
            offset: 0,
            timestamp_ms: 0,
            key: Some(s.server.clone()),
            value: s,
        }
    }

    #[test]
    fn aggregates_across_servers_and_windows() {
        let records = vec![
            entry(sample("app-1", 1, 0.6, 40.0, 10.0)),
            entry(sample("app-1", 1, 0.8, 60.0, 20.0)),
            entry(sample("app-2", 1, 0.2, 20.0, 4.0)),
            entry(sample("db-1", 2, 0.9, 100.0, 30.0)),
        ];
        let windows = aggregate_by_tier(&records);
        let app = &windows[&1];
        assert_eq!(app.servers, 2);
        // app-1 mean cpu 0.7, app-2 0.2 → tier mean 0.45, max 0.7.
        assert!((app.mean_cpu_util - 0.45).abs() < 1e-12);
        assert!((app.max_cpu_util - 0.7).abs() < 1e-12);
        // app-1 mean X 50 + app-2 20 → 70 total.
        assert!((app.total_throughput - 70.0).abs() < 1e-12);
        assert!((app.mean_concurrency - 9.5).abs() < 1e-12);

        let db = &windows[&2];
        assert_eq!(db.servers, 1);
        assert!((db.mean_cpu_util - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_input_yields_empty_map() {
        assert!(aggregate_by_tier(&[]).is_empty());
    }
}
