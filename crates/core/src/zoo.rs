//! The baseline-controller zoo for the league: queueing-theoretic
//! threshold staffing and Holt-trend predictive staffing, both behind the
//! same [`Controller`] trait as DCM, EC2-AutoScale, and the MPC.
//!
//! * [`ThresholdMmc`] — an M/M/c-style sizer: the utilization law gives
//!   each tier's offered work `λ·S = U·k` (busy-server equivalents); the
//!   tier is staffed to `c = ⌈U·k / ρ_target⌉` so per-server utilization
//!   settles at the target. This is the "compute the right size directly"
//!   school of threshold scaling (cf. arXiv:1702.01443) as opposed to the
//!   increment/decrement school of EC2-AutoScale.
//! * [`HoltWinters`] — the same staffing rule driven by a Holt linear
//!   trend *forecast* of each tier's utilization (one boot delay ahead),
//!   reusing [`HoltTrend`]; the smoother restarts on any server-count
//!   change because per-server utilization shifts discontinuously across
//!   scale events.
//!
//! Both close the PR-2 failure blind spots: a tier gone silent while the
//! system reports is wedged after [`SILENT_TICKS_FOR_PRESSURE`] ticks (a
//! dead tier immediately), and each controller remembers the capacity its
//! last decision targeted, re-provisioning crashed VMs on the next tick.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use dcm_ntier::world::{SimEngine, World};
use dcm_obs::journal::{Decision, DecisionJournal, JournalEntry, TierObservation};

use crate::agents::{ActionRecord, VmAgent};
use crate::aggregate::TierWindow;
use crate::controller::{Controller, MetricsFeed, SILENT_TICKS_FOR_PRESSURE};
use crate::monitor::MetricsBus;
use crate::predictor::{HoltConfig, HoltTrend};

/// Shared configuration for the staffing-rule controllers.
#[derive(Debug, Clone, PartialEq)]
pub struct StaffingConfig {
    /// Per-server utilization the staffing rule aims for (the M/M/c
    /// `ρ = λ/(c·μ)` operating point).
    pub rho_target: f64,
    /// Tiers the controller may scale.
    pub scalable_tiers: Vec<usize>,
    /// Never scale a tier below this many servers.
    pub min_servers: usize,
    /// Never scale a tier above this many servers.
    pub max_servers: usize,
    /// Largest net VM change per tier per tick.
    pub step_limit: usize,
}

impl Default for StaffingConfig {
    fn default() -> Self {
        StaffingConfig {
            rho_target: 0.6,
            scalable_tiers: vec![1, 2],
            min_servers: 1,
            max_servers: 8,
            step_limit: 2,
        }
    }
}

/// Shared staffing-controller state: the feed, the actuator, the blind-
/// spot bookkeeping, and the journal.
struct StaffingCore {
    feed: MetricsFeed,
    vm: VmAgent,
    config: StaffingConfig,
    silence: BTreeMap<usize, u32>,
    desired: BTreeMap<usize, usize>,
    journal: Option<Rc<RefCell<DecisionJournal>>>,
}

impl StaffingCore {
    fn new(bus: MetricsBus, group: &str, config: StaffingConfig) -> Self {
        StaffingCore {
            feed: MetricsFeed::new(bus, group),
            vm: VmAgent::new(),
            config,
            silence: BTreeMap::new(),
            desired: BTreeMap::new(),
            journal: None,
        }
    }

    /// One tick of the shared staffing pass. `signal` maps a tier's
    /// window to the utilization the staffing rule runs on (measured for
    /// [`ThresholdMmc`], forecast for [`HoltWinters`]) plus the signal
    /// label for the journal.
    fn tick(
        &mut self,
        world: &mut World,
        engine: &mut SimEngine,
        controller: &'static str,
        mut signal: impl FnMut(usize, &TierWindow) -> (f64, String),
    ) {
        let windows = self.feed.poll_windows();
        let tiers = self.config.scalable_tiers.clone();
        let (lo, hi) = (self.config.min_servers, self.config.max_servers);
        let mut observations = Vec::new();
        let mut decisions = Vec::new();
        for tier in tiers {
            let running = world.system.running_count(tier);
            let booting = world.system.booting_count(tier);
            let have = running + booting;
            let mut obs = TierObservation {
                tier,
                pressure: 0.0,
                signal: String::new(),
                utilization: None,
                throughput: None,
                concurrency: None,
                mean_dwell: None,
                queue: None,
                running,
                booting,
                silent_streak: 0,
            };
            let target = match windows.get(&tier) {
                Some(w) => {
                    self.silence.insert(tier, 0);
                    let (util, label) = signal(tier, w);
                    obs.signal = label;
                    obs.pressure = util;
                    obs.utilization = Some(w.mean_cpu_util);
                    obs.throughput = Some(w.total_throughput);
                    obs.concurrency = Some(w.mean_concurrency);
                    obs.mean_dwell = w.mean_dwell;
                    obs.queue = Some(w.mean_thread_queue);
                    // Busy-server equivalents over the target operating
                    // point; never park below what a crash left us with
                    // *relative to memory* (handled below).
                    let needed =
                        (util * running.max(1) as f64 / self.config.rho_target.max(1e-6)).ceil();
                    Some((needed as usize).clamp(lo, hi))
                }
                None => {
                    let streak = self.silence.entry(tier).or_insert(0);
                    *streak += 1;
                    obs.signal = "silent".to_string();
                    obs.silent_streak = *streak;
                    if windows.is_empty() {
                        observations.push(obs);
                        decisions.push(Decision {
                            action: "hold".to_string(),
                            tier,
                            value: None,
                            applied: false,
                            reason: "no metrics from any tier: monitor silent, holding".to_string(),
                        });
                        continue;
                    }
                    let dead = running == 0 && booting == 0;
                    if dead || *streak >= SILENT_TICKS_FOR_PRESSURE {
                        obs.pressure = f64::INFINITY;
                        Some((have + 1).clamp(lo, hi))
                    } else {
                        observations.push(obs);
                        decisions.push(Decision {
                            action: "hold".to_string(),
                            tier,
                            value: None,
                            applied: false,
                            reason: format!(
                                "tier silent {streak}/{SILENT_TICKS_FOR_PRESSURE} period(s); \
                                 waiting before treating as wedged"
                            ),
                        });
                        continue;
                    }
                }
            };
            observations.push(obs);
            let Some(staffing) = target else { continue };
            // Capacity memory: a crashed VM pulls `have` below the last
            // target; the staffing rule may also *raise* the target. Act
            // toward whichever is larger of the fresh rule and the
            // remembered desire when capacity was lost.
            let remembered = self.desired.get(&tier).copied().unwrap_or(have);
            let target = if have < remembered {
                staffing.max(remembered)
            } else {
                staffing
            };
            // Step limit, applied to the net move from current capacity.
            let step = self.config.step_limit;
            let bounded = target.clamp(have.saturating_sub(step), have + step);
            self.desired.insert(tier, bounded);
            let mut now = have;
            while now < bounded {
                if self.vm.scale_out(world, engine, tier).is_none() {
                    break;
                }
                now += 1;
                decisions.push(Decision {
                    action: "scale-out".to_string(),
                    tier,
                    value: Some(now as u32),
                    applied: true,
                    reason: format!(
                        "staffing rule wants {target} server(s) (have {have}, \
                         rho_target {:.2})",
                        self.config.rho_target
                    ),
                });
            }
            while now > bounded {
                if self.vm.scale_in(world, engine, tier).is_none() {
                    break;
                }
                now -= 1;
                decisions.push(Decision {
                    action: "scale-in".to_string(),
                    tier,
                    value: Some(now as u32),
                    applied: true,
                    reason: format!(
                        "staffing rule wants {target} server(s) (have {have}, \
                         rho_target {:.2})",
                        self.config.rho_target
                    ),
                });
            }
            if now == have && have == bounded {
                decisions.push(Decision {
                    action: "hold".to_string(),
                    tier,
                    value: Some(bounded as u32),
                    applied: false,
                    reason: format!("staffing rule satisfied at {bounded} server(s)"),
                });
            }
        }
        if let Some(journal) = &self.journal {
            journal.borrow_mut().push(JournalEntry {
                at: engine.now(),
                controller: controller.to_string(),
                observations,
                fits: Vec::new(),
                decisions,
                plan: None,
            });
        }
    }
}

/// Queueing-theoretic threshold scaler: staffs each tier to
/// `⌈U·k / ρ_target⌉` servers from the measured utilization.
pub struct ThresholdMmc {
    core: StaffingCore,
}

impl std::fmt::Debug for ThresholdMmc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThresholdMmc")
            .field("config", &self.core.config)
            .finish_non_exhaustive()
    }
}

impl ThresholdMmc {
    /// Creates the staffing controller reading from `bus`.
    pub fn new(bus: MetricsBus, config: StaffingConfig) -> Self {
        ThresholdMmc {
            core: StaffingCore::new(bus, "mmc-threshold", config),
        }
    }
}

impl Controller for ThresholdMmc {
    fn on_tick(&mut self, world: &mut World, engine: &mut SimEngine) {
        self.core.tick(world, engine, "MMC-Threshold", |_, w| {
            (w.mean_cpu_util, "cpu-util".to_string())
        });
    }

    fn actions(&self) -> Vec<ActionRecord> {
        self.core.vm.log().to_vec()
    }

    fn name(&self) -> &'static str {
        "MMC-Threshold"
    }

    fn attach_journal(&mut self, journal: Rc<RefCell<DecisionJournal>>) {
        self.core.journal = Some(journal);
    }
}

/// Predictive staffing: the M/M/c rule driven by a Holt-trend utilization
/// forecast one boot delay ahead, so capacity is ready when a steady ramp
/// arrives instead of 15 s late.
pub struct HoltWinters {
    core: StaffingCore,
    holt: HoltConfig,
    trends: BTreeMap<usize, HoltTrend>,
    last_counts: BTreeMap<usize, usize>,
}

impl std::fmt::Debug for HoltWinters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HoltWinters")
            .field("config", &self.core.config)
            .field("holt", &self.holt)
            .finish_non_exhaustive()
    }
}

impl HoltWinters {
    /// Creates the predictive controller reading from `bus`.
    pub fn new(bus: MetricsBus, config: StaffingConfig, holt: HoltConfig) -> Self {
        HoltWinters {
            core: StaffingCore::new(bus, "holt-winters", config),
            holt,
            trends: BTreeMap::new(),
            last_counts: BTreeMap::new(),
        }
    }

    /// Observation count of a tier's smoother (tests/diagnostics).
    pub fn trend_observations(&self, tier: usize) -> Option<u64> {
        self.trends.get(&tier).map(|t| t.observations())
    }
}

impl Controller for HoltWinters {
    fn on_tick(&mut self, world: &mut World, engine: &mut SimEngine) {
        // Feed/reset the smoothers before the staffing pass so the
        // closure below only reads them.
        let tiers = self.core.config.scalable_tiers.clone();
        for &tier in &tiers {
            let count = world.system.running_count(tier) + world.system.booting_count(tier);
            // A scale event shifts per-server utilization
            // discontinuously; the old trend would forecast phantoms.
            if self.last_counts.insert(tier, count) != Some(count) {
                self.trends.remove(&tier);
            }
        }
        let holt = self.holt;
        let trends = &mut self.trends;
        self.core.tick(world, engine, "Holt-Winters", |tier, w| {
            let trend = trends.entry(tier).or_insert_with(|| HoltTrend::new(holt));
            trend.observe(w.mean_cpu_util);
            // Never forecast *below* a hot reading: reacting to genuine
            // saturation must stay instant.
            let util = w.mean_cpu_util.max(trend.forecast());
            (util, "holt-forecast".to_string())
        });
    }

    fn actions(&self) -> Vec<ActionRecord> {
        self.core.vm.log().to_vec()
    }

    fn name(&self) -> &'static str {
        "Holt-Winters"
    }

    fn attach_journal(&mut self, journal: Rc<RefCell<DecisionJournal>>) {
        self.core.journal = Some(journal);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{new_metrics_bus, METRICS_TOPIC};
    use dcm_ntier::flow;
    use dcm_ntier::metrics::ServerSample;
    use dcm_ntier::topology::ThreeTierBuilder;
    use dcm_sim::time::SimTime;

    fn sample(server: &str, tier: usize, cpu: f64) -> ServerSample {
        ServerSample {
            server: server.into(),
            tier,
            window_start: SimTime::ZERO,
            window_end: SimTime::from_secs(1),
            cpu_util: cpu,
            busy_fraction: cpu,
            active_threads: 10.0,
            active_conns: None,
            completed: 50,
            throughput: 50.0,
            mean_dwell: Some(0.05),
            thread_pool_size: 100,
            conn_pool_size: None,
            thread_queue: 0,
            conn_queue: 0,
        }
    }

    fn produce(bus: &MetricsBus, ts_ms: u64, sample: ServerSample) {
        let key = sample.server.clone();
        bus.borrow_mut()
            .produce(METRICS_TOPIC, ts_ms, Some(key), sample)
            .expect("metrics topic exists");
    }

    #[test]
    fn mmc_staffs_to_the_utilization_law() {
        let (mut world, mut engine) = ThreeTierBuilder::new().build();
        let bus = new_metrics_bus();
        let mut mmc = ThresholdMmc::new(Rc::clone(&bus), StaffingConfig::default());
        // One app server at 95 %: the rule wants ceil(0.95/0.6) = 2.
        produce(&bus, 1_000, sample("web-1", 0, 0.3));
        produce(&bus, 1_000, sample("app-1", 1, 0.95));
        produce(&bus, 1_000, sample("db-1", 2, 0.3));
        mmc.on_tick(&mut world, &mut engine);
        assert_eq!(world.system.booting_count(1), 1);
        assert_eq!(mmc.name(), "MMC-Threshold");
    }

    #[test]
    fn mmc_respects_step_limit() {
        let (mut world, mut engine) = ThreeTierBuilder::new().build();
        let bus = new_metrics_bus();
        let mut mmc = ThresholdMmc::new(
            Rc::clone(&bus),
            StaffingConfig {
                rho_target: 0.1,
                step_limit: 2,
                ..StaffingConfig::default()
            },
        );
        // The rule wants ceil(0.9/0.1) = 9 → capped at max 8, step-limited
        // to +2 this tick.
        produce(&bus, 1_000, sample("app-1", 1, 0.9));
        mmc.on_tick(&mut world, &mut engine);
        assert_eq!(
            world.system.booting_count(1),
            2,
            "net change per tick is step-limited"
        );
    }

    /// The PR-2 blind spot: a dead-silent tier is re-provisioned even
    /// though the staffing rule has no utilization to run on.
    #[test]
    fn mmc_reprovisions_dead_silent_tier() {
        let (mut world, mut engine) = ThreeTierBuilder::new().build();
        let bus = new_metrics_bus();
        let mut mmc = ThresholdMmc::new(Rc::clone(&bus), StaffingConfig::default());
        let victim = world.system.tier(1).members()[0];
        flow::crash_server(&mut world, &mut engine, victim);
        produce(&bus, 1_000, sample("web-1", 0, 0.3));
        mmc.on_tick(&mut world, &mut engine);
        assert_eq!(
            world.system.booting_count(1),
            1,
            "a dead tier must not be held forever"
        );
    }

    /// Capacity memory: a crash below the last staffing target is healed
    /// next tick even when the survivor reads mid-band.
    #[test]
    fn mmc_replaces_crashed_vm_from_memory() {
        let (mut world, mut engine) = ThreeTierBuilder::new().counts(1, 2, 1).build();
        let bus = new_metrics_bus();
        let mut mmc = ThresholdMmc::new(Rc::clone(&bus), StaffingConfig::default());
        // Two app servers at 55 %: rule wants ceil(1.1/0.6) = 2 → hold.
        for (name, tier) in [("web-1", 0), ("app-1", 1), ("app-2", 1), ("db-1", 2)] {
            produce(&bus, 1_000, sample(name, tier, 0.55));
        }
        mmc.on_tick(&mut world, &mut engine);
        assert_eq!(world.system.running_count(1), 2);
        let victim = world.system.tier(1).members()[0];
        flow::crash_server(&mut world, &mut engine, victim);
        // The survivor reports 0.55: fresh rule says ceil(0.55/0.6) = 1,
        // but memory says 2.
        for (name, tier) in [("web-1", 0), ("app-2", 1), ("db-1", 2)] {
            produce(&bus, 2_000, sample(name, tier, 0.55));
        }
        mmc.on_tick(&mut world, &mut engine);
        assert_eq!(
            world.system.running_count(1) + world.system.booting_count(1),
            2,
            "lost capacity must be re-provisioned from the remembered target"
        );
    }

    #[test]
    fn holt_forecast_leads_a_ramp() {
        let (mut world, mut engine) = ThreeTierBuilder::new().build();
        let bus = new_metrics_bus();
        let mut hw = HoltWinters::new(
            Rc::clone(&bus),
            StaffingConfig::default(),
            HoltConfig {
                level_alpha: 0.8,
                trend_beta: 0.5,
                horizon_periods: 3.0,
            },
        );
        // Steady ramp 0.30 → 0.54; the forecast crosses the staffing
        // boundary before the measurement does.
        for k in 0..7u64 {
            let cpu = 0.30 + 0.04 * k as f64;
            produce(&bus, (k + 1) * 1_000, sample("web-1", 0, 0.3));
            produce(&bus, (k + 1) * 1_000, sample("app-1", 1, cpu));
            produce(&bus, (k + 1) * 1_000, sample("db-1", 2, 0.3));
            hw.on_tick(&mut world, &mut engine);
            if world.system.booting_count(1) > 0 {
                break;
            }
        }
        assert_eq!(
            world.system.booting_count(1),
            1,
            "the forecast must trigger before util 0.6·2 = 1.2 servers of work"
        );
        // Measured utilization never reached the boundary on its own:
        // 0.54/0.6 = 0.9 busy-server equivalents staffs just 1 server.
    }

    /// The Holt smoother restarts on scale events (PR-2 blind spot: a
    /// stale trend across a capacity change forecasts phantoms).
    #[test]
    fn holt_trend_resets_on_scale_event() {
        let (mut world, mut engine) = ThreeTierBuilder::new().build();
        let bus = new_metrics_bus();
        let mut hw = HoltWinters::new(
            Rc::clone(&bus),
            StaffingConfig::default(),
            HoltConfig::default(),
        );
        for k in 0..3u64 {
            produce(&bus, (k + 1) * 1_000, sample("app-1", 1, 0.4));
            hw.on_tick(&mut world, &mut engine);
        }
        assert_eq!(hw.trend_observations(1), Some(3));
        flow::provision_server(&mut world, &mut engine, 1).unwrap();
        produce(&bus, 5_000, sample("app-1", 1, 0.4));
        hw.on_tick(&mut world, &mut engine);
        assert_eq!(
            hw.trend_observations(1),
            Some(1),
            "stale trend must not survive a scale event"
        );
    }

    #[test]
    fn empty_poll_holds_everything() {
        let (mut world, mut engine) = ThreeTierBuilder::new().build();
        let bus = new_metrics_bus();
        let mut mmc = ThresholdMmc::new(Rc::clone(&bus), StaffingConfig::default());
        let mut hw = HoltWinters::new(bus, StaffingConfig::default(), HoltConfig::default());
        mmc.on_tick(&mut world, &mut engine);
        hw.on_tick(&mut world, &mut engine);
        assert!(mmc.actions().is_empty());
        assert!(hw.actions().is_empty());
        assert_eq!(world.system.booting_count(1), 0);
    }
}
