//! Threshold-based VM scaling policy: "quick start but slow turn off"
//! (paper §V-B, following Gandhi et al.'s AutoScale).
//!
//! One control period above the upper threshold triggers a scale-out;
//! scale-in requires the utilization to stay below the lower threshold for
//! several *consecutive* periods, avoiding flapping under bursty load.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// What the policy wants done to a tier this period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleDecision {
    /// Add one server.
    Out,
    /// Remove one server.
    In,
    /// Do nothing.
    Hold,
}

/// Which measurement drives the threshold comparison.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum TriggerSignal {
    /// The simulated CPU-utilization counter (the paper's CloudWatch-style
    /// trigger).
    #[default]
    CpuUtil,
    /// Response-time pressure: the tier's mean per-completion dwell divided
    /// by an SLA budget (an SLA-driven extension; pressure 1.0 = at
    /// budget). The same up/down thresholds apply to the pressure value.
    DwellPressure {
        /// Per-tier dwell budget in seconds.
        sla_secs: f64,
    },
}

/// Shared scaling-policy configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingConfig {
    /// Scale out when tier utilization exceeds this in one period (0.8).
    pub up_threshold: f64,
    /// Scale in when utilization stays under this (0.4).
    pub down_threshold: f64,
    /// Consecutive low periods required before scale-in (3).
    pub down_consecutive: u32,
    /// Tiers the controller may scale.
    pub scalable_tiers: Vec<usize>,
    /// Never scale a tier below this many servers.
    pub min_servers: usize,
    /// Never scale a tier above this many servers.
    pub max_servers: usize,
    /// The measurement compared against the thresholds.
    pub trigger: TriggerSignal,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        ScalingConfig {
            up_threshold: 0.8,
            down_threshold: 0.4,
            down_consecutive: 3,
            scalable_tiers: vec![1, 2],
            min_servers: 1,
            max_servers: 8,
            trigger: TriggerSignal::CpuUtil,
        }
    }
}

/// Per-tier threshold state machine.
///
/// # Examples
///
/// ```
/// use dcm_core::policy::{ScaleDecision, ScalingConfig, ThresholdPolicy};
///
/// let mut policy = ThresholdPolicy::new(ScalingConfig::default());
/// // One hot period → scale out immediately ("quick start").
/// assert_eq!(policy.decide(1, 0.95, 1, 0), ScaleDecision::Out);
/// // Cold periods only pay off after three in a row ("slow turn off").
/// assert_eq!(policy.decide(1, 0.2, 2, 0), ScaleDecision::Hold);
/// assert_eq!(policy.decide(1, 0.2, 2, 0), ScaleDecision::Hold);
/// assert_eq!(policy.decide(1, 0.2, 2, 0), ScaleDecision::In);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdPolicy {
    config: ScalingConfig,
    below_counts: BTreeMap<usize, u32>,
}

impl ThresholdPolicy {
    /// Creates the policy from a config.
    pub fn new(config: ScalingConfig) -> Self {
        ThresholdPolicy {
            config,
            below_counts: BTreeMap::new(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ScalingConfig {
        &self.config
    }

    /// Decides for one tier given this period's utilization, the number of
    /// running servers, and the number still booting.
    ///
    /// A tier with a server already booting never scales out again (the
    /// new capacity has not had a chance to absorb load), and a tier at
    /// `max_servers` holds. Scale-in is suppressed at `min_servers` and
    /// while a boot is pending.
    pub fn decide(
        &mut self,
        tier: usize,
        utilization: f64,
        running: usize,
        booting: usize,
    ) -> ScaleDecision {
        if !self.config.scalable_tiers.contains(&tier) {
            return ScaleDecision::Hold;
        }
        if utilization > self.config.up_threshold {
            self.below_counts.insert(tier, 0);
            if booting == 0 && running + booting < self.config.max_servers {
                return ScaleDecision::Out;
            }
            return ScaleDecision::Hold;
        }
        if utilization < self.config.down_threshold {
            let count = self.below_counts.entry(tier).or_insert(0);
            *count += 1;
            if *count >= self.config.down_consecutive
                && booting == 0
                && running > self.config.min_servers
            {
                *count = 0;
                return ScaleDecision::In;
            }
            return ScaleDecision::Hold;
        }
        // Mid-band: reset the slow-stop counter.
        self.below_counts.insert(tier, 0);
        ScaleDecision::Hold
    }

    /// The slow-stop streak currently accumulated for `tier`: consecutive
    /// periods spent below `down_threshold` (zero after a scale-in fires or
    /// any warmer period resets it). Exposed so controllers can journal
    /// *why* a cold tier is still held.
    pub fn below_count(&self, tier: usize) -> u32 {
        self.below_counts.get(&tier).copied().unwrap_or(0)
    }

    /// Resets all per-tier state (e.g. between experiment runs).
    pub fn reset(&mut self) {
        self.below_counts.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> ThresholdPolicy {
        ThresholdPolicy::new(ScalingConfig::default())
    }

    #[test]
    fn hot_period_scales_out_once_boot_pending() {
        let mut p = policy();
        assert_eq!(p.decide(1, 0.9, 1, 0), ScaleDecision::Out);
        // While the new VM boots, a hot period does not add another.
        assert_eq!(p.decide(1, 0.95, 1, 1), ScaleDecision::Hold);
        // Once it joined, further heat may scale again.
        assert_eq!(p.decide(1, 0.95, 2, 0), ScaleDecision::Out);
    }

    #[test]
    fn scale_in_needs_consecutive_cold_periods() {
        let mut p = policy();
        assert_eq!(p.decide(2, 0.1, 2, 0), ScaleDecision::Hold);
        assert_eq!(p.decide(2, 0.1, 2, 0), ScaleDecision::Hold);
        // A warm period resets the streak.
        assert_eq!(p.decide(2, 0.6, 2, 0), ScaleDecision::Hold);
        assert_eq!(p.decide(2, 0.1, 2, 0), ScaleDecision::Hold);
        assert_eq!(p.decide(2, 0.1, 2, 0), ScaleDecision::Hold);
        assert_eq!(p.decide(2, 0.1, 2, 0), ScaleDecision::In);
        // Counter reset after firing.
        assert_eq!(p.decide(2, 0.1, 2, 0), ScaleDecision::Hold);
    }

    #[test]
    fn hot_period_resets_cold_streak() {
        let mut p = policy();
        p.decide(1, 0.1, 2, 0);
        p.decide(1, 0.1, 2, 0);
        assert_eq!(p.decide(1, 0.9, 2, 0), ScaleDecision::Out);
        // Streak restarted: three more cold periods needed.
        assert_eq!(p.decide(1, 0.1, 2, 0), ScaleDecision::Hold);
        assert_eq!(p.decide(1, 0.1, 2, 0), ScaleDecision::Hold);
        assert_eq!(p.decide(1, 0.1, 2, 0), ScaleDecision::In);
    }

    #[test]
    fn respects_min_max_and_scalable_set() {
        let mut p = policy();
        // Tier 0 is not scalable by default.
        assert_eq!(p.decide(0, 0.99, 1, 0), ScaleDecision::Hold);
        // Min servers: never empties a tier.
        for _ in 0..5 {
            assert_eq!(p.decide(1, 0.0, 1, 0), ScaleDecision::Hold);
        }
        // Max servers: stop growing.
        let mut p = ThresholdPolicy::new(ScalingConfig {
            max_servers: 2,
            ..ScalingConfig::default()
        });
        assert_eq!(p.decide(1, 0.9, 2, 0), ScaleDecision::Hold);
    }

    #[test]
    fn below_count_tracks_the_cold_streak() {
        let mut p = policy();
        assert_eq!(p.below_count(1), 0);
        p.decide(1, 0.1, 2, 0);
        p.decide(1, 0.1, 2, 0);
        assert_eq!(p.below_count(1), 2);
        p.decide(1, 0.6, 2, 0);
        assert_eq!(p.below_count(1), 0, "warm period resets");
        for _ in 0..3 {
            p.decide(1, 0.1, 2, 0);
        }
        assert_eq!(p.below_count(1), 0, "firing a scale-in resets");
    }

    #[test]
    fn reset_clears_streaks() {
        let mut p = policy();
        p.decide(1, 0.1, 2, 0);
        p.decide(1, 0.1, 2, 0);
        p.reset();
        assert_eq!(p.decide(1, 0.1, 2, 0), ScaleDecision::Hold);
        assert_eq!(p.decide(1, 0.1, 2, 0), ScaleDecision::Hold);
        assert_eq!(p.decide(1, 0.1, 2, 0), ScaleDecision::In);
    }
}
