//! The Fine-Grained Resource Monitor (paper §IV, first component).
//!
//! A monitoring agent runs "in each VM" — here, one recurring simulation
//! event samples every live server once per second and publishes the
//! samples to a Kafka-style broker, keyed by server name so each server's
//! stream stays ordered. The optimization controller consumes them at its
//! own (15-second) pace; the broker decouples the rates exactly as Kafka
//! does in the paper's deployment.

use std::cell::RefCell;
use std::rc::Rc;

use dcm_bus::{Broker, Retention};
use dcm_ntier::metrics::ServerSample;
use dcm_ntier::world::{SimEngine, World};
use dcm_sim::time::{SimDuration, SimTime};

/// The metrics transport shared by monitor, controller, and recorders.
pub type MetricsBus = Rc<RefCell<Broker<ServerSample>>>;

/// Topic the monitor publishes to.
pub const METRICS_TOPIC: &str = "dcm.metrics";

/// Creates a metrics bus with the standard topic (4 partitions, bounded
/// retention).
pub fn new_metrics_bus() -> MetricsBus {
    let mut broker = Broker::new();
    broker
        .create_topic(METRICS_TOPIC, 4, Retention::by_entries(100_000))
        .expect("fresh broker accepts topic");
    Rc::new(RefCell::new(broker))
}

/// Configuration for the monitoring agents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorConfig {
    /// Sampling interval (the paper's agents report every second).
    pub interval: SimDuration,
    /// Stop sampling at this time.
    pub stop_at: SimTime,
}

impl MonitorConfig {
    /// One-second sampling until `stop_at`.
    pub fn every_second_until(stop_at: SimTime) -> Self {
        MonitorConfig {
            interval: SimDuration::from_secs(1),
            stop_at,
        }
    }
}

/// Installs the recurring sampling event. Samples are produced to
/// [`METRICS_TOPIC`] keyed by server name, timestamped with the window end
/// (millisecond virtual time).
pub fn install_monitor(engine: &mut SimEngine, bus: MetricsBus, config: MonitorConfig) {
    schedule_tick(engine, bus, config);
}

fn schedule_tick(engine: &mut SimEngine, bus: MetricsBus, config: MonitorConfig) {
    let next = engine.now() + config.interval;
    if next > config.stop_at {
        return;
    }
    engine.schedule_at(next, move |world: &mut World, engine: &mut SimEngine| {
        let now = engine.now();
        let samples = world.system.sample_all(now);
        {
            let mut broker = bus.borrow_mut();
            let ts_ms = now.as_nanos() / 1_000_000;
            for sample in samples {
                let key = sample.server.clone();
                broker
                    .produce(METRICS_TOPIC, ts_ms, Some(key), sample)
                    .expect("metrics topic exists");
            }
        }
        schedule_tick(engine, bus, config);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcm_bus::GroupConsumer;
    use dcm_ntier::topology::ThreeTierBuilder;

    #[test]
    fn monitor_publishes_one_sample_per_server_per_second() {
        let (mut world, mut engine) = ThreeTierBuilder::new().counts(1, 2, 1).build();
        let bus = new_metrics_bus();
        install_monitor(
            &mut engine,
            Rc::clone(&bus),
            MonitorConfig::every_second_until(SimTime::from_secs(10)),
        );
        engine.run(&mut world);

        let broker = bus.borrow();
        let mut consumer = GroupConsumer::new("test", METRICS_TOPIC, &broker).unwrap();
        let records = consumer.poll(&broker, 10_000).unwrap();
        // 10 ticks × 4 servers.
        assert_eq!(records.len(), 40);
        // Keyed by server: each server's records share a partition, in
        // timestamp order.
        let mut app1_ts = vec![];
        for r in &records {
            if r.key.as_deref() == Some("app-1") {
                app1_ts.push(r.timestamp_ms);
            }
        }
        assert_eq!(app1_ts.len(), 10);
        assert!(app1_ts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn monitor_stops_at_deadline() {
        let (mut world, mut engine) = ThreeTierBuilder::new().build();
        let bus = new_metrics_bus();
        install_monitor(
            &mut engine,
            Rc::clone(&bus),
            MonitorConfig::every_second_until(SimTime::from_secs(3)),
        );
        engine.run(&mut world);
        assert_eq!(engine.now(), SimTime::from_secs(3));
        let broker = bus.borrow();
        let total: u64 = (0..4)
            .map(|p| broker.high_watermark(METRICS_TOPIC, p).unwrap())
            .sum();
        assert_eq!(total, 9); // 3 ticks × 3 servers
    }
}
