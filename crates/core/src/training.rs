//! Offline model training (paper §V-A, producing Table I).
//!
//! Jmeter-style closed-loop sweeps with zero think time: for each offered
//! concurrency level the system runs to steady state, the monitor measures
//! the bottleneck tier's actual request-processing concurrency and the
//! system throughput, and the `⟨concurrency, throughput⟩` points train the
//! concurrency-aware model by least squares.
//!
//! * **App model** (Tomcat): trained on `1/1/1`, where the app tier is the
//!   bottleneck; default soft resources `1000-100-80`.
//! * **DB model** (MySQL): trained on `1/2/1`, where the database is the
//!   bottleneck; same soft defaults (two app servers ⇒ up to 160
//!   connections flood the DB, tracing the dome past its knee).

use dcm_model::concurrency::{fit_throughput_curve, FitOptions, FitReport};
use dcm_model::lsq::FitError;
use dcm_ntier::topology::{SoftConfig, ThreeTierBuilder};
use dcm_sim::rng::derive_seed;
use dcm_sim::runner::run_ordered;
use dcm_sim::time::{SimDuration, SimTime};
use dcm_workload::generator::UserPopulation;
use dcm_workload::profile::ProfileFactory;
use dcm_workload::report::LoadReport;
use serde::{Deserialize, Serialize};

/// One steady-state measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Offered closed-loop users.
    pub offered: u32,
    /// Measured mean request-processing concurrency per server of the
    /// target tier.
    pub concurrency: f64,
    /// Measured system throughput (requests/second).
    pub throughput: f64,
}

/// Sweep configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOptions {
    /// Settling time excluded from measurement.
    pub warmup: SimDuration,
    /// Measurement window length.
    pub measure: SimDuration,
    /// RNG seed (per level, combined with the level index).
    pub seed: u64,
    /// Use the deterministic demand profile (noise-free calibration).
    pub deterministic: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            warmup: SimDuration::from_secs(10),
            measure: SimDuration::from_secs(40),
            seed: 1,
            deterministic: false,
        }
    }
}

/// A completed training run: the sweep data and the fitted model — one
/// column of Table I.
#[derive(Debug, Clone)]
pub struct TrainingRun {
    /// The measured sweep.
    pub points: Vec<SweepPoint>,
    /// The least-squares fit.
    pub report: FitReport,
}

/// Runs one steady-state closed-loop measurement of `tier` on the given
/// topology and soft configuration.
pub fn measure_steady_state(
    counts: (u32, u32, u32),
    soft: SoftConfig,
    tier: usize,
    users: u32,
    options: &SweepOptions,
) -> SweepPoint {
    let (mut world, mut engine) = ThreeTierBuilder::new()
        .counts(counts.0, counts.1, counts.2)
        .soft(soft)
        .seed(derive_seed(options.seed, u64::from(users)))
        .build();
    let factory = if options.deterministic {
        ProfileFactory::rubbos_deterministic()
    } else {
        ProfileFactory::rubbos()
    };
    let warmup_end = SimTime::ZERO + options.warmup;
    let measure_end = warmup_end + options.measure;
    let population =
        UserPopulation::start_closed_loop(&mut world, &mut engine, factory, users, measure_end);

    // Warm up, then reset every server's measurement window.
    engine.run_until(&mut world, warmup_end);
    let _ = world.system.sample_all(warmup_end);

    engine.run_until(&mut world, measure_end);
    let samples = world.system.sample_all(measure_end);
    let tier_samples: Vec<_> = samples.iter().filter(|s| s.tier == tier).collect();
    let concurrency = if tier_samples.is_empty() {
        0.0
    } else {
        tier_samples.iter().map(|s| s.active_threads).sum::<f64>() / tier_samples.len() as f64
    };
    let throughput = population.with_completions(|log| {
        LoadReport::from_completions(log, warmup_end, measure_end).throughput()
    });
    SweepPoint {
        offered: users,
        concurrency,
        throughput,
    }
}

/// Sweeps the app tier on `1/1/1` (the paper's Tomcat training setup).
///
/// Levels run in parallel across the configured worker count
/// ([`dcm_sim::runner::set_jobs`]); each level builds its own world from a
/// [`derive_seed`]-derived seed, so results are bit-identical to the serial
/// sweep.
pub fn app_tier_sweep(levels: &[u32], options: &SweepOptions) -> Vec<SweepPoint> {
    run_ordered(levels.to_vec(), |users| {
        measure_steady_state((1, 1, 1), SoftConfig::DEFAULT, 1, users, options)
    })
}

/// Sweeps the db tier on `1/2/1` (the paper's MySQL training setup).
/// Parallel over levels like [`app_tier_sweep`].
pub fn db_tier_sweep(levels: &[u32], options: &SweepOptions) -> Vec<SweepPoint> {
    run_ordered(levels.to_vec(), |users| {
        measure_steady_state((1, 2, 1), SoftConfig::DEFAULT, 2, users, options)
    })
}

/// Directly stresses MySQL at a precisely controlled query concurrency —
/// the paper's Fig. 2(a) methodology ("Jmeter … with precisely controlled
/// concurrency to stress the MySQL server", thread pool matched to the
/// workload concurrency).
///
/// The upstream tiers carry negligible demand and wide-open pools, so the
/// closed-loop user count maps 1:1 onto in-flight MySQL queries. Returns
/// the measured MySQL concurrency and **query** throughput (queries/s).
pub fn db_stress_point(concurrency: u32, options: &SweepOptions) -> SweepPoint {
    use dcm_ntier::law::reference;
    use dcm_sim::dist::Dist;
    use dcm_workload::servlets::{Servlet, ServletMix};

    let (mut world, mut engine) = ThreeTierBuilder::new()
        .counts(1, 1, 1)
        .soft(SoftConfig::new(
            concurrency.max(1) * 2,
            concurrency.max(1) * 2,
            concurrency.max(1),
        ))
        .seed(derive_seed(options.seed, u64::from(concurrency)))
        .build();
    let single = ServletMix::from_servlets(vec![Servlet {
        name: "DbStress",
        weight: 1.0,
        web_mult: 1.0,
        app_mult: 1.0,
        db_mult: 1.0,
        db_queries: 2,
    }])
    .expect("single-servlet mix is valid");
    let db_base = if options.deterministic {
        Dist::constant(reference::mysql().s0())
    } else {
        Dist::exponential_mean(reference::mysql().s0())
    };
    let factory = ProfileFactory::rubbos().with_mix(single).with_bases(
        Dist::constant(1e-7),
        Dist::constant(1e-7),
        db_base,
    );

    let warmup_end = SimTime::ZERO + options.warmup;
    let measure_end = warmup_end + options.measure;
    let _population = UserPopulation::start_closed_loop(
        &mut world,
        &mut engine,
        factory,
        concurrency,
        measure_end,
    );
    engine.run_until(&mut world, warmup_end);
    let _ = world.system.sample_all(warmup_end);
    engine.run_until(&mut world, measure_end);
    let samples = world.system.sample_all(measure_end);
    let db = samples
        .iter()
        .find(|s| s.tier == 2)
        .expect("db tier sampled");
    SweepPoint {
        offered: concurrency,
        concurrency: db.active_threads,
        throughput: db.throughput,
    }
}

/// Sweeps MySQL under direct stress over the given concurrency levels.
/// Parallel over levels like [`app_tier_sweep`].
pub fn db_stress_sweep(levels: &[u32], options: &SweepOptions) -> Vec<SweepPoint> {
    run_ordered(levels.to_vec(), |c| db_stress_point(c, options))
}

/// The default offered-concurrency levels for the app sweep (1 → 200, as
/// in the paper's "workload with concurrency from 1 to 200").
pub fn default_app_levels() -> Vec<u32> {
    vec![
        1, 2, 3, 5, 8, 12, 16, 20, 25, 30, 40, 55, 70, 90, 100, 130, 160, 200,
    ]
}

/// The default offered levels for the `1/2/1` db sweep (drives MySQL
/// concurrency from single digits toward the 160-connection cap).
pub fn default_db_levels() -> Vec<u32> {
    vec![4, 8, 16, 30, 50, 80, 120, 160, 200, 260, 320, 400, 500]
}

/// Default controlled-concurrency levels for direct MySQL stress: dense
/// around the knee, sparse into the thrash region (the model family cannot
/// represent the cliff, so flooding it with post-cliff points would fit
/// neither region — the same restriction the paper's 1–200 training range
/// imposes).
pub fn default_db_stress_levels() -> Vec<u32> {
    vec![
        1, 2, 4, 6, 9, 12, 16, 20, 25, 30, 36, 42, 50, 60, 70, 80, 90, 100,
    ]
}

/// Fits a model to sweep points.
///
/// # Errors
///
/// Propagates [`FitError`] from the optimizer.
pub fn fit_sweep(points: &[SweepPoint], servers: u32) -> Result<FitReport, FitError> {
    let data: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.concurrency, p.throughput))
        .collect();
    fit_throughput_curve(&data, servers, FitOptions::default())
}

/// Robust variant of [`fit_sweep`]: fit, discard points whose relative
/// residual exceeds `trim` (default 0.25), refit — up to two rounds.
///
/// Real servers fall off a cliff past deep saturation (thrash) that the
/// paper's quadratic family cannot represent; a plain least-squares fit
/// over such points compromises the healthy region where the controller
/// actually operates. Trimming recovers the family's best description of
/// the well-behaved regime (the paper's high `R²` over its training range
/// implies its data stayed there).
///
/// # Errors
///
/// Propagates [`FitError`]; falls back to the untrimmed fit if trimming
/// would leave fewer than 6 points.
pub fn fit_sweep_robust(
    points: &[SweepPoint],
    servers: u32,
    trim: f64,
) -> Result<FitReport, FitError> {
    let mut current: Vec<SweepPoint> = points.to_vec();
    let mut report = fit_sweep(&current, servers)?;
    for _ in 0..2 {
        let kept: Vec<SweepPoint> = current
            .iter()
            .copied()
            .filter(|p| {
                let predicted = report.model.predict_throughput(p.concurrency);
                (predicted - p.throughput).abs() <= trim * p.throughput.max(1e-9)
            })
            .collect();
        if kept.len() < 6 || kept.len() == current.len() {
            break;
        }
        current = kept;
        report = fit_sweep(&current, servers)?;
    }
    Ok(report)
}

/// Trains the app-tier (Tomcat) model — Table I, first column.
///
/// # Errors
///
/// Propagates [`FitError`] from the optimizer.
pub fn train_app_model(options: &SweepOptions) -> Result<TrainingRun, FitError> {
    let points = app_tier_sweep(&default_app_levels(), options);
    let report = fit_sweep_robust(&points, 1, 0.25)?;
    Ok(TrainingRun { points, report })
}

/// Trains the db-tier (MySQL) model — Table I, second column.
///
/// Uses the controlled-concurrency direct stress of the paper's §II rather
/// than the end-to-end `1/2/1` sweep: with the app tier in front, its own
/// contention caps how much query concurrency ever reaches MySQL, so the
/// knee region cannot be traced through the full stack (see
/// [`db_tier_sweep`] for that distorted measurement, kept for comparison).
/// Throughput here is **queries/second**, so the fitted `γ` absorbs the
/// visit ratio exactly as in the paper.
///
/// # Errors
///
/// Propagates [`FitError`] from the optimizer.
pub fn train_db_model(options: &SweepOptions) -> Result<TrainingRun, FitError> {
    let points = db_stress_sweep(&default_db_stress_levels(), options);
    let report = fit_sweep_robust(&points, 1, 0.25)?;
    Ok(TrainingRun { points, report })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_options() -> SweepOptions {
        SweepOptions {
            warmup: SimDuration::from_secs(5),
            measure: SimDuration::from_secs(20),
            seed: 7,
            deterministic: false,
        }
    }

    #[test]
    fn steady_state_measurement_is_sane() {
        let p = measure_steady_state((1, 1, 1), SoftConfig::DEFAULT, 1, 20, &quick_options());
        assert_eq!(p.offered, 20);
        // Closed loop with zero think time keeps ~20 requests in flight;
        // most of their time is spent at the bottleneck app tier.
        assert!(
            p.concurrency > 10.0 && p.concurrency <= 20.5,
            "{}",
            p.concurrency
        );
        assert!(p.throughput > 40.0, "throughput {}", p.throughput);
    }

    #[test]
    fn app_sweep_traces_a_dome() {
        let levels = [2, 10, 20, 60, 100];
        let points = app_tier_sweep(&levels, &quick_options());
        // Throughput at the knee beats both very low and very high
        // concurrency.
        let x: Vec<f64> = points.iter().map(|p| p.throughput).collect();
        assert!(x[2] > x[0] * 1.4, "rising flank {x:?}");
        assert!(x[2] > x[4], "falling flank {x:?}");
    }

    #[test]
    fn app_model_training_recovers_knee_near_20() {
        let run = train_app_model(&quick_options()).expect("fit converges");
        assert!(run.report.r_squared > 0.9, "r2 {}", run.report.r_squared);
        // The dome's peak region is flat (within ~1 % over 18–30), so the
        // fitted knee carries that uncertainty; the paper's 20 sits inside.
        let n_star = run.report.model.optimal_concurrency();
        assert!(
            (15..=30).contains(&n_star),
            "expected knee near 20, got {n_star}"
        );
    }

    #[test]
    fn db_model_training_recovers_knee_near_36() {
        let run = train_db_model(&quick_options()).expect("fit converges");
        assert!(run.report.r_squared > 0.85, "r2 {}", run.report.r_squared);
        let n_star = run.report.model.optimal_concurrency();
        assert!(
            (22..=48).contains(&n_star),
            "expected knee near 36, got {n_star}"
        );
        // The sweep traces a genuine dome: low-concurrency points deliver a
        // fraction of the peak.
        let first = run.points.first().expect("sweep non-empty");
        let best = run
            .points
            .iter()
            .map(|p| p.throughput)
            .fold(0.0f64, f64::max);
        assert!(first.throughput < 0.4 * best, "rising flank missing");
    }

    #[test]
    fn db_stress_pins_concurrency() {
        let p = db_stress_point(36, &quick_options());
        assert!((p.concurrency - 36.0).abs() < 1.5, "N {}", p.concurrency);
        // Near the knee the measured query throughput approaches the law's
        // peak (~169 q/s).
        assert!(p.throughput > 150.0, "Xq {}", p.throughput);
    }
}
