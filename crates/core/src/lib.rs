//! # dcm-core — Dynamic Concurrency Management
//!
//! The paper's contribution, assembled from the substrate crates: a
//! two-level autoscaling framework for n-tier applications that scales
//! **hardware** (VMs per tier) and **soft resources** (thread pools, DB
//! connection pools) together.
//!
//! The architecture mirrors the paper's Fig. 3:
//!
//! * [`monitor`] — the Fine-Grained Resource Monitor: per-second server
//!   samples published to a Kafka-style broker ([`dcm_bus`]).
//! * [`aggregate`] — turning raw samples into per-tier control inputs.
//! * [`controller`] — the Optimization Controller ([`controller::Dcm`]) and
//!   the hardware-only baseline ([`controller::Ec2AutoScale`]); both share
//!   the quick-start/slow-stop threshold policy ([`policy`]).
//! * [`mpc`] — the model-predictive controller: exact-MVA planning over
//!   candidate topologies and pool sizes via [`dcm_oracle::planner`].
//! * [`zoo`] — league baselines: M/M/c-style staffing ([`zoo::ThresholdMmc`])
//!   and Holt-trend predictive staffing ([`zoo::HoltWinters`]).
//! * [`agents`] — the two actuators: VM-agent (boot/drain VMs) and
//!   APP-agent (runtime pool resizing).
//! * [`training`] — the offline §V-A pipeline that fits the
//!   concurrency-aware model from closed-loop sweeps (Table I).
//! * [`experiment`] — the §V-B harness: trace-driven runs producing every
//!   series of Fig. 5.
//!
//! ## Example: a miniature Fig. 5 run
//!
//! ```
//! use dcm_core::controller::Ec2AutoScale;
//! use dcm_core::experiment::{run_trace_experiment, TraceExperimentConfig};
//! use dcm_core::policy::ScalingConfig;
//! use dcm_sim::time::SimTime;
//! use dcm_workload::traces;
//!
//! let mut config = TraceExperimentConfig::figure5(traces::step(20, 150, 20.0));
//! config.horizon = SimTime::from_secs(60); // keep the doctest quick
//! let result = run_trace_experiment(&config, |bus| {
//!     Ec2AutoScale::new(bus, ScalingConfig::default())
//! });
//! assert_eq!(result.counters.in_flight(), 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod agents;
pub mod aggregate;
pub mod controller;
pub mod experiment;
pub mod monitor;
pub mod mpc;
pub mod policy;
pub mod predictor;
pub mod training;
pub mod zoo;

pub use agents::{Action, ActionRecord, AppAgent, VmAgent};
pub use aggregate::{aggregate_by_tier, TierWindow};
pub use controller::{Controller, Dcm, DcmConfig, DcmModels, Ec2AutoScale};
pub use experiment::{
    run_mesh_trace_experiment, run_trace_experiment, steady_state_throughput,
    MeshExperimentConfig, ObsArtifacts, ObsConfig, SteadyStateOptions, SteadyStateReport,
    TraceExperimentConfig, TraceRunResult,
};
pub use monitor::{install_monitor, new_metrics_bus, MetricsBus, MonitorConfig, METRICS_TOPIC};
pub use mpc::{ModelPredictive, MpcConfig};
pub use policy::{ScaleDecision, ScalingConfig, ThresholdPolicy};
pub use predictor::{HoltConfig, HoltTrend};
pub use training::{train_app_model, train_db_model, SweepOptions, SweepPoint, TrainingRun};
pub use zoo::{HoltWinters, StaffingConfig, ThresholdMmc};
