//! Model-predictive concurrency management: plan with the exact closed
//! network, act on the cheapest plan that meets the SLO.
//!
//! Every control period the controller maps the observed topology and the
//! work-rate-law demand estimates onto [`dcm_oracle::planner`]'s closed
//! product-form network, enumerates candidate actions — VMs per scalable
//! tier within caps and per-tick step limits, crossed with thread/
//! connection-pool sizes around each tier model's `N*` — predicts each
//! candidate's throughput and response time with exact MVA, and applies
//! the cheapest plan whose predicted latency meets the SLO (falling back
//! to the best-effort plan when none does).
//!
//! Demands are estimated online from the monitor stream by inverting the
//! CPU sensor's work-rate law — `S⁰_i = U_i·k_i·(n*/f(n*)) / X_i`, the
//! zero-contention per-visit demand (delivered work is `X·S⁰` no matter
//! the contention level) — then re-contended for each candidate's pool
//! size with the fitted concurrency law, so the planner's monotonicity
//! guarantees hold while the concurrency trade-off (paper Eq. 5) still
//! shapes the choice. Estimates are invalidated whenever the topology or
//! soft allocation changes shape — points measured under a different
//! configuration describe a different system.
//!
//! The controller closes the same failure blind spots the DCM controller
//! does: a tier gone silent while the rest of the system reports is
//! treated as wedged after [`SILENT_TICKS_FOR_PRESSURE`] periods (a dead
//! tier immediately), and the plan the controller last committed to is
//! remembered as desired capacity, so a crashed VM is re-provisioned on
//! the next tick without waiting for load to re-trip anything.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use dcm_ntier::world::{SimEngine, World};
use dcm_obs::journal::{Decision, DecisionJournal, JournalEntry, PlanProvenance, TierObservation};
use dcm_oracle::planner::{predict, PlannedTier, Prediction};

use crate::agents::{ActionRecord, AppAgent, VmAgent};
use crate::aggregate::TierWindow;
use crate::controller::{Controller, DcmModels, MetricsFeed, SILENT_TICKS_FOR_PRESSURE};
use crate::monitor::MetricsBus;

/// Effective concurrency ceiling for tiers the MPC does not pool-manage
/// (the web tier's 1000-thread default never binds at league populations).
const UNMANAGED_CONCURRENCY: u32 = 1024;

/// EMA weight for the demand/visit estimators.
const EMA_ALPHA: f64 = 0.3;

/// MPC configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MpcConfig {
    /// Mean response-time SLO the plan must meet (seconds).
    pub slo_secs: f64,
    /// Client think time `Z` for the interactive-law population estimate.
    pub think_time_secs: f64,
    /// Tiers the controller may scale.
    pub scalable_tiers: Vec<usize>,
    /// Never scale a tier below this many servers.
    pub min_servers: usize,
    /// Never scale a tier above this many servers.
    pub max_servers: usize,
    /// Largest net VM change per tier per tick the planner may propose.
    pub step_limit: usize,
    /// Plan for `population × headroom` users so the plan leads the ramp
    /// instead of chasing it (boot delays are long; predictions are for
    /// the steady state the system is heading into).
    pub population_headroom: f64,
    /// Index of the application tier (thread-pool actuated).
    pub app_tier: usize,
    /// Index of the database tier (connection-pool actuated via the app
    /// tier).
    pub db_tier: usize,
    /// Multiplier on `N*` for the realistic pool size (same rationale as
    /// [`crate::controller::DcmConfig::headroom`]).
    pub pool_headroom: f64,
    /// Hysteresis against capacity flapping: a plan that surrenders a VM
    /// relative to the current allocation only qualifies as SLO-meeting
    /// when its predicted response clears `slo_secs × scale_in_margin`.
    pub scale_in_margin: f64,
}

impl Default for MpcConfig {
    fn default() -> Self {
        MpcConfig {
            slo_secs: 1.0,
            think_time_secs: 3.0,
            scalable_tiers: vec![1, 2],
            min_servers: 1,
            max_servers: 8,
            step_limit: 2,
            population_headroom: 1.0,
            app_tier: 1,
            db_tier: 2,
            pool_headroom: 1.1,
            scale_in_margin: 0.9,
        }
    }
}

/// Per-tier online demand estimate (work-rate-law inversion,
/// EMA-smoothed).
#[derive(Debug, Clone, Copy)]
struct TierEstimate {
    /// Zero-contention per-visit demand (seconds): `U·k·(n*/f(n*)) / X`,
    /// already contention-free because delivered work is `X·S⁰`
    /// regardless of how contention slows individual requests.
    base_demand: f64,
    /// Visit ratio relative to the front tier.
    visits: f64,
}

/// The model-predictive controller.
pub struct ModelPredictive {
    feed: MetricsFeed,
    vm: VmAgent,
    app: AppAgent,
    models: DcmModels,
    config: MpcConfig,
    estimates: BTreeMap<usize, TierEstimate>,
    silence: BTreeMap<usize, u32>,
    /// Capacity the last committed plan called for, per scalable tier
    /// (crash-replacement memory).
    desired: BTreeMap<usize, usize>,
    /// `(per-tier counts, threads, conns)` shape under which the current
    /// estimates were measured; a change invalidates them.
    last_shape: Option<(Vec<usize>, u32, u32)>,
    /// Soft allocation the last plan committed to.
    committed_pools: Option<(u32, u32)>,
    /// Predicted throughput of the last committed plan, for the
    /// predicted-vs-realized journal line.
    last_predicted_x: Option<f64>,
    planner_evals: u64,
    journal: Option<Rc<RefCell<DecisionJournal>>>,
}

impl std::fmt::Debug for ModelPredictive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelPredictive")
            .field("config", &self.config)
            .field("planner_evals", &self.planner_evals)
            .finish_non_exhaustive()
    }
}

/// One enumerated candidate plan.
#[derive(Debug, Clone)]
struct Candidate {
    app_servers: usize,
    db_servers: usize,
    app_threads: u32,
    db_conns_total: u32,
    prediction: Prediction,
}

impl Candidate {
    /// VM cost the league charges for (web tier is fixed).
    fn cost(&self) -> usize {
        self.app_servers + self.db_servers
    }
}

impl ModelPredictive {
    /// Creates the controller reading from `bus`, planning with the given
    /// fitted tier models.
    pub fn new(bus: MetricsBus, config: MpcConfig, models: DcmModels) -> Self {
        ModelPredictive {
            feed: MetricsFeed::new(bus, "mpc"),
            vm: VmAgent::new(),
            app: AppAgent::new(),
            models,
            config,
            estimates: BTreeMap::new(),
            silence: BTreeMap::new(),
            desired: BTreeMap::new(),
            last_shape: None,
            committed_pools: None,
            last_predicted_x: None,
            planner_evals: 0,
            journal: None,
        }
    }

    /// Tiers with a current demand estimate (diagnostics/tests).
    pub fn estimated_tiers(&self) -> Vec<usize> {
        self.estimates.keys().copied().collect()
    }

    /// Contention factor `S*(n)/S⁰` of the tier's fitted law at
    /// concurrency `n` (1.0 for unmodeled tiers).
    fn contention(&self, tier: usize, n: f64) -> f64 {
        let model = if tier == self.config.app_tier {
            &self.models.app
        } else if tier == self.config.db_tier {
            &self.models.db
        } else {
            return 1.0;
        };
        model.adjusted_service_time(n) / model.s0
    }

    /// Peak deliverable work rate `n*/f(n*)` of the tier's fitted law —
    /// the denominator of the simulated CPU sensor (1.0 for unmodeled
    /// tiers, degrading to the plain utilization law there).
    fn peak_work_rate(&self, tier: usize) -> f64 {
        let model = if tier == self.config.app_tier {
            &self.models.app
        } else if tier == self.config.db_tier {
            &self.models.db
        } else {
            return 1.0;
        };
        let n_star = model.optimal_concurrency();
        if n_star == u32::MAX {
            return 1.0;
        }
        let n = f64::from(n_star.min(10_000));
        n / (model.adjusted_service_time(n) / model.s0)
    }

    fn update_estimates(&mut self, windows: &BTreeMap<usize, TierWindow>) {
        let Some(front) = windows.get(&0) else {
            return;
        };
        let x0 = front.total_throughput;
        if x0 <= 0.0 {
            return;
        }
        for (&tier, w) in windows {
            let x_i = w.total_throughput;
            if x_i <= 0.0 || w.mean_cpu_util <= 0.0 {
                continue;
            }
            // The CPU sensor reports delivered work over the peak
            // deliverable work rate `n*/f(n*)`, and delivered work is
            // `X·S⁰` (contention slows progress, it does not add work), so
            // `S⁰ = U·k·(n*/f(n*)) / X` recovers the zero-contention
            // per-visit demand directly: local to the tier (thread
            // occupancy would fold in downstream wait) and already
            // contention-free (candidates re-apply their own pool's
            // contention factor).
            let base = w.mean_cpu_util * w.servers as f64 * self.peak_work_rate(tier) / x_i;
            let visits = if tier == 0 { 1.0 } else { x_i / x0 };
            let entry = self.estimates.entry(tier).or_insert(TierEstimate {
                base_demand: base,
                visits,
            });
            entry.base_demand += EMA_ALPHA * (base - entry.base_demand);
            entry.visits += EMA_ALPHA * (visits - entry.visits);
        }
    }

    /// Interactive-law population estimate `N = X·(R+Z)`, with per-tier
    /// dwell standing in for residence (falling back to the demand
    /// estimate when a tier had no completions this window).
    fn estimate_population(&self, windows: &BTreeMap<usize, TierWindow>) -> Option<u32> {
        let x0 = windows.get(&0)?.total_throughput;
        if x0 <= 0.0 {
            return Some(1);
        }
        let mut response = 0.0;
        for (&tier, est) in &self.estimates {
            let dwell = windows
                .get(&tier)
                .and_then(|w| w.mean_dwell)
                .unwrap_or(est.base_demand);
            response += est.visits * dwell;
        }
        let n = x0 * (response + self.config.think_time_secs) * self.config.population_headroom;
        Some((n.ceil() as u32).max(1))
    }

    /// Enumerates and evaluates every candidate within caps and step
    /// limits; returns them in deterministic enumeration order.
    fn enumerate(&mut self, world: &World, population: u32) -> Vec<Candidate> {
        let (lo, hi) = (self.config.min_servers, self.config.max_servers);
        let span = |cur: usize| {
            let from = cur.saturating_sub(self.config.step_limit).max(lo);
            let to = (cur + self.config.step_limit).min(hi);
            from..=to
        };
        let cur_app = world.system.running_count(self.config.app_tier)
            + world.system.booting_count(self.config.app_tier);
        let cur_db = world.system.running_count(self.config.db_tier)
            + world.system.booting_count(self.config.db_tier);
        let web_servers = world.system.running_count(0).max(1);

        let n_app = self.models.app.optimal_concurrency().min(10_000);
        let n_db = self.models.db.optimal_concurrency().min(10_000);
        let headroom = self.config.pool_headroom;
        let thread_options = [n_app, (f64::from(n_app) * headroom).ceil() as u32];
        let conn_options = [n_db, (f64::from(n_db) * headroom).ceil() as u32];

        let web = self.estimates[&0];
        let app = self.estimates[&self.config.app_tier];
        let db = self.estimates[&self.config.db_tier];

        let mut out = Vec::new();
        for a in span(cur_app.max(1)) {
            for d in span(cur_db.max(1)) {
                for &threads in &thread_options {
                    for &conns_per_db in &conn_options {
                        let tiers = vec![
                            PlannedTier {
                                servers: web_servers as u32,
                                concurrency: UNMANAGED_CONCURRENCY,
                                demand: web.base_demand.max(1e-6),
                                visits: web.visits.max(1e-6),
                            },
                            PlannedTier {
                                servers: a as u32,
                                concurrency: threads,
                                demand: (app.base_demand
                                    * self.contention(self.config.app_tier, f64::from(threads)))
                                .max(1e-6),
                                visits: app.visits.max(1e-6),
                            },
                            PlannedTier {
                                servers: d as u32,
                                concurrency: conns_per_db,
                                demand: (db.base_demand
                                    * self
                                        .contention(self.config.db_tier, f64::from(conns_per_db)))
                                .max(1e-6),
                                visits: db.visits.max(1e-6),
                            },
                        ];
                        let prediction = predict(&tiers, self.config.think_time_secs, population);
                        self.planner_evals += 1;
                        out.push(Candidate {
                            app_servers: a,
                            db_servers: d,
                            app_threads: threads,
                            db_conns_total: conns_per_db * d as u32,
                            prediction,
                        });
                    }
                }
            }
        }
        out
    }

    /// The cheapest SLO-meeting candidate, or the lowest-response
    /// best-effort one. Ties break toward fewer VMs, then lower predicted
    /// response, then enumeration order — all deterministic.
    fn choose(
        &self,
        candidates: &[Candidate],
        cur_app: usize,
        cur_db: usize,
    ) -> (Candidate, &'static str) {
        let slo = self.config.slo_secs;
        let mut best_meeting: Option<Candidate> = None;
        let mut best_effort: Option<Candidate> = None;
        for c in candidates {
            // Giving capacity back needs margin, not a borderline pass.
            let shrinks = c.app_servers < cur_app || c.db_servers < cur_db;
            let bar = if shrinks {
                slo * self.config.scale_in_margin
            } else {
                slo
            };
            if c.prediction.response_time <= bar {
                let better = match &best_meeting {
                    None => true,
                    Some(b) => {
                        c.cost() < b.cost()
                            || (c.cost() == b.cost()
                                && c.prediction.response_time < b.prediction.response_time - 1e-12)
                    }
                };
                if better {
                    best_meeting = Some(c.clone());
                }
            }
            let better = match &best_effort {
                None => true,
                Some(b) => c.prediction.response_time < b.prediction.response_time - 1e-12,
            };
            if better {
                best_effort = Some(c.clone());
            }
        }
        match best_meeting {
            Some(c) => (c, "meets-slo-cheapest"),
            None => (
                best_effort.expect("candidate set is never empty"),
                "best-effort",
            ),
        }
    }

    /// Scales `tier` toward `target` VMs, one provision/drain at a time.
    fn drive_tier(
        &mut self,
        world: &mut World,
        engine: &mut SimEngine,
        tier: usize,
        target: usize,
        decisions: &mut Vec<Decision>,
        reason: &str,
    ) {
        let mut have = world.system.running_count(tier) + world.system.booting_count(tier);
        while have < target {
            if self.vm.scale_out(world, engine, tier).is_none() {
                break;
            }
            have += 1;
            decisions.push(Decision {
                action: "scale-out".to_string(),
                tier,
                value: Some(have as u32),
                applied: true,
                reason: reason.to_string(),
            });
        }
        while have > target {
            if self.vm.scale_in(world, engine, tier).is_none() {
                break;
            }
            have -= 1;
            decisions.push(Decision {
                action: "scale-in".to_string(),
                tier,
                value: Some(have as u32),
                applied: true,
                reason: reason.to_string(),
            });
        }
    }

    /// Builds the journal observation for one tier and maintains the
    /// silence streaks; returns whether the tier must be force-scaled
    /// (dead or wedged-silent).
    fn observe_tier(
        &mut self,
        world: &World,
        tier: usize,
        windows: &BTreeMap<usize, TierWindow>,
    ) -> (TierObservation, bool) {
        let running = world.system.running_count(tier);
        let booting = world.system.booting_count(tier);
        let mut obs = TierObservation {
            tier,
            pressure: 0.0,
            signal: String::new(),
            utilization: None,
            throughput: None,
            concurrency: None,
            mean_dwell: None,
            queue: None,
            running,
            booting,
            silent_streak: 0,
        };
        match windows.get(&tier) {
            Some(w) => {
                self.silence.insert(tier, 0);
                obs.signal = "cpu-util".to_string();
                obs.pressure = w.mean_cpu_util;
                obs.utilization = Some(w.mean_cpu_util);
                obs.throughput = Some(w.total_throughput);
                obs.concurrency = Some(w.mean_concurrency);
                obs.mean_dwell = w.mean_dwell;
                obs.queue = Some(w.mean_thread_queue);
                (obs, false)
            }
            None => {
                let streak = self.silence.entry(tier).or_insert(0);
                *streak += 1;
                obs.signal = "silent".to_string();
                obs.silent_streak = *streak;
                if windows.is_empty() {
                    // Monitor itself silent: no evidence of anything.
                    return (obs, false);
                }
                let dead = running == 0 && booting == 0;
                let wedged = dead || *streak >= SILENT_TICKS_FOR_PRESSURE;
                if wedged {
                    obs.pressure = f64::INFINITY;
                }
                (obs, wedged)
            }
        }
    }
}

impl Controller for ModelPredictive {
    fn on_tick(&mut self, world: &mut World, engine: &mut SimEngine) {
        let windows = self.feed.poll_windows();

        // Estimates are only comparable within one configuration shape.
        let counts: Vec<usize> = (0..world.system.tier_count())
            .map(|t| world.system.running_count(t) + world.system.booting_count(t))
            .collect();
        let (threads_now, conns_now) = self.committed_pools.unwrap_or((0, 0));
        let shape = (counts, threads_now, conns_now);
        if self.last_shape.as_ref() != Some(&shape) {
            if self.last_shape.is_some() {
                self.estimates.clear();
            }
            self.last_shape = Some(shape);
        }
        self.update_estimates(&windows);

        // Predicted-vs-realized: compare last tick's committed prediction
        // against the throughput the system just delivered.
        let measured_x = windows.get(&0).map(|w| w.total_throughput);
        let prediction_error = match (self.last_predicted_x, measured_x) {
            (Some(pred), Some(meas)) if pred > 0.0 => Some((pred - meas).abs() / pred),
            _ => None,
        };

        let scalable = self.config.scalable_tiers.clone();
        let mut observations = Vec::new();
        let mut decisions: Vec<Decision> = Vec::new();
        let mut forced: Vec<usize> = Vec::new();
        for &tier in &scalable {
            let (obs, wedged) = self.observe_tier(world, tier, &windows);
            if wedged {
                forced.push(tier);
            }
            observations.push(obs);
        }

        // Blind spot 1: silent/dead tiers get capacity now, not after the
        // planner regains signal (it never will while the tier is down).
        for &tier in &forced {
            let have = world.system.running_count(tier) + world.system.booting_count(tier);
            let target = (have + 1).clamp(self.config.min_servers, self.config.max_servers);
            self.drive_tier(
                world,
                engine,
                tier,
                target,
                &mut decisions,
                "tier silent/dead under load: forced scale-out",
            );
        }

        // Blind spot 2: the last committed plan is remembered as desired
        // capacity; a crashed VM is replaced without re-planning (the
        // estimates were just invalidated by the shape change, so the
        // planner is blind exactly when the crash happens).
        for &tier in &scalable {
            let desired = match self.desired.get(&tier) {
                Some(&d) => d.clamp(self.config.min_servers, self.config.max_servers),
                None => continue,
            };
            let before = world.system.running_count(tier) + world.system.booting_count(tier);
            if before < desired {
                self.drive_tier(
                    world,
                    engine,
                    tier,
                    desired,
                    &mut decisions,
                    "capacity below committed plan (VM loss); re-provisioning",
                );
                decisions.push(Decision {
                    action: "replace-lost".to_string(),
                    tier,
                    value: Some(desired as u32),
                    applied: true,
                    reason: format!("capacity {before} below committed plan {desired}"),
                });
            }
        }

        // Plan only with a full set of demand estimates; until then the
        // forced-capacity paths above are the whole policy.
        let have_estimates = self.estimates.contains_key(&0)
            && self.estimates.contains_key(&self.config.app_tier)
            && self.estimates.contains_key(&self.config.db_tier);
        let mut plan = None;
        if have_estimates {
            if let Some(population) = self.estimate_population(&windows) {
                let cur_app = world.system.running_count(self.config.app_tier)
                    + world.system.booting_count(self.config.app_tier);
                let cur_db = world.system.running_count(self.config.db_tier)
                    + world.system.booting_count(self.config.db_tier);
                let candidates = self.enumerate(world, population);
                let (chosen, reason) = self.choose(&candidates, cur_app, cur_db);
                self.drive_tier(
                    world,
                    engine,
                    self.config.app_tier,
                    chosen.app_servers,
                    &mut decisions,
                    reason,
                );
                self.drive_tier(
                    world,
                    engine,
                    self.config.db_tier,
                    chosen.db_servers,
                    &mut decisions,
                    reason,
                );
                self.desired
                    .insert(self.config.app_tier, chosen.app_servers);
                self.desired.insert(self.config.db_tier, chosen.db_servers);

                let k_app = (world.system.running_count(self.config.app_tier)
                    + world.system.booting_count(self.config.app_tier))
                .max(1) as u32;
                let conns_per_app = chosen.db_conns_total.div_ceil(k_app).max(1);
                let before = self.app.log().len();
                self.app
                    .set_tier_threads(world, engine, self.config.app_tier, chosen.app_threads);
                if self.app.log().len() > before {
                    decisions.push(Decision {
                        action: "set-threads".to_string(),
                        tier: self.config.app_tier,
                        value: Some(chosen.app_threads),
                        applied: true,
                        reason: format!("plan pool size {}", chosen.app_threads),
                    });
                }
                let before = self.app.log().len();
                self.app
                    .set_tier_conns(world, engine, self.config.app_tier, conns_per_app);
                if self.app.log().len() > before {
                    decisions.push(Decision {
                        action: "set-conns".to_string(),
                        tier: self.config.app_tier,
                        value: Some(conns_per_app),
                        applied: true,
                        reason: format!(
                            "plan db concurrency {} split across {k_app} app server(s)",
                            chosen.db_conns_total
                        ),
                    });
                }
                self.committed_pools = Some((chosen.app_threads, conns_per_app));
                self.last_predicted_x = Some(chosen.prediction.throughput);
                plan = Some(PlanProvenance {
                    candidates: candidates.len() as u32,
                    predicted_throughput: chosen.prediction.throughput,
                    predicted_response: chosen.prediction.response_time,
                    chosen: format!(
                        "app={}x{} db={}x{} N={}",
                        chosen.app_servers,
                        chosen.app_threads,
                        chosen.db_servers,
                        chosen.db_conns_total,
                        chosen.prediction.population,
                    ),
                    reason: reason.to_string(),
                    prediction_error,
                });
            }
        }
        if plan.is_none() {
            decisions.push(Decision {
                action: "hold".to_string(),
                tier: self.config.app_tier,
                value: None,
                applied: false,
                reason: "demand estimates not yet seeded; planning deferred".to_string(),
            });
        }

        if let Some(journal) = &self.journal {
            journal.borrow_mut().push(JournalEntry {
                at: engine.now(),
                controller: "MPC".to_string(),
                observations,
                fits: Vec::new(),
                decisions,
                plan,
            });
        }
    }

    fn actions(&self) -> Vec<ActionRecord> {
        let mut all: Vec<ActionRecord> = self
            .vm
            .log()
            .iter()
            .chain(self.app.log().iter())
            .cloned()
            .collect();
        all.sort_by_key(|r| r.at);
        all
    }

    fn name(&self) -> &'static str {
        "MPC"
    }

    fn attach_journal(&mut self, journal: Rc<RefCell<DecisionJournal>>) {
        self.journal = Some(journal);
    }

    fn planner_evals(&self) -> u64 {
        self.planner_evals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{new_metrics_bus, METRICS_TOPIC};
    use dcm_model::concurrency::ConcurrencyModel;
    use dcm_ntier::flow;
    use dcm_ntier::law::reference;
    use dcm_ntier::metrics::ServerSample;
    use dcm_ntier::topology::ThreeTierBuilder;
    use dcm_sim::time::SimTime;

    fn models() -> DcmModels {
        let app = reference::tomcat();
        let db = reference::mysql();
        DcmModels {
            app: ConcurrencyModel::new(app.s0(), app.alpha(), app.beta(), 1.0, 1),
            db: ConcurrencyModel::new(db.s0(), db.alpha(), db.beta(), 1.0, 1),
        }
    }

    fn sample(server: &str, tier: usize, cpu: f64, x: f64) -> ServerSample {
        ServerSample {
            server: server.into(),
            tier,
            window_start: SimTime::ZERO,
            window_end: SimTime::from_secs(1),
            cpu_util: cpu,
            busy_fraction: cpu,
            active_threads: 1.0,
            active_conns: None,
            completed: x as u64,
            throughput: x,
            mean_dwell: Some(0.05),
            thread_pool_size: 100,
            conn_pool_size: None,
            thread_queue: 0,
            conn_queue: 0,
        }
    }

    fn produce(bus: &MetricsBus, ts_ms: u64, sample: ServerSample) {
        let key = sample.server.clone();
        bus.borrow_mut()
            .produce(METRICS_TOPIC, ts_ms, Some(key), sample)
            .expect("metrics topic exists");
    }

    fn feed_all(bus: &MetricsBus, ts_ms: u64, cpu: f64) {
        produce(bus, ts_ms, sample("web-1", 0, cpu, 50.0));
        produce(bus, ts_ms, sample("app-1", 1, cpu, 50.0));
        produce(bus, ts_ms, sample("db-1", 2, cpu, 50.0));
    }

    #[test]
    fn seeds_estimates_then_plans_and_journals_provenance() {
        let (mut world, mut engine) = ThreeTierBuilder::new().build();
        let bus = new_metrics_bus();
        let mut mpc = ModelPredictive::new(Rc::clone(&bus), MpcConfig::default(), models());
        let journal = Rc::new(RefCell::new(DecisionJournal::new()));
        mpc.attach_journal(Rc::clone(&journal));

        // Tick 1 with metrics: estimates seed and a plan is produced.
        feed_all(&bus, 1_000, 0.5);
        mpc.on_tick(&mut world, &mut engine);
        assert_eq!(mpc.estimated_tiers(), vec![0, 1, 2]);
        assert!(mpc.planner_evals() > 0, "candidates must be evaluated");
        let entry = journal.borrow().entries()[0].clone();
        let plan = entry.plan.expect("plan provenance journaled");
        assert!(plan.candidates > 0);
        assert!(plan.predicted_throughput > 0.0);
        assert!(
            plan.prediction_error.is_none(),
            "first tick has nothing to compare against"
        );

        // Tick 2: the previous prediction is scored against measurement
        // (if the shape didn't change, estimates survive).
        feed_all(&bus, 2_000, 0.5);
        mpc.on_tick(&mut world, &mut engine);
        let entry = journal.borrow().entries()[1].clone();
        if let Some(plan) = entry.plan {
            assert!(plan.prediction_error.is_some());
        }
    }

    #[test]
    fn without_metrics_holds_everything() {
        let (mut world, mut engine) = ThreeTierBuilder::new().build();
        let bus = new_metrics_bus();
        let mut mpc = ModelPredictive::new(bus, MpcConfig::default(), models());
        mpc.on_tick(&mut world, &mut engine);
        assert!(mpc.actions().is_empty());
        assert_eq!(world.system.running_count(1), 1);
    }

    /// Blind spot 1: a tier whose every server crashed goes silent; the
    /// MPC must re-provision it within [`SILENT_TICKS_FOR_PRESSURE`]
    /// ticks even though the planner has no signal from it.
    #[test]
    fn dead_silent_tier_is_reprovisioned_immediately() {
        let (mut world, mut engine) = ThreeTierBuilder::new().build();
        let bus = new_metrics_bus();
        let mut mpc = ModelPredictive::new(Rc::clone(&bus), MpcConfig::default(), models());
        let victim = world.system.tier(1).members()[0];
        flow::crash_server(&mut world, &mut engine, victim);
        assert_eq!(world.system.running_count(1), 0);
        // Other tiers keep reporting: the pipeline is alive.
        produce(&bus, 1_000, sample("web-1", 0, 0.3, 20.0));
        mpc.on_tick(&mut world, &mut engine);
        assert_eq!(
            world.system.booting_count(1),
            1,
            "a dead-silent tier must not be ignored"
        );
    }

    /// Blind spot 1b: a silent-but-capacitated tier is wedged after the
    /// streak, not on the first missed window.
    #[test]
    fn wedged_silent_tier_scales_out_after_streak() {
        let (mut world, mut engine) = ThreeTierBuilder::new().build();
        let bus = new_metrics_bus();
        let mut mpc = ModelPredictive::new(Rc::clone(&bus), MpcConfig::default(), models());
        produce(&bus, 1_000, sample("web-1", 0, 0.3, 20.0));
        mpc.on_tick(&mut world, &mut engine);
        assert_eq!(world.system.booting_count(1), 0, "one miss is a hiccup");
        produce(&bus, 2_000, sample("web-1", 0, 0.3, 20.0));
        mpc.on_tick(&mut world, &mut engine);
        assert_eq!(
            world.system.booting_count(1),
            1,
            "consecutive silence means wedged"
        );
    }

    /// Blind spot 2: the committed plan is capacity memory — a crashed VM
    /// is replaced on the next tick even when the survivors report
    /// mid-band load.
    #[test]
    fn crashed_vm_is_replaced_from_committed_plan() {
        let (mut world, mut engine) = ThreeTierBuilder::new().counts(1, 2, 1).build();
        let bus = new_metrics_bus();
        let mut mpc = ModelPredictive::new(Rc::clone(&bus), MpcConfig::default(), models());
        // Saturated app tier at low throughput: the per-visit demand is
        // heavy, so the committed plan needs more than the survivors.
        produce(&bus, 1_000, sample("web-1", 0, 0.3, 10.0));
        produce(&bus, 1_000, sample("app-1", 1, 0.95, 5.0));
        produce(&bus, 1_000, sample("app-2", 1, 0.95, 5.0));
        produce(&bus, 1_000, sample("db-1", 2, 0.3, 10.0));
        mpc.on_tick(&mut world, &mut engine);
        let committed = mpc.desired[&1];
        assert!(
            committed > 2,
            "a saturated tier's plan must grow it: committed {committed}"
        );
        let victim = world.system.tier(1).members()[0];
        flow::crash_server(&mut world, &mut engine, victim);
        let after_crash = world.system.running_count(1) + world.system.booting_count(1);
        assert!(after_crash < committed);
        // Estimates were invalidated by the shape change, so the planner
        // is blind this tick — only the committed-capacity memory acts.
        produce(&bus, 2_000, sample("web-1", 0, 0.3, 10.0));
        produce(&bus, 2_000, sample("app-2", 1, 0.95, 5.0));
        produce(&bus, 2_000, sample("db-1", 2, 0.3, 10.0));
        mpc.on_tick(&mut world, &mut engine);
        assert!(
            world.system.running_count(1) + world.system.booting_count(1) >= committed,
            "lost capacity must be re-provisioned from the committed plan"
        );
    }

    /// Blind spot 3: estimates measured under one shape must not leak
    /// into the next (a scale event changes the throughput curve).
    #[test]
    fn estimates_reset_on_shape_change() {
        let (mut world, mut engine) = ThreeTierBuilder::new().build();
        let bus = new_metrics_bus();
        let mut mpc = ModelPredictive::new(Rc::clone(&bus), MpcConfig::default(), models());
        feed_all(&bus, 1_000, 0.5);
        mpc.on_tick(&mut world, &mut engine);
        assert!(!mpc.estimated_tiers().is_empty());
        // An operator-driven scale event changes the topology shape.
        flow::provision_server(&mut world, &mut engine, 1).unwrap();
        mpc.on_tick(&mut world, &mut engine);
        assert!(
            mpc.estimated_tiers().is_empty(),
            "estimates from the old shape must be dropped"
        );
    }
}
