//! Short-horizon utilization forecasting (Holt's linear exponential
//! smoothing).
//!
//! The paper's related work contrasts its reactive controller with
//! *predictive* approaches that "avoid the long setup time … when the
//! workload has intrinsic patterns". This module implements that
//! extension: a per-tier trend smoother whose forecast one VM-preparation
//! period ahead can drive the scale-out decision, hiding the boot delay
//! when load ramps steadily (and degrading gracefully to reactive
//! behaviour when it doesn't — see the `predictive` ablation).

use serde::{Deserialize, Serialize};

/// Holt's linear smoothing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HoltConfig {
    /// Level smoothing factor `α ∈ (0, 1]`.
    pub level_alpha: f64,
    /// Trend smoothing factor `β ∈ (0, 1]`.
    pub trend_beta: f64,
    /// Forecast horizon in control periods (e.g. 2 ≈ boot delay + one
    /// period at the paper's 15 s timings).
    pub horizon_periods: f64,
}

impl Default for HoltConfig {
    fn default() -> Self {
        HoltConfig {
            level_alpha: 0.5,
            trend_beta: 0.3,
            horizon_periods: 2.0,
        }
    }
}

/// A per-signal Holt smoother.
///
/// # Examples
///
/// ```
/// use dcm_core::predictor::{HoltConfig, HoltTrend};
///
/// let mut trend = HoltTrend::new(HoltConfig::default());
/// for step in 0..10 {
///     trend.observe(0.1 * step as f64); // steady ramp
/// }
/// // The forecast runs ahead of the last observation.
/// assert!(trend.forecast() > 0.9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HoltTrend {
    config: HoltConfig,
    level: f64,
    trend: f64,
    observations: u64,
}

impl HoltTrend {
    /// Creates an empty smoother.
    ///
    /// # Panics
    ///
    /// Panics if the smoothing factors are outside `(0, 1]` or the horizon
    /// is negative.
    pub fn new(config: HoltConfig) -> Self {
        assert!(
            config.level_alpha > 0.0 && config.level_alpha <= 1.0,
            "level_alpha must be in (0,1]"
        );
        assert!(
            config.trend_beta > 0.0 && config.trend_beta <= 1.0,
            "trend_beta must be in (0,1]"
        );
        assert!(config.horizon_periods >= 0.0, "horizon must be >= 0");
        HoltTrend {
            config,
            level: 0.0,
            trend: 0.0,
            observations: 0,
        }
    }

    /// Feeds one observation (one control period's measurement).
    pub fn observe(&mut self, value: f64) {
        if self.observations == 0 {
            self.level = value;
            self.trend = 0.0;
        } else {
            let previous_level = self.level;
            self.level = self.config.level_alpha * value
                + (1.0 - self.config.level_alpha) * (self.level + self.trend);
            self.trend = self.config.trend_beta * (self.level - previous_level)
                + (1.0 - self.config.trend_beta) * self.trend;
        }
        self.observations += 1;
    }

    /// The smoothed current level.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// The smoothed per-period trend.
    pub fn trend(&self) -> f64 {
        self.trend
    }

    /// Observations seen so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Forecast `horizon_periods` ahead; equals the last level until two
    /// observations have been seen (no trend to extrapolate).
    pub fn forecast(&self) -> f64 {
        if self.observations < 2 {
            self.level
        } else {
            self.level + self.trend * self.config.horizon_periods
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal_forecasts_itself() {
        let mut t = HoltTrend::new(HoltConfig::default());
        for _ in 0..20 {
            t.observe(0.6);
        }
        assert!((t.forecast() - 0.6).abs() < 1e-9);
        assert!(t.trend().abs() < 1e-9);
    }

    #[test]
    fn ramp_is_extrapolated_ahead() {
        let mut t = HoltTrend::new(HoltConfig {
            level_alpha: 0.8,
            trend_beta: 0.5,
            horizon_periods: 2.0,
        });
        let mut last = 0.0;
        for step in 0..30 {
            last = 0.02 * f64::from(step);
            t.observe(last);
        }
        let forecast = t.forecast();
        assert!(
            forecast > last + 0.02,
            "forecast {forecast} should lead the ramp ({last})"
        );
        assert!(forecast < last + 0.1, "but not wildly: {forecast}");
    }

    #[test]
    fn single_observation_has_no_trend() {
        let mut t = HoltTrend::new(HoltConfig::default());
        t.observe(0.9);
        assert_eq!(t.forecast(), 0.9);
        assert_eq!(t.observations(), 1);
    }

    #[test]
    fn falling_signal_forecasts_lower() {
        let mut t = HoltTrend::new(HoltConfig::default());
        for step in 0..20 {
            t.observe(1.0 - 0.03 * f64::from(step));
        }
        assert!(t.forecast() < t.level());
    }

    #[test]
    #[should_panic(expected = "level_alpha")]
    fn rejects_invalid_alpha() {
        let _ = HoltTrend::new(HoltConfig {
            level_alpha: 0.0,
            ..HoltConfig::default()
        });
    }
}
