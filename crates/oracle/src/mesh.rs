//! Mesh conformance: microservice-DAG scenarios vs product-form MVA.
//!
//! The chain harness ([`crate::conformance`]) checks the simulator on the
//! paper's three-tier topology; this module checks the DAG generalization.
//! The mapping stays inside the exact product-form class:
//!
//! * **DAG visit ratios.** A tree-shaped call graph with per-edge call
//!   counts has deterministic per-node visit ratios `V_m` (the forward DP
//!   over edges); per-server visit ratios split `V_m / servers` under the
//!   `Random` balancer, exactly as in the chain harness.
//! * **Steady-state cache.** A cache that hits with probability `h` and
//!   skips the downstream hop is Bernoulli (Markovian) routing, so the
//!   network stays product-form with the downstream edge's visit
//!   contribution rescaled by `1 − h`.
//! * **Heterogeneous VM capacity.** A server with capacity multiplier `c`
//!   runs every burst `c×` faster, so its station serves at `S / c`
//!   ([`Station::queueing_with_capacity`]) — exact, not approximate.
//!
//! All mesh nodes run frictionless laws, so every scenario is gated at the
//! tight zero-overhead tolerance; each run carries a
//! [`ConservationAuditor`], which now also cross-checks the per-tier /
//! per-edge flow ledger the DAG dispatch maintains.

use std::collections::BTreeMap;

use dcm_model::mva::{ClosedNetwork, Station};
use dcm_ntier::audit::ConservationAuditor;
use dcm_ntier::balancer::BalancerPolicy;
use dcm_ntier::graph::TopologyGraph;
use dcm_ntier::ids::RequestId;
use dcm_ntier::law::ServiceLaw;
use dcm_ntier::server::VmType;
use dcm_ntier::spans::Span;
use dcm_ntier::system::VmPolicy;
use dcm_ntier::topology::{MeshBuilder, MeshNode};
use dcm_sim::dist::Dist;
use dcm_sim::time::SimTime;
use dcm_workload::cache::CacheDynamics;
use dcm_workload::generator::UserPopulation;
use dcm_workload::profile::{MeshProfileFactory, NodeDemand};
use serde::{Deserialize, Serialize};

use crate::conformance::TierComparison;

/// A pool size that never queues at the populations the grid sweeps.
const AMPLE: u32 = 4096;

/// One node of a mesh scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeshNodeSpec {
    /// Display name (`web`, `svc-a`, `cache`, …).
    pub name: &'static str,
    /// Mean per-visit CPU demand (seconds of work at capacity 1).
    pub demand: f64,
    /// Exponential per-visit demand (required for queueing-station
    /// exactness); constant otherwise (fine for delay nodes).
    pub exponential: bool,
    /// Thread pool per server; `>= AMPLE` makes the node a delay station.
    pub threads: u32,
    /// Per-server VM capacity multipliers — one entry per server.
    pub capacities: &'static [f64],
}

/// A steady-state cache on one edge of the scenario graph.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CacheSpec {
    /// The caching node.
    pub from: usize,
    /// The downstream node whose calls a hit skips.
    pub to: usize,
    /// Steady-state hit probability `h`.
    pub hit_ratio: f64,
}

/// One mesh conformance configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeshScenario {
    /// Short name used in tables (`fanout`, `cache-steady`, …).
    pub name: &'static str,
    /// The nodes, in tier order (node 0 is the entry tier).
    pub nodes: Vec<MeshNodeSpec>,
    /// Call edges `(from, to, calls)`; must form a tree rooted at node 0.
    pub edges: &'static [(usize, usize, u32)],
    /// Optional steady-state cache edge.
    pub cache: Option<CacheSpec>,
    /// Constant think time `Z` (seconds).
    pub think: f64,
    /// Client populations to sweep.
    pub populations: &'static [u32],
    /// Warmup before the measurement window (seconds).
    pub warmup: f64,
    /// Measurement window length (seconds).
    pub measure: f64,
}

impl MeshScenario {
    /// The scenario's call graph (the miss-path shape).
    ///
    /// # Panics
    ///
    /// Panics if the edges do not form a tree — per-request exclusive
    /// residence attribution needs a unique parent per node.
    pub fn graph(&self) -> TopologyGraph {
        let g = TopologyGraph::from_edges(self.nodes.len(), self.edges);
        assert!(g.is_tree(), "{}: mesh scenarios must be trees", self.name);
        g
    }

    /// Expected per-node visit ratios `V_m`, with the cached edge's
    /// contribution rescaled by `1 − h` (Bernoulli routing).
    pub fn expected_visit_ratios(&self) -> Vec<f64> {
        let mut v = vec![0.0f64; self.nodes.len()];
        v[0] = 1.0;
        for &(from, to, calls) in self.edges {
            let scale = match self.cache {
                Some(c) if c.from == from && c.to == to => 1.0 - c.hit_ratio,
                _ => 1.0,
            };
            v[to] += v[from] * f64::from(calls) * scale;
        }
        v
    }

    /// The closed product-form network this mesh is, solved exactly. Each
    /// node contributes one station per server (visit `V_m / servers`,
    /// service `demand / capacity_i`).
    pub fn network(&self) -> ClosedNetwork {
        let v = self.expected_visit_ratios();
        let mut stations = Vec::new();
        for (m, node) in self.nodes.iter().enumerate() {
            let servers = node.capacities.len().max(1);
            let per_server = v[m] / servers as f64;
            for &cap in node.capacities {
                if node.threads >= AMPLE {
                    stations.push(Station::Delay {
                        visit_ratio: per_server,
                        service_time: node.demand / cap,
                    });
                } else {
                    stations.push(Station::queueing_with_capacity(
                        per_server,
                        node.demand,
                        node.threads,
                        cap,
                    ));
                }
            }
        }
        ClosedNetwork::new(stations, self.think)
    }

    /// Index of each node's first station in [`MeshScenario::network`]'s
    /// station list (nodes contribute one station per server).
    fn station_offsets(&self) -> Vec<usize> {
        let mut offsets = Vec::with_capacity(self.nodes.len());
        let mut at = 0usize;
        for node in &self.nodes {
            offsets.push(at);
            at += node.capacities.len().max(1);
        }
        offsets
    }

    /// The workload factory driving the DES side.
    pub fn factory(&self) -> MeshProfileFactory {
        let graph = self.graph();
        let mut demands = Vec::with_capacity(self.nodes.len());
        for (m, node) in self.nodes.iter().enumerate() {
            let base = if node.exponential {
                Dist::exponential_mean(node.demand)
            } else {
                Dist::constant(node.demand)
            };
            let mut d = if graph.total_calls(m) > 0 {
                NodeDemand::split(base)
            } else {
                NodeDemand::leaf(base)
            };
            if node.exponential {
                d = d.iid_visits();
            }
            demands.push(d);
        }
        let factory = MeshProfileFactory::new(graph, demands);
        match self.cache {
            Some(c) => factory.with_cache(c.from, c.to, CacheDynamics::steady(c.hit_ratio)),
            None => factory,
        }
    }

    /// The DES world this scenario runs in.
    pub fn build_world(&self, seed: u64) -> (dcm_ntier::world::World, dcm_ntier::world::SimEngine) {
        let mut builder = MeshBuilder::new()
            .balancer(BalancerPolicy::Random)
            .seed(seed);
        for node in &self.nodes {
            // The per-server thread pool IS the queueing station's `c`
            // (`AMPLE` makes the node a delay station); outbound calls stay
            // unpooled, so threads are the only concurrency gate.
            let mut mesh_node = MeshNode::new(
                node.name,
                ServiceLaw::frictionless(node.demand),
                node.threads,
            )
            .count(node.capacities.len().max(1) as u32);
            if node.capacities.iter().any(|&c| (c - 1.0).abs() > 1e-12) {
                let types: Vec<VmType> = node
                    .capacities
                    .iter()
                    .map(|&c| VmType {
                        name: "mesh-custom",
                        capacity: c,
                        price_per_hour: 0.10 * c,
                    })
                    .collect();
                mesh_node = mesh_node.vm_policy(VmPolicy::cycle(types));
            }
            builder = builder.node(mesh_node);
        }
        builder.build()
    }
}

/// One `(mesh scenario, population)` conformance measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeshPoint {
    /// Scenario name.
    pub scenario: &'static str,
    /// Client population `N`.
    pub population: u32,
    /// Requests completed inside the measurement window.
    pub completions: u64,
    /// Measured vs exact system throughput (requests/sec).
    pub throughput: TierComparison,
    /// Per-node exclusive residence comparisons, in node order.
    pub residence: Vec<TierComparison>,
    /// Node names aligned with `residence`.
    pub node_names: Vec<&'static str>,
    /// The asymptotic throughput upper bound at this population.
    pub throughput_bound: f64,
    /// Whether measured throughput respects the bound (0.5% slack).
    pub bound_ok: bool,
    /// Conservation-audit violations over the window (must be zero).
    pub audit_violations: usize,
}

impl MeshPoint {
    /// The largest relative error across throughput and node residences.
    /// Nodes whose exact residence is negligible (< 0.1 ms — e.g. a fully
    /// cached-off DB) are skipped: their relative error is noise on an
    /// absolute quantity below measurement resolution.
    pub fn max_rel_err(&self) -> f64 {
        self.residence
            .iter()
            .filter(|t| t.mva > 1e-4)
            .map(|t| t.rel_err)
            .fold(self.throughput.rel_err, f64::max)
    }
}

fn compare(des: f64, mva: f64) -> TierComparison {
    TierComparison {
        des,
        mva,
        rel_err: (des - mva).abs() / mva.abs().max(f64::MIN_POSITIVE),
    }
}

/// Runs one mesh scenario at one population and compares against the
/// exact MVA oracle.
///
/// # Panics
///
/// Panics if the DES produces no completions in the window.
pub fn run_mesh_scenario(scenario: &MeshScenario, population: u32, seed: u64) -> MeshPoint {
    let n_nodes = scenario.nodes.len();
    let horizon = scenario.warmup + scenario.measure + 60.0;
    let (mut world, mut engine) = scenario.build_world(seed);
    world.system.enable_tracing();

    let factory = scenario.factory();
    let think = Some(Dist::constant(scenario.think));
    let stop = SimTime::from_secs_f64(horizon);
    let _pop = UserPopulation::start_with_think_dist(
        &mut world,
        &mut engine,
        factory,
        population,
        think,
        stop,
    );

    engine.run_until(&mut world, SimTime::from_secs_f64(scenario.warmup));
    let t0 = engine.now();
    let _ = world.system.take_spans();
    let auditor = ConservationAuditor::begin(&world.system, t0);
    let completed_mark = world.system.counters().completed;

    engine.run_until(
        &mut world,
        SimTime::from_secs_f64(scenario.warmup + scenario.measure),
    );
    let t1 = engine.now();
    let spans = world.system.take_spans();
    let audit = auditor.finish(&world.system, &spans, t1);
    let window = t1.saturating_since(t0).as_secs_f64();
    assert!(window > 0.0, "empty measurement window");

    let completions = world.system.counters().completed - completed_mark;
    assert!(
        completions > 0,
        "no completions in window for {}",
        scenario.name
    );
    let x_des = completions as f64 / window;

    let graph = scenario.graph();
    let res_des = node_residences(&spans, t0, &graph);

    let net = scenario.network();
    let sol = net.solve(population);
    let bounds = net.asymptotic_bounds(population);
    let offsets = scenario.station_offsets();
    let mut residence = Vec::with_capacity(n_nodes);
    let mut node_names = Vec::with_capacity(n_nodes);
    for (m, node) in scenario.nodes.iter().enumerate() {
        let servers = node.capacities.len().max(1);
        let mva_r: f64 = sol
            .station_residence
            .iter()
            .skip(offsets[m])
            .take(servers)
            .sum();
        residence.push(compare(res_des[m], mva_r));
        node_names.push(node.name);
    }

    MeshPoint {
        scenario: scenario.name,
        population,
        completions,
        throughput: compare(x_des, sol.throughput),
        residence,
        node_names,
        throughput_bound: bounds.throughput_upper,
        bound_ok: x_des <= bounds.throughput_upper * 1.005,
        audit_violations: audit.violations.len(),
    }
}

/// Mean per-request exclusive residence per node over the window, from
/// spans of requests fully inside it. A span's `[arrived, finished]`
/// covers downstream time; on a tree every node has a unique parent, so
/// the exclusive residence subtracts each child's span time from its
/// parent, request by request.
fn node_residences(spans: &[Span], t0: SimTime, graph: &TopologyGraph) -> Vec<f64> {
    let n = graph.tiers();
    let mut parent = vec![usize::MAX; n];
    graph.for_each_edge(|from, to, _calls| {
        parent[to] = from;
    });

    let mut per_request: BTreeMap<RequestId, Vec<f64>> = BTreeMap::new();
    let mut eligible: BTreeMap<RequestId, bool> = BTreeMap::new();
    for s in spans {
        if s.tier >= n {
            continue;
        }
        let dur = s.finished_at.saturating_since(s.arrived_at).as_secs_f64();
        per_request.entry(s.request).or_insert_with(|| vec![0.0; n])[s.tier] += dur;
        if s.tier == 0 {
            eligible.insert(s.request, s.is_completed() && s.arrived_at >= t0);
        }
    }
    let mut sums = vec![0.0f64; n];
    let mut count = 0u64;
    for (rid, totals) in &per_request {
        if !eligible.get(rid).copied().unwrap_or(false) {
            continue;
        }
        count += 1;
        for m in 0..n {
            sums[m] += totals[m];
        }
        for (c, &p) in parent.iter().enumerate() {
            if p != usize::MAX {
                sums[p] -= totals[c];
            }
        }
    }
    assert!(count > 0, "no fully-observed requests in window");
    let count = count as f64;
    for s in &mut sums {
        *s /= count;
    }
    sums
}

/// The committed mesh grid: a fan-out DAG, a steady-state cache chain, and
/// a heterogeneous-capacity DB tier — all frictionless, so every point is
/// gated at the zero-overhead tolerance.
pub fn default_mesh_grid() -> Vec<MeshScenario> {
    vec![
        MeshScenario {
            name: "fanout",
            nodes: vec![
                MeshNodeSpec {
                    name: "web",
                    demand: 0.002,
                    exponential: false,
                    threads: AMPLE,
                    capacities: &[1.0],
                },
                MeshNodeSpec {
                    name: "app",
                    demand: 0.008,
                    exponential: false,
                    threads: AMPLE,
                    capacities: &[1.0],
                },
                MeshNodeSpec {
                    name: "svc",
                    demand: 0.030,
                    exponential: true,
                    threads: 2,
                    capacities: &[1.0],
                },
                MeshNodeSpec {
                    name: "db",
                    demand: 0.040,
                    exponential: true,
                    threads: 1,
                    capacities: &[1.0],
                },
            ],
            edges: &[(0, 1, 1), (1, 2, 1), (1, 3, 2)],
            cache: None,
            think: 1.0,
            populations: &[4, 10, 18],
            warmup: 100.0,
            measure: 8000.0,
        },
        MeshScenario {
            name: "cache-steady",
            nodes: vec![
                MeshNodeSpec {
                    name: "web",
                    demand: 0.002,
                    exponential: false,
                    threads: AMPLE,
                    capacities: &[1.0],
                },
                MeshNodeSpec {
                    name: "app",
                    demand: 0.010,
                    exponential: false,
                    threads: AMPLE,
                    capacities: &[1.0],
                },
                MeshNodeSpec {
                    name: "cache",
                    demand: 0.004,
                    exponential: false,
                    threads: AMPLE,
                    capacities: &[1.0],
                },
                MeshNodeSpec {
                    name: "db",
                    demand: 0.050,
                    exponential: true,
                    threads: 2,
                    capacities: &[1.0],
                },
            ],
            edges: &[(0, 1, 1), (1, 2, 1), (2, 3, 1)],
            cache: Some(CacheSpec {
                from: 2,
                to: 3,
                hit_ratio: 0.6,
            }),
            think: 0.8,
            populations: &[5, 20, 40],
            warmup: 100.0,
            measure: 8000.0,
        },
        MeshScenario {
            name: "hetero-db",
            nodes: vec![
                MeshNodeSpec {
                    name: "web",
                    demand: 0.002,
                    exponential: false,
                    threads: AMPLE,
                    capacities: &[1.0],
                },
                MeshNodeSpec {
                    name: "app",
                    demand: 0.008,
                    exponential: false,
                    threads: AMPLE,
                    capacities: &[1.0],
                },
                MeshNodeSpec {
                    name: "db",
                    demand: 0.060,
                    exponential: true,
                    threads: 1,
                    capacities: &[1.0, 2.0],
                },
            ],
            edges: &[(0, 1, 1), (1, 2, 1)],
            cache: None,
            think: 0.8,
            populations: &[4, 12, 24],
            warmup: 100.0,
            measure: 8000.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shapes_are_coherent() {
        let grid = default_mesh_grid();
        assert_eq!(grid.len(), 3);
        let points: usize = grid.iter().map(|s| s.populations.len()).sum();
        assert!(points >= 9, "need >= 9 mesh points, have {points}");
        for s in &grid {
            let g = s.graph();
            assert!(g.is_tree());
            assert_eq!(g.tiers(), s.nodes.len());
        }
    }

    #[test]
    fn fanout_visit_ratios_follow_edges() {
        let grid = default_mesh_grid();
        let fanout = &grid[0];
        let v = fanout.expected_visit_ratios();
        assert_eq!(v, vec![1.0, 1.0, 1.0, 2.0]);
        // 1 web + 1 app + 1 svc + 1 db station.
        assert_eq!(fanout.network().stations.len(), 4);
    }

    #[test]
    fn cache_rescales_downstream_visits() {
        let grid = default_mesh_grid();
        let cached = &grid[1];
        let v = cached.expected_visit_ratios();
        assert!((v[3] - 0.4).abs() < 1e-12, "db visits {}", v[3]);
        assert!((v[2] - 1.0).abs() < 1e-12, "cache node still visited");
    }

    #[test]
    fn hetero_capacities_become_distinct_stations() {
        let grid = default_mesh_grid();
        let hetero = &grid[2];
        let net = hetero.network();
        assert_eq!(net.stations.len(), 4, "web, app, and two db stations");
        let s_slow = net.stations[2].service_time();
        let s_fast = net.stations[3].service_time();
        assert!((s_slow - 0.060).abs() < 1e-12);
        assert!((s_fast - 0.030).abs() < 1e-12);
        assert!((net.stations[2].visit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quick_fanout_point_conforms_and_audits_clean() {
        let mut s = default_mesh_grid().into_iter().next().unwrap();
        s.warmup = 30.0;
        s.measure = 400.0;
        let point = run_mesh_scenario(&s, 6, 1234);
        assert_eq!(point.audit_violations, 0);
        assert!(point.bound_ok, "bound violated: {point:?}");
        assert!(point.max_rel_err() < 0.10, "errors too large: {point:?}");
    }

    #[test]
    fn quick_cache_point_conforms_and_audits_clean() {
        let mut s = default_mesh_grid().into_iter().nth(1).unwrap();
        s.warmup = 30.0;
        s.measure = 400.0;
        let point = run_mesh_scenario(&s, 8, 77);
        assert_eq!(point.audit_violations, 0);
        assert!(point.bound_ok, "bound violated: {point:?}");
        assert!(point.max_rel_err() < 0.10, "errors too large: {point:?}");
    }

    #[test]
    fn quick_hetero_point_conforms_and_audits_clean() {
        let mut s = default_mesh_grid().into_iter().nth(2).unwrap();
        s.warmup = 30.0;
        s.measure = 400.0;
        let point = run_mesh_scenario(&s, 6, 4321);
        assert_eq!(point.audit_violations, 0);
        assert!(point.bound_ok, "bound violated: {point:?}");
        assert!(point.max_rel_err() < 0.10, "errors too large: {point:?}");
    }

    /// Full mesh sweep at the shipping tolerances. Expensive, so ignored by
    /// default; `repro validate` is the shipping entry point.
    #[test]
    #[ignore]
    fn full_mesh_grid_within_tolerance() {
        let mut worst = 0.0f64;
        for (i, s) in default_mesh_grid().iter().enumerate() {
            for (j, &n) in s.populations.iter().enumerate() {
                let seed = (i as u64) * 100 + j as u64 + 11;
                let p = run_mesh_scenario(s, n, seed);
                eprintln!(
                    "{:>12} N={:<3} X: {:.4}/{:.4} ({:+.3}%)  worst-R {:+.3}%  audits={}",
                    p.scenario,
                    n,
                    p.throughput.des,
                    p.throughput.mva,
                    100.0 * p.throughput.rel_err,
                    100.0 * p.max_rel_err(),
                    p.audit_violations,
                );
                assert_eq!(p.audit_violations, 0, "{p:?}");
                assert!(p.bound_ok, "{p:?}");
                worst = worst.max(p.max_rel_err());
            }
        }
        eprintln!("worst mesh error: {:.4}%", 100.0 * worst);
        assert!(worst < 0.02, "mesh tolerance exceeded: {worst}");
    }
}
