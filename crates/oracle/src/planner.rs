//! The reusable MVA planner behind the model-predictive controller.
//!
//! [`predict`] maps a proposed deployment — per-tier VM counts, per-VM
//! concurrency caps, and fitted per-tier demands — onto the same closed
//! product-form network the conformance harness solves, and returns the
//! exact MVA throughput / residence / response time at a given client
//! population. Each tier becomes one multi-server queueing station with
//! `servers × concurrency` service channels (a tier of `k` identical VMs
//! behind a random balancer, each admitting `N` concurrent requests, has
//! exactly that aggregate completion rate when demands are i.i.d.).
//!
//! The demands are *inputs*: contention effects (the paper's concurrency
//! law `S*(N)`) are folded in by the caller, which adjusts each
//! candidate's demand via the fitted [`dcm_model::concurrency`] model
//! before asking for a prediction. That keeps the planner itself a pure
//! product-form solver with the classic guarantees — predicted throughput
//! is monotone non-decreasing in every tier's server count and
//! concurrency, and never exceeds the asymptotic bound
//! `X ≤ min(N/(Z+ΣD), min_m c_m/D_m)` — properties the planner proptests
//! pin down.

use dcm_model::mva::{ClosedNetwork, Station};

/// One tier of a candidate deployment, as the planner sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedTier {
    /// VMs in the tier (`k ≥ 1`).
    pub servers: u32,
    /// Admitted concurrency per VM (`N ≥ 1`): thread- or connection-pool
    /// size, whichever gates this tier.
    pub concurrency: u32,
    /// Mean per-visit service demand at the offered concurrency (seconds,
    /// `> 0`). Contention-adjust before calling if the tier is lawful.
    pub demand: f64,
    /// Visits per client request (`≥ 0`; `0` drops the tier out).
    pub visits: f64,
}

impl PlannedTier {
    /// Aggregate service channels the tier offers.
    fn channels(self) -> u32 {
        self.servers.max(1).saturating_mul(self.concurrency.max(1))
    }

    /// Service demand `D = V·S` per client request.
    pub fn total_demand(self) -> f64 {
        self.visits * self.demand
    }
}

/// What [`predict`] returns: the exact MVA solution of the candidate
/// deployment at the given population, flattened to the quantities the
/// controller ranks plans by.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Client population the network was solved at.
    pub population: u32,
    /// Predicted system throughput `X(N)` (requests/sec).
    pub throughput: f64,
    /// Predicted end-to-end response time `R(N)` (seconds, excl. think).
    pub response_time: f64,
    /// Per-tier residence per client request, `V_m·R_m` (seconds), in the
    /// order the tiers were given.
    pub residence: Vec<f64>,
    /// Per-tier utilization (fraction of the tier's peak rate).
    pub utilization: Vec<f64>,
}

/// Builds the closed network for a candidate deployment. Tiers with zero
/// visits are kept as (unvisited) stations so residence indices line up.
fn network(tiers: &[PlannedTier], think: f64) -> ClosedNetwork {
    assert!(!tiers.is_empty(), "planner needs at least one tier");
    let stations = tiers
        .iter()
        .map(|t| {
            assert!(
                t.demand.is_finite() && t.demand > 0.0,
                "tier demand must be positive"
            );
            Station::Queueing {
                visit_ratio: t.visits,
                service_time: t.demand,
                servers: t.channels(),
            }
        })
        .collect();
    ClosedNetwork::new(stations, think)
}

/// Predicts throughput, per-tier residence, and response time for a
/// candidate deployment at client population `population` with mean think
/// time `think`, by exact load-dependent MVA.
///
/// # Panics
///
/// Panics on an empty tier list, a non-positive demand, or a negative /
/// non-finite think time (same contract as [`ClosedNetwork::new`]).
pub fn predict(tiers: &[PlannedTier], think: f64, population: u32) -> Prediction {
    let sol = network(tiers, think).solve(population);
    Prediction {
        population,
        throughput: sol.throughput,
        response_time: sol.response_time,
        residence: sol.station_residence,
        utilization: sol.station_utilization,
    }
}

/// The classic asymptotic throughput bound for a candidate deployment:
/// `X ≤ min(N/(Z+ΣD), min_m c_m/D_m)` where `c_m` is the tier's aggregate
/// channel count. Every [`predict`] result respects it (proptested).
pub fn throughput_bound(tiers: &[PlannedTier], think: f64, population: u32) -> f64 {
    network(tiers, think)
        .asymptotic_bounds(population)
        .throughput_upper
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_tier() -> Vec<PlannedTier> {
        vec![
            PlannedTier {
                servers: 1,
                concurrency: 100,
                demand: 0.005,
                visits: 1.0,
            },
            PlannedTier {
                servers: 2,
                concurrency: 20,
                demand: 0.02,
                visits: 1.0,
            },
            PlannedTier {
                servers: 1,
                concurrency: 4,
                demand: 0.04,
                visits: 2.0,
            },
        ]
    }

    #[test]
    fn population_one_sees_bare_demands() {
        let tiers = three_tier();
        let p = predict(&tiers, 1.0, 1);
        let d: f64 = tiers.iter().map(|t| t.total_demand()).sum();
        assert!((p.response_time - d).abs() < 1e-12);
        assert!((p.throughput - 1.0 / (1.0 + d)).abs() < 1e-12);
        assert_eq!(p.residence.len(), 3);
    }

    #[test]
    fn saturates_at_the_bottleneck_channel_rate() {
        let tiers = three_tier();
        // Bottleneck: DB with 1×4 channels, D = 2·0.04 ⇒ cap 4/(2·0.04) = 50/s.
        let p = predict(&tiers, 0.5, 400);
        assert!(
            (p.throughput - 50.0).abs() / 50.0 < 0.01,
            "{}",
            p.throughput
        );
        assert!(p.throughput <= throughput_bound(&tiers, 0.5, 400) + 1e-9);
    }

    #[test]
    fn more_servers_and_concurrency_never_hurt() {
        let base = three_tier();
        let p0 = predict(&base, 1.0, 120);
        let mut more_servers = base.clone();
        more_servers[2].servers += 1;
        let p1 = predict(&more_servers, 1.0, 120);
        assert!(p1.throughput >= p0.throughput - 1e-12);
        let mut more_conc = base;
        more_conc[2].concurrency += 4;
        let p2 = predict(&more_conc, 1.0, 120);
        assert!(p2.throughput >= p0.throughput - 1e-12);
    }

    #[test]
    fn zero_population_is_degenerate() {
        let p = predict(&three_tier(), 1.0, 0);
        assert_eq!(p.throughput, 0.0);
        assert_eq!(p.response_time, 0.0);
    }

    #[test]
    #[should_panic(expected = "tier demand must be positive")]
    fn rejects_non_positive_demand() {
        let mut tiers = three_tier();
        tiers[0].demand = 0.0;
        let _ = predict(&tiers, 1.0, 10);
    }
}
