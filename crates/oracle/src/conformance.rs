//! Conformance scenarios: one config, two solvers, a table of errors.

use std::collections::BTreeMap;

use dcm_model::mva::{law_rate_table, ClosedNetwork, Station};
use dcm_ntier::audit::ConservationAuditor;
use dcm_ntier::balancer::BalancerPolicy;
use dcm_ntier::ids::RequestId;
use dcm_ntier::law::ServiceLaw;
use dcm_ntier::spans::Span;
use dcm_ntier::topology::{SoftConfig, ThreeTierBuilder};
use dcm_sim::dist::Dist;
use dcm_sim::time::SimTime;
use dcm_workload::cohort::CohortPopulation;
use dcm_workload::generator::UserPopulation;
use dcm_workload::profile::ProfileFactory;
use dcm_workload::servlets::{Servlet, ServletMix};
use serde::{Deserialize, Serialize};

/// A pool size that never queues at the populations the grid sweeps.
const AMPLE: u32 = 4096;

/// What kind of analytic truth a scenario is checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// All laws frictionless: exact product-form network (delay tiers +
    /// `M/M/c` DB stations). Tight tolerance applies.
    ZeroOverhead,
    /// DB tier follows a real concurrency law `S*(N)`: exact load-dependent
    /// MVA with the ground-truth rate table. Looser tolerance applies.
    LoadDependent,
}

/// One conformance configuration (a topology; populations are swept
/// separately so each `(scenario, population)` pair is one run).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Short name used in tables (`mm1`, `law-mysql`, …).
    pub name: &'static str,
    /// Which oracle applies.
    pub kind: ScenarioKind,
    /// Hardware counts `(web, app, db)`.
    pub counts: (u32, u32, u32),
    /// DB thread pool per server (the queueing station's `c`); `AMPLE`
    /// turns the DB tier into a delay station too.
    pub db_threads: u32,
    /// Constant per-visit demands for the delay tiers `(web, app)`.
    pub web_demand: f64,
    /// App-tier constant demand.
    pub app_demand: f64,
    /// Mean exponential per-visit DB demand (must equal the DB law's `S⁰`
    /// for `LoadDependent` scenarios).
    pub db_demand: f64,
    /// DB queries per request (`V_db`).
    pub db_visits: u32,
    /// Constant think time `Z` (seconds).
    pub think: f64,
    /// DB-tier service law (frictionless for `ZeroOverhead`).
    pub db_law: ServiceLaw,
    /// Client populations to sweep.
    pub populations: &'static [u32],
    /// Warmup before the measurement window (seconds).
    pub warmup: f64,
    /// Measurement window length (seconds).
    pub measure: f64,
}

impl Scenario {
    /// The closed product-form network this topology is, solved exactly.
    pub fn network(&self) -> ClosedNetwork {
        let mut stations = vec![
            Station::Delay {
                visit_ratio: 1.0,
                service_time: self.web_demand,
            },
            Station::Delay {
                visit_ratio: 1.0,
                service_time: self.app_demand,
            },
        ];
        let db_servers = self.counts.2.max(1);
        let per_server_visits = f64::from(self.db_visits) / f64::from(db_servers);
        for _ in 0..db_servers {
            stations.push(self.db_station(per_server_visits));
        }
        ClosedNetwork::new(stations, self.think)
    }

    fn db_station(&self, visit_ratio: f64) -> Station {
        if self.db_threads >= AMPLE {
            return Station::Delay {
                visit_ratio,
                service_time: self.db_demand,
            };
        }
        match self.kind {
            ScenarioKind::ZeroOverhead => Station::Queueing {
                visit_ratio,
                service_time: self.db_demand,
                servers: self.db_threads,
            },
            ScenarioKind::LoadDependent => {
                let max_pop = self.populations.iter().copied().max().unwrap_or(1);
                let law = self.db_law;
                Station::LoadDependent {
                    visit_ratio,
                    service_time: self.db_demand,
                    rate: law_rate_table(law.s0(), self.db_threads, max_pop, |m| {
                        law.adjusted_service_time(m)
                    }),
                }
            }
        }
    }
}

/// DES-vs-oracle comparison for one tier's residence per client request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierComparison {
    /// Measured mean residence per client request (seconds; queueing +
    /// service at this tier, downstream time excluded).
    pub des: f64,
    /// The exact MVA residence `V_m·R_m`.
    pub mva: f64,
    /// `|des − mva| / mva`.
    pub rel_err: f64,
}

fn compare(des: f64, mva: f64) -> TierComparison {
    TierComparison {
        des,
        mva,
        rel_err: (des - mva).abs() / mva.abs().max(f64::MIN_POSITIVE),
    }
}

/// One `(scenario, population)` conformance measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConformancePoint {
    /// Scenario name.
    pub scenario: &'static str,
    /// Which oracle applied.
    pub kind: ScenarioKind,
    /// Client population `N`.
    pub population: u32,
    /// Requests completed inside the measurement window.
    pub completions: u64,
    /// Measured vs exact system throughput (requests/sec).
    pub throughput: TierComparison,
    /// Per-tier residence comparisons `(web, app, db)`.
    pub residence: [TierComparison; 3],
    /// Mean DB-tier population: DES (via Little on measured X·R) vs MVA.
    pub db_queue: TierComparison,
    /// The asymptotic throughput upper bound at this population.
    pub throughput_bound: f64,
    /// Whether measured throughput respects the bound (with 0.5%
    /// measurement slack).
    pub bound_ok: bool,
    /// Conservation-audit violations over the measurement window (must be
    /// zero).
    pub audit_violations: usize,
}

impl ConformancePoint {
    /// The largest relative error across throughput and tier residences.
    pub fn max_rel_err(&self) -> f64 {
        self.residence
            .iter()
            .map(|t| t.rel_err)
            .fold(self.throughput.rel_err, f64::max)
    }
}

/// Runs one scenario at one population and compares against the oracle.
///
/// # Panics
///
/// Panics if the scenario index is inconsistent (population not in the
/// scenario's sweep is allowed — any population works) or the DES produces
/// no completions in the window.
pub fn run_scenario(scenario: &Scenario, population: u32, seed: u64) -> ConformancePoint {
    run_scenario_inner(scenario, population, seed, None)
}

/// Like [`run_scenario`], but drives the system with the cohort-aggregated
/// generator ([`CohortPopulation`]) at the given cohort size. Aggregation
/// re-orders RNG draws across members, so the sample path differs from the
/// per-user run — but the stationary distribution must not: the point is
/// gated against the same exact-MVA oracle.
pub fn run_scenario_cohort(
    scenario: &Scenario,
    population: u32,
    seed: u64,
    cohort_size: u32,
) -> ConformancePoint {
    run_scenario_inner(scenario, population, seed, Some(cohort_size))
}

fn run_scenario_inner(
    scenario: &Scenario,
    population: u32,
    seed: u64,
    cohort: Option<u32>,
) -> ConformancePoint {
    let (w, a, d) = scenario.counts;
    let horizon = scenario.warmup + scenario.measure + 60.0;
    let (mut world, mut engine) = ThreeTierBuilder::new()
        .counts(w, a, d)
        .soft(SoftConfig::new(AMPLE, AMPLE, AMPLE))
        .db_threads(scenario.db_threads)
        .balancer(BalancerPolicy::Random)
        .web_law(ServiceLaw::frictionless(scenario.web_demand))
        .app_law(ServiceLaw::frictionless(scenario.app_demand))
        .db_law(scenario.db_law)
        .seed(seed)
        .build();
    world.system.enable_tracing();

    let mix = ServletMix::from_servlets(vec![Servlet {
        name: "conformance",
        weight: 1.0,
        web_mult: 1.0,
        app_mult: 1.0,
        db_mult: 1.0,
        db_queries: scenario.db_visits,
    }])
    .expect("single-servlet mix is valid");
    let factory = ProfileFactory::rubbos_deterministic()
        .with_mix(mix)
        .with_bases(
            Dist::constant(scenario.web_demand),
            Dist::constant(scenario.app_demand),
            Dist::exponential_mean(scenario.db_demand),
        );
    let think = Some(Dist::constant(scenario.think));
    let stop = SimTime::from_secs_f64(horizon);
    match cohort {
        Some(size) => {
            let _pop = CohortPopulation::start_with_think_dist(
                &mut world,
                &mut engine,
                factory,
                population,
                size,
                think,
                stop,
            );
        }
        None => {
            let _pop = UserPopulation::start_with_think_dist(
                &mut world,
                &mut engine,
                factory,
                population,
                think,
                stop,
            );
        }
    }

    engine.run_until(&mut world, SimTime::from_secs_f64(scenario.warmup));
    let t0 = engine.now();
    let _ = world.system.take_spans();
    let auditor = ConservationAuditor::begin(&world.system, t0);
    let completed_mark = world.system.counters().completed;

    engine.run_until(
        &mut world,
        SimTime::from_secs_f64(scenario.warmup + scenario.measure),
    );
    let t1 = engine.now();
    let spans = world.system.take_spans();
    let audit = auditor.finish(&world.system, &spans, t1);
    let window = t1.saturating_since(t0).as_secs_f64();
    assert!(window > 0.0, "empty measurement window");

    let completions = world.system.counters().completed - completed_mark;
    assert!(
        completions > 0,
        "no completions in window for {}",
        scenario.name
    );
    let x_des = completions as f64 / window;

    let (r_web, r_app, r_db) = tier_residences(&spans, t0);

    let net = scenario.network();
    let sol = net.solve(population);
    let bounds = net.asymptotic_bounds(population);
    let mva_r_web = sol.station_residence[0];
    let mva_r_app = sol.station_residence[1];
    let mva_r_db: f64 = sol.station_residence[2..].iter().sum();
    let mva_q_db: f64 = sol.station_queue[2..].iter().sum();

    let throughput = compare(x_des, sol.throughput);
    ConformancePoint {
        scenario: scenario.name,
        kind: scenario.kind,
        population,
        completions,
        throughput,
        residence: [
            compare(r_web, mva_r_web),
            compare(r_app, mva_r_app),
            compare(r_db, mva_r_db),
        ],
        db_queue: compare(x_des * r_db, mva_q_db),
        throughput_bound: bounds.throughput_upper,
        bound_ok: x_des <= bounds.throughput_upper * 1.005,
        audit_violations: audit.violations.len(),
    }
}

/// Mean per-request exclusive residence per tier, from spans of requests
/// fully inside the window (submitted after `t0`, completed).
///
/// A span's `[arrived, finished]` covers downstream time too, so the
/// exclusive residence subtracts the child tier's spans request by request.
fn tier_residences(spans: &[Span], t0: SimTime) -> (f64, f64, f64) {
    let mut per_request: BTreeMap<RequestId, [f64; 3]> = BTreeMap::new();
    let mut eligible: BTreeMap<RequestId, bool> = BTreeMap::new();
    for s in spans {
        if s.tier >= 3 {
            continue;
        }
        let dur = s.finished_at.saturating_since(s.arrived_at).as_secs_f64();
        per_request.entry(s.request).or_insert([0.0; 3])[s.tier] += dur;
        if s.tier == 0 {
            eligible.insert(s.request, s.is_completed() && s.arrived_at >= t0);
        }
    }
    let mut sums = [0.0f64; 3];
    let mut n = 0u64;
    for (rid, totals) in &per_request {
        if !eligible.get(rid).copied().unwrap_or(false) {
            continue;
        }
        n += 1;
        sums[0] += totals[0] - totals[1];
        sums[1] += totals[1] - totals[2];
        sums[2] += totals[2];
    }
    assert!(n > 0, "no fully-observed requests in window");
    let n = n as f64;
    (sums[0] / n, sums[1] / n, sums[2] / n)
}

/// The committed conformance grid: 14 zero-overhead points (delay tiers +
/// `M/M/1`, `M/M/4`, dual `M/M/2` DB stations, plus a pure delay network
/// exercising `V_db = 2`) and 6 load-dependent points driven by real
/// concurrency laws, spanning light load through saturation.
pub fn default_grid() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "mm1",
            kind: ScenarioKind::ZeroOverhead,
            counts: (1, 1, 1),
            db_threads: 1,
            web_demand: 0.002,
            app_demand: 0.008,
            db_demand: 0.04,
            db_visits: 1,
            think: 1.0,
            db_law: ServiceLaw::frictionless(0.04),
            populations: &[4, 12, 20, 30],
            warmup: 100.0,
            measure: 4000.0,
        },
        Scenario {
            name: "mm4",
            kind: ScenarioKind::ZeroOverhead,
            counts: (1, 1, 1),
            db_threads: 4,
            web_demand: 0.002,
            app_demand: 0.008,
            db_demand: 0.12,
            db_visits: 1,
            think: 1.0,
            db_law: ServiceLaw::frictionless(0.12),
            populations: &[6, 18, 36, 54],
            warmup: 100.0,
            measure: 4000.0,
        },
        Scenario {
            name: "dual-db",
            kind: ScenarioKind::ZeroOverhead,
            counts: (1, 2, 2),
            db_threads: 2,
            web_demand: 0.002,
            app_demand: 0.008,
            db_demand: 0.08,
            db_visits: 1,
            think: 0.8,
            db_law: ServiceLaw::frictionless(0.08),
            populations: &[10, 30, 60, 90],
            warmup: 100.0,
            measure: 4000.0,
        },
        Scenario {
            name: "delay",
            kind: ScenarioKind::ZeroOverhead,
            counts: (2, 2, 2),
            db_threads: AMPLE,
            web_demand: 0.004,
            app_demand: 0.02,
            db_demand: 0.04,
            db_visits: 2,
            think: 0.5,
            db_law: ServiceLaw::frictionless(0.04),
            populations: &[5, 50],
            warmup: 60.0,
            measure: 1500.0,
        },
        Scenario {
            name: "law-mysql",
            kind: ScenarioKind::LoadDependent,
            counts: (1, 1, 1),
            db_threads: 16,
            web_demand: 0.002,
            app_demand: 0.008,
            db_demand: 2.95501e-2,
            db_visits: 1,
            think: 0.5,
            db_law: ServiceLaw::new(2.95501e-2, 4.53985e-3, 1.9298e-5),
            populations: &[6, 16, 32],
            warmup: 100.0,
            measure: 4000.0,
        },
        Scenario {
            name: "law-knee",
            kind: ScenarioKind::LoadDependent,
            counts: (1, 1, 1),
            db_threads: 24,
            web_demand: 0.002,
            app_demand: 0.008,
            db_demand: 2.84e-2,
            db_visits: 1,
            think: 0.5,
            db_law: ServiceLaw::new(2.84e-2, 1.6e-2, 7.0e-5),
            populations: &[8, 20, 40],
            warmup: 100.0,
            measure: 4000.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_enough_points_and_coherent_laws() {
        let grid = default_grid();
        let zero: usize = grid
            .iter()
            .filter(|s| s.kind == ScenarioKind::ZeroOverhead)
            .map(|s| s.populations.len())
            .sum();
        let law: usize = grid
            .iter()
            .filter(|s| s.kind == ScenarioKind::LoadDependent)
            .map(|s| s.populations.len())
            .sum();
        assert!(zero >= 12, "need >= 12 zero-overhead points, have {zero}");
        assert!(law >= 6, "need >= 6 load-dependent points, have {law}");
        for s in &grid {
            if s.kind == ScenarioKind::LoadDependent {
                assert!(
                    (s.db_demand - s.db_law.s0()).abs() < 1e-12,
                    "{}: demand mean must equal the law's S0",
                    s.name
                );
            }
        }
    }

    #[test]
    fn network_station_count_tracks_db_servers() {
        let grid = default_grid();
        let dual = grid.iter().find(|s| s.name == "dual-db").unwrap();
        assert_eq!(dual.network().stations.len(), 2 + 2);
        let mm1 = grid.iter().find(|s| s.name == "mm1").unwrap();
        assert_eq!(mm1.network().stations.len(), 3);
    }

    #[test]
    fn quick_point_conforms_and_audits_clean() {
        // A cheap smoke point: mm1 at N=8 with a short window still lands
        // within a loose 10% of the oracle and audits clean.
        let mut s = default_grid().into_iter().next().unwrap();
        s.warmup = 30.0;
        s.measure = 400.0;
        let point = run_scenario(&s, 8, 1234);
        assert_eq!(point.audit_violations, 0);
        assert!(point.bound_ok, "bound violated: {point:?}");
        assert!(point.max_rel_err() < 0.10, "errors too large: {point:?}");
    }

    #[test]
    fn quick_cohort_point_conforms_and_audits_clean() {
        // The cohort-aggregated generator must land on the same oracle:
        // a different sample path, the same stationary distribution.
        let mut s = default_grid().into_iter().next().unwrap();
        s.warmup = 30.0;
        s.measure = 400.0;
        let point = run_scenario_cohort(&s, 8, 1234, 4);
        assert_eq!(point.audit_violations, 0);
        assert!(point.bound_ok, "bound violated: {point:?}");
        assert!(point.max_rel_err() < 0.10, "errors too large: {point:?}");
    }

    /// Full-grid calibration sweep. Expensive (~minutes of simulated time
    /// per point), so ignored by default; `repro validate` is the shipping
    /// entry point. Run with `cargo test -p dcm-oracle -- --ignored`.
    #[test]
    #[ignore]
    fn full_grid_within_tolerance() {
        let mut worst_zero = 0.0f64;
        let mut worst_law = 0.0f64;
        for (i, s) in default_grid().iter().enumerate() {
            for (j, &n) in s.populations.iter().enumerate() {
                let seed = (i as u64) * 100 + j as u64 + 7;
                let p = run_scenario(s, n, seed);
                eprintln!(
                    "{:>9} N={:<3} X: {:.4}/{:.4} ({:+.3}%)  R: web {:+.3}% app {:+.3}% db {:+.3}%  Q_db {:+.3}%  audits={}",
                    p.scenario,
                    n,
                    p.throughput.des,
                    p.throughput.mva,
                    100.0 * p.throughput.rel_err,
                    100.0 * p.residence[0].rel_err,
                    100.0 * p.residence[1].rel_err,
                    100.0 * p.residence[2].rel_err,
                    100.0 * p.db_queue.rel_err,
                    p.audit_violations,
                );
                assert_eq!(p.audit_violations, 0, "{p:?}");
                assert!(p.bound_ok, "{p:?}");
                let worst = match p.kind {
                    ScenarioKind::ZeroOverhead => &mut worst_zero,
                    ScenarioKind::LoadDependent => &mut worst_law,
                };
                *worst = worst.max(p.max_rel_err());
            }
        }
        eprintln!("worst zero-overhead: {:.4}%", 100.0 * worst_zero);
        eprintln!("worst load-dependent: {:.4}%", 100.0 * worst_law);
        assert!(
            worst_zero < 0.02,
            "zero-overhead tolerance exceeded: {worst_zero}"
        );
        assert!(
            worst_law < 0.05,
            "load-dependent tolerance exceeded: {worst_law}"
        );
    }
}
