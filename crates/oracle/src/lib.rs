//! # dcm-oracle — analytic oracle & DES conformance harness
//!
//! Proves the simulator right (or catches it drifting): every conformance
//! scenario builds the *same* system twice — once as a DES topology
//! ([`dcm_ntier::topology::ThreeTierBuilder`] + a think-time client
//! population) and once as a closed product-form queueing network solved
//! exactly by load-dependent MVA ([`dcm_model::mva`]) — then compares
//! steady-state throughput, per-tier residence, and queue lengths.
//!
//! The mapping rests on how the simulated server actually works (see
//! [`dcm_ntier::cpu`]): all bursts progress at speed `1/f(n)`, so
//!
//! * a **frictionless** (`α = β = 0`) server with an ample thread pool is
//!   an infinite-server (delay) station — insensitive to the demand
//!   distribution, so constant demands are exact;
//! * a frictionless server behind a **finite thread pool** of `c` threads
//!   serves like `M/M/c` (rate `min(n,c)/S`) — exact when per-visit demand
//!   is exponential;
//! * a **lawful** (`α, β > 0`) server behind `c` threads is a
//!   load-dependent station with rate `min(n,c)·S⁰/S*(min(n,c))` per mean
//!   demand — the ground-truth `S*(N)` from [`dcm_ntier::law`] feeds the
//!   oracle via [`dcm_model::mva::law_rate_table`].
//!
//! Every scenario run also carries a [`dcm_ntier::audit::ConservationAuditor`]
//! across its measurement window, so a conformance sweep doubles as a
//! conservation sweep.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod conformance;
pub mod mesh;
pub mod planner;

pub use conformance::{
    default_grid, run_scenario, run_scenario_cohort, ConformancePoint, Scenario, ScenarioKind,
    TierComparison,
};
pub use mesh::{default_mesh_grid, run_mesh_scenario, CacheSpec, MeshNodeSpec, MeshPoint, MeshScenario};
pub use planner::{predict, throughput_bound, PlannedTier, Prediction};
