//! Metamorphic properties of the DES: known transformations of a
//! configuration must transform the steady state in a known way, with no
//! oracle in the loop (the simulator is checked against itself).

use dcm_ntier::balancer::BalancerPolicy;
use dcm_ntier::law::{reference, ServiceLaw};
use dcm_ntier::server::VmType;
use dcm_ntier::system::VmPolicy;
use dcm_ntier::topology::{MeshBuilder, MeshNode, SoftConfig, ThreeTierBuilder};
use dcm_oracle::{run_scenario, Scenario, ScenarioKind};
use dcm_sim::dist::Dist;
use dcm_sim::time::SimTime;
use dcm_workload::generator::UserPopulation;
use dcm_ntier::graph::TopologyGraph;
use dcm_workload::profile::{MeshProfileFactory, NodeDemand, ProfileFactory};

/// Doubling every tier's server count AND the client population in a
/// zero-overhead configuration leaves per-server utilization and mean
/// per-request residence invariant, and doubles throughput — the scaled
/// system behaves like two copies of the original. (The equivalence is
/// exact only away from the saturation knee: random routing couples the
/// copies, a finite-population effect, so the test runs at moderate
/// utilization where the residual is well under the tolerance.)
#[test]
fn doubling_servers_and_load_preserves_per_server_state() {
    let base = Scenario {
        name: "meta-base",
        kind: ScenarioKind::ZeroOverhead,
        counts: (1, 1, 1),
        db_threads: 2,
        web_demand: 0.002,
        app_demand: 0.008,
        db_demand: 0.08,
        db_visits: 1,
        think: 0.8,
        db_law: ServiceLaw::frictionless(0.08),
        populations: &[10],
        warmup: 50.0,
        measure: 1500.0,
    };
    let doubled = Scenario {
        name: "meta-doubled",
        counts: (2, 2, 2),
        ..base.clone()
    };
    let one = run_scenario(&base, 10, 9001);
    let two = run_scenario(&doubled, 20, 9002);
    assert_eq!(one.audit_violations, 0);
    assert_eq!(two.audit_violations, 0);

    // Throughput doubles (per-server utilization X·S/d invariant follows
    // directly: 2X over 2d servers with the same demands).
    let x_ratio = two.throughput.des / one.throughput.des;
    assert!(
        (x_ratio - 2.0).abs() < 0.04,
        "throughput must double: {x_ratio:.4} ({} vs {})",
        one.throughput.des,
        two.throughput.des
    );
    // Mean per-request residence at each tier is invariant.
    for (tier, (a, b)) in one.residence.iter().zip(two.residence.iter()).enumerate() {
        let rel = (a.des - b.des).abs() / a.des;
        assert!(
            rel < 0.05,
            "tier {tier} residence must be invariant: {:.6} vs {:.6} ({:.2}%)",
            a.des,
            b.des,
            100.0 * rel
        );
    }
}

/// Permuting the order in which two identical middle tiers are configured
/// (the app/db builder arguments swapped, and the setters called in the
/// opposite order) produces a bit-identical simulation: same completion
/// count and identical per-request finish timestamps.
#[test]
fn permuting_identical_tier_configuration_is_bit_identical() {
    let law = ServiceLaw::new(0.02, 1.0e-3, 1.0e-5);
    let demand = 0.02;
    let run = |swap: bool| {
        let builder = ThreeTierBuilder::new()
            .counts(1, 1, 1)
            .soft(SoftConfig::new(1000, 24, 24))
            .balancer(BalancerPolicy::Random)
            .seed(4711);
        // The two middle-tier laws are equal; `swap` routes each value
        // through the other setter and flips the call order.
        let builder = if swap {
            builder.db_law(law).app_law(law)
        } else {
            builder.app_law(law).db_law(law)
        };
        let (mut world, mut engine) = builder.build();
        let factory = ProfileFactory::rubbos().with_bases(
            dcm_sim::dist::Dist::constant(0.002),
            dcm_sim::dist::Dist::constant(demand),
            dcm_sim::dist::Dist::exponential_mean(demand),
        );
        let pop = UserPopulation::start_think_time(
            &mut world,
            &mut engine,
            factory,
            60,
            1.0,
            SimTime::from_secs(120),
        );
        engine.run(&mut world);
        let counters = world.system.counters();
        let finishes =
            pop.with_completions(|log| log.iter().map(|c| c.finished).collect::<Vec<_>>());
        (counters, finishes)
    };
    let (counters_a, finishes_a) = run(false);
    let (counters_b, finishes_b) = run(true);
    assert_eq!(counters_a, counters_b, "outcome counters must be identical");
    assert!(counters_a.completed > 1000, "sanity: the run did something");
    assert_eq!(
        finishes_a, finishes_b,
        "per-request finish timestamps must be bit-identical"
    );
}

/// The chain is the degenerate DAG: attaching the explicit chain graph to
/// the request profiles (which routes every request through the
/// DAG-dispatch path instead of the fixed-chain path) must reproduce the
/// plain chain simulation bit for bit — same counters, same per-request
/// finish timestamps.
#[test]
fn chain_graph_dispatch_is_bit_identical_to_plain_chain() {
    let run = |chain_graph: bool| {
        let (mut world, mut engine) = ThreeTierBuilder::new()
            .counts(1, 2, 1)
            .soft(SoftConfig::new(1000, 60, 24))
            .seed(8080)
            .build();
        let factory = if chain_graph {
            ProfileFactory::rubbos().with_chain_graph()
        } else {
            ProfileFactory::rubbos()
        };
        let pop = UserPopulation::start_think_time(
            &mut world,
            &mut engine,
            factory,
            40,
            1.0,
            SimTime::from_secs(120),
        );
        engine.run(&mut world);
        let counters = world.system.counters();
        let finishes =
            pop.with_completions(|log| log.iter().map(|c| c.finished).collect::<Vec<_>>());
        (counters, finishes)
    };
    let (counters_plain, finishes_plain) = run(false);
    let (counters_dag, finishes_dag) = run(true);
    assert_eq!(
        counters_plain, counters_dag,
        "DAG dispatch of the chain graph must not change outcomes"
    );
    assert!(counters_plain.completed > 1000, "sanity: the run did work");
    assert_eq!(
        finishes_plain, finishes_dag,
        "per-request finish timestamps must be bit-identical"
    );
}

/// A heterogeneous VM policy whose catalog holds only the small flavor is
/// the degenerate fleet: it must be bit-identical to the homogeneous
/// default — same completions, same per-tier VM-seconds and dollars.
#[test]
fn single_flavor_vm_policy_is_bit_identical_to_homogeneous_default() {
    let horizon = SimTime::from_secs(120);
    let run = |explicit: bool| {
        let graph = TopologyGraph::from_edges(3, &[(0, 1, 1), (1, 2, 2)]);
        let node = |name: &str, law, threads: u32| {
            let n = MeshNode::new(name, law, threads);
            if explicit {
                n.vm_policy(VmPolicy::fixed(VmType::SMALL))
            } else {
                n
            }
        };
        let (mut world, mut engine) = MeshBuilder::new()
            .node(node("web", reference::apache(), 1000))
            .node(node("app", reference::tomcat(), 100).conns(40).count(2))
            .node(node("db", reference::mysql(), 800))
            .seed(6060)
            .build();
        let factory = MeshProfileFactory::new(
            graph,
            vec![
                NodeDemand::split(Dist::constant(0.002)),
                NodeDemand::split(Dist::constant(0.008)),
                NodeDemand::leaf(Dist::exponential_mean(0.02)).iid_visits(),
            ],
        );
        let pop = UserPopulation::start_think_time(
            &mut world,
            &mut engine,
            factory,
            30,
            1.0,
            horizon,
        );
        engine.run(&mut world);
        let counters = world.system.counters();
        let finishes =
            pop.with_completions(|log| log.iter().map(|c| c.finished).collect::<Vec<_>>());
        let now = engine.now();
        let accounting: Vec<(u64, u64)> = (0..world.system.tier_count())
            .map(|m| {
                (
                    world.system.vm_seconds(m, now).to_bits(),
                    world.system.vm_cost(m, now).to_bits(),
                )
            })
            .collect();
        (counters, finishes, accounting)
    };
    let (counters_default, finishes_default, accounting_default) = run(false);
    let (counters_explicit, finishes_explicit, accounting_explicit) = run(true);
    assert_eq!(counters_default, counters_explicit);
    assert!(counters_default.completed > 500, "sanity: the run did work");
    assert_eq!(finishes_default, finishes_explicit);
    assert_eq!(
        accounting_default, accounting_explicit,
        "single-small catalog must price exactly like the default fleet"
    );
}
