//! Property tests for the MPC planner API: over randomized topologies and
//! demands, predicted throughput must be monotone non-decreasing in every
//! tier's server count and concurrency at fixed load, and must never
//! exceed the asymptotic operational bound
//! `X ≤ min(N/(Z+ΣD), min_m c_m/D_m)`.

use proptest::prelude::*;

use dcm_oracle::planner::{predict, throughput_bound, PlannedTier};

/// Strategy for one random tier: 1–4 VMs, 1–64 per-VM concurrency,
/// per-visit demands spanning microservice to heavy-query scales.
fn tier() -> impl Strategy<Value = PlannedTier> {
    (1u32..=4, 1u32..=64, 0.001f64..0.1, 0.25f64..3.0).prop_map(
        |(servers, concurrency, demand, visits)| PlannedTier {
            servers,
            concurrency,
            demand,
            visits,
        },
    )
}

fn topology() -> impl Strategy<Value = Vec<PlannedTier>> {
    prop::collection::vec(tier(), 1..=4)
}

proptest! {
    /// Predicted X never exceeds the asymptotic bound, at any population.
    #[test]
    fn throughput_respects_asymptotic_bounds(
        tiers in topology(),
        think in 0.0f64..3.0,
        population in 1u32..200,
    ) {
        let p = predict(&tiers, think, population);
        let bound = throughput_bound(&tiers, think, population);
        prop_assert!(
            p.throughput <= bound * (1.0 + 1e-9),
            "X {} exceeds bound {bound} at N={population}",
            p.throughput
        );
        // The bound's two arms, spelled out: the light-load limit and the
        // bottleneck channel capacity.
        let d_total: f64 = tiers.iter().map(|t| t.total_demand()).sum();
        prop_assert!(p.throughput <= f64::from(population) / (think + d_total) + 1e-9);
        let cap = tiers
            .iter()
            .filter(|t| t.visits > 0.0)
            .map(|t| {
                f64::from(t.servers * t.concurrency) / (t.demand * t.visits)
            })
            .fold(f64::INFINITY, f64::min);
        prop_assert!(p.throughput <= cap * (1.0 + 1e-9));
    }

    /// At fixed load, adding a VM to any tier never lowers predicted X.
    #[test]
    fn monotone_in_servers_per_tier(
        tiers in topology(),
        think in 0.0f64..3.0,
        population in 1u32..150,
        which in 0usize..4,
    ) {
        let base = predict(&tiers, think, population);
        let mut grown = tiers.clone();
        let idx = which % grown.len();
        grown[idx].servers += 1;
        let more = predict(&grown, think, population);
        prop_assert!(
            more.throughput >= base.throughput * (1.0 - 1e-9),
            "tier {idx}: {} VMs -> {} VMs dropped X {} -> {}",
            tiers[idx].servers, grown[idx].servers, base.throughput, more.throughput
        );
        // Response time can only improve too (pure capacity add).
        prop_assert!(more.response_time <= base.response_time * (1.0 + 1e-9));
    }

    /// At fixed load, raising any tier's concurrency cap never lowers
    /// predicted X (demands are fixed inputs; contention is the caller's
    /// adjustment, not the planner's).
    #[test]
    fn monotone_in_concurrency_per_tier(
        tiers in topology(),
        think in 0.0f64..3.0,
        population in 1u32..150,
        which in 0usize..4,
        step in 1u32..16,
    ) {
        let base = predict(&tiers, think, population);
        let mut deeper = tiers.clone();
        let idx = which % deeper.len();
        deeper[idx].concurrency += step;
        let more = predict(&deeper, think, population);
        prop_assert!(
            more.throughput >= base.throughput * (1.0 - 1e-9),
            "tier {idx}: N {} -> {} dropped X {} -> {}",
            tiers[idx].concurrency, deeper[idx].concurrency,
            base.throughput, more.throughput
        );
    }

    /// X is monotone non-decreasing in population (fixed deployment), and
    /// the interactive response-time law holds at every point.
    #[test]
    fn monotone_in_population_and_little_consistent(
        tiers in topology(),
        think in 0.1f64..3.0,
    ) {
        let mut last = 0.0;
        for n in [1u32, 2, 5, 13, 34, 89] {
            let p = predict(&tiers, think, n);
            prop_assert!(p.throughput >= last - 1e-9, "X not monotone at N={n}");
            // Interactive law: N = X·(R+Z) exactly, for the exact solver.
            let implied = p.throughput * (p.response_time + think);
            prop_assert!(
                (implied - f64::from(n)).abs() < 1e-6,
                "interactive law broke at N={n}: {implied}"
            );
            prop_assert!((p.residence.iter().sum::<f64>() - p.response_time).abs() < 1e-9);
            last = p.throughput;
        }
    }
}
