//! Predicted-vs-realized conformance for the MPC planner: on frictionless
//! scenarios the planner's MVA prediction of the *deployed* configuration
//! must match the DES-measured throughput within the PR-3 zero-overhead
//! gate (2 %). This is the planner-side half of the satellite; the
//! full-stack half (the MPC's journaled per-tick prediction error) lives
//! in the bench crate's full-stack tests.

use dcm_ntier::law::ServiceLaw;
use dcm_oracle::planner::{predict, PlannedTier};
use dcm_oracle::{run_scenario, Scenario, ScenarioKind};

/// Ample web/app pools in the conformance topology: model them as very
/// wide queueing stations (numerically a delay station at these
/// populations).
const AMPLE: u32 = 4096;

/// The PR-3 zero-overhead conformance gate.
const GATE: f64 = 0.02;

fn planner_tiers(s: &Scenario) -> Vec<PlannedTier> {
    vec![
        PlannedTier {
            servers: s.counts.0,
            concurrency: AMPLE,
            demand: s.web_demand,
            visits: 1.0,
        },
        PlannedTier {
            servers: s.counts.1,
            concurrency: AMPLE,
            demand: s.app_demand,
            visits: 1.0,
        },
        PlannedTier {
            servers: s.counts.2,
            concurrency: s.db_threads,
            demand: s.db_demand,
            visits: f64::from(s.db_visits),
        },
    ]
}

fn scenario(name: &'static str, db_threads: u32, db_demand: f64, db_visits: u32) -> Scenario {
    Scenario {
        name,
        kind: ScenarioKind::ZeroOverhead,
        counts: (1, 1, 1),
        db_threads,
        web_demand: 0.005,
        app_demand: 0.012,
        db_demand,
        db_visits,
        think: 1.0,
        db_law: ServiceLaw::frictionless(db_demand),
        populations: &[],
        warmup: 200.0,
        measure: 4000.0,
    }
}

#[test]
fn planner_prediction_matches_des_within_gates() {
    // Single-DB frictionless points: the planner's one pooled station is
    // exactly the conformance network, so the 2 % gate applies directly.
    let cases = [
        (scenario("plan-mm1", 1, 0.04, 1), 12u32),
        (scenario("plan-mm1-hot", 1, 0.04, 1), 22u32),
        (scenario("plan-mm4", 4, 0.05, 2), 16u32),
        (scenario("plan-mm4-hot", 4, 0.05, 2), 36u32),
    ];
    for (s, population) in cases {
        let point = run_scenario(&s, population, 0x0D0C_5EED);
        let plan = predict(&planner_tiers(&s), s.think, population);
        let err = (plan.throughput - point.throughput.des).abs() / plan.throughput;
        assert!(
            err <= GATE,
            "{} N={population}: planner X {:.4} vs DES {:.4} ({:.2} % > {:.0} %)",
            s.name,
            plan.throughput,
            point.throughput.des,
            100.0 * err,
            100.0 * GATE
        );
        assert_eq!(point.audit_violations, 0, "{} audit", s.name);
        // The planner agrees with the conformance harness's own MVA to
        // float precision (same network, same solver).
        let mva_err = (plan.throughput - point.throughput.mva).abs() / plan.throughput;
        assert!(
            mva_err < 1e-9,
            "{}: planner X {:.6} vs oracle MVA {:.6}",
            s.name,
            plan.throughput,
            point.throughput.mva
        );
    }
}
