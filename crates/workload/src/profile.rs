//! Turning the servlet mix into per-request execution plans.

use dcm_ntier::graph::TopologyGraph;
use dcm_ntier::law::reference;
use dcm_ntier::request::{RequestProfile, StageDemand};
use dcm_sim::dist::{Dist, Sample};
use dcm_sim::rng::SimRng;

use crate::cache::CacheDynamics;
use crate::servlets::ServletMix;

/// Samples [`RequestProfile`]s for the three-tier RUBBoS deployment.
///
/// Per-tier demands are drawn from a base distribution scaled by the chosen
/// servlet's multiplier; the base means default to the reference laws' `S⁰`
/// so a server at the knee behaves exactly as the paper's model predicts.
///
/// # Examples
///
/// ```
/// use dcm_workload::profile::ProfileFactory;
/// use dcm_sim::rng::SimRng;
///
/// let factory = ProfileFactory::rubbos();
/// let mut rng = SimRng::seed_from(1);
/// let profile = factory.sample(&mut rng);
/// assert_eq!(profile.tiers(), 3);
/// assert!(profile.visits_to(2) >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct ProfileFactory {
    mix: ServletMix,
    web_base: Dist,
    app_base: Dist,
    db_base: Dist,
    /// Fraction of app demand executed before the DB calls (the rest runs
    /// after the last call returns).
    app_pre_fraction: f64,
    /// Insert the pass-through DB load-balancer tier (four-tier RUBBoS).
    four_tier: bool,
    /// Attach an explicit chain-shaped [`TopologyGraph`] to every sampled
    /// profile (metamorphic check: the chain is the degenerate DAG).
    attach_chain_graph: bool,
}

impl ProfileFactory {
    /// The paper-matching factory: browse-only mix, per-tier demand means
    /// equal to the reference laws' `S⁰`, moderate variability.
    pub fn rubbos() -> Self {
        ProfileFactory {
            mix: ServletMix::browse_only(),
            web_base: Dist::exponential_mean(reference::apache().s0()),
            app_base: Dist::exponential_mean(reference::tomcat().s0()),
            db_base: Dist::exponential_mean(reference::mysql().s0()),
            app_pre_fraction: 0.5,
            four_tier: false,
            attach_chain_graph: false,
        }
    }

    /// The paper's four-tier deployment: same demands, with each query
    /// routed through the DB load-balancer tier (use together with
    /// `ThreeTierBuilder::with_db_load_balancer`).
    pub fn rubbos_four_tier() -> Self {
        ProfileFactory {
            four_tier: true,
            ..Self::rubbos()
        }
    }

    /// A deterministic variant (constant demands at the law means) for
    /// noise-free unit tests and calibration runs.
    pub fn rubbos_deterministic() -> Self {
        ProfileFactory {
            mix: ServletMix::browse_only(),
            web_base: Dist::constant(reference::apache().s0()),
            app_base: Dist::constant(reference::tomcat().s0()),
            db_base: Dist::constant(reference::mysql().s0()),
            app_pre_fraction: 0.5,
            four_tier: false,
            attach_chain_graph: false,
        }
    }

    /// Attaches an explicit chain-shaped [`TopologyGraph`] to every sampled
    /// profile. Demands, visit counts, and the RNG stream are untouched —
    /// the chain is the degenerate DAG, so simulations driven by a
    /// chain-graph factory must be bit-identical to the plain factory
    /// (enforced by metamorphic tests).
    pub fn with_chain_graph(mut self) -> Self {
        self.attach_chain_graph = true;
        self
    }

    /// Overrides the servlet mix.
    pub fn with_mix(mut self, mix: ServletMix) -> Self {
        self.mix = mix;
        self
    }

    /// Overrides the per-tier base demand distributions
    /// (web, app, db-per-query).
    pub fn with_bases(mut self, web: Dist, app: Dist, db: Dist) -> Self {
        self.web_base = web;
        self.app_base = app;
        self.db_base = db;
        self
    }

    /// Sets the fraction of app-tier demand that runs before the DB calls.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn with_app_pre_fraction(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        self.app_pre_fraction = fraction;
        self
    }

    /// The servlet mix in use.
    pub fn mix(&self) -> &ServletMix {
        &self.mix
    }

    /// Samples one request's execution plan.
    pub fn sample(&self, rng: &mut SimRng) -> RequestProfile {
        let idx = self.mix.sample_index(rng);
        let servlet = self.mix.servlet(idx);
        let web = self.web_base.sample(rng) * servlet.web_mult;
        let app = self.app_base.sample(rng) * servlet.app_mult;
        let db = self.db_base.sample(rng) * servlet.db_mult;
        let app_demand = StageDemand {
            pre: app * self.app_pre_fraction,
            post: app * (1.0 - self.app_pre_fraction),
        };
        let queries = servlet.db_queries.max(1);
        // Each query's demand is an independent draw: reusing one sample
        // across a request's queries correlates the DB station's service
        // times (long query ⇒ the next is long too), which inflates
        // queueing beyond the product-form model the MVA oracle solves.
        // The first query reuses `db` so single-query requests draw
        // exactly as before.
        let per_query: Vec<StageDemand> = if queries > 1 {
            std::iter::once(db)
                .chain((1..queries).map(|_| self.db_base.sample(rng) * servlet.db_mult))
                .map(StageDemand::pre_only)
                .collect()
        } else {
            Vec::new()
        };
        if self.four_tier {
            // web → app → lb (per query) → db (one forward each).
            let mut profile = RequestProfile::new(
                vec![
                    StageDemand::pre_only(web),
                    app_demand,
                    StageDemand::pre_only(1.0e-4),
                    StageDemand::pre_only(db),
                ],
                vec![1, 1, queries, 1],
                idx as u16,
            );
            if self.attach_chain_graph {
                profile = profile.with_graph(TopologyGraph::chain(&[1, 1, queries, 1]));
            }
            if per_query.is_empty() {
                profile
            } else {
                profile.with_per_visit_demands(3, per_query)
            }
        } else {
            let mut profile = RequestProfile::new(
                vec![
                    StageDemand::pre_only(web),
                    app_demand,
                    StageDemand::pre_only(db),
                ],
                vec![1, 1, queries],
                idx as u16,
            );
            if self.attach_chain_graph {
                profile = profile.with_graph(TopologyGraph::chain(&[1, 1, queries]));
            }
            if per_query.is_empty() {
                profile
            } else {
                profile.with_per_visit_demands(2, per_query)
            }
        }
    }
}

/// Any profile source a client population can drive: the chain factory or
/// the mesh factory. Generators accept `impl Into<WorkloadFactory>`, so
/// existing [`ProfileFactory`] call sites keep working unchanged.
#[derive(Debug, Clone)]
pub enum WorkloadFactory {
    /// The three-/four-tier chain factory.
    Chain(ProfileFactory),
    /// The microservice-DAG factory.
    Mesh(MeshProfileFactory),
}

impl WorkloadFactory {
    /// Samples one request's execution plan.
    pub fn sample(&self, rng: &mut SimRng) -> RequestProfile {
        match self {
            WorkloadFactory::Chain(f) => f.sample(rng),
            WorkloadFactory::Mesh(f) => f.sample(rng),
        }
    }
}

impl From<ProfileFactory> for WorkloadFactory {
    fn from(f: ProfileFactory) -> Self {
        WorkloadFactory::Chain(f)
    }
}

impl From<MeshProfileFactory> for WorkloadFactory {
    fn from(f: MeshProfileFactory) -> Self {
        WorkloadFactory::Mesh(f)
    }
}

/// Per-node demand specification for a [`MeshProfileFactory`].
#[derive(Debug, Clone)]
pub struct NodeDemand {
    /// Base per-visit demand distribution.
    pub base: Dist,
    /// Fraction of a visit's demand executed before its downstream calls
    /// (the rest runs after the last call returns).
    pub pre_fraction: f64,
    /// Draw an independent demand for every visit beyond the first
    /// (i.i.d. visits keep the DAG inside the product-form model the MVA
    /// oracle solves).
    pub per_visit_iid: bool,
}

impl NodeDemand {
    /// A leaf-style node: all demand before the (absent) downstream calls.
    pub fn leaf(base: Dist) -> Self {
        NodeDemand {
            base,
            pre_fraction: 1.0,
            per_visit_iid: false,
        }
    }

    /// An interior node splitting its demand evenly around downstream calls.
    pub fn split(base: Dist) -> Self {
        NodeDemand {
            base,
            pre_fraction: 0.5,
            per_visit_iid: false,
        }
    }

    /// Sets the pre-call demand fraction.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn pre_fraction(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        self.pre_fraction = fraction;
        self
    }

    /// Enables independent per-visit demand draws.
    pub fn iid_visits(mut self) -> Self {
        self.per_visit_iid = true;
        self
    }
}

/// A cache edge: requests deciding *hit* at `from` skip the calls along
/// `from → to` entirely.
#[derive(Debug, Clone)]
pub struct CacheEdge {
    /// The caching node.
    pub from: usize,
    /// The node whose calls a hit short-circuits (typically the DB).
    pub to: usize,
    /// Warm-up hit-ratio state, shared across the factory's samples.
    pub dynamics: CacheDynamics,
}

/// Samples [`RequestProfile`]s over an arbitrary microservice DAG: one
/// demand spec per node, calls routed by a [`TopologyGraph`], and an
/// optional cache edge whose hits drop the downstream hop.
///
/// The chain factories ([`ProfileFactory`]) stay the special case; this is
/// the general form driving the `repro mesh` scenarios.
///
/// # Examples
///
/// ```
/// use dcm_ntier::graph::TopologyGraph;
/// use dcm_sim::dist::Dist;
/// use dcm_sim::rng::SimRng;
/// use dcm_workload::profile::{MeshProfileFactory, NodeDemand};
///
/// // web fans out to two services; each calls the shared db.
/// let graph = TopologyGraph::from_edges(4, &[(0, 1, 1), (0, 2, 1), (1, 3, 1), (2, 3, 1)]);
/// let factory = MeshProfileFactory::new(
///     graph,
///     vec![
///         NodeDemand::split(Dist::constant(0.001)),
///         NodeDemand::split(Dist::constant(0.010)),
///         NodeDemand::split(Dist::constant(0.012)),
///         NodeDemand::leaf(Dist::constant(0.007)),
///     ],
/// );
/// let mut rng = SimRng::seed_from(1);
/// let p = factory.sample(&mut rng);
/// assert_eq!(p.tiers(), 4);
/// assert_eq!(p.cumulative_visits(3), 2); // one query via each service
/// ```
#[derive(Debug, Clone)]
pub struct MeshProfileFactory {
    graph: TopologyGraph,
    demands: Vec<NodeDemand>,
    cache: Option<CacheEdge>,
    class: u16,
}

impl MeshProfileFactory {
    /// Creates a factory over `graph` with one demand spec per node.
    ///
    /// # Panics
    ///
    /// Panics if `demands` does not cover every graph node or a
    /// `pre_fraction` is outside `[0, 1]`.
    pub fn new(graph: TopologyGraph, demands: Vec<NodeDemand>) -> Self {
        assert_eq!(
            graph.tiers(),
            demands.len(),
            "one demand spec per graph node"
        );
        for d in &demands {
            assert!(
                (0.0..=1.0).contains(&d.pre_fraction),
                "fraction must be in [0,1]"
            );
        }
        MeshProfileFactory {
            graph,
            demands,
            cache: None,
            class: 0,
        }
    }

    /// Installs a cache on the `from → to` edge: each request draws a
    /// hit/miss decision from `dynamics`; hits zero out that edge's calls.
    ///
    /// # Panics
    ///
    /// Panics if the graph holds no `from → to` edge.
    pub fn with_cache(mut self, from: usize, to: usize, dynamics: CacheDynamics) -> Self {
        assert!(
            self.graph
                .out_edges(from)
                .iter()
                .any(|e| usize::from(e.to) == to),
            "cache edge {from} -> {to} not in the graph"
        );
        self.cache = Some(CacheEdge { from, to, dynamics });
        self
    }

    /// Sets the workload class stamped on sampled profiles.
    pub fn with_class(mut self, class: u16) -> Self {
        self.class = class;
        self
    }

    /// The factory's call graph (the miss-path shape; hits drop the cached
    /// edge per request).
    pub fn graph(&self) -> &TopologyGraph {
        &self.graph
    }

    /// The cache edge, if one is installed.
    pub fn cache(&self) -> Option<&CacheEdge> {
        self.cache.as_ref()
    }

    /// Samples one request's execution plan.
    ///
    /// Draw order is deterministic: one base demand per node in node
    /// order, then the cache hit/miss decision, then independent per-visit
    /// demands in node order (the first visit reuses the base draw).
    pub fn sample(&self, rng: &mut SimRng) -> RequestProfile {
        let n = self.graph.tiers();
        let mut stage = Vec::with_capacity(n);
        for node in &self.demands {
            let d = node.base.sample(rng);
            stage.push(StageDemand {
                pre: d * node.pre_fraction,
                post: d * (1.0 - node.pre_fraction),
            });
        }
        let mut graph = self.graph.clone();
        if let Some(cache) = &self.cache {
            if cache.dynamics.decide(rng) {
                graph.set_edge_calls(cache.from, cache.to, 0);
            }
        }
        let mut profile = RequestProfile::new(stage, vec![1; n], self.class).with_graph(graph);
        for (m, node) in self.demands.iter().enumerate() {
            if !node.per_visit_iid {
                continue;
            }
            let visits = usize::try_from(profile.cumulative_visits(m)).unwrap_or(usize::MAX);
            if visits <= 1 {
                continue;
            }
            let mut per_visit = Vec::with_capacity(visits);
            per_visit.push(profile.demand(m));
            for _ in 1..visits {
                let d = node.base.sample(rng);
                per_visit.push(StageDemand {
                    pre: d * node.pre_fraction,
                    post: d * (1.0 - node.pre_fraction),
                });
            }
            profile = profile.with_per_visit_demands(m, per_visit);
        }
        profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_profiles_have_three_tiers_and_queries() {
        let factory = ProfileFactory::rubbos();
        let mut rng = SimRng::seed_from(3);
        for _ in 0..100 {
            let p = factory.sample(&mut rng);
            assert_eq!(p.tiers(), 3);
            assert!((1..=3).contains(&p.visits_to(2)));
            assert!(p.demand(1).pre > 0.0);
        }
    }

    #[test]
    fn mean_db_demand_tracks_law_s0() {
        // Averaged over many samples, the per-query db demand should be
        // close to the MySQL law's S0 (multipliers average ≈ 1).
        let factory = ProfileFactory::rubbos();
        let mut rng = SimRng::seed_from(11);
        let n = 50_000;
        let mean: f64 = (0..n)
            .map(|_| factory.sample(&mut rng).demand(2).pre)
            .sum::<f64>()
            / n as f64;
        let s0 = reference::mysql().s0();
        assert!(
            (mean - s0).abs() / s0 < 0.15,
            "mean db demand {mean} vs s0 {s0}"
        );
    }

    #[test]
    fn deterministic_factory_is_noise_free() {
        let factory = ProfileFactory::rubbos_deterministic().with_mix(
            crate::servlets::ServletMix::from_servlets(vec![crate::servlets::Servlet {
                name: "Only",
                weight: 1.0,
                web_mult: 1.0,
                app_mult: 1.0,
                db_mult: 1.0,
                db_queries: 2,
            }])
            .unwrap(),
        );
        let mut rng = SimRng::seed_from(1);
        let a = factory.sample(&mut rng);
        let b = factory.sample(&mut rng);
        assert_eq!(a, b);
        assert_eq!(a.demand(1).total(), reference::tomcat().s0());
    }

    #[test]
    fn app_pre_fraction_splits_demand() {
        let factory = ProfileFactory::rubbos_deterministic().with_app_pre_fraction(0.25);
        let mut rng = SimRng::seed_from(1);
        let p = factory.sample(&mut rng);
        let d = p.demand(1);
        assert!((d.pre / d.total() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn four_tier_profiles_route_through_lb() {
        let factory = ProfileFactory::rubbos_four_tier();
        let mut rng = SimRng::seed_from(4);
        let p = factory.sample(&mut rng);
        assert_eq!(p.tiers(), 4);
        assert!((1..=3).contains(&p.visits_to(2)), "queries hit the lb tier");
        assert_eq!(p.visits_to(3), 1, "lb forwards each query once");
        // Cumulative visits to the db equal the query count.
        assert_eq!(p.cumulative_visits(3), u64::from(p.visits_to(2)));
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0,1]")]
    fn invalid_fraction_rejected() {
        let _ = ProfileFactory::rubbos().with_app_pre_fraction(1.5);
    }

    #[test]
    fn chain_graph_attachment_changes_nothing_but_the_graph() {
        // Metamorphic: the chain is the degenerate DAG. Same seed, same
        // demands, same visit counts, same RNG stream afterwards.
        let plain = ProfileFactory::rubbos();
        let chained = ProfileFactory::rubbos().with_chain_graph();
        let mut rng_a = SimRng::seed_from(17);
        let mut rng_b = SimRng::seed_from(17);
        for _ in 0..200 {
            let a = plain.sample(&mut rng_a);
            let b = chained.sample(&mut rng_b);
            assert!(b.graph().is_some());
            assert_eq!(a.tiers(), b.tiers());
            for m in 0..a.tiers() {
                assert_eq!(a.demand(m), b.demand(m));
                assert_eq!(a.visits_to(m), b.visits_to(m));
                assert_eq!(a.cumulative_visits(m), b.cumulative_visits(m));
                for k in 0..a.cumulative_visits(m) {
                    assert_eq!(a.demand_for_visit(m, k), b.demand_for_visit(m, k));
                }
                assert_eq!(a.total_calls_from(m), b.total_calls_from(m));
                for k in 0..a.total_calls_from(m) {
                    assert_eq!(a.call_target(m, k), b.call_target(m, k));
                }
            }
        }
        assert_eq!(rng_a.next_f64(), rng_b.next_f64());
    }

    fn diamond_factory() -> MeshProfileFactory {
        // web → {svc-a, svc-b} → db
        let graph =
            TopologyGraph::from_edges(4, &[(0, 1, 1), (0, 2, 1), (1, 3, 2), (2, 3, 1)]);
        MeshProfileFactory::new(
            graph,
            vec![
                NodeDemand::split(Dist::constant(0.001)),
                NodeDemand::split(Dist::constant(0.010)),
                NodeDemand::split(Dist::constant(0.012)),
                NodeDemand::leaf(Dist::exponential_mean(0.007)).iid_visits(),
            ],
        )
    }

    #[test]
    fn mesh_factory_samples_dag_profiles() {
        let factory = diamond_factory();
        let mut rng = SimRng::seed_from(23);
        let p = factory.sample(&mut rng);
        assert_eq!(p.tiers(), 4);
        assert_eq!(p.visits_to(1), 1);
        assert_eq!(p.visits_to(2), 1);
        assert_eq!(p.visits_to(3), 3, "two queries via svc-a, one via svc-b");
        assert_eq!(p.total_calls_from(0), 2);
        assert_eq!(p.call_target(0, 0), 1);
        assert_eq!(p.call_target(0, 1), 2);
        // i.i.d. per-visit db demands: all three visits drawn independently.
        let d0 = p.demand_for_visit(3, 0);
        let d1 = p.demand_for_visit(3, 1);
        let d2 = p.demand_for_visit(3, 2);
        assert!(d0 != d1 || d1 != d2, "exponential draws should differ");
    }

    #[test]
    fn mesh_cache_hits_drop_the_cached_edge() {
        let graph = TopologyGraph::chain(&[1, 1, 1, 1]); // web → app → cache → db
        let factory = MeshProfileFactory::new(
            graph,
            vec![
                NodeDemand::split(Dist::constant(0.001)),
                NodeDemand::split(Dist::constant(0.010)),
                NodeDemand::split(Dist::constant(0.002)),
                NodeDemand::leaf(Dist::constant(0.007)),
            ],
        )
        .with_cache(2, 3, crate::cache::CacheDynamics::steady(0.5));
        let mut rng = SimRng::seed_from(3);
        let mut hits = 0u32;
        let mut misses = 0u32;
        for _ in 0..400 {
            let p = factory.sample(&mut rng);
            match p.cumulative_visits(3) {
                0 => {
                    hits += 1;
                    assert_eq!(p.total_calls_from(2), 0);
                }
                1 => {
                    misses += 1;
                    assert_eq!(p.call_target(2, 0), 3);
                }
                v => panic!("unexpected db visits {v}"),
            }
        }
        assert!(hits > 100 && misses > 100, "hits {hits} misses {misses}");
    }

    #[test]
    fn zero_ratio_mesh_cache_matches_no_cache_stream() {
        // Metamorphic: a h_max = 0 cache must be bit-identical to no cache.
        let graph = TopologyGraph::chain(&[1, 1, 1, 1]);
        let demands = || {
            vec![
                NodeDemand::split(Dist::exponential_mean(0.001)),
                NodeDemand::split(Dist::exponential_mean(0.010)),
                NodeDemand::split(Dist::exponential_mean(0.002)),
                NodeDemand::leaf(Dist::exponential_mean(0.007)),
            ]
        };
        let plain = MeshProfileFactory::new(graph.clone(), demands());
        let zeroed = MeshProfileFactory::new(graph, demands())
            .with_cache(2, 3, crate::cache::CacheDynamics::new(0.0, 100.0));
        let mut rng_a = SimRng::seed_from(31);
        let mut rng_b = SimRng::seed_from(31);
        for _ in 0..100 {
            assert_eq!(plain.sample(&mut rng_a), zeroed.sample(&mut rng_b));
        }
        assert_eq!(rng_a.next_f64(), rng_b.next_f64());
    }

    #[test]
    #[should_panic(expected = "not in the graph")]
    fn cache_on_missing_edge_rejected() {
        let graph = TopologyGraph::chain(&[1, 1, 1]);
        let _ = MeshProfileFactory::new(
            graph,
            vec![
                NodeDemand::split(Dist::constant(0.001)),
                NodeDemand::split(Dist::constant(0.010)),
                NodeDemand::leaf(Dist::constant(0.007)),
            ],
        )
        .with_cache(0, 2, crate::cache::CacheDynamics::steady(0.5));
    }
}
