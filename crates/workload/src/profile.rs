//! Turning the servlet mix into per-request execution plans.

use dcm_ntier::law::reference;
use dcm_ntier::request::{RequestProfile, StageDemand};
use dcm_sim::dist::{Dist, Sample};
use dcm_sim::rng::SimRng;

use crate::servlets::ServletMix;

/// Samples [`RequestProfile`]s for the three-tier RUBBoS deployment.
///
/// Per-tier demands are drawn from a base distribution scaled by the chosen
/// servlet's multiplier; the base means default to the reference laws' `S⁰`
/// so a server at the knee behaves exactly as the paper's model predicts.
///
/// # Examples
///
/// ```
/// use dcm_workload::profile::ProfileFactory;
/// use dcm_sim::rng::SimRng;
///
/// let factory = ProfileFactory::rubbos();
/// let mut rng = SimRng::seed_from(1);
/// let profile = factory.sample(&mut rng);
/// assert_eq!(profile.tiers(), 3);
/// assert!(profile.visits_to(2) >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct ProfileFactory {
    mix: ServletMix,
    web_base: Dist,
    app_base: Dist,
    db_base: Dist,
    /// Fraction of app demand executed before the DB calls (the rest runs
    /// after the last call returns).
    app_pre_fraction: f64,
    /// Insert the pass-through DB load-balancer tier (four-tier RUBBoS).
    four_tier: bool,
}

impl ProfileFactory {
    /// The paper-matching factory: browse-only mix, per-tier demand means
    /// equal to the reference laws' `S⁰`, moderate variability.
    pub fn rubbos() -> Self {
        ProfileFactory {
            mix: ServletMix::browse_only(),
            web_base: Dist::exponential_mean(reference::apache().s0()),
            app_base: Dist::exponential_mean(reference::tomcat().s0()),
            db_base: Dist::exponential_mean(reference::mysql().s0()),
            app_pre_fraction: 0.5,
            four_tier: false,
        }
    }

    /// The paper's four-tier deployment: same demands, with each query
    /// routed through the DB load-balancer tier (use together with
    /// `ThreeTierBuilder::with_db_load_balancer`).
    pub fn rubbos_four_tier() -> Self {
        ProfileFactory {
            four_tier: true,
            ..Self::rubbos()
        }
    }

    /// A deterministic variant (constant demands at the law means) for
    /// noise-free unit tests and calibration runs.
    pub fn rubbos_deterministic() -> Self {
        ProfileFactory {
            mix: ServletMix::browse_only(),
            web_base: Dist::constant(reference::apache().s0()),
            app_base: Dist::constant(reference::tomcat().s0()),
            db_base: Dist::constant(reference::mysql().s0()),
            app_pre_fraction: 0.5,
            four_tier: false,
        }
    }

    /// Overrides the servlet mix.
    pub fn with_mix(mut self, mix: ServletMix) -> Self {
        self.mix = mix;
        self
    }

    /// Overrides the per-tier base demand distributions
    /// (web, app, db-per-query).
    pub fn with_bases(mut self, web: Dist, app: Dist, db: Dist) -> Self {
        self.web_base = web;
        self.app_base = app;
        self.db_base = db;
        self
    }

    /// Sets the fraction of app-tier demand that runs before the DB calls.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn with_app_pre_fraction(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        self.app_pre_fraction = fraction;
        self
    }

    /// The servlet mix in use.
    pub fn mix(&self) -> &ServletMix {
        &self.mix
    }

    /// Samples one request's execution plan.
    pub fn sample(&self, rng: &mut SimRng) -> RequestProfile {
        let idx = self.mix.sample_index(rng);
        let servlet = self.mix.servlet(idx);
        let web = self.web_base.sample(rng) * servlet.web_mult;
        let app = self.app_base.sample(rng) * servlet.app_mult;
        let db = self.db_base.sample(rng) * servlet.db_mult;
        let app_demand = StageDemand {
            pre: app * self.app_pre_fraction,
            post: app * (1.0 - self.app_pre_fraction),
        };
        let queries = servlet.db_queries.max(1);
        // Each query's demand is an independent draw: reusing one sample
        // across a request's queries correlates the DB station's service
        // times (long query ⇒ the next is long too), which inflates
        // queueing beyond the product-form model the MVA oracle solves.
        // The first query reuses `db` so single-query requests draw
        // exactly as before.
        let per_query: Vec<StageDemand> = if queries > 1 {
            std::iter::once(db)
                .chain((1..queries).map(|_| self.db_base.sample(rng) * servlet.db_mult))
                .map(StageDemand::pre_only)
                .collect()
        } else {
            Vec::new()
        };
        if self.four_tier {
            // web → app → lb (per query) → db (one forward each).
            let profile = RequestProfile::new(
                vec![
                    StageDemand::pre_only(web),
                    app_demand,
                    StageDemand::pre_only(1.0e-4),
                    StageDemand::pre_only(db),
                ],
                vec![1, 1, queries, 1],
                idx as u16,
            );
            if per_query.is_empty() {
                profile
            } else {
                profile.with_per_visit_demands(3, per_query)
            }
        } else {
            let profile = RequestProfile::new(
                vec![
                    StageDemand::pre_only(web),
                    app_demand,
                    StageDemand::pre_only(db),
                ],
                vec![1, 1, queries],
                idx as u16,
            );
            if per_query.is_empty() {
                profile
            } else {
                profile.with_per_visit_demands(2, per_query)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_profiles_have_three_tiers_and_queries() {
        let factory = ProfileFactory::rubbos();
        let mut rng = SimRng::seed_from(3);
        for _ in 0..100 {
            let p = factory.sample(&mut rng);
            assert_eq!(p.tiers(), 3);
            assert!((1..=3).contains(&p.visits_to(2)));
            assert!(p.demand(1).pre > 0.0);
        }
    }

    #[test]
    fn mean_db_demand_tracks_law_s0() {
        // Averaged over many samples, the per-query db demand should be
        // close to the MySQL law's S0 (multipliers average ≈ 1).
        let factory = ProfileFactory::rubbos();
        let mut rng = SimRng::seed_from(11);
        let n = 50_000;
        let mean: f64 = (0..n)
            .map(|_| factory.sample(&mut rng).demand(2).pre)
            .sum::<f64>()
            / n as f64;
        let s0 = reference::mysql().s0();
        assert!(
            (mean - s0).abs() / s0 < 0.15,
            "mean db demand {mean} vs s0 {s0}"
        );
    }

    #[test]
    fn deterministic_factory_is_noise_free() {
        let factory = ProfileFactory::rubbos_deterministic().with_mix(
            crate::servlets::ServletMix::from_servlets(vec![crate::servlets::Servlet {
                name: "Only",
                weight: 1.0,
                web_mult: 1.0,
                app_mult: 1.0,
                db_mult: 1.0,
                db_queries: 2,
            }])
            .unwrap(),
        );
        let mut rng = SimRng::seed_from(1);
        let a = factory.sample(&mut rng);
        let b = factory.sample(&mut rng);
        assert_eq!(a, b);
        assert_eq!(a.demand(1).total(), reference::tomcat().s0());
    }

    #[test]
    fn app_pre_fraction_splits_demand() {
        let factory = ProfileFactory::rubbos_deterministic().with_app_pre_fraction(0.25);
        let mut rng = SimRng::seed_from(1);
        let p = factory.sample(&mut rng);
        let d = p.demand(1);
        assert!((d.pre / d.total() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn four_tier_profiles_route_through_lb() {
        let factory = ProfileFactory::rubbos_four_tier();
        let mut rng = SimRng::seed_from(4);
        let p = factory.sample(&mut rng);
        assert_eq!(p.tiers(), 4);
        assert!((1..=3).contains(&p.visits_to(2)), "queries hit the lb tier");
        assert_eq!(p.visits_to(3), 1, "lb forwards each query once");
        // Cumulative visits to the db equal the query count.
        assert_eq!(p.cumulative_visits(3), u64::from(p.visits_to(2)));
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0,1]")]
    fn invalid_fraction_rejected() {
        let _ = ProfileFactory::rubbos().with_app_pre_fraction(1.5);
    }
}
