//! Workload traces: target concurrent-user counts over time.
//!
//! The paper drives its Fig. 5 evaluation with the "Large Variation" trace
//! from Gandhi et al.'s AutoScale work. That trace file is not published
//! with the paper, so [`large_variation`] synthesizes a trace that
//! reproduces the three incident windows the evaluation narrates: a sharp
//! ramp around 50–90 s, a second surge around 220–260 s, and a
//! trough-then-flood around 520–560 s, over a ~700 s horizon. Traces can
//! also be loaded from simple CSV for externally supplied data.

use std::fmt;

use dcm_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// A piecewise-constant target for the number of concurrent users.
///
/// # Examples
///
/// ```
/// use dcm_workload::traces::WorkloadTrace;
/// use dcm_sim::time::SimTime;
///
/// let trace = WorkloadTrace::from_points(vec![(0.0, 100), (60.0, 400)]).unwrap();
/// assert_eq!(trace.users_at(SimTime::from_secs(30)), 100);
/// assert_eq!(trace.users_at(SimTime::from_secs(90)), 400);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadTrace {
    // (time, target users), strictly increasing times, first at t=0.
    points: Vec<(SimTime, u32)>,
}

/// Error parsing or constructing a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// No points supplied.
    Empty,
    /// Timestamps must start at zero and strictly increase.
    UnorderedTimestamps {
        /// Index of the offending point.
        index: usize,
    },
    /// A CSV line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Empty => write!(f, "trace has no points"),
            TraceError::UnorderedTimestamps { index } => {
                write!(
                    f,
                    "trace timestamps must start at 0 and increase (point {index})"
                )
            }
            TraceError::Parse { line } => write!(f, "malformed trace line {line}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl WorkloadTrace {
    /// Builds a trace from `(seconds, users)` points.
    ///
    /// # Errors
    ///
    /// [`TraceError::Empty`] or [`TraceError::UnorderedTimestamps`].
    pub fn from_points(points: Vec<(f64, u32)>) -> Result<Self, TraceError> {
        if points.is_empty() {
            return Err(TraceError::Empty);
        }
        if points[0].0 != 0.0 {
            return Err(TraceError::UnorderedTimestamps { index: 0 });
        }
        let mut converted = Vec::with_capacity(points.len());
        let mut last = -1.0f64;
        for (index, &(t, u)) in points.iter().enumerate() {
            if !t.is_finite() || t <= last {
                return Err(TraceError::UnorderedTimestamps { index });
            }
            last = t;
            converted.push((SimTime::from_secs_f64(t), u));
        }
        Ok(WorkloadTrace { points: converted })
    }

    /// Parses a `seconds,users` CSV (blank lines and `#` comments ignored).
    ///
    /// # Errors
    ///
    /// [`TraceError::Parse`] on malformed lines plus the construction
    /// errors of [`WorkloadTrace::from_points`].
    pub fn from_csv(text: &str) -> Result<Self, TraceError> {
        let mut points = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split(',');
            let t: f64 = parts
                .next()
                .and_then(|s| s.trim().parse().ok())
                .ok_or(TraceError::Parse { line: i + 1 })?;
            let u: u32 = parts
                .next()
                .and_then(|s| s.trim().parse().ok())
                .ok_or(TraceError::Parse { line: i + 1 })?;
            points.push((t, u));
        }
        Self::from_points(points)
    }

    /// Serializes to the CSV format accepted by [`WorkloadTrace::from_csv`].
    pub fn to_csv(&self) -> String {
        let mut out = String::from("# seconds,users\n");
        for &(t, u) in &self.points {
            out.push_str(&format!("{},{u}\n", t.as_secs_f64()));
        }
        out
    }

    /// The target user count in effect at `at`.
    pub fn users_at(&self, at: SimTime) -> u32 {
        match self.points.binary_search_by(|&(t, _)| t.cmp(&at)) {
            Ok(i) => self.points[i].1,
            Err(0) => self.points[0].1,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// The change points `(time, users)`.
    pub fn points(&self) -> &[(SimTime, u32)] {
        &self.points
    }

    /// Time of the last change point (the trace holds its final value
    /// afterwards).
    pub fn last_change(&self) -> SimTime {
        self.points.last().expect("trace is non-empty").0
    }

    /// Peak target across the trace.
    pub fn peak_users(&self) -> u32 {
        self.points
            .iter()
            .map(|&(_, u)| u)
            .max()
            .expect("non-empty")
    }

    /// Scales every target by `factor` (rounding), e.g. to stress the same
    /// shape at a different magnitude.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite or is negative.
    pub fn scaled(&self, factor: f64) -> WorkloadTrace {
        assert!(factor.is_finite() && factor >= 0.0, "invalid scale factor");
        WorkloadTrace {
            points: self
                .points
                .iter()
                .map(|&(t, u)| (t, (f64::from(u) * factor).round() as u32))
                .collect(),
        }
    }
}

/// The synthesized "Large Variation" trace (≈ 700 s): baseline load with
/// the three bursts the paper's Fig. 5 narrates.
///
/// User counts are calibrated for the RUBBoS think-time client (mean 3 s):
/// the baseline keeps a 1/1/1 system comfortable, the bursts demand two to
/// three servers in the bottleneck tiers.
pub fn large_variation() -> WorkloadTrace {
    WorkloadTrace::from_points(vec![
        // Gentle baseline.
        (0.0, 120),
        (30.0, 140),
        // Burst 1: sharp ramp at ~50 s, peak, decay by ~110 s.
        (50.0, 420),
        (70.0, 520),
        (90.0, 430),
        (110.0, 260),
        (140.0, 180),
        (170.0, 160),
        // Burst 2: bigger surge at ~220 s.
        (220.0, 620),
        (240.0, 700),
        (260.0, 560),
        (290.0, 340),
        (330.0, 220),
        (380.0, 180),
        // Long lull that tempts the controller to scale in.
        (430.0, 130),
        (470.0, 110),
        (500.0, 100),
        // Burst 3: flood right after the lull (the scale-in trap).
        (530.0, 640),
        (555.0, 580),
        (580.0, 360),
        (620.0, 220),
        (660.0, 150),
        (700.0, 140),
    ])
    .expect("built-in trace is valid")
}

/// A single step from `low` to `high` users at `at_secs` (classic
/// controller step-response probe).
pub fn step(low: u32, high: u32, at_secs: f64) -> WorkloadTrace {
    WorkloadTrace::from_points(vec![(0.0, low), (at_secs, high)]).expect("valid step trace")
}

/// A flash crowd: `base` users with one spike to `peak` lasting
/// `duration_secs` starting at `at_secs`.
pub fn flash_crowd(base: u32, peak: u32, at_secs: f64, duration_secs: f64) -> WorkloadTrace {
    WorkloadTrace::from_points(vec![
        (0.0, base),
        (at_secs, peak),
        (at_secs + duration_secs, base),
    ])
    .expect("valid flash-crowd trace")
}

/// A sampled sine oscillation between `low` and `high` with the given
/// period, sampled every `sample_secs` over `horizon_secs` (smooth diurnal
/// pattern).
pub fn sine(
    low: u32,
    high: u32,
    period_secs: f64,
    horizon_secs: f64,
    sample_secs: f64,
) -> WorkloadTrace {
    assert!(high >= low, "high must be >= low");
    assert!(
        period_secs > 0.0 && sample_secs > 0.0,
        "periods must be positive"
    );
    let mut points = Vec::new();
    let mut t = 0.0;
    let mid = f64::from(low + high) / 2.0;
    let amp = f64::from(high - low) / 2.0;
    while t <= horizon_secs {
        let phase = (t / period_secs) * std::f64::consts::TAU;
        let users = (mid + amp * phase.sin()).round() as u32;
        points.push((t, users));
        t += sample_secs;
    }
    WorkloadTrace::from_points(points).expect("valid sine trace")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_holds_between_points() {
        let trace = WorkloadTrace::from_points(vec![(0.0, 10), (5.0, 20), (9.0, 5)]).unwrap();
        assert_eq!(trace.users_at(SimTime::ZERO), 10);
        assert_eq!(trace.users_at(SimTime::from_secs_f64(4.9)), 10);
        assert_eq!(trace.users_at(SimTime::from_secs(5)), 20);
        assert_eq!(trace.users_at(SimTime::from_secs(100)), 5);
        assert_eq!(trace.peak_users(), 20);
        assert_eq!(trace.last_change(), SimTime::from_secs(9));
    }

    #[test]
    fn validation_rejects_bad_traces() {
        assert_eq!(WorkloadTrace::from_points(vec![]), Err(TraceError::Empty));
        assert_eq!(
            WorkloadTrace::from_points(vec![(1.0, 5)]),
            Err(TraceError::UnorderedTimestamps { index: 0 })
        );
        assert_eq!(
            WorkloadTrace::from_points(vec![(0.0, 5), (2.0, 6), (2.0, 7)]),
            Err(TraceError::UnorderedTimestamps { index: 2 })
        );
    }

    #[test]
    fn csv_roundtrip() {
        let trace = large_variation();
        let csv = trace.to_csv();
        let parsed = WorkloadTrace::from_csv(&csv).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn csv_parse_errors_carry_line_numbers() {
        let err = WorkloadTrace::from_csv("0,10\nbogus\n").unwrap_err();
        assert_eq!(err, TraceError::Parse { line: 2 });
        let ok = WorkloadTrace::from_csv("# comment\n\n0,10\n5,20\n").unwrap();
        assert_eq!(ok.points().len(), 2);
    }

    #[test]
    fn large_variation_has_three_bursts_and_trap() {
        let trace = large_variation();
        // Three distinct peaks above 500.
        let peaks: Vec<u32> = trace
            .points()
            .iter()
            .map(|&(_, u)| u)
            .filter(|&u| u >= 500)
            .collect();
        assert!(peaks.len() >= 3, "peaks {peaks:?}");
        // The lull before the third burst drops near baseline.
        let lull = trace.users_at(SimTime::from_secs(510));
        assert!(lull <= 120, "lull {lull}");
        let flood = trace.users_at(SimTime::from_secs(531));
        assert!(flood >= 600, "flood {flood}");
    }

    #[test]
    fn synthetic_shapes() {
        let s = step(10, 100, 30.0);
        assert_eq!(s.users_at(SimTime::from_secs(29)), 10);
        assert_eq!(s.users_at(SimTime::from_secs(31)), 100);

        let f = flash_crowd(50, 500, 60.0, 30.0);
        assert_eq!(f.users_at(SimTime::from_secs(59)), 50);
        assert_eq!(f.users_at(SimTime::from_secs(75)), 500);
        assert_eq!(f.users_at(SimTime::from_secs(91)), 50);

        let w = sine(100, 200, 60.0, 120.0, 5.0);
        assert!(w.peak_users() >= 195);
        assert!(w.points().iter().all(|&(_, u)| (100..=200).contains(&u)));
    }

    #[test]
    fn scaling_preserves_shape() {
        let trace = large_variation().scaled(0.5);
        assert_eq!(trace.users_at(SimTime::ZERO), 60);
        assert_eq!(trace.peak_users(), 350);
    }
}
