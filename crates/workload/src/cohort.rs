//! Cohort-aggregated closed-loop users for fleet-scale simulation.
//!
//! A [`CohortPopulation`] drives the same submit → complete → think cycle
//! as [`crate::generator::UserPopulation`], but multiplexes many virtual
//! users onto a handful of engine timers. Users are partitioned into
//! cohorts of `cohort_size`; each cohort keeps a private min-heap of
//! member wake-up times and arms **one** engine event for the earliest of
//! them. When that event fires, every member due at or before the firing
//! time submits in wake-up order, and the timer re-arms for the next due
//! member. The event-queue footprint is thus `O(users / cohort_size)`
//! instead of `O(users)` — at a million users with 256-user cohorts the
//! calendar queue holds ~4 k population timers instead of a million.
//!
//! ## When aggregation is exact
//!
//! Cohort multiplexing is a *scheduling* change, not a modelling change:
//! every member still samples its own profile and think time from the
//! shared RNG and submits an individual request, so the stochastic process
//! is the same closed queueing network. With `cohort_size == 1` the
//! schedule is literally identical — each cohort holds one member, the
//! timer is that member's think-time event, and the RNG draw order matches
//! [`crate::generator::UserPopulation`] exactly, so runs are bit-identical
//! (asserted by a metamorphic test). For larger cohorts, members whose
//! wake-ups share a firing batch submit in due order rather than each from
//! its own event, which permutes RNG draw order across members: sample
//! paths differ run-to-run from the per-user generator, but the stationary
//! distribution does not — `repro validate` checks the aggregated DES
//! against exact MVA under the same 2 % / 5 % gates as the per-user DES.
//!
//! Cohort mode intentionally omits the per-user extras (client retry,
//! request deadlines, think-time modulation): the fleet experiments that
//! need millions of users use none of them, and the per-user generator
//! remains available when they matter.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

use dcm_ntier::flow;
use dcm_ntier::request::Completion;
use dcm_ntier::world::{SimEngine, World};
use dcm_sim::dist::{Dist, Sample};
use dcm_sim::engine::EventId;
use dcm_sim::time::{SimDuration, SimTime};

use crate::profile::WorkloadFactory;

/// One cohort: a min-heap of member wake-up times and the single engine
/// timer armed for the earliest of them. The `seq` tie-breaker keeps
/// members due at the same instant in FIFO wake-up order, mirroring the
/// engine's own `(time, seq)` contract.
#[derive(Debug)]
struct Cohort {
    due: BinaryHeap<Reverse<(SimTime, u64)>>,
    seq: u64,
    timer: Option<EventId>,
    timer_at: SimTime,
}

impl Cohort {
    fn new() -> Self {
        Cohort {
            due: BinaryHeap::new(),
            seq: 0,
            timer: None,
            timer_at: SimTime::ZERO,
        }
    }

    fn push(&mut self, at: SimTime) {
        let seq = self.seq;
        self.seq += 1;
        self.due.push(Reverse((at, seq)));
    }
}

/// Aggregate response-time statistics, maintained even when the full
/// completion log is disabled (fleet runs keep memory flat by skipping
/// the log).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CohortStats {
    /// Completions observed (any outcome).
    pub completed: u64,
    /// Completions with a success outcome.
    pub succeeded: u64,
    /// Sum of response times over all completions (seconds).
    pub response_sum: f64,
    /// Largest single response time (seconds).
    pub response_max: f64,
}

impl CohortStats {
    /// Mean response time over all completions (0 when none).
    pub fn response_mean(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.response_sum / self.completed as f64
        }
    }
}

/// Shared state behind a [`CohortPopulation`].
#[derive(Debug)]
struct CohortState {
    factory: WorkloadFactory,
    think: Option<Dist>,
    stop_at: SimTime,
    target: u32,
    active: u32,
    log: Vec<Completion>,
    log_enabled: bool,
    stats: CohortStats,
    total_spawned: u64,
    cohorts: Vec<Cohort>,
}

/// A population of virtual users multiplexed onto per-cohort timers.
///
/// Cloning the handle shares the same population.
///
/// # Examples
///
/// ```
/// use dcm_ntier::topology::ThreeTierBuilder;
/// use dcm_workload::cohort::CohortPopulation;
/// use dcm_workload::profile::ProfileFactory;
/// use dcm_sim::dist::Dist;
/// use dcm_sim::time::SimTime;
///
/// let (mut world, mut engine) = ThreeTierBuilder::new().build();
/// let pop = CohortPopulation::start_with_think_dist(
///     &mut world,
///     &mut engine,
///     ProfileFactory::rubbos(),
///     40,                             // 40 users ...
///     8,                              // ... in cohorts of 8
///     Some(Dist::exponential_mean(0.5)),
///     SimTime::from_secs(5),
/// );
/// engine.run(&mut world);
/// assert!(pop.completion_count() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct CohortPopulation {
    inner: Rc<RefCell<CohortState>>,
}

impl CohortPopulation {
    /// Starts `users` clients in cohorts of `cohort_size`, each submitting
    /// its first request immediately (the spawn order and RNG draw order
    /// match [`crate::generator::UserPopulation`], so `cohort_size == 1`
    /// reproduces it bit-identically). `think = None` is a closed loop.
    ///
    /// `cohort_size > users` collapses to a single cohort holding everyone
    /// and is bit-identical to `cohort_size == users`; a non-dividing
    /// `cohort_size` leaves the last cohort short by the remainder.
    ///
    /// # Panics
    ///
    /// Panics if `cohort_size == 0`.
    pub fn start_with_think_dist(
        world: &mut World,
        engine: &mut SimEngine,
        factory: impl Into<WorkloadFactory>,
        users: u32,
        cohort_size: u32,
        think: Option<Dist>,
        stop_at: SimTime,
    ) -> Self {
        let pop = Self::build(factory, think, users, cohort_size, stop_at);
        for member in 0..users {
            {
                let mut st = pop.inner.borrow_mut();
                st.active += 1;
                st.total_spawned += 1;
            }
            let cohort = (member / cohort_size) as usize;
            wake_member(Rc::clone(&pop.inner), world, engine, cohort);
        }
        pop
    }

    /// Starts `users` clients in cohorts of `cohort_size`, each beginning
    /// in its *think* phase: the first submission lands after one sampled
    /// think time instead of at the start instant. Fleet-scale runs use
    /// this to avoid a synchronized burst of a million requests at `t = 0`
    /// (the closed network reaches the same steady state either way).
    ///
    /// Edge cases follow [`Self::start_with_think_dist`]: oversized
    /// cohorts collapse to one, remainders shorten the last cohort.
    ///
    /// # Panics
    ///
    /// Panics if `cohort_size == 0`.
    pub fn start_staggered(
        world: &mut World,
        engine: &mut SimEngine,
        factory: impl Into<WorkloadFactory>,
        users: u32,
        cohort_size: u32,
        think: Dist,
        stop_at: SimTime,
    ) -> Self {
        let pop = Self::build(factory, Some(think), users, cohort_size, stop_at);
        let now = engine.now();
        {
            let mut st = pop.inner.borrow_mut();
            st.active = users;
            st.total_spawned = u64::from(users);
            for member in 0..users {
                let delay = st
                    .think
                    .as_ref()
                    .expect("staggered start has a think dist")
                    .sample(&mut world.rng);
                let cohort = (member / cohort_size) as usize;
                st.cohorts[cohort].push(now + SimDuration::from_secs_f64(delay));
            }
        }
        let cohorts = pop.inner.borrow().cohorts.len();
        for cohort in 0..cohorts {
            rearm(&pop.inner, engine, cohort);
        }
        pop
    }

    fn build(
        factory: impl Into<WorkloadFactory>,
        think: Option<Dist>,
        users: u32,
        cohort_size: u32,
        stop_at: SimTime,
    ) -> Self {
        assert!(cohort_size > 0, "cohort size must be positive");
        let cohorts = users.div_ceil(cohort_size) as usize;
        CohortPopulation {
            inner: Rc::new(RefCell::new(CohortState {
                factory: factory.into(),
                think,
                stop_at,
                target: users,
                active: 0,
                log: Vec::new(),
                log_enabled: true,
                stats: CohortStats::default(),
                total_spawned: 0,
                cohorts: (0..cohorts).map(|_| Cohort::new()).collect(),
            })),
        }
    }

    /// Disables the per-completion log (aggregate [`CohortStats`] are
    /// still maintained). Fleet runs with millions of users call this
    /// right after `start_*` to keep memory flat.
    pub fn disable_log(&self) {
        self.inner.borrow_mut().log_enabled = false;
    }

    /// Currently active virtual users.
    pub fn active_users(&self) -> u32 {
        self.inner.borrow().active
    }

    /// The (fixed) population target.
    pub fn target_users(&self) -> u32 {
        self.inner.borrow().target
    }

    /// Total users ever spawned.
    pub fn total_spawned(&self) -> u64 {
        self.inner.borrow().total_spawned
    }

    /// Number of completions observed (log entries when the log is on;
    /// the aggregate count always).
    pub fn completion_count(&self) -> usize {
        self.inner.borrow().stats.completed as usize
    }

    /// Runs `f` over the completion log without copying (the log is empty
    /// after [`Self::disable_log`]). Callers that need an owned copy do
    /// `with_completions(<[Completion]>::to_vec)` at their own expense —
    /// there is deliberately no cloning accessor on the cohort hot path.
    pub fn with_completions<R>(&self, f: impl FnOnce(&[Completion]) -> R) -> R {
        f(&self.inner.borrow().log)
    }

    /// Aggregate response-time statistics.
    pub fn stats(&self) -> CohortStats {
        self.inner.borrow().stats
    }
}

/// One member of `cohort` wakes up *now*: retire it if the run is over,
/// otherwise sample a profile and submit. Mirrors the per-user
/// `user_cycle` check-sample-submit order exactly.
fn wake_member(
    state: Rc<RefCell<CohortState>>,
    world: &mut World,
    engine: &mut SimEngine,
    cohort: usize,
) {
    let profile = {
        let mut st = state.borrow_mut();
        if engine.now() >= st.stop_at || st.active > st.target {
            st.active -= 1;
            return;
        }
        st.factory.sample(&mut world.rng)
    };
    let cb_state = Rc::clone(&state);
    let callback: dcm_ntier::system::CompletionCallback = Box::new(
        move |w: &mut World, e: &mut SimEngine, completion: Completion| {
            let due = {
                let mut st = cb_state.borrow_mut();
                st.stats.completed += 1;
                if completion.is_success() {
                    st.stats.succeeded += 1;
                }
                let rt = completion.response_time().as_secs_f64();
                st.stats.response_sum += rt;
                st.stats.response_max = st.stats.response_max.max(rt);
                if st.log_enabled {
                    st.log.push(completion);
                }
                let think = st
                    .think
                    .as_ref()
                    .map(|d| d.sample(&mut w.rng))
                    .unwrap_or(0.0);
                let due = e.now() + SimDuration::from_secs_f64(think);
                st.cohorts[cohort].push(due);
                due
            };
            let _ = due;
            rearm(&cb_state, e, cohort);
        },
    );
    flow::submit(world, engine, profile, callback);
}

/// The armed timer of `cohort` fired: wake every member due at or before
/// now (collected *before* any submission, so reentrant completions — a
/// rejected request completes synchronously — extend the heap without
/// extending this batch), then re-arm for the next due member.
fn cohort_fire(
    state: Rc<RefCell<CohortState>>,
    world: &mut World,
    engine: &mut SimEngine,
    cohort: usize,
) {
    let now = engine.now();
    let batch = {
        let mut st = state.borrow_mut();
        st.cohorts[cohort].timer = None;
        let mut batch = 0u32;
        while matches!(st.cohorts[cohort].due.peek(), Some(&Reverse((at, _))) if at <= now) {
            st.cohorts[cohort].due.pop();
            batch += 1;
        }
        batch
    };
    for _ in 0..batch {
        wake_member(Rc::clone(&state), world, engine, cohort);
    }
    rearm(&state, engine, cohort);
}

/// Ensures `cohort`'s engine timer is armed for its earliest due member
/// (re-arming only when a new wake-up undercuts the current timer, so the
/// common completion path costs one heap push and a comparison).
fn rearm(state: &Rc<RefCell<CohortState>>, engine: &mut SimEngine, cohort: usize) {
    let (arm_at, stale) = {
        let st = state.borrow();
        let c = &st.cohorts[cohort];
        match c.due.peek() {
            Some(&Reverse((at, _))) => match c.timer {
                None => (Some(at), None),
                Some(ev) if c.timer_at > at => (Some(at), Some(ev)),
                Some(_) => (None, None),
            },
            None => (None, None),
        }
    };
    if let Some(ev) = stale {
        engine.cancel(ev);
    }
    let Some(at) = arm_at else {
        return;
    };
    let fire_state = Rc::clone(state);
    let ev = engine.schedule_at(at, move |w: &mut World, e: &mut SimEngine| {
        cohort_fire(fire_state, w, e, cohort);
    });
    let mut st = state.borrow_mut();
    st.cohorts[cohort].timer = Some(ev);
    st.cohorts[cohort].timer_at = at;
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::profile::ProfileFactory;
    use crate::generator::UserPopulation;
    use dcm_ntier::topology::ThreeTierBuilder;

    fn run_per_user(seed: u64, users: u32, think: Option<Dist>) -> (Vec<Completion>, u64) {
        let (mut world, mut engine) = ThreeTierBuilder::new().seed(seed).build();
        let pop = UserPopulation::start_with_think_dist(
            &mut world,
            &mut engine,
            ProfileFactory::rubbos(),
            users,
            think,
            SimTime::from_secs(20),
        );
        engine.run(&mut world);
        (pop.completions(), engine.executed())
    }

    fn run_cohort(
        seed: u64,
        users: u32,
        cohort_size: u32,
        think: Option<Dist>,
    ) -> (Vec<Completion>, u64) {
        let (mut world, mut engine) = ThreeTierBuilder::new().seed(seed).build();
        let pop = CohortPopulation::start_with_think_dist(
            &mut world,
            &mut engine,
            ProfileFactory::rubbos(),
            users,
            cohort_size,
            think,
            SimTime::from_secs(20),
        );
        engine.run(&mut world);
        (
            pop.with_completions(<[Completion]>::to_vec),
            engine.executed(),
        )
    }

    /// The metamorphic anchor: cohorts of one ARE the per-user generator —
    /// same completions bit-for-bit, same event count.
    #[test]
    fn cohort_of_one_is_bit_identical_to_per_user() {
        for think in [Some(Dist::exponential_mean(0.4)), None] {
            let (per_user, per_user_events) = run_per_user(11, 12, think.clone());
            let (cohort, cohort_events) = run_cohort(11, 12, 1, think);
            assert!(!per_user.is_empty());
            assert_eq!(per_user, cohort, "completion logs diverged");
            assert_eq!(per_user_events, cohort_events, "event counts diverged");
        }
    }

    /// Aggregation preserves the workload's scale: same users, same think
    /// config, cohorts just multiplex the timers.
    #[test]
    fn larger_cohorts_keep_similar_throughput() {
        let think = Some(Dist::exponential_mean(0.3));
        let (per_user, _) = run_cohort(13, 60, 1, think.clone());
        let (batched, _) = run_cohort(13, 60, 15, think);
        let a = per_user.len() as f64;
        let b = batched.len() as f64;
        assert!(
            (a - b).abs() / a < 0.2,
            "throughput moved too much: {a} vs {b}"
        );
    }

    /// The fleet-scale property: thinking users cost one *pending* timer
    /// per cohort, not one per user — the event queue stays small no
    /// matter how large the population is.
    #[test]
    fn pending_timer_footprint_is_cohort_count_not_user_count() {
        let (mut world, mut engine) = ThreeTierBuilder::new().seed(23).build();
        let users = 10_000;
        let cohort_size = 100;
        let _pop = CohortPopulation::start_staggered(
            &mut world,
            &mut engine,
            ProfileFactory::rubbos(),
            users,
            cohort_size,
            Dist::exponential_mean(1000.0),
            SimTime::from_secs(5),
        );
        // 10,000 users are all in think state, yet only 100 cohort timers
        // (plus a handful of infrastructure events) are pending.
        assert!(
            engine.pending() <= (users / cohort_size) as usize + 10,
            "pending events {} should be ~one per cohort",
            engine.pending()
        );
    }

    #[test]
    fn staggered_start_spreads_first_submissions() {
        let (mut world, mut engine) = ThreeTierBuilder::new().seed(17).build();
        let pop = CohortPopulation::start_staggered(
            &mut world,
            &mut engine,
            ProfileFactory::rubbos(),
            50,
            10,
            Dist::exponential_mean(1.0),
            SimTime::from_secs(10),
        );
        // Nothing submitted at t=0; everyone is thinking.
        assert_eq!(world.system.counters().submitted, 0);
        engine.run(&mut world);
        assert!(pop.completion_count() > 0);
        assert_eq!(pop.active_users(), 0, "users retire at stop");
        assert_eq!(world.system.counters().in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "cohort size must be positive")]
    fn zero_cohort_size_is_rejected() {
        run_cohort(1, 10, 0, None);
    }

    #[test]
    #[should_panic(expected = "cohort size must be positive")]
    fn zero_cohort_size_is_rejected_for_staggered_start() {
        let (mut world, mut engine) = ThreeTierBuilder::new().seed(1).build();
        CohortPopulation::start_staggered(
            &mut world,
            &mut engine,
            ProfileFactory::rubbos(),
            10,
            0,
            Dist::exponential_mean(1.0),
            SimTime::from_secs(5),
        );
    }

    /// `cohort_size > users` must collapse to one cohort holding everyone:
    /// `div_ceil` gives a single cohort and every `member / cohort_size`
    /// maps to it, so the schedule is bit-identical to `cohort_size ==
    /// users`.
    #[test]
    fn oversized_cohort_is_bit_identical_to_single_exact_cohort() {
        let think = Some(Dist::exponential_mean(0.4));
        let (exact, exact_events) = run_cohort(29, 8, 8, think.clone());
        let (oversized, oversized_events) = run_cohort(29, 8, 1_000, think);
        assert!(!exact.is_empty());
        assert_eq!(exact, oversized, "completion logs diverged");
        assert_eq!(exact_events, oversized_events, "event counts diverged");
    }

    /// A non-dividing `cohort_size` (13 users in cohorts of 5 → cohorts of
    /// 5, 5, and 3) must spawn every user exactly once and conserve
    /// requests through the ragged last cohort.
    #[test]
    fn non_dividing_remainder_conserves_users_and_requests() {
        let (mut world, mut engine) = ThreeTierBuilder::new().seed(31).build();
        let pop = CohortPopulation::start_with_think_dist(
            &mut world,
            &mut engine,
            ProfileFactory::rubbos(),
            13,
            5,
            Some(Dist::exponential_mean(0.3)),
            SimTime::from_secs(15),
        );
        assert_eq!(pop.inner.borrow().cohorts.len(), 3);
        engine.run(&mut world);
        assert!(pop.completion_count() > 0);
        assert_eq!(pop.total_spawned(), 13);
        assert_eq!(pop.active_users(), 0, "every user retires at stop");
        assert_eq!(world.system.counters().in_flight(), 0);
    }

    /// Zero users is inert, not a panic: `div_ceil` yields zero cohorts
    /// and the run completes with nothing submitted.
    #[test]
    fn empty_population_is_inert() {
        let (mut world, mut engine) = ThreeTierBuilder::new().seed(3).build();
        let pop = CohortPopulation::start_with_think_dist(
            &mut world,
            &mut engine,
            ProfileFactory::rubbos(),
            0,
            4,
            None,
            SimTime::from_secs(5),
        );
        engine.run(&mut world);
        assert_eq!(pop.completion_count(), 0);
        assert_eq!(pop.total_spawned(), 0);
        assert_eq!(world.system.counters().submitted, 0);
    }

    #[test]
    fn disable_log_keeps_aggregates() {
        let (mut world, mut engine) = ThreeTierBuilder::new().seed(19).build();
        let pop = CohortPopulation::start_with_think_dist(
            &mut world,
            &mut engine,
            ProfileFactory::rubbos(),
            20,
            5,
            Some(Dist::exponential_mean(0.2)),
            SimTime::from_secs(10),
        );
        pop.disable_log();
        engine.run(&mut world);
        assert!(
            pop.with_completions(<[Completion]>::is_empty),
            "log disabled"
        );
        let stats = pop.stats();
        assert!(stats.completed > 0);
        assert_eq!(pop.completion_count(), stats.completed as usize);
        assert!(stats.response_mean() > 0.0);
        assert!(stats.response_max >= stats.response_mean());
        assert_eq!(stats.succeeded, stats.completed, "unsaturated run");
    }
}
