//! The RUBBoS browse-only interaction mix.
//!
//! RUBBoS models Slashdot with 24 servlet interactions; the paper uses the
//! CPU-intensive browse-only subset. We reproduce that structure: each
//! servlet has a relative frequency in the mix, per-tier demand multipliers
//! (some pages are heavier than others), and a database query count. The
//! weighted query count averages ≈ 2 queries per HTTP request, matching the
//! paper's example visit ratio `V₃ = 2`.

use dcm_sim::dist::{AliasTable, WeightsError};
use dcm_sim::rng::SimRng;
use serde::{Deserialize, Serialize};

/// One RUBBoS interaction type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Servlet {
    /// Interaction name (RUBBoS servlet).
    pub name: &'static str,
    /// Relative frequency in the browse-only mix.
    pub weight: f64,
    /// Demand multiplier at the web tier.
    pub web_mult: f64,
    /// Demand multiplier at the application tier.
    pub app_mult: f64,
    /// Demand multiplier at the database tier (per query).
    pub db_mult: f64,
    /// Number of database queries this interaction issues.
    pub db_queries: u32,
}

/// The browse-only servlet mix with O(1) weighted sampling.
#[derive(Debug, Clone)]
pub struct ServletMix {
    servlets: Vec<Servlet>,
    alias: AliasTable,
}

impl ServletMix {
    /// The RUBBoS browse-only mix (24 interactions).
    ///
    /// Weights approximate the RUBBoS browse-only transition table:
    /// story/comment browsing dominates, searches and user pages are rarer.
    /// Query counts are chosen so the weighted mean is ≈ 2.0.
    pub fn browse_only() -> Self {
        let servlets = vec![
            Servlet {
                name: "StoriesOfTheDay",
                weight: 14.0,
                web_mult: 1.0,
                app_mult: 1.2,
                db_mult: 1.1,
                db_queries: 2,
            },
            Servlet {
                name: "ViewStory",
                weight: 13.0,
                web_mult: 1.0,
                app_mult: 1.1,
                db_mult: 1.0,
                db_queries: 2,
            },
            Servlet {
                name: "ViewComment",
                weight: 10.0,
                web_mult: 1.0,
                app_mult: 0.9,
                db_mult: 0.9,
                db_queries: 2,
            },
            Servlet {
                name: "BrowseCategories",
                weight: 8.0,
                web_mult: 1.0,
                app_mult: 0.8,
                db_mult: 0.8,
                db_queries: 1,
            },
            Servlet {
                name: "BrowseStoriesByCategory",
                weight: 8.0,
                web_mult: 1.0,
                app_mult: 1.1,
                db_mult: 1.2,
                db_queries: 2,
            },
            Servlet {
                name: "OlderStories",
                weight: 6.0,
                web_mult: 1.0,
                app_mult: 1.0,
                db_mult: 1.3,
                db_queries: 2,
            },
            Servlet {
                name: "SearchInStories",
                weight: 4.0,
                web_mult: 1.0,
                app_mult: 1.4,
                db_mult: 1.6,
                db_queries: 3,
            },
            Servlet {
                name: "SearchInComments",
                weight: 3.0,
                web_mult: 1.0,
                app_mult: 1.4,
                db_mult: 1.7,
                db_queries: 3,
            },
            Servlet {
                name: "SearchInUsers",
                weight: 2.0,
                web_mult: 1.0,
                app_mult: 1.2,
                db_mult: 1.2,
                db_queries: 2,
            },
            Servlet {
                name: "ViewUserInfo",
                weight: 4.0,
                web_mult: 1.0,
                app_mult: 0.8,
                db_mult: 0.9,
                db_queries: 2,
            },
            Servlet {
                name: "AboutMe",
                weight: 2.0,
                web_mult: 1.0,
                app_mult: 0.9,
                db_mult: 1.0,
                db_queries: 2,
            },
            Servlet {
                name: "StoriesByAuthor",
                weight: 3.0,
                web_mult: 1.0,
                app_mult: 1.0,
                db_mult: 1.1,
                db_queries: 2,
            },
            Servlet {
                name: "CommentsByAuthor",
                weight: 2.0,
                web_mult: 1.0,
                app_mult: 1.0,
                db_mult: 1.1,
                db_queries: 2,
            },
            Servlet {
                name: "TopStories",
                weight: 4.0,
                web_mult: 1.0,
                app_mult: 1.1,
                db_mult: 1.0,
                db_queries: 2,
            },
            Servlet {
                name: "HotTopics",
                weight: 3.0,
                web_mult: 1.0,
                app_mult: 1.0,
                db_mult: 1.0,
                db_queries: 2,
            },
            Servlet {
                name: "ModeratedComments",
                weight: 2.0,
                web_mult: 1.0,
                app_mult: 1.0,
                db_mult: 1.2,
                db_queries: 2,
            },
            Servlet {
                name: "StoryPreview",
                weight: 2.0,
                web_mult: 1.0,
                app_mult: 0.7,
                db_mult: 0.6,
                db_queries: 1,
            },
            Servlet {
                name: "CommentPreview",
                weight: 2.0,
                web_mult: 1.0,
                app_mult: 0.7,
                db_mult: 0.6,
                db_queries: 1,
            },
            Servlet {
                name: "BrowseStoriesByDate",
                weight: 3.0,
                web_mult: 1.0,
                app_mult: 1.1,
                db_mult: 1.2,
                db_queries: 2,
            },
            Servlet {
                name: "ViewStoryComments",
                weight: 3.0,
                web_mult: 1.0,
                app_mult: 1.2,
                db_mult: 1.3,
                db_queries: 3,
            },
            Servlet {
                name: "UserIndex",
                weight: 1.0,
                web_mult: 1.0,
                app_mult: 0.8,
                db_mult: 0.8,
                db_queries: 1,
            },
            Servlet {
                name: "CategoryIndex",
                weight: 1.0,
                web_mult: 1.0,
                app_mult: 0.7,
                db_mult: 0.7,
                db_queries: 1,
            },
            Servlet {
                name: "StaticFront",
                weight: 2.0,
                web_mult: 1.2,
                app_mult: 0.5,
                db_mult: 0.5,
                db_queries: 1,
            },
            Servlet {
                name: "PopularityRanking",
                weight: 2.0,
                web_mult: 1.0,
                app_mult: 1.3,
                db_mult: 1.5,
                db_queries: 3,
            },
        ];
        Self::from_servlets(servlets).expect("built-in mix is valid")
    }

    /// Builds a mix from custom servlets.
    ///
    /// # Errors
    ///
    /// Returns [`WeightsError`] if the weight vector is empty or invalid.
    pub fn from_servlets(servlets: Vec<Servlet>) -> Result<Self, WeightsError> {
        let weights: Vec<f64> = servlets.iter().map(|s| s.weight).collect();
        let alias = AliasTable::new(&weights)?;
        Ok(ServletMix { servlets, alias })
    }

    /// Number of interaction types.
    pub fn len(&self) -> usize {
        self.servlets.len()
    }

    /// True if the mix is empty (never constructible through the public
    /// API).
    pub fn is_empty(&self) -> bool {
        self.servlets.is_empty()
    }

    /// The servlets in index order.
    pub fn servlets(&self) -> &[Servlet] {
        &self.servlets
    }

    /// Samples a servlet index according to the mix weights.
    pub fn sample_index(&self, rng: &mut SimRng) -> usize {
        self.alias.sample(rng)
    }

    /// The servlet at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn servlet(&self, index: usize) -> &Servlet {
        &self.servlets[index]
    }

    /// Weighted mean of database queries per request — the mix's `V₃`.
    pub fn mean_db_queries(&self) -> f64 {
        let total_w: f64 = self.servlets.iter().map(|s| s.weight).sum();
        self.servlets
            .iter()
            .map(|s| s.weight * f64::from(s.db_queries))
            .sum::<f64>()
            / total_w
    }

    /// Weighted mean of the per-tier demand multipliers
    /// `(web, app, db per query)`.
    pub fn mean_multipliers(&self) -> (f64, f64, f64) {
        let total_w: f64 = self.servlets.iter().map(|s| s.weight).sum();
        let web = self
            .servlets
            .iter()
            .map(|s| s.weight * s.web_mult)
            .sum::<f64>()
            / total_w;
        let app = self
            .servlets
            .iter()
            .map(|s| s.weight * s.app_mult)
            .sum::<f64>()
            / total_w;
        let db = self
            .servlets
            .iter()
            .map(|s| s.weight * s.db_mult)
            .sum::<f64>()
            / total_w;
        (web, app, db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn browse_only_has_24_servlets() {
        let mix = ServletMix::browse_only();
        assert_eq!(mix.len(), 24);
        assert!(!mix.is_empty());
    }

    #[test]
    fn mean_db_queries_is_about_two() {
        let v3 = ServletMix::browse_only().mean_db_queries();
        assert!((v3 - 2.0).abs() < 0.15, "V3 {v3}");
    }

    #[test]
    fn sampling_respects_weights() {
        let mix = ServletMix::browse_only();
        let mut rng = SimRng::seed_from(5);
        let mut counts = vec![0u32; mix.len()];
        let n = 100_000;
        for _ in 0..n {
            counts[mix.sample_index(&mut rng)] += 1;
        }
        // Heaviest servlet (StoriesOfTheDay, weight 14/104) appears most.
        let max_idx = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .unwrap()
            .0;
        assert_eq!(mix.servlet(max_idx).name, "StoriesOfTheDay");
        // Every servlet appears.
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn mean_multipliers_are_near_one() {
        let (web, app, db) = ServletMix::browse_only().mean_multipliers();
        assert!((web - 1.0).abs() < 0.1, "web {web}");
        assert!((app - 1.0).abs() < 0.15, "app {app}");
        assert!((db - 1.0).abs() < 0.15, "db {db}");
    }

    #[test]
    fn custom_mix_validation() {
        assert!(ServletMix::from_servlets(vec![]).is_err());
        let one = Servlet {
            name: "X",
            weight: 1.0,
            web_mult: 1.0,
            app_mult: 1.0,
            db_mult: 1.0,
            db_queries: 1,
        };
        let mix = ServletMix::from_servlets(vec![one]).unwrap();
        assert_eq!(mix.mean_db_queries(), 1.0);
    }
}
