//! Burstiness injection (Mi et al., "Injecting realistic burstiness to a
//! traditional client-server benchmark", ICAC 2009 — the paper's reference \[23\],
//! motivating the bursty evaluation workload).
//!
//! A two-state Markov-modulated process toggles the client population
//! between a *normal* and a *burst* regime: in the burst state think times
//! shrink by the burst intensity, multiplying the offered load without
//! changing the number of users. The resulting arrival process has a
//! controllable **index of dispersion** `I` — `I ≈ 1` for Poisson-like
//! traffic, `I ≫ 1` for bursty production-like traffic.

use std::cell::Cell;
use std::rc::Rc;

use dcm_ntier::world::{SimEngine, World};
use dcm_sim::dist::{Dist, Sample};
use dcm_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Two-state MMPP configuration.
///
/// # Examples
///
/// ```
/// use dcm_workload::burstiness::MmppConfig;
///
/// let config = MmppConfig::with_intensity(8.0);
/// assert_eq!(config.burst_intensity, 8.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MmppConfig {
    /// Mean dwell time in the normal state (seconds).
    pub mean_normal_secs: f64,
    /// Mean dwell time in the burst state (seconds).
    pub mean_burst_secs: f64,
    /// Think-time divisor while bursting (≥ 1): intensity 8 makes users
    /// click 8× faster during a burst.
    pub burst_intensity: f64,
}

impl MmppConfig {
    /// A standard shape: long normal periods (60 s) punctuated by short
    /// (10 s) bursts of the given intensity.
    ///
    /// # Panics
    ///
    /// Panics if `intensity < 1`.
    pub fn with_intensity(intensity: f64) -> Self {
        assert!(intensity >= 1.0, "burst intensity must be >= 1");
        MmppConfig {
            mean_normal_secs: 60.0,
            mean_burst_secs: 10.0,
            burst_intensity: intensity,
        }
    }

    /// Long-run fraction of time spent bursting.
    pub fn burst_fraction(&self) -> f64 {
        self.mean_burst_secs / (self.mean_normal_secs + self.mean_burst_secs)
    }
}

/// A live modulator: exposes the current think-time multiplier (1.0 in the
/// normal state, `1/intensity` while bursting) through a shared cell the
/// generator reads on every think-time sample.
#[derive(Debug, Clone)]
pub struct MmppModulator {
    multiplier: Rc<Cell<f64>>,
    bursting: Rc<Cell<bool>>,
}

impl MmppModulator {
    /// Installs the modulation process on the engine; state flips are
    /// scheduled with exponential dwell times until `stop_at`.
    ///
    /// # Panics
    ///
    /// Panics if dwell times are non-positive or intensity < 1.
    pub fn install(engine: &mut SimEngine, config: MmppConfig, stop_at: SimTime) -> Self {
        assert!(
            config.mean_normal_secs > 0.0 && config.mean_burst_secs > 0.0,
            "dwell times must be positive"
        );
        assert!(
            config.burst_intensity >= 1.0,
            "burst intensity must be >= 1"
        );
        let modulator = MmppModulator {
            multiplier: Rc::new(Cell::new(1.0)),
            bursting: Rc::new(Cell::new(false)),
        };
        schedule_flip(engine, modulator.clone(), config, stop_at);
        modulator
    }

    /// The multiplier to apply to the next think-time sample.
    pub fn think_multiplier(&self) -> f64 {
        self.multiplier.get()
    }

    /// True while in the burst state.
    pub fn is_bursting(&self) -> bool {
        self.bursting.get()
    }

    /// A shared handle to the multiplier cell (what the generator holds).
    pub fn multiplier_cell(&self) -> Rc<Cell<f64>> {
        Rc::clone(&self.multiplier)
    }
}

fn schedule_flip(
    engine: &mut SimEngine,
    modulator: MmppModulator,
    config: MmppConfig,
    stop_at: SimTime,
) {
    let dwell_mean = if modulator.is_bursting() {
        config.mean_burst_secs
    } else {
        config.mean_normal_secs
    };
    let dist = Dist::exponential_mean(dwell_mean);
    engine.schedule_now(move |world: &mut World, engine: &mut SimEngine| {
        let dwell = dist.sample(&mut world.rng);
        let at = engine.now() + SimDuration::from_secs_f64(dwell);
        if at > stop_at {
            return;
        }
        engine.schedule_at(at, move |_world: &mut World, engine: &mut SimEngine| {
            let now_bursting = !modulator.is_bursting();
            modulator.bursting.set(now_bursting);
            modulator.multiplier.set(if now_bursting {
                1.0 / config.burst_intensity
            } else {
                1.0
            });
            schedule_flip(engine, modulator, config, stop_at);
        });
    });
}

/// Index of dispersion of an event sequence, estimated from counts in
/// fixed windows: `I = Var(counts)/Mean(counts)`. Poisson arrivals give
/// `I ≈ 1`; bursty traffic gives `I ≫ 1`.
///
/// Returns `None` with fewer than two windows or a zero mean.
///
/// # Examples
///
/// ```
/// use dcm_workload::burstiness::index_of_dispersion;
/// use dcm_sim::time::{SimDuration, SimTime};
///
/// // Perfectly regular arrivals: dispersion ~ 0.
/// let times: Vec<SimTime> = (0..100).map(SimTime::from_secs).collect();
/// let i = index_of_dispersion(&times, SimTime::ZERO, SimTime::from_secs(100),
///                             SimDuration::from_secs(10)).unwrap();
/// assert!(i < 0.2);
/// ```
pub fn index_of_dispersion(
    events: &[SimTime],
    start: SimTime,
    end: SimTime,
    window: SimDuration,
) -> Option<f64> {
    if window.is_zero() || end <= start {
        return None;
    }
    let w = window.as_secs_f64();
    let horizon = end.saturating_since(start).as_secs_f64();
    let n_windows = (horizon / w).floor() as usize;
    if n_windows < 2 {
        return None;
    }
    let mut counts = vec![0u64; n_windows];
    for &t in events.iter().filter(|&&t| t >= start && t < end) {
        let idx = ((t.saturating_since(start)).as_secs_f64() / w) as usize;
        if idx < n_windows {
            counts[idx] += 1;
        }
    }
    let n = counts.len() as f64;
    let mean = counts.iter().sum::<u64>() as f64 / n;
    if mean == 0.0 {
        return None;
    }
    let var = counts
        .iter()
        .map(|&c| (c as f64 - mean).powi(2))
        .sum::<f64>()
        / (n - 1.0);
    Some(var / mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::UserPopulation;
    use crate::profile::ProfileFactory;
    use dcm_ntier::topology::ThreeTierBuilder;

    #[test]
    fn config_fraction() {
        let c = MmppConfig::with_intensity(8.0);
        assert!((c.burst_fraction() - 10.0 / 70.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "intensity must be >= 1")]
    fn rejects_sub_unit_intensity() {
        let _ = MmppConfig::with_intensity(0.5);
    }

    #[test]
    fn modulator_flips_states_over_time() {
        let (mut world, mut engine) = ThreeTierBuilder::new().seed(3).build();
        let config = MmppConfig {
            mean_normal_secs: 5.0,
            mean_burst_secs: 5.0,
            burst_intensity: 4.0,
        };
        let modulator = MmppModulator::install(&mut engine, config, SimTime::from_secs(200));
        let mut burst_seconds = 0u32;
        for s in 1..=200u64 {
            engine.run_until(&mut world, SimTime::from_secs(s));
            if modulator.is_bursting() {
                burst_seconds += 1;
                assert_eq!(modulator.think_multiplier(), 0.25);
            } else {
                assert_eq!(modulator.think_multiplier(), 1.0);
            }
        }
        // Symmetric dwell times: roughly half the time bursting.
        assert!(
            (40..=160).contains(&burst_seconds),
            "burst fraction implausible: {burst_seconds}/200"
        );
    }

    #[test]
    fn bursty_population_has_higher_dispersion() {
        let run = |mmpp: Option<MmppConfig>| {
            let (mut world, mut engine) = ThreeTierBuilder::new().seed(9).build();
            let stop = SimTime::from_secs(400);
            let modulator = mmpp.map(|config| MmppModulator::install(&mut engine, config, stop));
            let pop = UserPopulation::start_think_time_modulated(
                &mut world,
                &mut engine,
                ProfileFactory::rubbos(),
                60,
                3.0,
                modulator.as_ref().map(MmppModulator::multiplier_cell),
                stop,
            );
            engine.run(&mut world);
            let finishes: Vec<SimTime> = pop.completions().iter().map(|c| c.finished).collect();
            index_of_dispersion(
                &finishes,
                SimTime::from_secs(20),
                stop,
                SimDuration::from_secs(5),
            )
            .expect("enough windows")
        };
        let calm = run(None);
        let bursty = run(Some(MmppConfig {
            mean_normal_secs: 40.0,
            mean_burst_secs: 15.0,
            burst_intensity: 6.0,
        }));
        assert!(
            bursty > calm * 2.0,
            "dispersion should rise sharply: calm {calm:.2} vs bursty {bursty:.2}"
        );
    }

    #[test]
    fn dispersion_estimator_edge_cases() {
        assert_eq!(
            index_of_dispersion(
                &[],
                SimTime::ZERO,
                SimTime::from_secs(10),
                SimDuration::from_secs(1)
            ),
            None,
            "no events → zero mean → None"
        );
        assert_eq!(
            index_of_dispersion(
                &[SimTime::from_secs(1)],
                SimTime::ZERO,
                SimTime::from_secs(1),
                SimDuration::from_secs(1)
            ),
            None,
            "fewer than two windows"
        );
    }
}
