//! Cache-tier warm-up dynamics: a hit ratio that rises as the cache fills.
//!
//! The mesh scenarios put a cache tier in front of the database. A *hit*
//! serves the request from the cache and skips the DB hop entirely; a
//! *miss* falls through. A cold cache misses almost always, so the DB is
//! the bottleneck early on; as the working set loads, the hit ratio climbs
//! toward its steady-state maximum and the bottleneck migrates upstream —
//! the dynamic the `repro mesh` experiment exercises controllers against.
//!
//! The warm-up curve is exponential in requests served:
//! `h(k) = h_max · (1 − exp(−k / k₀))`, with `k₀` the warm-up scale (the
//! request count at which the cache reaches ≈63% of `h_max`). A zero scale
//! gives the steady-state cache `h(k) = h_max`, which maps exactly onto the
//! product-form MVA oracle: a Bernoulli miss is Markovian routing, so the
//! downstream visit ratio rescales by `1 − h_max`.
//!
//! Hit decisions are drawn through [`CacheDynamics::decide`] on the
//! workload RNG stream, so runs stay bit-identical across `--jobs` counts.
//! A `h_max = 0` cache returns *miss* without consuming a draw, making the
//! degenerate no-cache configuration bit-identical to having no cache at
//! all.

use std::cell::Cell;

use dcm_sim::rng::SimRng;

/// Warm-up hit-ratio state for one cache tier.
///
/// Holds interior-mutable served-request state so workload factories can
/// keep their `&self` sampling signatures.
///
/// # Examples
///
/// ```
/// use dcm_workload::cache::CacheDynamics;
///
/// let cache = CacheDynamics::new(0.8, 1000.0);
/// assert_eq!(cache.hit_ratio(), 0.0); // cold
/// let steady = CacheDynamics::steady(0.8);
/// assert_eq!(steady.hit_ratio(), 0.8); // no warm-up
/// ```
#[derive(Debug, Clone)]
pub struct CacheDynamics {
    max_hit_ratio: f64,
    warmup_requests: f64,
    served: Cell<u64>,
}

impl CacheDynamics {
    /// A cache warming toward `max_hit_ratio` with scale `warmup_requests`
    /// (`k₀` in the module formula). A non-positive scale means no warm-up:
    /// the hit ratio is `max_hit_ratio` from the first request.
    ///
    /// # Panics
    ///
    /// Panics if `max_hit_ratio` is outside `[0, 1]` or `warmup_requests`
    /// is not finite.
    pub fn new(max_hit_ratio: f64, warmup_requests: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&max_hit_ratio),
            "hit ratio must be in [0,1]"
        );
        assert!(warmup_requests.is_finite(), "warm-up scale must be finite");
        CacheDynamics {
            max_hit_ratio,
            warmup_requests,
            served: Cell::new(0),
        }
    }

    /// A steady-state cache: hit ratio `max_hit_ratio` with no warm-up.
    pub fn steady(max_hit_ratio: f64) -> Self {
        Self::new(max_hit_ratio, 0.0)
    }

    /// The steady-state maximum hit ratio.
    pub fn max_hit_ratio(&self) -> f64 {
        self.max_hit_ratio
    }

    /// Requests routed through the cache so far.
    pub fn served(&self) -> u64 {
        self.served.get()
    }

    /// The current hit ratio `h(served)`.
    pub fn hit_ratio(&self) -> f64 {
        if self.warmup_requests <= 0.0 {
            return self.max_hit_ratio;
        }
        let k = self.served.get() as f64;
        self.max_hit_ratio * (1.0 - (-k / self.warmup_requests).exp())
    }

    /// Draws one hit/miss decision at the current warm-up state and counts
    /// the request as served.
    ///
    /// A `max_hit_ratio` of zero returns *miss* without consuming an RNG
    /// draw, so the degenerate configuration is bit-identical to having no
    /// cache installed.
    pub fn decide(&self, rng: &mut SimRng) -> bool {
        if self.max_hit_ratio <= 0.0 {
            return false;
        }
        let h = self.hit_ratio();
        self.served.set(self.served.get().saturating_add(1));
        rng.next_f64() < h
    }

    /// Resets the warm-up state to cold (e.g. between experiment repeats).
    pub fn reset(&self) {
        self.served.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_curve_rises_toward_max() {
        let cache = CacheDynamics::new(0.8, 100.0);
        assert_eq!(cache.hit_ratio(), 0.0);
        cache.served.set(100);
        let at_scale = cache.hit_ratio();
        assert!(
            (at_scale - 0.8 * (1.0 - (-1.0f64).exp())).abs() < 1e-12,
            "{at_scale}"
        );
        cache.served.set(10_000);
        assert!((cache.hit_ratio() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn steady_cache_hits_at_max_from_the_start() {
        let cache = CacheDynamics::steady(1.0);
        let mut rng = SimRng::seed_from(5);
        for _ in 0..50 {
            assert!(cache.decide(&mut rng));
        }
        assert_eq!(cache.served(), 50);
    }

    #[test]
    fn empirical_hit_rate_matches_steady_ratio() {
        let cache = CacheDynamics::steady(0.6);
        let mut rng = SimRng::seed_from(9);
        let n = 100_000;
        let hits = (0..n).filter(|_| cache.decide(&mut rng)).count();
        let rate = hits as f64 / f64::from(n);
        assert!((rate - 0.6).abs() < 0.01, "empirical rate {rate}");
    }

    #[test]
    fn zero_ratio_cache_consumes_no_randomness() {
        let cache = CacheDynamics::new(0.0, 50.0);
        let mut with_cache = SimRng::seed_from(7);
        let mut without = SimRng::seed_from(7);
        for _ in 0..10 {
            assert!(!cache.decide(&mut with_cache));
        }
        assert_eq!(with_cache.next_f64(), without.next_f64());
        assert_eq!(cache.served(), 0);
    }

    #[test]
    fn reset_returns_to_cold() {
        let cache = CacheDynamics::new(0.5, 10.0);
        let mut rng = SimRng::seed_from(2);
        for _ in 0..100 {
            let _ = cache.decide(&mut rng);
        }
        assert!(cache.hit_ratio() > 0.4);
        cache.reset();
        assert_eq!(cache.hit_ratio(), 0.0);
        assert_eq!(cache.served(), 0);
    }

    #[test]
    #[should_panic(expected = "hit ratio must be in [0,1]")]
    fn out_of_range_ratio_rejected() {
        let _ = CacheDynamics::new(1.5, 0.0);
    }
}
