//! # dcm-workload — workload generation for the n-tier simulator
//!
//! Reproduces the paper's three workload tools over `dcm-ntier`:
//!
//! | Paper tool | Here | Role |
//! |---|---|---|
//! | Jmeter, zero think time | [`generator::UserPopulation::start_closed_loop`] | model training: offered concurrency = user count |
//! | original RUBBoS client (3 s think) | [`generator::UserPopulation::start_think_time`] | model validation under realistic static load |
//! | revised RUBBoS emulator + trace file | [`generator::UserPopulation::start_trace_driven`] | bursty Fig. 5 evaluation |
//!
//! Plus the RUBBoS browse-only servlet mix ([`servlets`]), trace synthesis
//! and parsing ([`traces`] — including the reconstructed "Large Variation"
//! trace), and result summarization ([`report`]).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod burstiness;
pub mod cache;
pub mod cohort;
pub mod generator;
pub mod profile;
pub mod report;
pub mod servlets;
pub mod traces;

pub use burstiness::{index_of_dispersion, MmppConfig, MmppModulator};
pub use cache::CacheDynamics;
pub use cohort::{CohortPopulation, CohortStats};
pub use generator::{RetryPolicy, UserPopulation};
pub use profile::{CacheEdge, MeshProfileFactory, NodeDemand, ProfileFactory, WorkloadFactory};
pub use report::{class_breakdown, shared_log, ClassStats, LoadReport, WindowedSeries};
pub use servlets::{Servlet, ServletMix};
pub use traces::{TraceError, WorkloadTrace};
