//! Client emulators driving the n-tier system.
//!
//! Three generators reproduce the paper's three workload tools:
//!
//! * **Closed-loop, zero think time** (`Jmeter`): a fixed number of virtual
//!   users each keep exactly one request in flight, so offered concurrency
//!   equals the user count — the training-phase workload.
//! * **Think-time clients** (original RUBBoS generator): users wait an
//!   exponential think time (mean 3 s) between requests — the validation
//!   workload.
//! * **Trace-driven clients** (revised RUBBoS emulator): the active user
//!   population follows a [`WorkloadTrace`]
//!   —
//!   the bursty Fig. 5 workload.
//!
//! All three share one mechanism: a [`UserPopulation`] whose virtual users
//! run submit → (complete → think) cycles and lazily retire when the
//! population target drops.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use dcm_ntier::flow;
use dcm_ntier::request::Completion;
use dcm_ntier::world::{SimEngine, World};
use dcm_sim::dist::{Dist, Sample};
use dcm_sim::stats::TimeSeries;
use dcm_sim::time::{SimDuration, SimTime};

use crate::profile::WorkloadFactory;
use crate::traces::WorkloadTrace;

/// Client-side retry policy: a failed request (rejected, timed out, or
/// lost to a fault) is resubmitted after an exponential backoff, up to a
/// per-request attempt cap and a population-wide retry-token budget. The
/// budget bounds retry amplification: once the tokens run out, failures
/// surface to the virtual user instead of multiplying load on an already
/// degraded system.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per logical request (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, in seconds.
    pub base_backoff_secs: f64,
    /// Multiplier applied to the backoff after each failed attempt.
    pub backoff_multiplier: f64,
    /// Population-wide retry-token budget (each retry consumes one).
    pub budget: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_secs: 0.5,
            backoff_multiplier: 2.0,
            budget: 10_000,
        }
    }
}

/// Shared state behind a [`UserPopulation`].
#[derive(Debug)]
struct PopState {
    factory: WorkloadFactory,
    think: Option<Dist>,
    think_multiplier: Option<Rc<Cell<f64>>>,
    stop_at: SimTime,
    target: u32,
    active: u32,
    log: Vec<Completion>,
    offered: TimeSeries,
    total_spawned: u64,
    retry: Option<RetryPolicy>,
    retry_budget_left: u64,
    retries_issued: u64,
    deadline: Option<SimDuration>,
}

/// A population of virtual users driving the system.
///
/// Cloning the handle shares the same population.
///
/// # Examples
///
/// ```
/// use dcm_ntier::topology::ThreeTierBuilder;
/// use dcm_workload::generator::UserPopulation;
/// use dcm_workload::profile::ProfileFactory;
/// use dcm_sim::time::SimTime;
///
/// let (mut world, mut engine) = ThreeTierBuilder::new().build();
/// let pop = UserPopulation::start_closed_loop(
///     &mut world,
///     &mut engine,
///     ProfileFactory::rubbos(),
///     10,                       // 10 users, zero think time
///     SimTime::from_secs(5),    // stop submitting at t=5s
/// );
/// engine.run(&mut world);
/// assert!(pop.completion_count() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct UserPopulation {
    inner: Rc<RefCell<PopState>>,
}

impl UserPopulation {
    /// Starts a closed-loop (zero think time) population of `users`
    /// clients; no new requests are issued at or after `stop_at`.
    pub fn start_closed_loop(
        world: &mut World,
        engine: &mut SimEngine,
        factory: impl Into<WorkloadFactory>,
        users: u32,
        stop_at: SimTime,
    ) -> Self {
        Self::start(world, engine, factory, None, users, stop_at)
    }

    /// Starts a think-time population (the RUBBoS client): users pause for
    /// an exponential think time with the given mean between requests.
    ///
    /// # Panics
    ///
    /// Panics if `mean_think_secs <= 0`.
    pub fn start_think_time(
        world: &mut World,
        engine: &mut SimEngine,
        factory: impl Into<WorkloadFactory>,
        users: u32,
        mean_think_secs: f64,
        stop_at: SimTime,
    ) -> Self {
        Self::start(
            world,
            engine,
            factory,
            Some(Dist::exponential_mean(mean_think_secs)),
            users,
            stop_at,
        )
    }

    /// Starts a population with an explicit think-time distribution
    /// (`None` = closed loop). Delay terminals are insensitive to the think
    /// distribution in product-form networks, so the conformance harness
    /// uses a constant think time here to cut measurement variance without
    /// leaving the model class.
    pub fn start_with_think_dist(
        world: &mut World,
        engine: &mut SimEngine,
        factory: impl Into<WorkloadFactory>,
        users: u32,
        think: Option<Dist>,
        stop_at: SimTime,
    ) -> Self {
        Self::start(world, engine, factory, think, users, stop_at)
    }

    /// Like [`UserPopulation::start_think_time`], with an optional shared
    /// think-time multiplier cell (see
    /// [`crate::burstiness::MmppModulator`]) applied to every sampled
    /// think time — the burstiness-injection hook.
    ///
    /// # Panics
    ///
    /// Panics if `mean_think_secs <= 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn start_think_time_modulated(
        world: &mut World,
        engine: &mut SimEngine,
        factory: impl Into<WorkloadFactory>,
        users: u32,
        mean_think_secs: f64,
        think_multiplier: Option<Rc<Cell<f64>>>,
        stop_at: SimTime,
    ) -> Self {
        let pop = Self::start(
            world,
            engine,
            factory,
            Some(Dist::exponential_mean(mean_think_secs)),
            users,
            stop_at,
        );
        pop.inner.borrow_mut().think_multiplier = think_multiplier;
        pop
    }

    /// Starts a trace-driven population: the user target follows `trace`
    /// (think time as given), stopping at `stop_at`.
    pub fn start_trace_driven(
        world: &mut World,
        engine: &mut SimEngine,
        factory: impl Into<WorkloadFactory>,
        trace: &WorkloadTrace,
        mean_think_secs: f64,
        stop_at: SimTime,
    ) -> Self {
        let initial = trace.users_at(SimTime::ZERO);
        let pop = Self::start(
            world,
            engine,
            factory,
            Some(Dist::exponential_mean(mean_think_secs)),
            initial,
            stop_at,
        );
        for &(at, users) in trace.points().iter().skip(1) {
            if at >= stop_at {
                break;
            }
            let handle = pop.clone();
            engine.schedule_at(at, move |w: &mut World, e: &mut SimEngine| {
                handle.set_target(w, e, users);
            });
        }
        pop
    }

    fn start(
        world: &mut World,
        engine: &mut SimEngine,
        factory: impl Into<WorkloadFactory>,
        think: Option<Dist>,
        users: u32,
        stop_at: SimTime,
    ) -> Self {
        let mut offered = TimeSeries::new();
        offered.push(engine.now(), f64::from(users));
        let pop = UserPopulation {
            inner: Rc::new(RefCell::new(PopState {
                factory: factory.into(),
                think,
                think_multiplier: None,
                stop_at,
                target: users,
                active: 0,
                log: Vec::new(),
                offered,
                total_spawned: 0,
                retry: None,
                retry_budget_left: 0,
                retries_issued: 0,
                deadline: None,
            })),
        };
        pop.spawn_to_target(world, engine);
        pop
    }

    /// Changes the user target; new users spawn immediately, surplus users
    /// retire lazily at the end of their current cycle (as real users
    /// leave after their in-flight page load).
    pub fn set_target(&self, world: &mut World, engine: &mut SimEngine, users: u32) {
        {
            let mut st = self.inner.borrow_mut();
            st.target = users;
            let now = engine.now();
            st.offered.push(now, f64::from(users));
        }
        self.spawn_to_target(world, engine);
    }

    fn spawn_to_target(&self, world: &mut World, engine: &mut SimEngine) {
        loop {
            {
                let mut st = self.inner.borrow_mut();
                if st.active >= st.target || engine.now() >= st.stop_at {
                    return;
                }
                st.active += 1;
                st.total_spawned += 1;
            }
            user_cycle(Rc::clone(&self.inner), world, engine);
        }
    }

    /// Currently active virtual users.
    pub fn active_users(&self) -> u32 {
        self.inner.borrow().active
    }

    /// The population target currently in effect.
    pub fn target_users(&self) -> u32 {
        self.inner.borrow().target
    }

    /// Total users ever spawned.
    pub fn total_spawned(&self) -> u64 {
        self.inner.borrow().total_spawned
    }

    /// Number of recorded completions (including rejections).
    pub fn completion_count(&self) -> usize {
        self.inner.borrow().log.len()
    }

    /// A copy of the completion log.
    pub fn completions(&self) -> Vec<Completion> {
        self.inner.borrow().log.clone()
    }

    /// Runs `f` over the completion log without copying.
    pub fn with_completions<R>(&self, f: impl FnOnce(&[Completion]) -> R) -> R {
        f(&self.inner.borrow().log)
    }

    /// The offered-load (target users) series, one point per change.
    pub fn offered_series(&self) -> TimeSeries {
        self.inner.borrow().offered.clone()
    }

    /// Enables client-side retry for every user of this population.
    /// Applies to requests whose *completion* arrives after the call, so
    /// configure it right after `start_*`, before running the engine. The
    /// completion logged for a retried request carries the *first*
    /// attempt's submission time (client-perceived latency), and only the
    /// final attempt is logged.
    pub fn set_client_retry(&self, policy: RetryPolicy) {
        let mut st = self.inner.borrow_mut();
        st.retry_budget_left = policy.budget;
        st.retry = Some(policy);
    }

    /// Sets a per-request client deadline: requests not finished within
    /// `deadline` are abandoned (and, with a retry policy, retried).
    /// Applies to requests submitted after the call.
    pub fn set_request_deadline(&self, deadline: SimDuration) {
        self.inner.borrow_mut().deadline = Some(deadline);
    }

    /// Retries issued so far (each consumed one budget token).
    pub fn retries_issued(&self) -> u64 {
        self.inner.borrow().retries_issued
    }

    /// Retry-budget tokens remaining.
    pub fn retry_budget_left(&self) -> u64 {
        self.inner.borrow().retry_budget_left
    }
}

/// One user's submit → complete → think loop.
fn user_cycle(state: Rc<RefCell<PopState>>, world: &mut World, engine: &mut SimEngine) {
    let profile = {
        let mut st = state.borrow_mut();
        if engine.now() >= st.stop_at || st.active > st.target {
            // Stop condition or population shrank: retire this user.
            st.active -= 1;
            return;
        }
        st.factory.sample(&mut world.rng)
    };
    submit_attempt(state, world, engine, profile, 1, None);
}

/// Submits one attempt of a logical request. On a non-success outcome with
/// retry attempts and budget remaining, the same profile is resubmitted
/// after an exponential backoff; otherwise the (final) completion is
/// logged — stamped with the first attempt's submission time, so reports
/// measure client-perceived latency — and the user moves on to thinking.
fn submit_attempt(
    state: Rc<RefCell<PopState>>,
    world: &mut World,
    engine: &mut SimEngine,
    profile: dcm_ntier::request::RequestProfile,
    attempt: u32,
    first_submitted: Option<SimTime>,
) {
    let deadline = state.borrow().deadline;
    let cb_state = Rc::clone(&state);
    let retry_profile = profile.clone();
    let callback: dcm_ntier::system::CompletionCallback = Box::new(
        move |w: &mut World, e: &mut SimEngine, completion: Completion| {
            let first = first_submitted.unwrap_or(completion.submitted);
            let backoff = {
                let mut st = cb_state.borrow_mut();
                match st.retry {
                    Some(policy)
                        if !completion.is_success()
                            && attempt < policy.max_attempts
                            && st.retry_budget_left > 0
                            && e.now() < st.stop_at =>
                    {
                        st.retry_budget_left -= 1;
                        st.retries_issued += 1;
                        Some(
                            policy.base_backoff_secs
                                * policy.backoff_multiplier.powi(attempt as i32 - 1),
                        )
                    }
                    _ => None,
                }
            };
            if let Some(backoff_secs) = backoff {
                let next_state = Rc::clone(&cb_state);
                e.schedule_in(
                    SimDuration::from_secs_f64(backoff_secs),
                    move |w: &mut World, e: &mut SimEngine| {
                        submit_attempt(next_state, w, e, retry_profile, attempt + 1, Some(first));
                    },
                );
                return;
            }
            let think_delay = {
                let mut st = cb_state.borrow_mut();
                st.log.push(Completion {
                    submitted: first,
                    ..completion
                });
                let base = st
                    .think
                    .as_ref()
                    .map(|d| d.sample(&mut w.rng))
                    .unwrap_or(0.0);
                let multiplier = st.think_multiplier.as_ref().map_or(1.0, |cell| cell.get());
                base * multiplier
            };
            let next_state = Rc::clone(&cb_state);
            if think_delay > 0.0 {
                e.schedule_in(
                    SimDuration::from_secs_f64(think_delay),
                    move |w: &mut World, e: &mut SimEngine| user_cycle(next_state, w, e),
                );
            } else {
                // Zero think time: defer through the queue instead of
                // recursing so long closed-loop runs keep a flat stack.
                e.schedule_now(move |w: &mut World, e: &mut SimEngine| {
                    user_cycle(next_state, w, e)
                });
            }
        },
    );
    match deadline {
        Some(d) => {
            flow::submit_with_deadline(world, engine, profile, d, callback);
        }
        None => {
            flow::submit(world, engine, profile, callback);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::profile::ProfileFactory;
    use crate::traces;
    use dcm_ntier::topology::ThreeTierBuilder;

    #[test]
    fn closed_loop_keeps_concurrency_at_user_count() {
        let (mut world, mut engine) = ThreeTierBuilder::new().seed(2).build();
        let pop = UserPopulation::start_closed_loop(
            &mut world,
            &mut engine,
            ProfileFactory::rubbos_deterministic(),
            5,
            SimTime::from_secs(30),
        );
        engine.run(&mut world);
        assert_eq!(pop.active_users(), 0, "users retired at stop");
        // In-flight never exceeded 5 => submitted == completed and the
        // system never queued more than 5 at the web tier.
        let c = world.system.counters();
        assert_eq!(c.in_flight(), 0);
        assert_eq!(c.completed as usize, pop.completion_count());
        assert!(c.completed > 100, "5 users for 30 s complete many requests");
    }

    #[test]
    fn think_time_population_offers_less_load() {
        let run = |think: Option<f64>| {
            let (mut world, mut engine) = ThreeTierBuilder::new().seed(3).build();
            let pop = match think {
                Some(z) => UserPopulation::start_think_time(
                    &mut world,
                    &mut engine,
                    ProfileFactory::rubbos(),
                    20,
                    z,
                    SimTime::from_secs(60),
                ),
                None => UserPopulation::start_closed_loop(
                    &mut world,
                    &mut engine,
                    ProfileFactory::rubbos(),
                    20,
                    SimTime::from_secs(60),
                ),
            };
            engine.run(&mut world);
            pop.completion_count()
        };
        let with_think = run(Some(3.0));
        let without = run(None);
        assert!(
            without > with_think * 3,
            "zero think {without} vs 3s think {with_think}"
        );
    }

    #[test]
    fn trace_driven_population_follows_target() {
        let (mut world, mut engine) = ThreeTierBuilder::new().seed(4).build();
        let trace = traces::step(5, 25, 10.0);
        let pop = UserPopulation::start_trace_driven(
            &mut world,
            &mut engine,
            ProfileFactory::rubbos(),
            &trace,
            1.0,
            SimTime::from_secs(30),
        );
        engine.run_until(&mut world, SimTime::from_secs(5));
        assert_eq!(pop.target_users(), 5);
        assert!(pop.active_users() <= 5);
        engine.run_until(&mut world, SimTime::from_secs(12));
        assert_eq!(pop.target_users(), 25);
        assert_eq!(pop.active_users(), 25);
        engine.run(&mut world);
        assert_eq!(pop.active_users(), 0);
        assert!(pop.total_spawned() >= 25);
    }

    #[test]
    fn shrinking_target_retires_users_lazily() {
        let (mut world, mut engine) = ThreeTierBuilder::new().seed(5).build();
        let trace = traces::WorkloadTrace::from_points(vec![(0.0, 20), (5.0, 2)]).unwrap();
        let pop = UserPopulation::start_trace_driven(
            &mut world,
            &mut engine,
            ProfileFactory::rubbos(),
            &trace,
            0.5,
            SimTime::from_secs(40),
        );
        engine.run_until(&mut world, SimTime::from_secs(20));
        assert_eq!(pop.target_users(), 2);
        assert!(
            pop.active_users() <= 2,
            "population drained to target, still {}",
            pop.active_users()
        );
    }

    #[test]
    fn offered_series_tracks_changes() {
        let (mut world, mut engine) = ThreeTierBuilder::new().seed(6).build();
        let trace = traces::step(3, 9, 4.0);
        let pop = UserPopulation::start_trace_driven(
            &mut world,
            &mut engine,
            ProfileFactory::rubbos(),
            &trace,
            1.0,
            SimTime::from_secs(10),
        );
        engine.run(&mut world);
        let series = pop.offered_series();
        let values: Vec<f64> = series.iter().map(|(_, v)| v).collect();
        assert_eq!(values, vec![3.0, 9.0]);
    }
}
