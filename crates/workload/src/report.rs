//! Load-test result collection and summarization.

use std::cell::RefCell;
use std::rc::Rc;

use dcm_ntier::request::Completion;
use dcm_sim::stats::{OnlineStats, SampleQuantiles, TimeSeries};
use dcm_sim::time::{SimDuration, SimTime};

/// Shared, append-only completion log a generator writes into from its
/// completion callbacks.
pub type SharedLog = Rc<RefCell<Vec<Completion>>>;

/// Creates an empty shared completion log.
pub fn shared_log() -> SharedLog {
    Rc::new(RefCell::new(Vec::new()))
}

/// Aggregated results of one load-generation run.
///
/// # Examples
///
/// ```
/// use dcm_workload::report::LoadReport;
/// use dcm_ntier::request::{Completion, Outcome};
/// use dcm_ntier::ids::RequestId;
/// use dcm_sim::time::SimTime;
///
/// let completions = vec![Completion {
///     id: RequestId::new(0),
///     class: 0,
///     submitted: SimTime::from_secs(1),
///     finished: SimTime::from_secs(2),
///     outcome: Outcome::Completed,
/// }];
/// let report = LoadReport::from_completions(&completions, SimTime::ZERO, SimTime::from_secs(10));
/// assert_eq!(report.completed(), 1);
/// assert!((report.mean_response_time() - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct LoadReport {
    window_start: SimTime,
    window_end: SimTime,
    completed: u64,
    rejected: u64,
    timed_out: u64,
    failed: u64,
    rt_stats: OnlineStats,
    rt_quantiles: SampleQuantiles,
    response_times: Vec<f64>,
}

impl LoadReport {
    /// Summarizes completions whose finish time falls in
    /// `[window_start, window_end)` (use the window to exclude warm-up and
    /// drain phases).
    pub fn from_completions(
        completions: &[Completion],
        window_start: SimTime,
        window_end: SimTime,
    ) -> Self {
        let mut completed = 0;
        let mut rejected = 0;
        let mut timed_out = 0;
        let mut failed = 0;
        let mut rt_stats = OnlineStats::new();
        let mut rt_quantiles = SampleQuantiles::new();
        let mut response_times = Vec::new();
        for c in completions
            .iter()
            .filter(|c| c.finished >= window_start && c.finished < window_end)
        {
            match c.outcome {
                dcm_ntier::request::Outcome::Completed => {
                    completed += 1;
                    let rt = c.response_time().as_secs_f64();
                    rt_stats.record(rt);
                    rt_quantiles.record(rt);
                    response_times.push(rt);
                }
                dcm_ntier::request::Outcome::Rejected { .. } => rejected += 1,
                dcm_ntier::request::Outcome::TimedOut => timed_out += 1,
                dcm_ntier::request::Outcome::Failed { .. } => failed += 1,
            }
        }
        LoadReport {
            window_start,
            window_end,
            completed,
            rejected,
            timed_out,
            failed,
            rt_stats,
            rt_quantiles,
            response_times,
        }
    }

    /// Successful completions in the window.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Rejections in the window.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Client abandonments in the window.
    pub fn timed_out(&self) -> u64 {
        self.timed_out
    }

    /// Fault-induced losses (crashed server / transient failure) in the
    /// window.
    pub fn failed(&self) -> u64 {
        self.failed
    }

    /// Mean throughput over the window, completions/second.
    pub fn throughput(&self) -> f64 {
        let dt = self
            .window_end
            .saturating_since(self.window_start)
            .as_secs_f64();
        if dt > 0.0 {
            self.completed as f64 / dt
        } else {
            0.0
        }
    }

    /// Mean response time (seconds) of successful requests; 0 when none.
    pub fn mean_response_time(&self) -> f64 {
        self.rt_stats.mean()
    }

    /// Response-time quantile of successful requests.
    pub fn response_time_quantile(&mut self, q: f64) -> Option<f64> {
        self.rt_quantiles.quantile(q)
    }

    /// The measurement window.
    pub fn window(&self) -> (SimTime, SimTime) {
        (self.window_start, self.window_end)
    }

    /// SLA attainment: the fraction of *submitted* requests in the window
    /// that completed within `threshold_secs` (rejections and abandonments
    /// count as violations — the paper's SLAs are "bounded response time").
    /// Returns 1.0 for an empty window.
    pub fn sla_attainment(&self, threshold_secs: f64) -> f64 {
        let total = self.completed + self.rejected + self.timed_out + self.failed;
        if total == 0 {
            return 1.0;
        }
        let within = self
            .response_times
            .iter()
            .filter(|&&rt| rt <= threshold_secs)
            .count() as u64;
        within as f64 / total as f64
    }
}

/// Per-servlet-class latency summary.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassStats {
    /// Servlet index (the profile's class id).
    pub class: u16,
    /// Servlet name from the mix, when known.
    pub name: String,
    /// Successful completions.
    pub completed: u64,
    /// Mean response time (seconds).
    pub mean_rt: f64,
    /// Maximum response time (seconds).
    pub max_rt: f64,
}

/// Per-servlet breakdown of a completion log, named via the mix that
/// generated the workload. Classes never observed are omitted; classes
/// beyond the mix are labelled `class-N`.
pub fn class_breakdown(
    completions: &[Completion],
    mix: &crate::servlets::ServletMix,
) -> Vec<ClassStats> {
    let mut acc: std::collections::BTreeMap<u16, (u64, f64, f64)> = Default::default();
    for c in completions.iter().filter(|c| c.is_success()) {
        let rt = c.response_time().as_secs_f64();
        let entry = acc.entry(c.class).or_default();
        entry.0 += 1;
        entry.1 += rt;
        entry.2 = entry.2.max(rt);
    }
    acc.into_iter()
        .map(|(class, (n, sum, max))| ClassStats {
            class,
            name: mix
                .servlets()
                .get(usize::from(class))
                .map_or_else(|| format!("class-{class}"), |s| s.name.to_string()),
            completed: n,
            mean_rt: sum / n as f64,
            max_rt: max,
        })
        .collect()
}

/// Per-window time series derived from a completion log (what Fig. 5 plots
/// each second).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedSeries {
    /// Completions per second, one point per window.
    pub throughput: TimeSeries,
    /// Mean response time per window (seconds); windows with no completions
    /// carry the previous value of 0.
    pub mean_rt: TimeSeries,
    /// Maximum response time observed per window.
    pub max_rt: TimeSeries,
}

/// Builds per-window series from a completion log.
///
/// Windows are `[k·w, (k+1)·w)` from `start` to `end`; requests are binned
/// by finish time. Rejections are excluded from RT but not throughput.
pub fn windowed_series(
    completions: &[Completion],
    start: SimTime,
    end: SimTime,
    window: SimDuration,
) -> WindowedSeries {
    assert!(!window.is_zero(), "window must be positive");
    let w = window.as_secs_f64();
    let horizon = end.saturating_since(start).as_secs_f64();
    let n_windows = (horizon / w).ceil() as usize;
    let mut counts = vec![0u64; n_windows];
    let mut rt_sums = vec![0.0f64; n_windows];
    let mut rt_maxes = vec![0.0f64; n_windows];
    for c in completions
        .iter()
        .filter(|c| c.is_success() && c.finished >= start && c.finished < end)
    {
        let idx = ((c.finished.saturating_since(start)).as_secs_f64() / w) as usize;
        let idx = idx.min(n_windows.saturating_sub(1));
        counts[idx] += 1;
        let rt = c.response_time().as_secs_f64();
        rt_sums[idx] += rt;
        rt_maxes[idx] = rt_maxes[idx].max(rt);
    }
    let mut throughput = TimeSeries::new();
    let mut mean_rt = TimeSeries::new();
    let mut max_rt = TimeSeries::new();
    for k in 0..n_windows {
        let at = start + window * k as u64;
        throughput.push(at, counts[k] as f64 / w);
        mean_rt.push(
            at,
            if counts[k] > 0 {
                rt_sums[k] / counts[k] as f64
            } else {
                0.0
            },
        );
        max_rt.push(at, rt_maxes[k]);
    }
    WindowedSeries {
        throughput,
        mean_rt,
        max_rt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcm_ntier::ids::RequestId;
    use dcm_ntier::request::Outcome;

    fn completion(id: u64, submitted: f64, finished: f64, ok: bool) -> Completion {
        Completion {
            id: RequestId::new(id),
            class: 0,
            submitted: SimTime::from_secs_f64(submitted),
            finished: SimTime::from_secs_f64(finished),
            outcome: if ok {
                Outcome::Completed
            } else {
                Outcome::Rejected { at_tier: 1 }
            },
        }
    }

    #[test]
    fn report_windows_out_warmup() {
        let completions = vec![
            completion(0, 0.0, 1.0, true),  // in warm-up
            completion(1, 4.0, 5.0, true),  // measured
            completion(2, 5.0, 6.5, true),  // measured
            completion(3, 6.0, 11.0, true), // after window
        ];
        let report = LoadReport::from_completions(
            &completions,
            SimTime::from_secs(4),
            SimTime::from_secs(10),
        );
        assert_eq!(report.completed(), 2);
        assert!((report.throughput() - 2.0 / 6.0).abs() < 1e-9);
        assert!((report.mean_response_time() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn report_counts_rejections_separately() {
        let completions = vec![
            completion(0, 0.0, 1.0, true),
            completion(1, 0.0, 1.0, false),
        ];
        let mut report =
            LoadReport::from_completions(&completions, SimTime::ZERO, SimTime::from_secs(2));
        assert_eq!(report.completed(), 1);
        assert_eq!(report.rejected(), 1);
        assert_eq!(report.response_time_quantile(0.5), Some(1.0));
    }

    #[test]
    fn windowed_series_bins_by_finish_time() {
        let completions = vec![
            completion(0, 0.0, 0.5, true),
            completion(1, 0.0, 0.6, true),
            completion(2, 1.0, 2.5, true),
        ];
        let series = windowed_series(
            &completions,
            SimTime::ZERO,
            SimTime::from_secs(3),
            SimDuration::from_secs(1),
        );
        let tp: Vec<f64> = series.throughput.iter().map(|(_, v)| v).collect();
        assert_eq!(tp, vec![2.0, 0.0, 1.0]);
        let rt: Vec<f64> = series.mean_rt.iter().map(|(_, v)| v).collect();
        assert!((rt[0] - 0.55).abs() < 1e-9);
        assert_eq!(rt[1], 0.0);
        assert!((rt[2] - 1.5).abs() < 1e-9);
        assert!((series.max_rt.iter().map(|(_, v)| v).next().unwrap() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn sla_attainment_counts_failures_as_violations() {
        let completions = vec![
            completion(0, 0.0, 0.2, true),  // 0.2 s — within a 0.5 s SLA
            completion(1, 0.0, 0.9, true),  // 0.9 s — violation
            completion(2, 0.0, 1.0, false), // rejected — violation
        ];
        let report =
            LoadReport::from_completions(&completions, SimTime::ZERO, SimTime::from_secs(2));
        assert!((report.sla_attainment(0.5) - 1.0 / 3.0).abs() < 1e-12);
        assert!((report.sla_attainment(1.0) - 2.0 / 3.0).abs() < 1e-12);
        let empty = LoadReport::from_completions(&[], SimTime::ZERO, SimTime::from_secs(1));
        assert_eq!(empty.sla_attainment(0.5), 1.0);
    }

    #[test]
    fn class_breakdown_groups_and_names() {
        use crate::servlets::ServletMix;
        let mix = ServletMix::browse_only();
        let mut completions = vec![
            completion(0, 0.0, 1.0, true),
            completion(1, 0.0, 3.0, true),
            completion(2, 0.0, 2.0, false),
        ];
        completions[1].class = 1;
        let breakdown = class_breakdown(&completions, &mix);
        assert_eq!(breakdown.len(), 2);
        assert_eq!(breakdown[0].name, mix.servlet(0).name);
        assert_eq!(breakdown[0].completed, 1);
        assert!((breakdown[1].mean_rt - 3.0).abs() < 1e-12);
        // Unknown class labels gracefully.
        let mut odd = vec![completion(9, 0.0, 1.0, true)];
        odd[0].class = 999;
        let b = class_breakdown(&odd, &mix);
        assert_eq!(b[0].name, "class-999");
    }

    #[test]
    fn empty_log_is_safe() {
        let report = LoadReport::from_completions(&[], SimTime::ZERO, SimTime::from_secs(1));
        assert_eq!(report.completed(), 0);
        assert_eq!(report.throughput(), 0.0);
        assert_eq!(report.mean_response_time(), 0.0);
        let series = windowed_series(
            &[],
            SimTime::ZERO,
            SimTime::from_secs(2),
            SimDuration::from_secs(1),
        );
        assert_eq!(series.throughput.len(), 2);
    }
}
