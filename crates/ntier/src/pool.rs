//! Soft-resource pools: bounded permit sets with FIFO wait queues.
//!
//! A [`Pool`] models both kinds of soft resource the paper manipulates — a
//! server's thread pool and an application server's database connection
//! pool. Capacity is **resizable at runtime without disruption**: growing a
//! pool immediately admits waiters; shrinking never revokes permits already
//! held, it just stops lending once holders drain below the new cap (this is
//! exactly how the paper's APP-agent adjusts `maxThreads` on the fly).

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::ids::RequestId;

/// A bounded permit pool with a FIFO queue of waiting requests.
///
/// Generic over the waiter token `T` (any small `Copy` id): the flow layer
/// parks generation-checked [`FlightId`](crate::ids::FlightId) slab handles,
/// while standalone uses (benches, property tests) default to the public
/// [`RequestId`].
///
/// # Examples
///
/// ```
/// use dcm_ntier::pool::Pool;
/// use dcm_ntier::ids::RequestId;
///
/// let mut pool = Pool::new(1);
/// assert!(pool.try_acquire(RequestId::new(1)));
/// assert!(!pool.try_acquire(RequestId::new(2))); // queued
/// let next = pool.release();
/// assert_eq!(next, Some(RequestId::new(2)));     // handed off directly
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pool<T = RequestId> {
    capacity: u32,
    in_use: u32,
    waiters: VecDeque<T>,
    // Cumulative counters for monitoring.
    total_acquired: u64,
    total_queued: u64,
}

impl<T: Copy + PartialEq> Pool<T> {
    /// Creates a pool with `capacity` permits.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` (a zero-capacity pool can never serve).
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "pool capacity must be positive");
        Pool {
            capacity,
            in_use: 0,
            waiters: VecDeque::new(),
            total_acquired: 0,
            total_queued: 0,
        }
    }

    /// Current capacity.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Permits currently held.
    pub fn in_use(&self) -> u32 {
        self.in_use
    }

    /// Requests waiting for a permit.
    pub fn queued(&self) -> usize {
        self.waiters.len()
    }

    /// Permits available right now (0 while over-committed after a shrink).
    pub fn available(&self) -> u32 {
        self.capacity.saturating_sub(self.in_use)
    }

    /// Lifetime count of successful acquisitions.
    pub fn total_acquired(&self) -> u64 {
        self.total_acquired
    }

    /// Lifetime count of requests that had to queue.
    pub fn total_queued(&self) -> u64 {
        self.total_queued
    }

    /// Attempts to take a permit for `req`. On failure the request is
    /// appended to the FIFO wait queue and `false` is returned; the caller
    /// parks the request until [`Pool::release`] hands it a permit.
    pub fn try_acquire(&mut self, req: T) -> bool {
        if self.in_use < self.capacity {
            self.in_use += 1;
            self.total_acquired += 1;
            true
        } else {
            self.waiters.push_back(req);
            self.total_queued += 1;
            false
        }
    }

    /// Returns a permit. If a request is waiting **and** the pool is not
    /// over-committed (capacity may have shrunk), the permit transfers to
    /// the longest-waiting request, which is returned so the caller can
    /// resume it.
    ///
    /// # Panics
    ///
    /// Panics if no permit is outstanding (release without acquire — a
    /// simulator accounting bug, never a recoverable condition).
    pub fn release(&mut self) -> Option<T> {
        assert!(self.in_use > 0, "pool release without matching acquire");
        self.in_use -= 1;
        if self.in_use < self.capacity {
            if let Some(next) = self.waiters.pop_front() {
                self.in_use += 1;
                self.total_acquired += 1;
                return Some(next);
            }
        }
        None
    }

    /// Removes a parked request from the wait queue (e.g. the client gave
    /// up). Returns `true` if it was queued.
    pub fn cancel_waiter(&mut self, req: T) -> bool {
        if let Some(pos) = self.waiters.iter().position(|&r| r == req) {
            self.waiters.remove(pos);
            true
        } else {
            false
        }
    }

    /// Changes the capacity. Growing admits as many waiters as fit and
    /// returns them for resumption (in FIFO order); shrinking never revokes
    /// held permits — the pool drains to the new cap naturally.
    ///
    /// # Panics
    ///
    /// Panics if `new_capacity == 0`.
    pub fn resize(&mut self, new_capacity: u32) -> Vec<T> {
        assert!(new_capacity > 0, "pool capacity must be positive");
        self.capacity = new_capacity;
        let mut admitted = Vec::new();
        while self.in_use < self.capacity {
            match self.waiters.pop_front() {
                Some(req) => {
                    self.in_use += 1;
                    self.total_acquired += 1;
                    admitted.push(req);
                }
                None => break,
            }
        }
        admitted
    }

    /// True when over-committed (held permits exceed capacity after a
    /// shrink).
    pub fn is_overcommitted(&self) -> bool {
        self.in_use > self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u64) -> RequestId {
        RequestId::new(n)
    }

    #[test]
    fn acquire_until_full_then_queue() {
        let mut p = Pool::new(2);
        assert!(p.try_acquire(r(1)));
        assert!(p.try_acquire(r(2)));
        assert!(!p.try_acquire(r(3)));
        assert_eq!(p.in_use(), 2);
        assert_eq!(p.queued(), 1);
        assert_eq!(p.available(), 0);
        assert_eq!(p.total_acquired(), 2);
        assert_eq!(p.total_queued(), 1);
    }

    #[test]
    fn release_hands_off_fifo() {
        let mut p = Pool::new(1);
        assert!(p.try_acquire(r(1)));
        assert!(!p.try_acquire(r(2)));
        assert!(!p.try_acquire(r(3)));
        assert_eq!(p.release(), Some(r(2)));
        assert_eq!(p.release(), Some(r(3)));
        assert_eq!(p.release(), None);
        assert_eq!(p.in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "release without matching acquire")]
    fn release_without_acquire_panics() {
        let mut p: Pool = Pool::new(1);
        let _ = p.release();
    }

    #[test]
    fn grow_admits_waiters() {
        let mut p = Pool::new(1);
        assert!(p.try_acquire(r(1)));
        assert!(!p.try_acquire(r(2)));
        assert!(!p.try_acquire(r(3)));
        let admitted = p.resize(3);
        assert_eq!(admitted, vec![r(2), r(3)]);
        assert_eq!(p.in_use(), 3);
        assert_eq!(p.queued(), 0);
    }

    #[test]
    fn shrink_does_not_revoke() {
        let mut p = Pool::new(4);
        for i in 0..4 {
            assert!(p.try_acquire(r(i)));
        }
        let admitted = p.resize(2);
        assert!(admitted.is_empty());
        assert_eq!(p.in_use(), 4);
        assert!(p.is_overcommitted());
        assert_eq!(p.available(), 0);
        // Drain: releases do not hand off until under the new cap.
        assert!(!p.try_acquire(r(9)));
        assert_eq!(p.release(), None); // in_use 3, still over cap 2
        assert_eq!(p.release(), None); // in_use 2 -> at cap, no slot free
        assert_eq!(p.release(), Some(r(9))); // in_use 1 < 2: hand off
        assert_eq!(p.in_use(), 2);
        assert!(!p.is_overcommitted());
    }

    #[test]
    fn cancel_waiter_removes_from_queue() {
        let mut p = Pool::new(1);
        assert!(p.try_acquire(r(1)));
        assert!(!p.try_acquire(r(2)));
        assert!(!p.try_acquire(r(3)));
        assert!(p.cancel_waiter(r(2)));
        assert!(!p.cancel_waiter(r(2)));
        assert_eq!(p.release(), Some(r(3)));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _: Pool = Pool::new(0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_resize_rejected() {
        let mut p: Pool = Pool::new(1);
        let _ = p.resize(0);
    }
}
