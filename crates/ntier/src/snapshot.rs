//! Point-in-time system snapshots for debugging, logging, and result
//! archiving.

use std::fmt;

use dcm_sim::time::SimTime;
use serde::{Deserialize, Serialize};

use crate::server::ServerState;
use crate::system::System;

/// One server's state at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSnapshot {
    /// Server name, e.g. `app-2`.
    pub name: String,
    /// Lifecycle state rendered as text (`starting`/`running`/...).
    pub state: String,
    /// Thread-pool occupancy `in_use/capacity`.
    pub threads: (u32, u32),
    /// Requests queued for a thread.
    pub thread_queue: usize,
    /// Connection-pool occupancy, if the server has one.
    pub conns: Option<(u32, u32)>,
    /// Requests queued for a connection.
    pub conn_queue: usize,
    /// Live CPU bursts.
    pub active_bursts: usize,
    /// Requests completed since launch.
    pub completed: u64,
}

/// One tier's state at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierSnapshot {
    /// Tier name from its spec.
    pub name: String,
    /// Member servers.
    pub servers: Vec<ServerSnapshot>,
}

/// A full system snapshot.
///
/// # Examples
///
/// ```
/// use dcm_ntier::snapshot::SystemSnapshot;
/// use dcm_ntier::topology::ThreeTierBuilder;
/// use dcm_sim::time::SimTime;
///
/// let (world, _engine) = ThreeTierBuilder::new().counts(1, 2, 1).build();
/// let snap = SystemSnapshot::capture(&world.system, SimTime::ZERO);
/// assert_eq!(snap.tiers.len(), 3);
/// assert_eq!(snap.tiers[1].servers.len(), 2);
/// println!("{snap}"); // human-readable topology dump
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemSnapshot {
    /// Snapshot timestamp.
    pub at: SimTime,
    /// Tiers front to back.
    pub tiers: Vec<TierSnapshot>,
    /// Requests currently inside the system.
    pub in_flight: u64,
}

impl SystemSnapshot {
    /// Captures the current state (read-only; no measurement windows are
    /// disturbed).
    pub fn capture(system: &System, at: SimTime) -> Self {
        let tiers = (0..system.tier_count())
            .map(|m| {
                let tier = system.tier(m);
                let servers = tier
                    .members()
                    .iter()
                    .filter_map(|&sid| system.server(sid))
                    .map(|server| ServerSnapshot {
                        name: server.name().to_owned(),
                        state: match server.state() {
                            ServerState::Starting { .. } => "starting".into(),
                            ServerState::Running => "running".into(),
                            ServerState::Draining => "draining".into(),
                            ServerState::Stopped => "stopped".into(),
                        },
                        threads: (
                            server.thread_pool().in_use(),
                            server.thread_pool().capacity(),
                        ),
                        thread_queue: server.thread_pool().queued(),
                        conns: server
                            .conn_pool()
                            .map(|pool| (pool.in_use(), pool.capacity())),
                        conn_queue: server.conn_pool().map_or(0, |pool| pool.queued()),
                        active_bursts: server.cpu().active_bursts(),
                        completed: server.completed_total(),
                    })
                    .collect();
                TierSnapshot {
                    name: tier.spec().name.clone(),
                    servers,
                }
            })
            .collect();
        SystemSnapshot {
            at,
            tiers,
            in_flight: system.counters().in_flight(),
        }
    }

    /// Total servers across tiers.
    pub fn server_count(&self) -> usize {
        self.tiers.iter().map(|t| t.servers.len()).sum()
    }
}

impl fmt::Display for SystemSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "system @ {} — {} in flight", self.at, self.in_flight)?;
        for tier in &self.tiers {
            writeln!(f, "  [{}]", tier.name)?;
            for s in &tier.servers {
                write!(
                    f,
                    "    {:<10} {:<9} threads {}/{}",
                    s.name, s.state, s.threads.0, s.threads.1
                )?;
                if s.thread_queue > 0 {
                    write!(f, " (+{} queued)", s.thread_queue)?;
                }
                if let Some((in_use, cap)) = s.conns {
                    write!(f, "  conns {in_use}/{cap}")?;
                    if s.conn_queue > 0 {
                        write!(f, " (+{} queued)", s.conn_queue)?;
                    }
                }
                writeln!(f, "  bursts {}  done {}", s.active_bursts, s.completed)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow;
    use crate::request::{RequestProfile, StageDemand};
    use crate::topology::ThreeTierBuilder;

    #[test]
    fn snapshot_reflects_live_state() {
        let (mut world, mut engine) = ThreeTierBuilder::new().counts(1, 2, 1).build();
        for _ in 0..10 {
            flow::submit(
                &mut world,
                &mut engine,
                RequestProfile::new(
                    vec![
                        StageDemand::pre_only(0.001),
                        StageDemand::split(0.05),
                        StageDemand::pre_only(0.01),
                    ],
                    vec![1, 1, 2],
                    0,
                ),
                Box::new(|_, _, _| {}),
            );
        }
        // Mid-flight snapshot (well before the ~0.2 s request latency).
        engine.run_until(&mut world, dcm_sim::time::SimTime::from_secs_f64(0.05));
        let snap = SystemSnapshot::capture(&world.system, engine.now());
        assert_eq!(snap.tiers.len(), 3);
        assert_eq!(snap.server_count(), 4);
        assert!(snap.in_flight > 0);
        let text = snap.to_string();
        assert!(text.contains("[app]"));
        assert!(text.contains("running"));

        // Drained snapshot.
        engine.run(&mut world);
        let done = SystemSnapshot::capture(&world.system, engine.now());
        assert_eq!(done.in_flight, 0);
        assert!(done
            .tiers
            .iter()
            .flat_map(|t| &t.servers)
            .all(|s| s.threads.0 == 0 && s.active_bursts == 0));
    }

    #[test]
    fn snapshot_shows_lifecycle_states() {
        let (mut world, mut engine) = ThreeTierBuilder::new().counts(1, 2, 1).build();
        flow::provision_server(&mut world, &mut engine, 1).unwrap();
        flow::decommission_one(&mut world, &mut engine, 1).unwrap();
        let snap = SystemSnapshot::capture(&world.system, engine.now());
        let states: Vec<&str> = snap.tiers[1]
            .servers
            .iter()
            .map(|s| s.state.as_str())
            .collect();
        assert!(states.contains(&"starting"));
        assert!(states.contains(&"running"));
    }
}
