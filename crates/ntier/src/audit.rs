//! Runtime conservation auditing: cross-checks the simulator's independent
//! accounting paths against the operational laws they must jointly satisfy.
//!
//! The DES keeps several *redundant* books: the [`SystemCounters`] outcome
//! tally vs the live request map, the thread-pool time-weighted occupancy
//! vs the span log, the CPU busy clock vs the work it delivered. In a
//! correct simulator these agree to floating-point precision; a bug in any
//! path (a leaked permit, a double-counted completion, a span emitted with
//! inverted timestamps, a CPU delivering more work than physically
//! possible) breaks one of the identities. The [`ConservationAuditor`]
//! measures a window `[begin, finish]` and reports every broken identity:
//!
//! * **flow balance** — every submitted request is in exactly one place:
//!   `submitted = completed + rejected + timed_out + failed + in-flight`,
//!   with "in-flight" counted from the live request map, not derived;
//! * **tier flow balance** — every frame pushed at a tier during the window
//!   either recorded a span there, was abandoned while still waiting for a
//!   thread, or sits on a live request's stack:
//!   `Δentries[m] = spans[m] + Δabandoned[m] + Δlive_frames[m]`. On a DAG
//!   topology this is the per-node generalization of request conservation —
//!   it catches a dispatch that routes a call without booking the entry, or
//!   an unwind that drops a frame without an exit record;
//! * **edge consistency** — the flow ledger's per-edge entry counts must
//!   re-sum to its per-tier totals (`Σ_parent edge[parent→m] =
//!   entries[m]`), so per-edge visit-ratio sensing can trust the ledger;
//! * **span ordering** — every span has
//!   `arrived_at ≤ started_at ≤ finished_at`;
//! * **span statuses** — a request unwinds at most once, so all its
//!   non-completed spans carry the same terminal status, and a request
//!   with any non-completed span cannot also have a *completed* entry-tier
//!   span (mixed books would mean a request both finished and unwound);
//! * **Little's law per server** — the pool-accounting occupancy integral
//!   `∫ threads_in_use dt` equals `X·R` reconstructed from the span log
//!   (dwell of spans finished in the window, clipped, plus the dwell of
//!   frames still holding threads);
//! * **utilization law per server** — with `n` bursts the CPU delivers
//!   `n/f(n)` work-seconds per second, so over any window
//!   `busy·min_rate ≤ executed work ≤ busy·peak_rate` and `busy ≤ elapsed`,
//!   where the rates range over the concurrency levels the CPU actually
//!   reached;
//! * **work conservation per server** — a burst can only run on a held
//!   thread, so `∫ threads dt ≥ busy seconds`.
//!
//! Servers that stopped (crashed or drained) during the window are skipped:
//! a crash tears pools down without releasing permits, so their books
//! freeze mid-sentence by design. Every check is a pure function over plain
//! numbers, so each one has a deliberately-broken-invariant test proving it
//! can fail.

use std::collections::BTreeMap;

use dcm_sim::time::SimTime;

use crate::ids::ServerId;
use crate::request::Phase;
use crate::spans::{Span, SpanStatus};
use crate::system::{System, SystemCounters};

/// One broken invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which check failed (`flow-balance`, `span-ordering`, `span-status`,
    /// `littles-law`, `utilization-law`, `work-conservation`).
    pub check: &'static str,
    /// What the check was looking at (a server name, `system`, a span).
    pub subject: String,
    /// Human-readable mismatch description with both sides of the identity.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.check, self.subject, self.detail)
    }
}

/// The outcome of one audited window.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// Window start.
    pub window_start: SimTime,
    /// Window end.
    pub window_end: SimTime,
    /// Servers whose books were cross-checked (running at both ends).
    pub servers_audited: usize,
    /// Spans inspected.
    pub spans_audited: usize,
    /// Every broken identity found; empty means the window is clean.
    pub violations: Vec<Violation>,
}

impl AuditReport {
    /// True when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with a readable list when any invariant was violated.
    ///
    /// # Panics
    ///
    /// Panics if the report holds at least one violation.
    pub fn assert_clean(&self) {
        assert!(
            self.is_clean(),
            "conservation audit failed ({} violations over [{:.3}s, {:.3}s]):\n{}",
            self.violations.len(),
            self.window_start.as_secs_f64(),
            self.window_end.as_secs_f64(),
            self.violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    /// A compact one-line rendering of the violations (`clean` for a
    /// clean window), suitable for journals and regression-case files
    /// where the multi-line [`AuditReport::assert_clean`] dump is too
    /// wide. Violations are separated by `; ` in detection order.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            return "clean".to_string();
        }
        let rendered: Vec<String> = self
            .violations
            .iter()
            .map(|v| format!("[{}] {}", v.check, v.subject))
            .collect();
        format!(
            "{} violations: {}",
            self.violations.len(),
            rendered.join("; ")
        )
    }
}

/// Per-server accounting marks at window start.
#[derive(Debug, Clone, Copy, Default)]
struct ServerMark {
    busy_seconds: f64,
    executed_work: f64,
    threads_integral: f64,
}

/// Opt-in conservation auditor over a measurement window.
///
/// Usage: enable span tracing, call [`ConservationAuditor::begin`] at the
/// window start (after draining previously recorded spans), run the
/// simulation, then pass the spans recorded *since begin* to
/// [`ConservationAuditor::finish`].
#[derive(Debug)]
pub struct ConservationAuditor {
    begin: SimTime,
    marks: BTreeMap<ServerId, ServerMark>,
    tier_entries0: Vec<u64>,
    tier_abandoned0: Vec<u64>,
    live_frames0: Vec<u64>,
}

impl ConservationAuditor {
    /// Snapshots every live server's books at `now`.
    pub fn begin(system: &System, now: SimTime) -> Self {
        let marks = system
            .servers()
            .filter(|s| !s.is_stopped())
            .map(|s| {
                (
                    s.id(),
                    ServerMark {
                        busy_seconds: s.cpu().projected_busy_seconds(now),
                        executed_work: s.cpu().projected_executed_work(now),
                        threads_integral: s.threads_time_integral(now),
                    },
                )
            })
            .collect();
        let ledger = system.flow_ledger();
        ConservationAuditor {
            begin: now,
            marks,
            tier_entries0: ledger.tier_entries().to_vec(),
            tier_abandoned0: ledger.tier_abandoned().to_vec(),
            live_frames0: system.live_frames_per_tier(),
        }
    }

    /// Cross-checks the window `[begin, now]` and reports every broken
    /// identity. `spans` must be exactly the spans recorded since
    /// [`ConservationAuditor::begin`].
    pub fn finish(&self, system: &System, spans: &[Span], now: SimTime) -> AuditReport {
        let mut violations = Vec::new();

        if let Some(v) = check_flow_balance(&system.counters(), system.live_requests()) {
            violations.push(v);
        }
        violations.extend(check_span_ordering(spans));
        violations.extend(check_span_statuses(spans));

        // Per-tier frame conservation over the window, from the flow ledger.
        let tiers = system.tier_count();
        let ledger = system.flow_ledger();
        let live_now = system.live_frames_per_tier();
        let mut entries_delta = Vec::with_capacity(tiers);
        let mut abandoned_delta = Vec::with_capacity(tiers);
        let mut live_delta = Vec::with_capacity(tiers);
        let mut spans_at_tier = vec![0i128; tiers];
        for m in 0..tiers {
            let e0 = self.tier_entries0.get(m).copied().unwrap_or(0);
            let a0 = self.tier_abandoned0.get(m).copied().unwrap_or(0);
            let l0 = self.live_frames0.get(m).copied().unwrap_or(0);
            entries_delta.push(i128::from(ledger.tier_entries()[m]) - i128::from(e0));
            abandoned_delta.push(i128::from(ledger.tier_abandoned()[m]) - i128::from(a0));
            live_delta.push(i128::from(live_now[m]) - i128::from(l0));
        }
        for span in spans {
            if span.tier < tiers {
                spans_at_tier[span.tier] += 1;
            }
        }
        violations.extend(check_tier_flow_balance(
            &entries_delta,
            &spans_at_tier,
            &abandoned_delta,
            &live_delta,
        ));
        violations.extend(check_edge_consistency(
            &ledger.edge_entry_sums(),
            ledger.tier_entries(),
        ));

        // Servers running at both window ends (stopped servers freeze their
        // books mid-crash by design — see module docs).
        let audited: BTreeMap<ServerId, &crate::server::Server> = system
            .servers()
            .filter(|s| !s.is_stopped())
            .map(|s| (s.id(), s))
            .collect();

        // Span-side occupancy per server: dwell of recorded spans clipped
        // to the window, plus the dwell of frames still holding threads.
        let mut span_occ: BTreeMap<ServerId, f64> = audited.keys().map(|&sid| (sid, 0.0)).collect();
        for span in spans {
            if let Some(acc) = span_occ.get_mut(&span.server) {
                *acc += clipped_overlap(span.started_at, span.finished_at, self.begin, now);
            }
        }
        for req in system.requests_by_id() {
            for frame in &req.frames {
                if frame.phase == Phase::AwaitThread {
                    continue;
                }
                if let Some(acc) = span_occ.get_mut(&frame.server) {
                    *acc += clipped_overlap(frame.thread_since, now, self.begin, now);
                }
            }
        }

        let elapsed = now.saturating_since(self.begin).as_secs_f64();
        for (&sid, server) in &audited {
            let mark = self.marks.get(&sid).copied().unwrap_or_default();
            let busy = server.cpu().projected_busy_seconds(now) - mark.busy_seconds;
            let executed = server.cpu().projected_executed_work(now) - mark.executed_work;
            let occupancy = server.threads_time_integral(now) - mark.threads_integral;
            let (peak_rate, min_rate) = work_rate_range(server);
            let name = server.name();

            if let Some(v) = check_littles_law(name, occupancy, span_occ[&sid]) {
                violations.push(v);
            }
            violations.extend(check_utilization_law(
                name, busy, elapsed, executed, peak_rate, min_rate,
            ));
            if let Some(v) = check_work_conservation(name, occupancy, busy) {
                violations.push(v);
            }
        }

        AuditReport {
            window_start: self.begin,
            window_end: now,
            servers_audited: audited.len(),
            spans_audited: spans.len(),
            violations,
        }
    }
}

/// Overlap of `[from, to]` with the window `[w0, w1]`, clamped at zero.
fn clipped_overlap(from: SimTime, to: SimTime, w0: SimTime, w1: SimTime) -> f64 {
    let lo = if from > w0 { from } else { w0 };
    let hi = if to < w1 { to } else { w1 };
    hi.saturating_since(lo).as_secs_f64()
}

/// The range of work-delivery rates `n·(1/f(n))` over every concurrency
/// level `n` this CPU has actually reached.
fn work_rate_range(server: &crate::server::Server) -> (f64, f64) {
    let law = server.cpu().law();
    let hwm = server.cpu().max_active_bursts().max(1) as u32;
    let mut peak = 0.0f64;
    let mut min = f64::INFINITY;
    for n in 1..=hwm {
        let rate = f64::from(n) * law.progress_speed(n);
        peak = peak.max(rate);
        min = min.min(rate);
    }
    (peak, min)
}

/// Flow balance: `submitted = completed + rejected + timed_out + failed +
/// live`, where `live` is counted from the request map (not derived).
pub fn check_flow_balance(counters: &SystemCounters, live_requests: usize) -> Option<Violation> {
    let resolved = i128::from(counters.completed)
        + i128::from(counters.rejected)
        + i128::from(counters.timed_out)
        + i128::from(counters.failed);
    let balance = i128::from(counters.submitted) - resolved - live_requests as i128;
    (balance != 0).then(|| Violation {
        check: "flow-balance",
        subject: "system".into(),
        detail: format!(
            "submitted {} != completed {} + rejected {} + timed_out {} + failed {} + live {} \
             (imbalance {balance})",
            counters.submitted,
            counters.completed,
            counters.rejected,
            counters.timed_out,
            counters.failed,
            live_requests,
        ),
    })
}

/// Per-tier frame conservation over a window: every frame pushed at tier
/// `m` either recorded a span there, was abandoned while still waiting for
/// a thread, or remains on a live request's stack, so
/// `Δentries[m] = spans[m] + Δabandoned[m] + Δlive_frames[m]`.
/// All inputs are per-tier window deltas (live frames may shrink, hence
/// signed); slices must share one length.
pub fn check_tier_flow_balance(
    entries_delta: &[i128],
    spans_at_tier: &[i128],
    abandoned_delta: &[i128],
    live_delta: &[i128],
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (m, &entered) in entries_delta.iter().enumerate() {
        let spans = spans_at_tier.get(m).copied().unwrap_or(0);
        let abandoned = abandoned_delta.get(m).copied().unwrap_or(0);
        let live = live_delta.get(m).copied().unwrap_or(0);
        let imbalance = entered - spans - abandoned - live;
        if imbalance != 0 {
            out.push(Violation {
                check: "tier-flow-balance",
                subject: format!("tier {m}"),
                detail: format!(
                    "Δentries {entered} != spans {spans} + Δabandoned {abandoned} + \
                     Δlive_frames {live} (imbalance {imbalance})"
                ),
            });
        }
    }
    out
}

/// Edge consistency: the flow ledger's per-edge entry counts (summed over
/// every parent, including the client) must reproduce its per-tier entry
/// totals exactly.
pub fn check_edge_consistency(edge_sums: &[u64], tier_entries: &[u64]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (m, &total) in tier_entries.iter().enumerate() {
        let summed = edge_sums.get(m).copied().unwrap_or(0);
        if summed != total {
            out.push(Violation {
                check: "edge-consistency",
                subject: format!("tier {m}"),
                detail: format!(
                    "per-edge entries re-sum to {summed} but the tier total is {total}"
                ),
            });
        }
    }
    out
}

/// Span ordering: every span satisfies `arrived ≤ started ≤ finished`.
pub fn check_span_ordering(spans: &[Span]) -> Vec<Violation> {
    spans
        .iter()
        .filter(|s| !(s.arrived_at <= s.started_at && s.started_at <= s.finished_at))
        .map(|s| Violation {
            check: "span-ordering",
            subject: format!("request {} tier {}", s.request, s.tier),
            detail: format!(
                "arrived {:.6} / started {:.6} / finished {:.6} out of order",
                s.arrived_at.as_secs_f64(),
                s.started_at.as_secs_f64(),
                s.finished_at.as_secs_f64(),
            ),
        })
        .collect()
}

/// Span statuses: unwinding happens at most once per request, so every
/// non-completed span of a request must carry the *same* terminal status,
/// and a request holding any non-completed span cannot also own a
/// completed entry-tier (tier-0) span.
pub fn check_span_statuses(spans: &[Span]) -> Vec<Violation> {
    #[derive(Default)]
    struct PerRequest {
        terminal: Option<SpanStatus>,
        mixed: bool,
        completed_root: bool,
    }
    let mut book: BTreeMap<crate::ids::RequestId, PerRequest> = BTreeMap::new();
    for s in spans {
        let entry = book.entry(s.request).or_default();
        if s.is_completed() {
            if s.tier == 0 {
                entry.completed_root = true;
            }
        } else {
            match entry.terminal {
                None => entry.terminal = Some(s.status),
                Some(t) if t != s.status => entry.mixed = true,
                Some(_) => {}
            }
        }
    }
    let mut out = Vec::new();
    for (rid, entry) in book {
        if entry.mixed {
            out.push(Violation {
                check: "span-status",
                subject: format!("request {rid}"),
                detail: "non-completed spans carry differing terminal statuses \
                         (a request unwinds at most once)"
                    .into(),
            });
        }
        if entry.completed_root && entry.terminal.is_some() {
            out.push(Violation {
                check: "span-status",
                subject: format!("request {rid}"),
                detail: format!(
                    "completed entry-tier span coexists with {} spans \
                     (request both finished and unwound)",
                    entry.terminal.map_or("?", SpanStatus::label),
                ),
            });
        }
    }
    out
}

/// Little's law: the pool-accounting occupancy integral must equal the
/// span-reconstructed one (`X·R` over the window) to float precision.
pub fn check_littles_law(
    subject: &str,
    occupancy_integral: f64,
    span_occupancy_integral: f64,
) -> Option<Violation> {
    let diff = (occupancy_integral - span_occupancy_integral).abs();
    let tol = 1e-6 * occupancy_integral.abs().max(span_occupancy_integral.abs()) + 1e-4;
    (diff > tol).then(|| Violation {
        check: "littles-law",
        subject: subject.into(),
        detail: format!(
            "pool occupancy ∫n dt = {occupancy_integral:.6} thread-s but spans reconstruct \
             {span_occupancy_integral:.6} (diff {diff:.3e} > tol {tol:.3e})"
        ),
    })
}

/// Utilization law: `busy ≤ elapsed` and
/// `busy·min_rate ≤ executed ≤ busy·peak_rate` for the work-delivery rates
/// the CPU can actually run at.
pub fn check_utilization_law(
    subject: &str,
    busy_seconds: f64,
    elapsed: f64,
    executed_work: f64,
    peak_rate: f64,
    min_rate: f64,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let tol = |x: f64| 1e-9 * x.abs() + 1e-6;
    if busy_seconds > elapsed + tol(elapsed) {
        out.push(Violation {
            check: "utilization-law",
            subject: subject.into(),
            detail: format!("busy {busy_seconds:.6}s exceeds window {elapsed:.6}s"),
        });
    }
    let ceiling = busy_seconds * peak_rate;
    if executed_work > ceiling + tol(ceiling) {
        out.push(Violation {
            check: "utilization-law",
            subject: subject.into(),
            detail: format!(
                "executed {executed_work:.6} work-s exceeds busy·peak = {busy_seconds:.6}·\
                 {peak_rate:.6} = {ceiling:.6}"
            ),
        });
    }
    let floor = busy_seconds * min_rate;
    if executed_work < floor - tol(floor) {
        out.push(Violation {
            check: "utilization-law",
            subject: subject.into(),
            detail: format!(
                "executed {executed_work:.6} work-s below busy·min = {busy_seconds:.6}·\
                 {min_rate:.6} = {floor:.6}"
            ),
        });
    }
    out
}

/// Work conservation: a burst only runs on a held thread, so the thread
/// occupancy integral dominates the CPU busy time.
pub fn check_work_conservation(
    subject: &str,
    threads_integral: f64,
    busy_seconds: f64,
) -> Option<Violation> {
    let tol = 1e-9 * busy_seconds.abs() + 1e-6;
    (threads_integral < busy_seconds - tol).then(|| Violation {
        check: "work-conservation",
        subject: subject.into(),
        detail: format!(
            "∫threads dt = {threads_integral:.6} thread-s < cpu busy {busy_seconds:.6}s: \
             work ran without a thread"
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(submitted: u64, completed: u64, failed: u64) -> SystemCounters {
        SystemCounters {
            submitted,
            completed,
            rejected: 0,
            timed_out: 0,
            failed,
            retried: 0,
        }
    }

    #[test]
    fn flow_balance_accepts_consistent_books() {
        assert!(check_flow_balance(&counters(10, 7, 1), 2).is_none());
    }

    #[test]
    fn flow_balance_flags_leaked_request() {
        // 10 submitted, 7+1 resolved, but only 1 live: one request vanished.
        let v = check_flow_balance(&counters(10, 7, 1), 1).expect("must flag");
        assert_eq!(v.check, "flow-balance");
        assert!(v.detail.contains("imbalance 1"), "{}", v.detail);
    }

    #[test]
    fn flow_balance_flags_double_count() {
        // More outcomes than submissions.
        assert!(check_flow_balance(&counters(5, 6, 0), 0).is_some());
    }

    #[test]
    fn tier_flow_balance_accepts_consistent_window() {
        // Tier 0: 10 entered, 8 left via spans, 1 abandoned, 1 still live.
        // Tier 1: drained two frames that were live at window start.
        assert!(check_tier_flow_balance(&[10, 0], &[8, 2], &[1, 0], &[1, -2]).is_empty());
    }

    #[test]
    fn tier_flow_balance_flags_dropped_frame() {
        // Tier 1 booked 5 entries but only 4 frames are accounted for.
        let v = check_tier_flow_balance(&[3, 5], &[3, 4], &[0, 0], &[0, 0]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, "tier-flow-balance");
        assert_eq!(v[0].subject, "tier 1");
        assert!(v[0].detail.contains("imbalance 1"), "{}", v[0].detail);
    }

    #[test]
    fn edge_consistency_flags_unbooked_edge() {
        assert!(check_edge_consistency(&[4, 9], &[4, 9]).is_empty());
        let v = check_edge_consistency(&[4, 7], &[4, 9]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, "edge-consistency");
        assert!(v[0].detail.contains("re-sum to 7"), "{}", v[0].detail);
    }

    #[test]
    fn span_ordering_flags_inverted_timestamps() {
        let t = SimTime::from_secs_f64;
        let good = Span {
            request: crate::ids::RequestId::new(1),
            tier: 0,
            server: ServerId::new(1),
            arrived_at: t(1.0),
            started_at: t(1.5),
            finished_at: t(2.0),
            status: SpanStatus::Completed,
        };
        let started_before_arrival = Span {
            started_at: t(0.5),
            ..good
        };
        let finished_before_start = Span {
            finished_at: t(1.2),
            ..good
        };
        assert!(check_span_ordering(&[good]).is_empty());
        assert_eq!(check_span_ordering(&[started_before_arrival]).len(), 1);
        assert_eq!(check_span_ordering(&[finished_before_start]).len(), 1);
        assert_eq!(
            check_span_ordering(&[good, started_before_arrival, finished_before_start]).len(),
            2
        );
    }

    fn status_span(req: u64, tier: usize, status: SpanStatus) -> Span {
        let t = SimTime::from_secs_f64;
        Span {
            request: crate::ids::RequestId::new(req),
            tier,
            server: ServerId::new(1),
            arrived_at: t(1.0),
            started_at: t(1.5),
            finished_at: t(2.0),
            status,
        }
    }

    #[test]
    fn span_statuses_accept_consistent_unwind() {
        // A crashed request: every released frame carries Crashed; a second
        // request completed normally at both tiers.
        let spans = [
            status_span(1, 1, SpanStatus::Crashed),
            status_span(1, 0, SpanStatus::Crashed),
            status_span(2, 1, SpanStatus::Completed),
            status_span(2, 0, SpanStatus::Completed),
        ];
        assert!(check_span_statuses(&spans).is_empty());
    }

    #[test]
    fn span_statuses_flag_mixed_terminals() {
        // One request cannot both crash and be abandoned.
        let spans = [
            status_span(1, 1, SpanStatus::Crashed),
            status_span(1, 0, SpanStatus::Abandoned),
        ];
        let v = check_span_statuses(&spans);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, "span-status");
        assert!(v[0].detail.contains("differing"), "{}", v[0].detail);
    }

    #[test]
    fn span_statuses_flag_completed_root_with_unwound_frames() {
        // Books claim the request finished at the entry tier *and* unwound.
        let spans = [
            status_span(1, 0, SpanStatus::Completed),
            status_span(1, 1, SpanStatus::Rejected),
        ];
        let v = check_span_statuses(&spans);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("rejected"), "{}", v[0].detail);
    }

    #[test]
    fn littles_law_flags_occupancy_mismatch() {
        assert!(check_littles_law("s", 100.0, 100.0 + 5e-5).is_none());
        let v = check_littles_law("s", 100.0, 103.0).expect("must flag");
        assert_eq!(v.check, "littles-law");
    }

    #[test]
    fn utilization_law_flags_overdelivery_and_idle_gaps() {
        // Clean: 10 busy seconds at rates within [0.5, 2.0].
        assert!(check_utilization_law("s", 10.0, 60.0, 12.0, 2.0, 0.5).is_empty());
        // Busy exceeding the window (executed stays within its rate band).
        assert_eq!(
            check_utilization_law("s", 61.0, 60.0, 40.0, 2.0, 0.5).len(),
            1
        );
        // CPU claims more work than busy·peak allows.
        assert_eq!(
            check_utilization_law("s", 10.0, 60.0, 21.0, 2.0, 0.5).len(),
            1
        );
        // CPU claims less work than busy·min guarantees.
        assert_eq!(
            check_utilization_law("s", 10.0, 60.0, 4.0, 2.0, 0.5).len(),
            1
        );
    }

    #[test]
    fn work_conservation_flags_threadless_work() {
        assert!(check_work_conservation("s", 50.0, 49.0).is_none());
        let v = check_work_conservation("s", 40.0, 49.0).expect("must flag");
        assert_eq!(v.check, "work-conservation");
    }

    #[test]
    fn report_assert_clean_panics_with_details() {
        let report = AuditReport {
            window_start: SimTime::ZERO,
            window_end: SimTime::from_secs(1),
            servers_audited: 1,
            spans_audited: 0,
            violations: vec![Violation {
                check: "littles-law",
                subject: "tomcat-1".into(),
                detail: "mismatch".into(),
            }],
        };
        assert!(!report.is_clean());
        let err = std::panic::catch_unwind(|| report.assert_clean())
            .expect_err("assert_clean must panic");
        let msg = err.downcast_ref::<String>().expect("panic carries message");
        assert!(
            msg.contains("littles-law") && msg.contains("tomcat-1"),
            "{msg}"
        );
    }
}
