//! Request-span tracing: per-tier timing records for individual requests
//! (the simulator's analog of distributed tracing).
//!
//! When enabled on the [`System`](crate::system::System), every tier visit
//! emits a [`Span`] with its queueing and service boundaries. Spans answer
//! the questions the paper's fine-grained analysis asks: *where* does a
//! request wait when a pool is undersized, and which tier's dwell explodes
//! when one floods.

use dcm_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::ids::{RequestId, ServerId};

/// One tier visit of one request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// The request.
    pub request: RequestId,
    /// Tier index of the visit.
    pub tier: usize,
    /// Serving server.
    pub server: ServerId,
    /// When the request arrived at the tier (thread requested).
    pub arrived_at: SimTime,
    /// When a thread was granted.
    pub started_at: SimTime,
    /// When the thread was released.
    pub finished_at: SimTime,
    /// False when the visit ended by rejection/abandonment unwinding.
    pub completed: bool,
}

impl Span {
    /// Time spent waiting for a thread.
    pub fn queue_time(&self) -> SimDuration {
        self.started_at.saturating_since(self.arrived_at)
    }

    /// Time holding the thread (service + downstream waits).
    pub fn service_time(&self) -> SimDuration {
        self.finished_at.saturating_since(self.started_at)
    }
}

/// All spans of one request, in start order (the trace waterfall).
pub fn waterfall(spans: &[Span], request: RequestId) -> Vec<Span> {
    let mut out: Vec<Span> = spans
        .iter()
        .copied()
        .filter(|s| s.request == request)
        .collect();
    out.sort_by_key(|s| (s.arrived_at, s.tier));
    out
}

/// Per-tier aggregate of queue and service time.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TierTiming {
    /// Visits observed.
    pub visits: u64,
    /// Mean seconds waiting for a thread.
    pub mean_queue: f64,
    /// Mean seconds holding a thread.
    pub mean_service: f64,
}

/// Aggregates spans into per-tier timing (completed visits only).
pub fn tier_breakdown(spans: &[Span]) -> std::collections::BTreeMap<usize, TierTiming> {
    let mut acc: std::collections::BTreeMap<usize, (u64, f64, f64)> = Default::default();
    for s in spans.iter().filter(|s| s.completed) {
        let entry = acc.entry(s.tier).or_default();
        entry.0 += 1;
        entry.1 += s.queue_time().as_secs_f64();
        entry.2 += s.service_time().as_secs_f64();
    }
    acc.into_iter()
        .map(|(tier, (n, q, sv))| {
            (
                tier,
                TierTiming {
                    visits: n,
                    mean_queue: q / n as f64,
                    mean_service: sv / n as f64,
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(req: u64, tier: usize, arrive: f64, start: f64, finish: f64) -> Span {
        Span {
            request: RequestId::new(req),
            tier,
            server: ServerId::new(tier as u64),
            arrived_at: SimTime::from_secs_f64(arrive),
            started_at: SimTime::from_secs_f64(start),
            finished_at: SimTime::from_secs_f64(finish),
            completed: true,
        }
    }

    #[test]
    fn span_timing_accessors() {
        let s = span(1, 0, 1.0, 1.5, 3.0);
        assert_eq!(s.queue_time(), SimDuration::from_millis(500));
        assert_eq!(s.service_time(), SimDuration::from_millis(1500));
    }

    #[test]
    fn waterfall_filters_and_orders() {
        let spans = vec![
            span(2, 0, 0.0, 0.0, 1.0),
            span(1, 1, 0.5, 0.6, 0.9),
            span(1, 0, 0.0, 0.1, 1.0),
        ];
        let w = waterfall(&spans, RequestId::new(1));
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].tier, 0);
        assert_eq!(w[1].tier, 1);
    }

    #[test]
    fn breakdown_averages_per_tier() {
        let spans = vec![
            span(1, 0, 0.0, 0.2, 1.0),
            span(2, 0, 0.0, 0.0, 0.4),
            span(1, 1, 0.0, 0.0, 0.3),
        ];
        let b = tier_breakdown(&spans);
        assert_eq!(b[&0].visits, 2);
        assert!((b[&0].mean_queue - 0.1).abs() < 1e-12);
        assert!((b[&0].mean_service - 0.6).abs() < 1e-12);
        assert_eq!(b[&1].visits, 1);
    }

    #[test]
    fn incomplete_spans_excluded_from_breakdown() {
        let mut s = span(1, 0, 0.0, 0.1, 0.5);
        s.completed = false;
        assert!(tier_breakdown(&[s]).is_empty());
    }
}
