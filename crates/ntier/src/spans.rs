//! Request-span tracing: per-tier timing records for individual requests
//! (the simulator's analog of distributed tracing), plus server lifecycle
//! events (boots, drains, crashes) for the observability exporters.
//!
//! When enabled on the [`System`](crate::system::System), every tier visit
//! emits a [`Span`] with its queueing and service boundaries. Spans answer
//! the questions the paper's fine-grained analysis asks: *where* does a
//! request wait when a pool is undersized, and which tier's dwell explodes
//! when one floods.

use dcm_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::ids::{RequestId, ServerId};
use crate::request::Outcome;

/// How a tier visit ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SpanStatus {
    /// The visit ran to completion and replied upstream.
    Completed,
    /// The visit unwound because the request was rejected (no routable
    /// server at some tier).
    Rejected,
    /// The visit unwound because the client abandoned the request at its
    /// deadline.
    Abandoned,
    /// The visit was lost to a VM crash or an injected transient fault.
    Crashed,
}

impl SpanStatus {
    /// The span status that unwinding with `outcome` stamps on every
    /// released frame.
    pub fn from_outcome(outcome: &Outcome) -> SpanStatus {
        match outcome {
            Outcome::Completed => SpanStatus::Completed,
            Outcome::Rejected { .. } => SpanStatus::Rejected,
            Outcome::TimedOut => SpanStatus::Abandoned,
            Outcome::Failed { .. } => SpanStatus::Crashed,
        }
    }

    /// Stable lower-case label (used by the exporters).
    pub fn label(self) -> &'static str {
        match self {
            SpanStatus::Completed => "completed",
            SpanStatus::Rejected => "rejected",
            SpanStatus::Abandoned => "abandoned",
            SpanStatus::Crashed => "crashed",
        }
    }
}

/// One tier visit of one request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// The request.
    pub request: RequestId,
    /// Tier index of the visit.
    pub tier: usize,
    /// Serving server.
    pub server: ServerId,
    /// When the request arrived at the tier (thread requested).
    pub arrived_at: SimTime,
    /// When a thread was granted.
    pub started_at: SimTime,
    /// When the thread was released.
    pub finished_at: SimTime,
    /// How the visit ended.
    pub status: SpanStatus,
}

impl Span {
    /// Time spent waiting for a thread.
    pub fn queue_time(&self) -> SimDuration {
        self.started_at.saturating_since(self.arrived_at)
    }

    /// Time holding the thread (service + downstream waits).
    pub fn service_time(&self) -> SimDuration {
        self.finished_at.saturating_since(self.started_at)
    }

    /// True when the visit ran to completion (not unwound by rejection,
    /// abandonment, or a fault).
    pub fn is_completed(&self) -> bool {
        self.status == SpanStatus::Completed
    }
}

/// What happened to a server (the VM-lifecycle / fault event stream the
/// trace exporter turns into instant events).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServerEventKind {
    /// A VM boot was requested; the server becomes routable `ready_at`.
    BootRequested {
        /// When the preparation period ends.
        ready_at: SimTime,
    },
    /// The preparation period ended and the server joined its tier.
    BootCompleted,
    /// The boot failed (injected boot failure); the VM never joined.
    BootFailed,
    /// The server stopped accepting requests and began draining.
    DrainStarted,
    /// The server crashed mid-flight, failing its in-flight requests.
    Crashed,
    /// The server's straggler multiplier changed (1.0 = full speed).
    SlowdownSet {
        /// CPU-work multiplier now in effect.
        factor: f64,
    },
}

impl ServerEventKind {
    /// Stable kebab-case label (used by the exporters).
    pub fn label(self) -> &'static str {
        match self {
            ServerEventKind::BootRequested { .. } => "boot-requested",
            ServerEventKind::BootCompleted => "boot-completed",
            ServerEventKind::BootFailed => "boot-failed",
            ServerEventKind::DrainStarted => "drain-started",
            ServerEventKind::Crashed => "crashed",
            ServerEventKind::SlowdownSet { .. } => "slowdown-set",
        }
    }
}

/// One timestamped server lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerEvent {
    /// When it happened.
    pub at: SimTime,
    /// The server.
    pub server: ServerId,
    /// The server's tier.
    pub tier: usize,
    /// What happened.
    pub kind: ServerEventKind,
}

/// All spans of one request, in start order (the trace waterfall).
pub fn waterfall(spans: &[Span], request: RequestId) -> Vec<Span> {
    let mut out: Vec<Span> = spans
        .iter()
        .copied()
        .filter(|s| s.request == request)
        .collect();
    out.sort_by_key(|s| (s.arrived_at, s.tier));
    out
}

/// Per-tier aggregate of queue and service time.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TierTiming {
    /// Visits observed.
    pub visits: u64,
    /// Mean seconds waiting for a thread.
    pub mean_queue: f64,
    /// Mean seconds holding a thread.
    pub mean_service: f64,
}

/// Aggregates spans into per-tier timing (completed visits only).
pub fn tier_breakdown(spans: &[Span]) -> std::collections::BTreeMap<usize, TierTiming> {
    let mut acc: std::collections::BTreeMap<usize, (u64, f64, f64)> = Default::default();
    for s in spans.iter().filter(|s| s.is_completed()) {
        let entry = acc.entry(s.tier).or_default();
        entry.0 += 1;
        entry.1 += s.queue_time().as_secs_f64();
        entry.2 += s.service_time().as_secs_f64();
    }
    acc.into_iter()
        .map(|(tier, (n, q, sv))| {
            (
                tier,
                TierTiming {
                    visits: n,
                    mean_queue: q / n as f64,
                    mean_service: sv / n as f64,
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(req: u64, tier: usize, arrive: f64, start: f64, finish: f64) -> Span {
        Span {
            request: RequestId::new(req),
            tier,
            server: ServerId::new(tier as u64),
            arrived_at: SimTime::from_secs_f64(arrive),
            started_at: SimTime::from_secs_f64(start),
            finished_at: SimTime::from_secs_f64(finish),
            status: SpanStatus::Completed,
        }
    }

    #[test]
    fn span_timing_accessors() {
        let s = span(1, 0, 1.0, 1.5, 3.0);
        assert_eq!(s.queue_time(), SimDuration::from_millis(500));
        assert_eq!(s.service_time(), SimDuration::from_millis(1500));
    }

    #[test]
    fn status_maps_from_outcome() {
        assert_eq!(
            SpanStatus::from_outcome(&Outcome::Completed),
            SpanStatus::Completed
        );
        assert_eq!(
            SpanStatus::from_outcome(&Outcome::Rejected { at_tier: 1 }),
            SpanStatus::Rejected
        );
        assert_eq!(
            SpanStatus::from_outcome(&Outcome::TimedOut),
            SpanStatus::Abandoned
        );
        assert_eq!(
            SpanStatus::from_outcome(&Outcome::Failed { at_tier: 2 }),
            SpanStatus::Crashed
        );
        assert_eq!(SpanStatus::Abandoned.label(), "abandoned");
    }

    #[test]
    fn waterfall_filters_and_orders() {
        let spans = vec![
            span(2, 0, 0.0, 0.0, 1.0),
            span(1, 1, 0.5, 0.6, 0.9),
            span(1, 0, 0.0, 0.1, 1.0),
        ];
        let w = waterfall(&spans, RequestId::new(1));
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].tier, 0);
        assert_eq!(w[1].tier, 1);
    }

    #[test]
    fn breakdown_averages_per_tier() {
        let spans = vec![
            span(1, 0, 0.0, 0.2, 1.0),
            span(2, 0, 0.0, 0.0, 0.4),
            span(1, 1, 0.0, 0.0, 0.3),
        ];
        let b = tier_breakdown(&spans);
        assert_eq!(b[&0].visits, 2);
        assert!((b[&0].mean_queue - 0.1).abs() < 1e-12);
        assert!((b[&0].mean_service - 0.6).abs() < 1e-12);
        assert_eq!(b[&1].visits, 1);
    }

    #[test]
    fn incomplete_spans_excluded_from_breakdown() {
        let mut s = span(1, 0, 0.0, 0.1, 0.5);
        s.status = SpanStatus::Crashed;
        assert!(tier_breakdown(&[s]).is_empty());
    }
}
