//! A component server: one Apache/Tomcat/MySQL instance inside one VM.
//!
//! A server couples a [`CpuScheduler`] (progress under the concurrency law)
//! with its soft resources — the thread [`Pool`] admitting requests and an
//! optional downstream connection [`Pool`] — plus lifecycle state (VM boot,
//! draining) and windowed measurement for the monitoring agents.

use dcm_sim::engine::EventId;
use dcm_sim::time::SimTime;

use crate::cpu::CpuScheduler;
use crate::ids::{FlightId, ServerId};
use crate::law::ServiceLaw;
use crate::metrics::{ServerSample, TimeWeighted};
use crate::pool::Pool;

/// A purchasable VM flavor: how fast it runs CPU bursts and what it costs.
///
/// `capacity` is a speed multiplier relative to the baseline instance the
/// concurrency laws were calibrated on: a capacity-2 VM finishes the same
/// nominal work in half the time (per-burst work is divided by capacity on
/// entry to the CPU, so the concurrency law itself — a property of the
/// software stack — is unchanged). `price_per_hour` feeds the resource-cost
/// comparison: heterogeneous controllers trade capacity against dollars,
/// not just VM counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmType {
    /// Display name, e.g. `m1.small`.
    pub name: &'static str,
    /// CPU-speed multiplier (baseline = 1.0).
    pub capacity: f64,
    /// Price in dollars per VM-hour.
    pub price_per_hour: f64,
}

impl VmType {
    /// The baseline flavor every pre-existing scenario runs on.
    pub const SMALL: VmType = VmType {
        name: "m1.small",
        capacity: 1.0,
        price_per_hour: 0.10,
    };

    /// Twice the CPU speed at slightly worse price per unit capacity.
    pub const LARGE: VmType = VmType {
        name: "m1.large",
        capacity: 2.0,
        price_per_hour: 0.24,
    };

    /// Four times the CPU speed, worse still per unit capacity.
    pub const XLARGE: VmType = VmType {
        name: "m1.xlarge",
        capacity: 4.0,
        price_per_hour: 0.56,
    };

    /// Dollars per hour per unit of capacity — the figure of merit a
    /// cost-aware selection policy minimizes.
    pub fn price_per_capacity(&self) -> f64 {
        self.price_per_hour / self.capacity
    }
}

impl Default for VmType {
    fn default() -> Self {
        VmType::SMALL
    }
}

/// Static configuration for launching a server.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerSpec {
    /// Display name, e.g. `tomcat-2`.
    pub name: String,
    /// Ground-truth concurrency law.
    pub law: ServiceLaw,
    /// Thread-pool capacity.
    pub threads: u32,
    /// Downstream connection-pool capacity (application servers have one
    /// toward the database; leaf tiers have `None`).
    pub conns: Option<u32>,
    /// The VM flavor this server runs on.
    pub vm: VmType,
}

/// Lifecycle of a server/VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerState {
    /// VM booting; becomes routable at the contained time.
    Starting {
        /// When the preparation period ends.
        ready_at: SimTime,
    },
    /// Routable and serving.
    Running,
    /// No new requests routed; finishes in-flight work then stops.
    Draining,
    /// Decommissioned.
    Stopped,
}

/// One simulated component server.
#[derive(Debug, Clone)]
pub struct Server {
    id: ServerId,
    tier: usize,
    name: String,
    state: ServerState,
    cpu: CpuScheduler<FlightId>,
    thread_pool: Pool<FlightId>,
    conn_pool: Option<Pool<FlightId>>,
    /// The engine event for this server's next CPU completion; the flow
    /// layer cancels/reschedules it whenever the CPU state changes.
    pub(crate) completion_event: Option<EventId>,
    threads_tw: TimeWeighted,
    conns_tw: TimeWeighted,
    completed_total: u64,
    dwell_sum_total: f64,
    // Window marks for sampling.
    window_start: SimTime,
    busy_mark: f64,
    work_mark: f64,
    completed_mark: u64,
    dwell_mark: f64,
    threads_integral_mark: f64,
    conns_integral_mark: f64,
    launched_at: SimTime,
    stopped_at: Option<SimTime>,
    /// Service-time multiplier for new CPU bursts (1.0 = healthy;
    /// > 1.0 while the server straggles under an injected slowdown).
    slowdown: f64,
    /// The VM flavor this server runs on (capacity divides burst work;
    /// price accrues with VM-seconds).
    vm: VmType,
}

impl Server {
    /// Creates a server in the given initial state.
    pub fn new(
        id: ServerId,
        tier: usize,
        spec: &ServerSpec,
        now: SimTime,
        state: ServerState,
    ) -> Self {
        Server {
            id,
            tier,
            name: spec.name.clone(),
            state,
            cpu: CpuScheduler::new(spec.law),
            thread_pool: Pool::new(spec.threads),
            conn_pool: spec.conns.map(Pool::new),
            completion_event: None,
            threads_tw: TimeWeighted::new(now, 0.0),
            conns_tw: TimeWeighted::new(now, 0.0),
            completed_total: 0,
            dwell_sum_total: 0.0,
            window_start: now,
            busy_mark: 0.0,
            work_mark: 0.0,
            completed_mark: 0,
            dwell_mark: 0.0,
            threads_integral_mark: 0.0,
            conns_integral_mark: 0.0,
            launched_at: now,
            stopped_at: None,
            slowdown: 1.0,
            vm: spec.vm,
        }
    }

    /// The server's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// The tier index this server belongs to.
    pub fn tier(&self) -> usize {
        self.tier
    }

    /// Display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Lifecycle state.
    pub fn state(&self) -> ServerState {
        self.state
    }

    /// True if the balancer may route new requests here.
    pub fn is_routable(&self) -> bool {
        self.state == ServerState::Running
    }

    /// True once fully stopped.
    pub fn is_stopped(&self) -> bool {
        self.state == ServerState::Stopped
    }

    /// The CPU scheduler (read access for flow and tests).
    pub fn cpu(&self) -> &CpuScheduler<FlightId> {
        &self.cpu
    }

    /// Mutable CPU access for the flow layer.
    pub(crate) fn cpu_mut(&mut self) -> &mut CpuScheduler<FlightId> {
        &mut self.cpu
    }

    /// The thread pool.
    pub fn thread_pool(&self) -> &Pool<FlightId> {
        &self.thread_pool
    }

    /// The downstream connection pool, if any.
    pub fn conn_pool(&self) -> Option<&Pool<FlightId>> {
        self.conn_pool.as_ref()
    }

    /// Threads currently in use.
    pub fn threads_in_use(&self) -> u32 {
        self.thread_pool.in_use()
    }

    /// The time integral `∫ threads_in_use dt` since launch, projected
    /// through `now` (read-only; does not disturb sampling windows). This
    /// is the pool-accounting side of the Little's-law audit — the span log
    /// reconstructs the same integral independently.
    pub fn threads_time_integral(&self, now: SimTime) -> f64 {
        self.threads_tw.projected_integral(now)
    }

    /// Marks the server running (boot finished).
    pub fn mark_running(&mut self) {
        self.state = ServerState::Running;
    }

    /// Marks the server draining; it stops accepting new requests and will
    /// stop once idle.
    pub fn mark_draining(&mut self) {
        self.state = ServerState::Draining;
    }

    /// Marks the server stopped at `now`.
    pub fn mark_stopped(&mut self, now: SimTime) {
        self.state = ServerState::Stopped;
        self.stopped_at = Some(now);
    }

    /// True when draining and idle (safe to stop).
    pub fn drained(&self) -> bool {
        self.state == ServerState::Draining
            && self.thread_pool.in_use() == 0
            && self.thread_pool.queued() == 0
            && self.cpu.active_bursts() == 0
    }

    /// VM-seconds consumed from launch to `now` (or to stop time).
    pub fn vm_seconds(&self, now: SimTime) -> f64 {
        let end = self.stopped_at.unwrap_or(now);
        end.saturating_since(self.launched_at).as_secs_f64()
    }

    /// The VM flavor this server runs on.
    pub fn vm_type(&self) -> VmType {
        self.vm
    }

    /// Dollar cost accrued from launch to `now` (or to stop time).
    pub fn vm_cost(&self, now: SimTime) -> f64 {
        self.vm_seconds(now) / 3600.0 * self.vm.price_per_hour
    }

    fn sync_threads(&mut self, now: SimTime) {
        let n = self.thread_pool.in_use();
        // CPU contention tracks *running* bursts, not pooled threads: a
        // thread parked on a downstream call occupies a pool slot but does
        // not contend for the CPU (the CpuScheduler floors its contention
        // at the live burst count). Settle the clock so the measurement
        // windows stay accurate.
        self.cpu.advance(now);
        self.threads_tw.set(now, f64::from(n));
    }

    fn sync_conns(&mut self, now: SimTime) {
        let n = self.conn_pool.as_ref().map_or(0, Pool::in_use);
        self.conns_tw.set(now, f64::from(n));
    }

    /// Tries to take a thread for `req`; queues it on failure.
    pub fn acquire_thread(&mut self, now: SimTime, req: FlightId) -> bool {
        let granted = self.thread_pool.try_acquire(req);
        if granted {
            self.sync_threads(now);
        }
        granted
    }

    /// Releases a thread held for `dwell_secs`, handing it to the next
    /// waiter if any; the waiter (already accounted as in-use) is returned
    /// for resumption.
    ///
    /// # Panics
    ///
    /// Panics if no thread is in use (accounting bug).
    pub fn release_thread(&mut self, now: SimTime, dwell_secs: f64) -> Option<FlightId> {
        let next = self.thread_pool.release();
        self.sync_threads(now);
        self.completed_total += 1;
        self.dwell_sum_total += dwell_secs;
        next
    }

    /// Tries to take a downstream connection; queues on failure. Servers
    /// without a connection pool always grant.
    pub fn acquire_conn(&mut self, now: SimTime, req: FlightId) -> bool {
        match self.conn_pool.as_mut() {
            Some(pool) => {
                let granted = pool.try_acquire(req);
                if granted {
                    self.sync_conns(now);
                }
                granted
            }
            None => true,
        }
    }

    /// Releases a downstream connection; returns the next waiter if the
    /// permit transferred.
    ///
    /// # Panics
    ///
    /// Panics if the server has a pool and no connection is in use.
    pub fn release_conn(&mut self, now: SimTime) -> Option<FlightId> {
        match self.conn_pool.as_mut() {
            Some(pool) => {
                let next = pool.release();
                self.sync_conns(now);
                next
            }
            None => None,
        }
    }

    /// Resizes the thread pool; newly admitted waiters are returned for
    /// resumption (they already hold their permits).
    pub fn resize_thread_pool(&mut self, now: SimTime, capacity: u32) -> Vec<FlightId> {
        let admitted = self.thread_pool.resize(capacity);
        self.sync_threads(now);
        admitted
    }

    /// Resizes the connection pool (no-op returning empty when the server
    /// has none).
    pub fn resize_conn_pool(&mut self, now: SimTime, capacity: u32) -> Vec<FlightId> {
        match self.conn_pool.as_mut() {
            Some(pool) => {
                let admitted = pool.resize(capacity);
                self.sync_conns(now);
                admitted
            }
            None => Vec::new(),
        }
    }

    /// Starts a CPU burst for `req`. While the server straggles, new
    /// bursts cost `slowdown ×` their nominal work; the VM flavor's
    /// capacity divides it (a faster box finishes the same nominal work
    /// sooner). At the baseline capacity of 1.0 the division is an exact
    /// bitwise no-op.
    pub fn start_burst(&mut self, now: SimTime, req: FlightId, work: f64) {
        self.cpu.add_burst(now, req, work * self.slowdown / self.vm.capacity);
    }

    /// The current straggler multiplier (1.0 = healthy).
    pub fn slowdown(&self) -> f64 {
        self.slowdown
    }

    /// Sets the straggler multiplier applied to future bursts. Bursts
    /// already on the CPU keep their original work.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn set_slowdown(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "slowdown must be finite and positive"
        );
        self.slowdown = factor;
    }

    /// Removes `req` from the thread-pool wait queue.
    pub fn cancel_thread_waiter(&mut self, req: FlightId) -> bool {
        self.thread_pool.cancel_waiter(req)
    }

    /// Removes `req` from the connection-pool wait queue.
    pub fn cancel_conn_waiter(&mut self, req: FlightId) -> bool {
        self.conn_pool
            .as_mut()
            .is_some_and(|pool| pool.cancel_waiter(req))
    }

    /// Total completions since launch.
    pub fn completed_total(&self) -> u64 {
        self.completed_total
    }

    /// The simulated CPU-utilization counter. Below the concurrency knee
    /// it reports delivered work over the peak deliverable work rate
    /// (`N*/f(N*)` work-seconds per second) — the analog of "cycles doing
    /// useful work / capacity". Past the knee the server burns its cycles
    /// on contention and coherency traffic while delivering *less*, which
    /// a hardware counter reports as a pegged CPU: whenever the mean
    /// concurrency substantially exceeds the knee, the raw busy fraction
    /// (≈ 1 under thrash) takes over.
    fn cpu_sensor(&self, busy_fraction: f64, mean_threads: f64, dt: f64) -> f64 {
        let law = self.cpu.law();
        let n_star = law.optimal_concurrency();
        // Peak deliverable work rate: n bursts each progressing at 1/f(n)
        // work-seconds per second, maximized at the knee.
        let peak_work_rate = if n_star == u32::MAX {
            f64::INFINITY
        } else {
            f64::from(n_star) / law.inflation(n_star)
        };
        let delivered = (self.cpu.completed_work() - self.work_mark) / dt;
        let base = if peak_work_rate.is_finite() && peak_work_rate > 0.0 {
            delivered / peak_work_rate
        } else {
            0.0
        };
        let thrashing = n_star != u32::MAX && mean_threads > 1.5 * f64::from(n_star);
        let util = if thrashing {
            base.max(busy_fraction)
        } else {
            base
        };
        util.clamp(0.0, 1.0)
    }

    /// Takes a monitoring sample covering `[window_start, now)` and opens a
    /// new window.
    pub fn sample(&mut self, now: SimTime) -> ServerSample {
        self.cpu.advance(now);
        self.threads_tw.settle(now);
        self.conns_tw.settle(now);
        let dt = now.saturating_since(self.window_start).as_secs_f64();
        let safe_dt = if dt > 0.0 { dt } else { 1.0 };
        let completed = self.completed_total - self.completed_mark;
        let dwell = self.dwell_sum_total - self.dwell_mark;
        let busy_fraction = ((self.cpu.busy_seconds() - self.busy_mark) / safe_dt).clamp(0.0, 1.0);
        let mean_threads = (self.threads_tw.integral() - self.threads_integral_mark) / safe_dt;
        let cpu_util = self.cpu_sensor(busy_fraction, mean_threads, safe_dt);
        let sample = ServerSample {
            server: self.name.clone(),
            tier: self.tier,
            window_start: self.window_start,
            window_end: now,
            cpu_util,
            busy_fraction,
            active_threads: mean_threads,
            active_conns: self
                .conn_pool
                .as_ref()
                .map(|_| (self.conns_tw.integral() - self.conns_integral_mark) / safe_dt),
            completed,
            throughput: completed as f64 / safe_dt,
            mean_dwell: (completed > 0).then(|| dwell / completed as f64),
            thread_pool_size: self.thread_pool.capacity(),
            conn_pool_size: self.conn_pool.as_ref().map(Pool::capacity),
            thread_queue: self.thread_pool.queued(),
            conn_queue: self.conn_pool.as_ref().map_or(0, Pool::queued),
        };
        self.window_start = now;
        self.busy_mark = self.cpu.busy_seconds();
        self.work_mark = self.cpu.completed_work();
        self.completed_mark = self.completed_total;
        self.dwell_mark = self.dwell_sum_total;
        self.threads_integral_mark = self.threads_tw.integral();
        self.conns_integral_mark = self.conns_tw.integral();
        sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::law::reference;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn r(n: u64) -> FlightId {
        FlightId::pack(n as u32, 0)
    }

    fn spec() -> ServerSpec {
        ServerSpec {
            name: "tomcat-1".into(),
            law: reference::tomcat(),
            threads: 2,
            conns: Some(1),
            vm: VmType::SMALL,
        }
    }

    fn server() -> Server {
        Server::new(ServerId::new(0), 1, &spec(), t(0.0), ServerState::Running)
    }

    #[test]
    fn lifecycle_transitions() {
        let mut s = Server::new(
            ServerId::new(0),
            1,
            &spec(),
            t(0.0),
            ServerState::Starting { ready_at: t(15.0) },
        );
        assert!(!s.is_routable());
        s.mark_running();
        assert!(s.is_routable());
        s.mark_draining();
        assert!(!s.is_routable());
        assert!(s.drained());
        s.mark_stopped(t(20.0));
        assert!(s.is_stopped());
        assert_eq!(s.vm_seconds(t(100.0)), 20.0);
    }

    #[test]
    fn draining_waits_for_in_flight_work() {
        let mut s = server();
        assert!(s.acquire_thread(t(0.0), r(1)));
        s.mark_draining();
        assert!(!s.drained());
        s.release_thread(t(1.0), 1.0);
        assert!(s.drained());
    }

    #[test]
    fn thread_accounting_tracks_pool_not_cpu() {
        let mut s = server();
        assert!(s.acquire_thread(t(0.0), r(1)));
        assert!(s.acquire_thread(t(0.0), r(2)));
        // Pooled-but-idle threads do not contend for the CPU.
        assert_eq!(s.cpu().contention(), 0);
        assert_eq!(s.cpu().active_bursts(), 0);
        assert!(!s.acquire_thread(t(0.0), r(3)), "third queues");
        let next = s.release_thread(t(1.0), 1.0);
        assert_eq!(next, Some(r(3)));
        assert_eq!(s.threads_in_use(), 2, "handoff keeps two in use");
    }

    #[test]
    fn conn_pool_optional_semantics() {
        let mut s = server();
        assert!(s.acquire_conn(t(0.0), r(1)));
        assert!(!s.acquire_conn(t(0.0), r(2)), "capacity 1");
        assert_eq!(s.release_conn(t(1.0)), Some(r(2)));

        // A leaf server without a pool always grants.
        let leaf_spec = ServerSpec {
            conns: None,
            ..spec()
        };
        let mut leaf = Server::new(
            ServerId::new(1),
            2,
            &leaf_spec,
            t(0.0),
            ServerState::Running,
        );
        assert!(leaf.acquire_conn(t(0.0), r(9)));
        assert_eq!(leaf.release_conn(t(0.0)), None);
    }

    #[test]
    fn sample_reports_window_metrics() {
        let mut s = server();
        assert!(s.acquire_thread(t(0.0), r(1)));
        s.start_burst(t(0.0), r(1), 0.5);
        // Let the burst run its course: with contention 1, 0.5 work at
        // speed 1 completes at t=0.5.
        s.cpu_mut().pop_completed(t(0.5));
        s.release_thread(t(0.5), 0.5);
        let sample = s.sample(t(1.0));
        assert!((sample.busy_fraction - 0.5).abs() < 1e-9);
        // Sensor: 0.5 work-seconds delivered over a 1 s window, against the
        // Tomcat law's peak rate N*/f(N*).
        let law = crate::law::reference::tomcat();
        let n_star = law.optimal_concurrency();
        let peak = f64::from(n_star) / law.inflation(n_star);
        assert!(
            (sample.cpu_util - 0.5 / peak).abs() < 1e-9,
            "{}",
            sample.cpu_util
        );
        assert_eq!(sample.completed, 1);
        assert_eq!(sample.throughput, 1.0);
        assert_eq!(sample.mean_dwell, Some(0.5));
        assert!((sample.active_threads - 0.5).abs() < 1e-9);
        assert_eq!(sample.thread_pool_size, 2);
        assert_eq!(sample.conn_pool_size, Some(1));

        // Second window is fresh.
        let sample2 = s.sample(t(2.0));
        assert_eq!(sample2.completed, 0);
        assert_eq!(sample2.cpu_util, 0.0);
        assert_eq!(sample2.mean_dwell, None);
    }

    #[test]
    fn resize_admits_and_reports() {
        let mut s = server();
        assert!(s.acquire_thread(t(0.0), r(1)));
        assert!(s.acquire_thread(t(0.0), r(2)));
        assert!(!s.acquire_thread(t(0.0), r(3)));
        let admitted = s.resize_thread_pool(t(1.0), 4);
        assert_eq!(admitted, vec![r(3)]);
        assert_eq!(s.threads_in_use(), 3);
        // Shrink below in-use: nothing admitted, pool over-committed.
        let none = s.resize_thread_pool(t(2.0), 1);
        assert!(none.is_empty());
        assert!(s.thread_pool().is_overcommitted());
    }

    #[test]
    fn vm_seconds_accrue_until_stop() {
        let s = server();
        assert_eq!(s.vm_seconds(t(30.0)), 30.0);
    }

    #[test]
    fn capacity_divides_burst_work_and_price_accrues() {
        let big_spec = ServerSpec {
            vm: VmType::LARGE,
            ..spec()
        };
        let mut s = Server::new(ServerId::new(2), 1, &big_spec, t(0.0), ServerState::Running);
        assert!(s.acquire_thread(t(0.0), r(1)));
        s.start_burst(t(0.0), r(1), 0.5);
        // Capacity 2 ⇒ 0.5 nominal work runs as 0.25 scaled work.
        assert_eq!(s.cpu_mut().pop_completed(t(0.25)), Some(r(1)));
        // One hour on an m1.large costs its hourly price.
        assert!((s.vm_cost(t(3600.0)) - VmType::LARGE.price_per_hour).abs() < 1e-12);
    }

    #[test]
    fn baseline_capacity_is_a_bitwise_noop() {
        let small = VmType::SMALL;
        let work = 0.123_456_789_f64;
        assert_eq!((work * 1.0 / small.capacity).to_bits(), work.to_bits());
        assert!(small.price_per_capacity() < VmType::LARGE.price_per_capacity());
        assert!(VmType::LARGE.price_per_capacity() < VmType::XLARGE.price_per_capacity());
    }
}
