//! Per-server measurement: the raw signals the paper's Fine-Grained
//! Resource Monitor collects every second.

use dcm_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// Incremental time-weighted accumulator for a piecewise-constant value
/// (active threads, connections in use).
///
/// Unlike [`dcm_sim::stats::StepGauge`] it keeps no history — O(1) memory —
/// which matters for servers updated millions of times per run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeWeighted {
    value: f64,
    integral: f64,
    last_update: SimTime,
}

impl TimeWeighted {
    /// Starts tracking at `start` with value `initial`.
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            value: initial,
            integral: 0.0,
            last_update: start,
        }
    }

    /// Sets a new value at `now`, settling the integral first.
    pub fn set(&mut self, now: SimTime, value: f64) {
        self.settle(now);
        self.value = value;
    }

    /// The current value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Accumulated `∫ value dt` so far, up to the last settle.
    pub fn integral(&self) -> f64 {
        self.integral
    }

    /// The integral `∫ value dt` projected through `now` without mutating
    /// the accumulator (read-only view for auditors).
    pub fn projected_integral(&self, now: SimTime) -> f64 {
        self.integral + self.value * now.saturating_since(self.last_update).as_secs_f64()
    }

    /// Settles the integral through `now`.
    pub fn settle(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_update).as_secs_f64();
        if dt > 0.0 {
            self.integral += self.value * dt;
            self.last_update = now;
        }
    }
}

/// One monitoring sample from one server over a window (the agent's 1-second
/// report in the paper's architecture).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSample {
    /// Server name, e.g. `tomcat-1`.
    pub server: String,
    /// Tier index.
    pub tier: usize,
    /// Window start.
    pub window_start: SimTime,
    /// Window end.
    pub window_end: SimTime,
    /// The simulated CPU-utilization counter (what CloudWatch would
    /// report): delivered work over peak deliverable work, overridden by
    /// the busy fraction when the server is thrashing past its concurrency
    /// knee. In `[0, 1]`.
    pub cpu_util: f64,
    /// Raw fraction of the window with at least one burst on the CPU.
    pub busy_fraction: f64,
    /// Time-weighted mean of threads in use (the "active threads number
    /// (concurrency)" metric).
    pub active_threads: f64,
    /// Time-weighted mean of downstream connections in use, if the server
    /// has a connection pool.
    pub active_conns: Option<f64>,
    /// Requests completed in the window.
    pub completed: u64,
    /// Completions per second over the window.
    pub throughput: f64,
    /// Mean dwell time (thread-held seconds per completion) in the window,
    /// if any completions occurred.
    pub mean_dwell: Option<f64>,
    /// Current thread-pool capacity.
    pub thread_pool_size: u32,
    /// Current connection-pool capacity, if present.
    pub conn_pool_size: Option<u32>,
    /// Requests queued for a thread at window end.
    pub thread_queue: usize,
    /// Requests queued for a connection at window end.
    pub conn_queue: usize,
}

impl ServerSample {
    /// Window length in seconds.
    pub fn window_secs(&self) -> f64 {
        self.window_end
            .saturating_since(self.window_start)
            .as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn time_weighted_integrates_steps() {
        let mut tw = TimeWeighted::new(t(0.0), 2.0);
        tw.set(t(1.0), 4.0); // 2.0 for 1s
        tw.set(t(3.0), 0.0); // 4.0 for 2s
        tw.settle(t(5.0)); // 0.0 for 2s
        assert!((tw.integral() - 10.0).abs() < 1e-12);
        assert_eq!(tw.value(), 0.0);
    }

    #[test]
    fn settle_is_idempotent_at_same_instant() {
        let mut tw = TimeWeighted::new(t(0.0), 1.0);
        tw.settle(t(2.0));
        tw.settle(t(2.0));
        assert!((tw.integral() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_order_settle_is_ignored() {
        let mut tw = TimeWeighted::new(t(5.0), 1.0);
        tw.settle(t(3.0)); // earlier than start: no-op
        assert_eq!(tw.integral(), 0.0);
    }

    #[test]
    fn sample_window_secs() {
        let s = ServerSample {
            server: "tomcat-1".into(),
            tier: 1,
            window_start: t(10.0),
            window_end: t(11.0),
            cpu_util: 0.5,
            busy_fraction: 0.5,
            active_threads: 3.2,
            active_conns: None,
            completed: 42,
            throughput: 42.0,
            mean_dwell: Some(0.02),
            thread_pool_size: 20,
            conn_pool_size: None,
            thread_queue: 0,
            conn_queue: 0,
        };
        assert!((s.window_secs() - 1.0).abs() < 1e-12);
    }
}
