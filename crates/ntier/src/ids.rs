//! Typed identifiers for simulation entities.
//!
//! Newtypes keep server/tier/request/VM handles from being mixed up at
//! compile time; all are small `Copy` values used as slab/map keys.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw index.
            pub const fn new(raw: u64) -> Self {
                $name(raw)
            }

            /// The raw index value.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for u64 {
            fn from(id: $name) -> u64 {
                id.0
            }
        }
    };
}

id_type!(
    /// Identifies a component server (one Apache/Tomcat/MySQL instance).
    ServerId,
    "srv-"
);
id_type!(
    /// Identifies a virtual machine hosting a server.
    VmId,
    "vm-"
);
id_type!(
    /// Identifies an in-flight client request.
    RequestId,
    "req-"
);

/// Identifies a tier by position in the chain (0 = frontmost).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TierId(pub usize);

impl TierId {
    /// The tier's position in the chain.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TierId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tier-{}", self.0)
    }
}

/// Monotonic id allocator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IdAllocator {
    next: u64,
}

impl IdAllocator {
    /// Creates an allocator starting at zero.
    pub fn new() -> Self {
        IdAllocator { next: 0 }
    }

    /// Returns the next raw id.
    pub fn next_raw(&mut self) -> u64 {
        let id = self.next;
        self.next += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(ServerId::new(3).to_string(), "srv-3");
        assert_eq!(VmId::new(1).to_string(), "vm-1");
        assert_eq!(RequestId::new(9).to_string(), "req-9");
        assert_eq!(TierId(2).to_string(), "tier-2");
    }

    #[test]
    fn ids_roundtrip_raw() {
        let id = ServerId::new(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(u64::from(id), 42);
    }

    #[test]
    fn allocator_is_monotonic() {
        let mut alloc = IdAllocator::new();
        assert_eq!(alloc.next_raw(), 0);
        assert_eq!(alloc.next_raw(), 1);
        assert_eq!(alloc.next_raw(), 2);
    }

    #[test]
    fn distinct_id_types_do_not_compare() {
        // Compile-time property: ServerId and VmId are different types.
        fn takes_server(_: ServerId) {}
        takes_server(ServerId::new(1));
    }
}
