//! Typed identifiers for simulation entities.
//!
//! Newtypes keep server/tier/request/VM handles from being mixed up at
//! compile time; all are small `Copy` values used as slab/map keys.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw index.
            pub const fn new(raw: u64) -> Self {
                $name(raw)
            }

            /// The raw index value.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for u64 {
            fn from(id: $name) -> u64 {
                id.0
            }
        }
    };
}

id_type!(
    /// Identifies a component server (one Apache/Tomcat/MySQL instance).
    ServerId,
    "srv-"
);
id_type!(
    /// Identifies a virtual machine hosting a server.
    VmId,
    "vm-"
);
id_type!(
    /// Identifies an in-flight client request.
    RequestId,
    "req-"
);

/// Generation-checked handle into the in-flight request slab
/// ([`crate::system::System`]'s request table).
///
/// Packs a slab slot index (low 32 bits) and a generation stamp (high 32
/// bits), mirroring `dcm_sim::engine::EventId`: a slot is reused after its
/// request leaves the system with the generation bumped, so stale handles
/// held by cancelled timers dereference to `None` instead of aliasing a new
/// request. Distinct from [`RequestId`], the public monotonic identity a
/// request keeps for its whole life (spans, completions, trace export).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlightId(u64);

impl FlightId {
    /// Builds a handle from a slab slot and generation stamp.
    pub const fn pack(slot: u32, gen: u32) -> Self {
        FlightId(((gen as u64) << 32) | slot as u64)
    }

    /// The slab slot index.
    pub const fn slot(self) -> u32 {
        self.0 as u32
    }

    /// The generation stamp the slot must still carry.
    pub const fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The raw packed value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for FlightId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flt-{}g{}", self.slot(), self.gen())
    }
}

/// Identifies a tier by position in the chain (0 = frontmost).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TierId(pub usize);

impl TierId {
    /// The tier's position in the chain.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TierId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tier-{}", self.0)
    }
}

/// Monotonic id allocator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IdAllocator {
    next: u64,
}

impl IdAllocator {
    /// Creates an allocator starting at zero.
    pub fn new() -> Self {
        IdAllocator { next: 0 }
    }

    /// Returns the next raw id.
    pub fn next_raw(&mut self) -> u64 {
        let id = self.next;
        self.next += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(ServerId::new(3).to_string(), "srv-3");
        assert_eq!(VmId::new(1).to_string(), "vm-1");
        assert_eq!(RequestId::new(9).to_string(), "req-9");
        assert_eq!(TierId(2).to_string(), "tier-2");
    }

    #[test]
    fn ids_roundtrip_raw() {
        let id = ServerId::new(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(u64::from(id), 42);
    }

    #[test]
    fn flight_id_packs_slot_and_generation() {
        let id = FlightId::pack(7, 3);
        assert_eq!(id.slot(), 7);
        assert_eq!(id.gen(), 3);
        assert_eq!(id.to_string(), "flt-7g3");
        assert_ne!(FlightId::pack(7, 3), FlightId::pack(7, 4));
        let max = FlightId::pack(u32::MAX, u32::MAX);
        assert_eq!(max.slot(), u32::MAX);
        assert_eq!(max.gen(), u32::MAX);
    }

    #[test]
    fn allocator_is_monotonic() {
        let mut alloc = IdAllocator::new();
        assert_eq!(alloc.next_raw(), 0);
        assert_eq!(alloc.next_raw(), 1);
        assert_eq!(alloc.next_raw(), 2);
    }

    #[test]
    fn distinct_id_types_do_not_compare() {
        // Compile-time property: ServerId and VmId are different types.
        fn takes_server(_: ServerId) {}
        takes_server(ServerId::new(1));
    }
}
