//! Load balancing across the servers of a scalable tier (the HAProxy role
//! in the paper's deployment).

use rand::Rng;
use serde::{Deserialize, Serialize};

use dcm_sim::rng::SimRng;

use crate::ids::ServerId;

/// Balancing policy for one tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BalancerPolicy {
    /// Cycle through servers in order (HAProxy `roundrobin`, the paper's
    /// configuration).
    RoundRobin,
    /// Send to the server with the fewest in-use threads (HAProxy
    /// `leastconn`).
    LeastConnections,
    /// Uniform random choice.
    Random,
}

/// Stateful balancer for one tier.
///
/// # Examples
///
/// ```
/// use dcm_ntier::balancer::{Balancer, BalancerPolicy};
/// use dcm_ntier::ids::ServerId;
/// use dcm_sim::rng::SimRng;
///
/// let mut lb = Balancer::new(BalancerPolicy::RoundRobin);
/// let mut rng = SimRng::seed_from(1);
/// let candidates = [(ServerId::new(0), 5), (ServerId::new(1), 0)];
/// let a = lb.choose(&candidates, &mut rng).unwrap();
/// let b = lb.choose(&candidates, &mut rng).unwrap();
/// assert_ne!(a, b); // round-robin alternates
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Balancer {
    policy: BalancerPolicy,
    cursor: usize,
}

impl Balancer {
    /// Creates a balancer with the given policy.
    pub fn new(policy: BalancerPolicy) -> Self {
        Balancer { policy, cursor: 0 }
    }

    /// The active policy.
    pub fn policy(&self) -> BalancerPolicy {
        self.policy
    }

    /// Switches policy at runtime (cursor state is kept).
    pub fn set_policy(&mut self, policy: BalancerPolicy) {
        self.policy = policy;
    }

    /// Picks a server among `candidates`, given as `(id, current load)`
    /// pairs of **routable** (running) servers. Returns `None` when the
    /// slice is empty.
    pub fn choose(&mut self, candidates: &[(ServerId, u32)], rng: &mut SimRng) -> Option<ServerId> {
        if candidates.is_empty() {
            return None;
        }
        let idx = match self.policy {
            BalancerPolicy::RoundRobin => {
                let i = self.cursor % candidates.len();
                self.cursor = self.cursor.wrapping_add(1);
                i
            }
            BalancerPolicy::LeastConnections => {
                // Stable tie-break on lowest index keeps runs deterministic.
                candidates
                    .iter()
                    .enumerate()
                    .min_by_key(|&(i, &(_, load))| (load, i))
                    .map(|(i, _)| i)
                    .expect("non-empty checked above")
            }
            BalancerPolicy::Random => rng.gen_range(0..candidates.len()),
        };
        Some(candidates[idx].0)
    }

    /// Picks an index into a routable list of `len` candidates without
    /// materializing the `(id, load)` slice — the fleet-scale fast path for
    /// policies that never look at per-server load. Draws from `rng` (and
    /// advances the round-robin cursor) exactly as [`Balancer::choose`]
    /// would over a slice of the same length, so the two are
    /// pick-for-pick identical.
    ///
    /// # Panics
    ///
    /// Panics for [`BalancerPolicy::LeastConnections`], which needs the
    /// per-server loads of [`Balancer::choose`].
    pub fn choose_index(&mut self, len: usize, rng: &mut SimRng) -> Option<usize> {
        if len == 0 {
            return None;
        }
        Some(match self.policy {
            BalancerPolicy::RoundRobin => {
                let i = self.cursor % len;
                self.cursor = self.cursor.wrapping_add(1);
                i
            }
            BalancerPolicy::Random => rng.gen_range(0..len),
            BalancerPolicy::LeastConnections => {
                panic!("LeastConnections needs per-server loads; use Balancer::choose")
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u64) -> ServerId {
        ServerId::new(n)
    }

    fn rng() -> SimRng {
        SimRng::seed_from(7)
    }

    #[test]
    fn round_robin_cycles_evenly() {
        let mut lb = Balancer::new(BalancerPolicy::RoundRobin);
        let mut rng = rng();
        let c = [(s(0), 0), (s(1), 0), (s(2), 0)];
        let picks: Vec<ServerId> = (0..6).map(|_| lb.choose(&c, &mut rng).unwrap()).collect();
        assert_eq!(picks, vec![s(0), s(1), s(2), s(0), s(1), s(2)]);
    }

    #[test]
    fn round_robin_adapts_to_membership_changes() {
        let mut lb = Balancer::new(BalancerPolicy::RoundRobin);
        let mut rng = rng();
        let three = [(s(0), 0), (s(1), 0), (s(2), 0)];
        lb.choose(&three, &mut rng);
        lb.choose(&three, &mut rng);
        // Shrink to two servers; cursor keeps cycling without panic.
        let two = [(s(0), 0), (s(1), 0)];
        let picks: Vec<ServerId> = (0..4).map(|_| lb.choose(&two, &mut rng).unwrap()).collect();
        assert!(picks.iter().all(|p| *p == s(0) || *p == s(1)));
        assert!(picks.windows(2).all(|w| w[0] != w[1]), "still alternates");
    }

    #[test]
    fn least_connections_prefers_idle() {
        let mut lb = Balancer::new(BalancerPolicy::LeastConnections);
        let mut rng = rng();
        let c = [(s(0), 10), (s(1), 2), (s(2), 7)];
        assert_eq!(lb.choose(&c, &mut rng), Some(s(1)));
        // Ties break on first.
        let tied = [(s(5), 3), (s(6), 3)];
        assert_eq!(lb.choose(&tied, &mut rng), Some(s(5)));
    }

    #[test]
    fn random_covers_all_candidates() {
        let mut lb = Balancer::new(BalancerPolicy::Random);
        let mut rng = rng();
        let c = [(s(0), 0), (s(1), 0), (s(2), 0)];
        let mut seen = [false; 3];
        for _ in 0..100 {
            let pick = lb.choose(&c, &mut rng).unwrap();
            seen[pick.raw() as usize] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn empty_candidates_yield_none() {
        let mut lb = Balancer::new(BalancerPolicy::RoundRobin);
        assert_eq!(lb.choose(&[], &mut rng()), None);
        assert_eq!(lb.choose_index(0, &mut rng()), None);
    }

    #[test]
    fn choose_index_matches_choose_pick_for_pick() {
        for policy in [BalancerPolicy::RoundRobin, BalancerPolicy::Random] {
            let candidates: Vec<(ServerId, u32)> = (0..7).map(|i| (s(i), 0)).collect();
            let mut slow = Balancer::new(policy);
            let mut fast = Balancer::new(policy);
            let mut rng_slow = rng();
            let mut rng_fast = rng();
            for _ in 0..100 {
                let a = slow.choose(&candidates, &mut rng_slow).unwrap();
                let i = fast.choose_index(candidates.len(), &mut rng_fast).unwrap();
                assert_eq!(a, candidates[i].0, "{policy:?} diverged");
            }
        }
    }

    #[test]
    fn policy_can_change_at_runtime() {
        let mut lb = Balancer::new(BalancerPolicy::RoundRobin);
        assert_eq!(lb.policy(), BalancerPolicy::RoundRobin);
        lb.set_policy(BalancerPolicy::LeastConnections);
        assert_eq!(lb.policy(), BalancerPolicy::LeastConnections);
        let mut rng = rng();
        let c = [(s(0), 9), (s(1), 1)];
        assert_eq!(lb.choose(&c, &mut rng), Some(s(1)));
    }
}
