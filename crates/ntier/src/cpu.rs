//! Concurrency-dependent CPU scheduling.
//!
//! All bursts active on a server progress at the *same* speed
//! `1/f(N)` (work-seconds per second), where `f(N)` is the inflation factor
//! of the server's [`ServiceLaw`] at its current contention level `N`. That
//! uniformity admits an O(log n) implementation: keep a **work clock**
//! `W(t) = ∫ speed dt`; a burst with `w` work-seconds remaining completes
//! when the clock reaches `W_now + w`, so completions are just a min-heap on
//! target clock values. Changing contention only changes the clock's slope.
//!
//! With `N` saturated threads each carrying bursts of `S⁰` work, a burst
//! takes `S⁰·f(N) = S*(N)` wall seconds and completions occur at rate
//! `N/S*(N)` — exactly Eq. 6/7 of the paper.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dcm_sim::time::SimTime;

use crate::ids::RequestId;
use crate::law::ServiceLaw;

/// Totally ordered wrapper over non-NaN `f64` for heap keys.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("NaN rejected at insert")
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Burst<R> {
    target: OrdF64,
    seq: u64,
    req: R,
    work: OrdF64,
}

impl<R: Copy + Eq> PartialOrd for Burst<R> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<R: Copy + Eq> Ord for Burst<R> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.target, self.seq).cmp(&(other.target, other.seq))
    }
}

/// The CPU of one simulated server.
///
/// Generic over the burst owner token `R` (default [`RequestId`]); the flow
/// layer runs it over generation-checked `FlightId` slab handles.
///
/// # Examples
///
/// ```
/// use dcm_ntier::cpu::CpuScheduler;
/// use dcm_ntier::law::ServiceLaw;
/// use dcm_ntier::ids::RequestId;
/// use dcm_sim::time::SimTime;
///
/// let mut cpu = CpuScheduler::new(ServiceLaw::frictionless(0.01));
/// let t0 = SimTime::ZERO;
/// cpu.set_contention(t0, 1);
/// cpu.add_burst(t0, RequestId::new(1), 0.01);
/// let (at, req) = cpu.next_completion(t0).unwrap();
/// assert_eq!(req, RequestId::new(1));
/// assert!((at.as_secs_f64() - 0.01).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct CpuScheduler<R = RequestId> {
    law: ServiceLaw,
    work_clock: f64,
    last_update: SimTime,
    contention: u32,
    bursts: BinaryHeap<Reverse<Burst<R>>>,
    seq: u64,
    busy_seconds: f64,
    completed_work: f64,
    max_active_bursts: usize,
}

/// Slack (in work-seconds) tolerated when deciding a burst is done, to
/// absorb floating-point drift between the scheduled completion event and
/// the work clock.
const WORK_EPSILON: f64 = 1e-9;

impl<R: Copy + Eq + std::fmt::Debug> CpuScheduler<R> {
    /// Creates an idle CPU governed by `law`.
    pub fn new(law: ServiceLaw) -> Self {
        CpuScheduler {
            law,
            work_clock: 0.0,
            last_update: SimTime::ZERO,
            contention: 0,
            bursts: BinaryHeap::new(),
            seq: 0,
            busy_seconds: 0.0,
            completed_work: 0.0,
            max_active_bursts: 0,
        }
    }

    /// The governing law.
    pub fn law(&self) -> &ServiceLaw {
        &self.law
    }

    /// Number of bursts currently executing.
    pub fn active_bursts(&self) -> usize {
        self.bursts.len()
    }

    /// The contention level currently applied to the law.
    pub fn contention(&self) -> u32 {
        self.contention
    }

    /// Cumulative seconds during which at least one burst was active.
    pub fn busy_seconds(&self) -> f64 {
        self.busy_seconds
    }

    /// Cumulative work-seconds of completed bursts.
    pub fn completed_work(&self) -> f64 {
        self.completed_work
    }

    /// The largest number of bursts ever simultaneously active — the
    /// concurrency high-water mark bounding every speed the CPU has run at.
    pub fn max_active_bursts(&self) -> usize {
        self.max_active_bursts
    }

    /// [`CpuScheduler::busy_seconds`] projected through `now` without
    /// mutating the clock (read-only view for auditors).
    pub fn projected_busy_seconds(&self, now: SimTime) -> f64 {
        let dt = now.saturating_since(self.last_update).as_secs_f64();
        if self.bursts.is_empty() {
            self.busy_seconds
        } else {
            self.busy_seconds + dt
        }
    }

    /// Total work-seconds *executed* through `now`: work credited to
    /// completed bursts plus the progress already made on bursts still on
    /// the CPU. Read-only (the clock is projected, not advanced).
    pub fn projected_executed_work(&self, now: SimTime) -> f64 {
        let dt = now.saturating_since(self.last_update).as_secs_f64();
        let projected_clock = if self.bursts.is_empty() {
            self.work_clock
        } else {
            self.work_clock + dt * self.speed()
        };
        let in_progress: f64 = self
            .bursts
            .iter()
            .map(|&Reverse(b)| {
                let remaining = (b.target.0 - projected_clock).max(0.0);
                (b.work.0 - remaining).max(0.0)
            })
            .sum();
        self.completed_work + in_progress
    }

    fn speed(&self) -> f64 {
        // Contention never reads below the number of bursts actually on the
        // CPU — a server cannot be less contended than its running work.
        let n = self.contention.max(self.bursts.len() as u32);
        self.law.progress_speed(n)
    }

    /// Advances the work clock to `now`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `now` precedes the last update.
    pub fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_update, "cpu time ran backwards");
        let dt = now.saturating_since(self.last_update).as_secs_f64();
        if dt > 0.0 {
            if !self.bursts.is_empty() {
                self.work_clock += dt * self.speed();
                self.busy_seconds += dt;
            }
            self.last_update = now;
        }
    }

    /// Updates the contention level (threads in use on the server),
    /// advancing the clock first so past progress is settled at the old
    /// speed.
    pub fn set_contention(&mut self, now: SimTime, n: u32) {
        self.advance(now);
        self.contention = n;
    }

    /// Starts a burst of `work` work-seconds for `req`.
    ///
    /// # Panics
    ///
    /// Panics if `work` is negative or not finite.
    pub fn add_burst(&mut self, now: SimTime, req: R, work: f64) {
        assert!(
            work.is_finite() && work >= 0.0,
            "burst work must be finite and >= 0"
        );
        self.advance(now);
        let burst = Burst {
            target: OrdF64(self.work_clock + work),
            seq: self.seq,
            req,
            work: OrdF64(work),
        };
        self.seq += 1;
        self.bursts.push(Reverse(burst));
        self.max_active_bursts = self.max_active_bursts.max(self.bursts.len());
    }

    /// When and for which request the next completion occurs, given no
    /// further changes; `None` when idle.
    pub fn next_completion(&self, now: SimTime) -> Option<(SimTime, R)> {
        let &Reverse(burst) = self.bursts.peek()?;
        // Project the clock forward from `now` (callers advance first).
        let pending_dt = now.saturating_since(self.last_update).as_secs_f64();
        let projected_clock = self.work_clock + pending_dt * self.speed();
        let remaining = (burst.target.0 - projected_clock).max(0.0);
        let dt = remaining / self.speed();
        Some((
            now + dcm_sim::time::SimDuration::from_secs_f64(dt),
            burst.req,
        ))
    }

    /// Pops the frontmost burst if it has completed by `now` (within a
    /// small work-epsilon of the work clock).
    pub fn pop_completed(&mut self, now: SimTime) -> Option<R> {
        self.advance(now);
        let &Reverse(burst) = self.bursts.peek()?;
        if burst.target.0 <= self.work_clock + WORK_EPSILON {
            self.bursts.pop();
            self.completed_work += burst.work.0;
            Some(burst.req)
        } else {
            None
        }
    }

    /// Removes a specific request's burst (e.g. the request was aborted).
    /// Returns `true` if a burst was removed. O(n) rebuild — rare path.
    pub fn cancel_burst(&mut self, now: SimTime, req: R) -> bool {
        self.advance(now);
        let before = self.bursts.len();
        let retained: Vec<_> = self
            .bursts
            .drain()
            .filter(|&Reverse(b)| b.req != req)
            .collect();
        self.bursts = retained.into();
        before != self.bursts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::law::reference;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn r(n: u64) -> RequestId {
        RequestId::new(n)
    }

    #[test]
    fn single_burst_completes_after_its_work() {
        let mut cpu = CpuScheduler::new(ServiceLaw::frictionless(1.0));
        cpu.set_contention(t(0.0), 1);
        cpu.add_burst(t(0.0), r(1), 0.5);
        let (at, req) = cpu.next_completion(t(0.0)).unwrap();
        assert_eq!(req, r(1));
        assert!((at.as_secs_f64() - 0.5).abs() < 1e-9);
        assert!(cpu.pop_completed(t(0.4)).is_none());
        assert_eq!(cpu.pop_completed(at), Some(r(1)));
        assert_eq!(cpu.active_bursts(), 0);
    }

    #[test]
    fn contention_inflates_wall_time_per_paper_law() {
        // Two saturated threads on the Tomcat law: each burst of S0 work
        // takes S*(2) wall seconds.
        let law = reference::tomcat();
        let s_star_2 = law.adjusted_service_time(2);
        let mut cpu = CpuScheduler::new(law);
        cpu.set_contention(t(0.0), 2);
        cpu.add_burst(t(0.0), r(1), law.s0());
        cpu.add_burst(t(0.0), r(2), law.s0());
        let (at, _) = cpu.next_completion(t(0.0)).unwrap();
        assert!(
            (at.as_secs_f64() - s_star_2).abs() < 1e-9,
            "expected {} got {}",
            s_star_2,
            at.as_secs_f64()
        );
    }

    #[test]
    fn saturated_throughput_matches_law() {
        // Keep N bursts active for a long stretch; completions per second
        // must approach N/S*(N).
        let law = reference::mysql();
        let n = 36u32;
        let mut cpu = CpuScheduler::new(law);
        cpu.set_contention(t(0.0), n);
        let mut next_id = 0u64;
        for _ in 0..n {
            cpu.add_burst(t(0.0), r(next_id), law.s0());
            next_id += 1;
        }
        let horizon = 10.0;
        let mut now = t(0.0);
        let mut completions = 0u64;
        while let Some((at, _)) = cpu.next_completion(now) {
            if at.as_secs_f64() > horizon {
                break;
            }
            now = at;
            let done = cpu.pop_completed(now).expect("due burst pops");
            let _ = done;
            completions += 1;
            cpu.add_burst(now, r(next_id), law.s0());
            next_id += 1;
        }
        let measured = completions as f64 / horizon;
        let expected = law.saturated_throughput(n);
        assert!(
            (measured - expected).abs() / expected < 0.02,
            "measured {measured} expected {expected}"
        );
    }

    #[test]
    fn speed_change_settles_progress_first() {
        let law = ServiceLaw::new(1.0, 0.5, 0.0); // f(1)=1, f(2)=1.5
        let mut cpu = CpuScheduler::new(law);
        cpu.set_contention(t(0.0), 1);
        cpu.add_burst(t(0.0), r(1), 1.0);
        // Run half the burst at speed 1 (0.5 work done by t=0.5).
        cpu.set_contention(t(0.5), 2);
        // Remaining 0.5 work at speed 1/1.5 → 0.75 s more.
        let (at, _) = cpu.next_completion(t(0.5)).unwrap();
        assert!(
            (at.as_secs_f64() - 1.25).abs() < 1e-9,
            "{}",
            at.as_secs_f64()
        );
    }

    #[test]
    fn fifo_among_equal_targets() {
        let mut cpu = CpuScheduler::new(ServiceLaw::frictionless(1.0));
        cpu.set_contention(t(0.0), 2);
        cpu.add_burst(t(0.0), r(1), 0.3);
        cpu.add_burst(t(0.0), r(2), 0.3);
        let done_at = cpu.next_completion(t(0.0)).unwrap().0;
        assert_eq!(cpu.pop_completed(done_at), Some(r(1)));
        assert_eq!(cpu.pop_completed(done_at), Some(r(2)));
    }

    #[test]
    fn busy_time_only_accumulates_under_load() {
        let mut cpu = CpuScheduler::new(ServiceLaw::frictionless(1.0));
        cpu.advance(t(1.0)); // idle
        assert_eq!(cpu.busy_seconds(), 0.0);
        cpu.set_contention(t(1.0), 1);
        cpu.add_burst(t(1.0), r(1), 0.5);
        cpu.advance(t(1.5));
        assert!((cpu.busy_seconds() - 0.5).abs() < 1e-9);
        cpu.pop_completed(t(1.5));
        cpu.advance(t(3.0)); // idle again
        assert!((cpu.busy_seconds() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn cancel_burst_removes_request() {
        let mut cpu = CpuScheduler::new(ServiceLaw::frictionless(1.0));
        cpu.set_contention(t(0.0), 2);
        cpu.add_burst(t(0.0), r(1), 0.5);
        cpu.add_burst(t(0.0), r(2), 0.2);
        assert!(cpu.cancel_burst(t(0.1), r(2)));
        assert!(!cpu.cancel_burst(t(0.1), r(2)));
        let (_, req) = cpu.next_completion(t(0.1)).unwrap();
        assert_eq!(req, r(1));
    }

    #[test]
    fn zero_work_burst_completes_immediately() {
        let mut cpu = CpuScheduler::new(ServiceLaw::frictionless(1.0));
        cpu.set_contention(t(0.0), 1);
        cpu.add_burst(t(0.0), r(1), 0.0);
        assert_eq!(cpu.pop_completed(t(0.0)), Some(r(1)));
    }

    #[test]
    fn contention_floor_is_active_bursts() {
        // Even with contention set low, 10 active bursts imply N >= 10.
        let law = reference::tomcat();
        let mut cpu = CpuScheduler::new(law);
        cpu.set_contention(t(0.0), 1);
        for i in 0..10 {
            cpu.add_burst(t(0.0), r(i), law.s0());
        }
        let (at, _) = cpu.next_completion(t(0.0)).unwrap();
        assert!((at.as_secs_f64() - law.adjusted_service_time(10)).abs() < 1e-9);
    }
}
