//! Request representation and the per-request execution state machine.
//!
//! An HTTP request travels the tier chain recursively: at tier *m* it holds
//! a server thread, runs a **pre** CPU burst, makes `visits[m+1]` sequential
//! calls into tier *m+1* (holding a downstream connection for each call),
//! runs a **post** burst, and replies. The [`Frame`] stack records where in
//! that recursion the request currently is; `dcm-ntier`'s flow module drives
//! the transitions.

use dcm_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::graph::TopologyGraph;
use crate::ids::{RequestId, ServerId};

/// CPU demand at one tier, split around the downstream calls.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageDemand {
    /// Work-seconds before the first downstream call.
    pub pre: f64,
    /// Work-seconds after the last downstream call returns.
    pub post: f64,
}

impl StageDemand {
    /// Demand entirely before the downstream calls.
    pub fn pre_only(pre: f64) -> Self {
        StageDemand { pre, post: 0.0 }
    }

    /// Demand split evenly around the downstream calls.
    pub fn split(total: f64) -> Self {
        StageDemand {
            pre: total / 2.0,
            post: total / 2.0,
        }
    }

    /// Total work-seconds at this tier.
    pub fn total(&self) -> f64 {
        self.pre + self.post
    }
}

/// The fully-sampled execution plan of one request: per-tier CPU demands and
/// the visit ratios between adjacent tiers.
///
/// Built by workload generators (which own the service-demand
/// distributions); consumed by the system simulator.
///
/// # Examples
///
/// ```
/// use dcm_ntier::request::{RequestProfile, StageDemand};
///
/// // A RUBBoS-style browse interaction: cheap Apache pass-through, a Tomcat
/// // burst split around two MySQL queries.
/// let profile = RequestProfile::new(
///     vec![
///         StageDemand::pre_only(0.0006),
///         StageDemand::split(0.0284),
///         StageDemand::pre_only(0.00719),
///     ],
///     vec![1, 1, 2],
///     0,
/// );
/// assert_eq!(profile.tiers(), 3);
/// assert_eq!(profile.visits_to(2), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestProfile {
    demands: Vec<StageDemand>,
    visits: Vec<u32>,
    class: u16,
    /// Per-visit demand overrides, indexed `[tier][global visit index]`.
    /// Empty inner vectors mean every visit to that tier uses
    /// `demands[tier]`. Workload generators fill this when per-visit
    /// demands must be sampled independently (e.g. i.i.d. exponential DB
    /// queries — reusing one sample across a request's visits correlates
    /// service times and breaks the product-form model the MVA oracle
    /// checks against).
    per_visit: Vec<Vec<StageDemand>>,
    /// Call-graph topology. `None` means the linear chain (tier `m` calls
    /// tier `m + 1` `visits[m + 1]` times); `Some` routes downstream calls
    /// through an arbitrary DAG instead.
    graph: Option<TopologyGraph>,
}

impl RequestProfile {
    /// Creates a profile.
    ///
    /// `demands[m]` is the per-call CPU demand at tier `m`; `visits[m]` is
    /// the number of calls tier `m−1` makes into tier `m` per request
    /// (`visits[0]` is conventionally 1: the client calls the front tier
    /// once).
    ///
    /// # Panics
    ///
    /// Panics if the vectors are empty, have different lengths, any demand
    /// is negative/non-finite, or `visits[0] != 1`.
    pub fn new(demands: Vec<StageDemand>, visits: Vec<u32>, class: u16) -> Self {
        assert!(
            !demands.is_empty(),
            "a request must visit at least one tier"
        );
        assert_eq!(
            demands.len(),
            visits.len(),
            "demands and visits must cover the same tiers"
        );
        assert_eq!(visits[0], 1, "the client makes exactly one front-tier call");
        for d in &demands {
            assert!(
                d.pre.is_finite() && d.pre >= 0.0 && d.post.is_finite() && d.post >= 0.0,
                "demands must be finite and non-negative"
            );
        }
        RequestProfile {
            demands,
            visits,
            class,
            per_visit: Vec::new(),
            graph: None,
        }
    }

    /// Routes this request's downstream calls through `graph` instead of
    /// the linear chain. The per-hop `visits` vector is re-derived from the
    /// graph (sum of in-edge call counts per node) so chain-shaped graphs
    /// report the same visit counts as before.
    ///
    /// Install the graph *before* [`RequestProfile::with_per_visit_demands`]
    /// — per-visit demand lengths are validated against the graph's visit
    /// ratios.
    ///
    /// # Panics
    ///
    /// Panics if the graph's node count differs from the profile's tiers.
    pub fn with_graph(mut self, graph: TopologyGraph) -> Self {
        assert_eq!(
            graph.tiers(),
            self.demands.len(),
            "graph nodes must match profile tiers"
        );
        for (m, v) in self.visits.iter_mut().enumerate() {
            *v = graph.in_calls(m);
        }
        self.graph = Some(graph);
        self
    }

    /// The call graph, when this profile routes through one.
    pub fn graph(&self) -> Option<&TopologyGraph> {
        self.graph.as_ref()
    }

    /// Total downstream calls a frame at tier `m` makes: the chain makes
    /// `visits[m + 1]` calls into the next tier (0 at the last tier); a
    /// graph profile sums its out-edge call counts.
    pub fn total_calls_from(&self, m: usize) -> u32 {
        match &self.graph {
            Some(g) => g.total_calls(m),
            None => {
                let next = m.saturating_add(1);
                if next < self.visits.len() {
                    self.visits[next]
                } else {
                    0
                }
            }
        }
    }

    /// The tier receiving call number `k` (0-based, in call order) from a
    /// frame at tier `m`: always `m + 1` on the chain, the graph's edge
    /// target otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not less than [`RequestProfile::total_calls_from`].
    pub fn call_target(&self, m: usize, k: u32) -> usize {
        match &self.graph {
            Some(g) => g.call_target(m, k),
            None => {
                assert!(k < self.total_calls_from(m), "call index out of range");
                m.saturating_add(1)
            }
        }
    }

    /// Installs independent per-visit demands for tier `m`: visit `k` of
    /// the request at tier `m` (counting every visit across the whole
    /// request, in call order) uses `demands[k]` instead of the shared
    /// per-call demand.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range, `demands` does not cover exactly the
    /// request's [`RequestProfile::cumulative_visits`] to tier `m`, or any
    /// demand is negative/non-finite.
    pub fn with_per_visit_demands(mut self, m: usize, demands: Vec<StageDemand>) -> Self {
        assert!(m < self.demands.len(), "tier {m} out of range");
        assert_eq!(
            demands.len() as u64,
            self.cumulative_visits(m),
            "per-visit demands must cover every visit to tier {m}"
        );
        for d in &demands {
            assert!(
                d.pre.is_finite() && d.pre >= 0.0 && d.post.is_finite() && d.post >= 0.0,
                "demands must be finite and non-negative"
            );
        }
        if self.per_visit.len() <= m {
            self.per_visit.resize(m + 1, Vec::new());
        }
        self.per_visit[m] = demands;
        self
    }

    /// Number of tiers this request traverses.
    pub fn tiers(&self) -> usize {
        self.demands.len()
    }

    /// Per-call demand at tier `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn demand(&self, m: usize) -> StageDemand {
        self.demands[m]
    }

    /// Demand of the `visit`-th visit (global, in call order) to tier `m`;
    /// falls back to the shared per-call demand when no per-visit override
    /// is installed.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn demand_for_visit(&self, m: usize, visit: u64) -> StageDemand {
        self.per_visit
            .get(m)
            .and_then(|v| usize::try_from(visit).ok().and_then(|k| v.get(k)))
            .copied()
            .unwrap_or(self.demands[m])
    }

    /// Calls made into tier `m` per parent-tier call.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn visits_to(&self, m: usize) -> u32 {
        self.visits[m]
    }

    /// The workload class (servlet index) for bookkeeping.
    pub fn class(&self) -> u16 {
        self.class
    }

    /// Total CPU demand an average request places on tier `m`, accounting
    /// for the multiplicative visit ratios along the chain (the `V_m · S_m`
    /// service demand of the paper's Eq. 2).
    pub fn service_demand(&self, m: usize) -> f64 {
        match self.per_visit.get(m) {
            Some(v) if !v.is_empty() => v.iter().map(StageDemand::total).sum(),
            _ => self.demands[m].total() * self.cumulative_visits(m) as f64,
        }
    }

    /// The end-to-end visit ratio `V_m` from the client to tier `m`
    /// (product of per-hop visits on the chain; the DAG visit-ratio sum
    /// when a graph is installed).
    pub fn cumulative_visits(&self, m: usize) -> u64 {
        match &self.graph {
            Some(g) => g.visit_ratios()[m],
            None => self.visits[..=m].iter().map(|&v| u64::from(v)).product(),
        }
    }
}

/// Where a frame is in its tier-local lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Parked in the server's thread-pool queue.
    AwaitThread,
    /// Running the pre-call CPU burst.
    PreBurst,
    /// Parked in this server's downstream connection-pool queue.
    AwaitConn,
    /// A child call is in flight at the next tier.
    InCall,
    /// Running the post-call CPU burst.
    PostBurst,
}

/// One level of the request's call stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    /// Tier index of this frame.
    pub tier: usize,
    /// Server processing this frame.
    pub server: ServerId,
    /// Current phase.
    pub phase: Phase,
    /// Downstream calls completed so far.
    pub calls_done: u32,
    /// Which global visit (in call order, per tier) of the request this
    /// frame is — the index into per-visit demand overrides.
    pub visit: u64,
    /// Whether this frame currently holds a downstream connection.
    pub holds_conn: bool,
    /// When this frame's thread was granted (for dwell-time accounting;
    /// meaningful once past [`Phase::AwaitThread`]).
    pub thread_since: SimTime,
    /// When the request arrived at this tier (thread requested).
    pub arrived_at: SimTime,
}

impl Frame {
    /// A frame newly arrived at `server` in `tier` at time `now` as the
    /// request's `visit`-th visit to that tier, not yet holding a thread.
    pub fn arriving(tier: usize, server: ServerId, now: SimTime, visit: u64) -> Self {
        Frame {
            tier,
            server,
            phase: Phase::AwaitThread,
            calls_done: 0,
            visit,
            holds_conn: false,
            thread_since: SimTime::ZERO,
            arrived_at: now,
        }
    }
}

/// Why a request left the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// Fully processed.
    Completed,
    /// Dropped because a tier had no routable server.
    Rejected {
        /// The tier that could not accept the request.
        at_tier: usize,
    },
    /// Abandoned by the client after its deadline elapsed.
    TimedOut,
    /// Lost to a fault: the server processing it crashed mid-flight, or
    /// the request was dropped by a transient (injected) failure.
    Failed {
        /// The tier at which the fault struck.
        at_tier: usize,
    },
}

/// Completion record delivered to the submitter's callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Completion {
    /// The request.
    pub id: RequestId,
    /// Workload class (servlet index).
    pub class: u16,
    /// Submission time.
    pub submitted: SimTime,
    /// Completion (or rejection) time.
    pub finished: SimTime,
    /// How the request ended.
    pub outcome: Outcome,
}

impl Completion {
    /// End-to-end response time.
    pub fn response_time(&self) -> SimDuration {
        self.finished.saturating_since(self.submitted)
    }

    /// True if the request completed successfully.
    pub fn is_success(&self) -> bool {
        self.outcome == Outcome::Completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> RequestProfile {
        RequestProfile::new(
            vec![
                StageDemand::pre_only(0.001),
                StageDemand::split(0.028),
                StageDemand::pre_only(0.007),
            ],
            vec![1, 1, 2],
            3,
        )
    }

    #[test]
    fn profile_accessors() {
        let p = profile();
        assert_eq!(p.tiers(), 3);
        assert_eq!(p.class(), 3);
        assert_eq!(p.demand(1).pre, 0.014);
        assert_eq!(p.demand(1).post, 0.014);
        assert_eq!(p.visits_to(2), 2);
    }

    #[test]
    fn cumulative_visits_multiply_along_chain() {
        let p = RequestProfile::new(
            vec![
                StageDemand::pre_only(0.0),
                StageDemand::pre_only(0.0),
                StageDemand::pre_only(0.0),
            ],
            vec![1, 3, 2],
            0,
        );
        assert_eq!(p.cumulative_visits(0), 1);
        assert_eq!(p.cumulative_visits(1), 3);
        assert_eq!(p.cumulative_visits(2), 6);
    }

    #[test]
    fn service_demand_weights_by_visits() {
        let p = profile();
        // Tier 2: 0.007 per query × 2 queries.
        assert!((p.service_demand(2) - 0.014).abs() < 1e-12);
        assert!((p.service_demand(1) - 0.028).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exactly one front-tier call")]
    fn front_tier_visits_must_be_one() {
        let _ = RequestProfile::new(vec![StageDemand::pre_only(0.0)], vec![2], 0);
    }

    #[test]
    #[should_panic(expected = "same tiers")]
    fn mismatched_lengths_rejected() {
        let _ = RequestProfile::new(vec![StageDemand::pre_only(0.0)], vec![1, 1], 0);
    }

    #[test]
    fn completion_response_time() {
        let c = Completion {
            id: RequestId::new(1),
            class: 0,
            submitted: SimTime::from_secs(1),
            finished: SimTime::from_secs(3),
            outcome: Outcome::Completed,
        };
        assert_eq!(c.response_time(), SimDuration::from_secs(2));
        assert!(c.is_success());
        let r = Completion {
            outcome: Outcome::Rejected { at_tier: 1 },
            ..c
        };
        assert!(!r.is_success());
    }

    #[test]
    fn arriving_frame_defaults() {
        let f = Frame::arriving(2, ServerId::new(5), SimTime::from_secs(3), 1);
        assert_eq!(f.phase, Phase::AwaitThread);
        assert_eq!(f.calls_done, 0);
        assert_eq!(f.visit, 1);
        assert!(!f.holds_conn);
        assert_eq!(f.arrived_at, SimTime::from_secs(3));
    }
}
