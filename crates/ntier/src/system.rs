//! The n-tier system: tiers, servers, in-flight requests, scaling state.
//!
//! [`System`] is pure state — servers, balancers, request table, counters.
//! The event-driven behaviour (request flow, VM boots, completion events)
//! lives in [`crate::flow`], as free functions over
//! ([`World`](crate::world::World), engine).

use dcm_sim::time::{SimDuration, SimTime};

use crate::balancer::{Balancer, BalancerPolicy};
use crate::ids::{FlightId, IdAllocator, RequestId, ServerId, TierId};
use crate::law::ServiceLaw;
use crate::metrics::ServerSample;
use crate::request::{Completion, Frame, RequestProfile};
use crate::server::{Server, ServerSpec, ServerState, VmType};

/// How a tier picks the VM flavor for its next server launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmSelection {
    /// Always launch the catalog entry at this index.
    Fixed(usize),
    /// Launch the catalog entry with the lowest price per unit capacity
    /// (first entry wins ties) — the cost-aware heterogeneous policy.
    CheapestPerCapacity,
    /// Cycle through the catalog by launch ordinal (`i % len`), giving a
    /// deterministically mixed fleet within one tier.
    Cycle,
}

/// A tier's VM purchasing policy: the catalog of flavors it may launch and
/// the selection rule choosing among them.
#[derive(Debug, Clone, PartialEq)]
pub struct VmPolicy {
    /// Launchable flavors (non-empty).
    pub types: Vec<VmType>,
    /// Selection rule.
    pub selection: VmSelection,
}

impl Default for VmPolicy {
    /// The homogeneous baseline: every launch is an [`VmType::SMALL`].
    fn default() -> Self {
        VmPolicy {
            types: vec![VmType::SMALL],
            selection: VmSelection::Fixed(0),
        }
    }
}

impl VmPolicy {
    /// A fixed single-flavor policy.
    pub fn fixed(vm: VmType) -> Self {
        VmPolicy {
            types: vec![vm],
            selection: VmSelection::Fixed(0),
        }
    }

    /// A policy cycling through `types` by launch ordinal.
    ///
    /// # Panics
    ///
    /// Panics if `types` is empty.
    pub fn cycle(types: Vec<VmType>) -> Self {
        assert!(!types.is_empty(), "VM catalog must be non-empty");
        VmPolicy {
            types,
            selection: VmSelection::Cycle,
        }
    }

    /// The flavor the tier's `ordinal`-th launch (0-based) uses.
    ///
    /// # Panics
    ///
    /// Panics if the catalog is empty or a fixed index is out of range.
    pub fn choose_at(&self, ordinal: u64) -> VmType {
        assert!(!self.types.is_empty(), "VM catalog must be non-empty");
        match self.selection {
            VmSelection::Fixed(i) => self.types[i],
            VmSelection::CheapestPerCapacity => {
                let mut best = self.types[0];
                for t in &self.types {
                    if t.price_per_capacity() < best.price_per_capacity() {
                        best = *t;
                    }
                }
                best
            }
            VmSelection::Cycle => {
                let idx = usize::try_from(ordinal % self.types.len() as u64)
                    .expect("catalog index fits usize");
                self.types[idx]
            }
        }
    }

    /// The flavor a first launch uses (see [`VmPolicy::choose_at`]).
    ///
    /// # Panics
    ///
    /// Panics if the catalog is empty or a fixed index is out of range.
    pub fn choose(&self) -> VmType {
        self.choose_at(0)
    }
}

/// Static description of one tier.
#[derive(Debug, Clone, PartialEq)]
pub struct TierSpec {
    /// Tier name used in server names, e.g. `web`, `app`, `db`.
    pub name: String,
    /// Ground-truth concurrency law for servers of this tier.
    pub law: ServiceLaw,
    /// Default thread-pool size for new servers.
    pub default_threads: u32,
    /// Default downstream connection-pool size (toward the next tier), if
    /// this tier makes downstream calls through a pool.
    pub default_conns: Option<u32>,
    /// Load-balancing policy in front of this tier.
    pub balancer: BalancerPolicy,
    /// VM preparation period before a new server becomes routable (the
    /// paper uses 15 s).
    pub boot_delay: SimDuration,
    /// The VM flavors this tier launches and how it chooses among them.
    pub vm_policy: VmPolicy,
}

impl TierSpec {
    fn server_spec(&self, name: String, launch_ordinal: u64) -> ServerSpec {
        ServerSpec {
            name,
            law: self.law,
            threads: self.default_threads,
            conns: self.default_conns,
            vm: self.vm_policy.choose_at(launch_ordinal),
        }
    }
}

/// Live state of one tier.
#[derive(Debug)]
pub struct Tier {
    spec: TierSpec,
    /// Non-stopped servers, in launch order.
    members: Vec<ServerId>,
    /// Routable (`Running`) members in launch order — the balancer's
    /// candidate list. Maintained incrementally on every lifecycle
    /// transition (boots, drains, crashes are control-plane-rare) so the
    /// per-request hot path never rescans `members` nor allocates a
    /// candidate `Vec`; at fleet scale that scan was O(servers) per request.
    routable: Vec<ServerId>,
    balancer: Balancer,
    launched_count: u64,
    /// VM-seconds already paid by stopped servers of this tier.
    retired_vm_seconds: f64,
    /// Dollars already paid by stopped servers of this tier.
    retired_vm_cost: f64,
}

impl Tier {
    /// The tier's static spec.
    pub fn spec(&self) -> &TierSpec {
        &self.spec
    }

    /// Current (non-stopped) member servers in launch order.
    pub fn members(&self) -> &[ServerId] {
        &self.members
    }

    /// Routable (`Running`) members in launch order, from the maintained
    /// cache.
    pub fn routable_members(&self) -> &[ServerId] {
        &self.routable
    }

    /// Read access to the balancer (policy inspection on the hot path).
    pub fn balancer(&self) -> &Balancer {
        &self.balancer
    }

    /// Mutable balancer access.
    pub(crate) fn balancer_mut(&mut self) -> &mut Balancer {
        &mut self.balancer
    }
}

/// Conservation counters maintained by the flow layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SystemCounters {
    /// Requests submitted.
    pub submitted: u64,
    /// Requests fully processed.
    pub completed: u64,
    /// Requests rejected for lack of a routable server.
    pub rejected: u64,
    /// Requests abandoned by their client at the deadline.
    pub timed_out: u64,
    /// Requests lost to a crash or transient fault.
    pub failed: u64,
    /// Tier-entry attempts that found no routable server and were parked
    /// for an inter-tier retry instead of being rejected outright.
    pub retried: u64,
}

impl SystemCounters {
    /// Requests currently inside the system.
    pub fn in_flight(&self) -> u64 {
        self.submitted - self.completed - self.rejected - self.timed_out - self.failed
    }
}

/// Callback invoked when a request leaves the system.
pub type CompletionCallback =
    Box<dyn FnOnce(&mut crate::world::World, &mut crate::world::SimEngine, Completion)>;

/// Inter-tier retry configuration: when a tier momentarily has no routable
/// server (e.g. its only VM just crashed and the replacement is booting),
/// the caller parks the request and re-attempts entry after an exponential
/// backoff instead of rejecting it outright.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct InterTierRetry {
    /// Maximum entry attempts per tier visit (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the first re-attempt.
    pub base_backoff: SimDuration,
    /// Multiplier applied to the backoff after each failed attempt.
    pub multiplier: f64,
}

impl Default for InterTierRetry {
    fn default() -> Self {
        InterTierRetry {
            max_attempts: 4,
            base_backoff: SimDuration::from_millis(500),
            multiplier: 2.0,
        }
    }
}

/// An in-flight request: execution plan, call stack, bookkeeping.
pub struct RequestInFlight {
    /// The request's public monotonic identity (spans, completions, trace
    /// export) — distinct from the recycled [`FlightId`] slab handle.
    pub id: RequestId,
    /// The sampled execution plan.
    pub profile: RequestProfile,
    /// Call-stack frames, innermost last.
    pub frames: Vec<Frame>,
    /// Submission time.
    pub submitted: SimTime,
    /// Completion callback, taken when the request leaves.
    pub(crate) on_complete: Option<CompletionCallback>,
    /// The client-abandonment timer, if a deadline was set.
    pub(crate) timeout_event: Option<dcm_sim::engine::EventId>,
    /// Inter-tier entry attempts consumed so far (for retry backoff).
    pub(crate) entry_attempts: u32,
    /// A pending inter-tier retry timer, if the request is parked waiting
    /// for capacity to come back.
    pub(crate) retry_event: Option<dcm_sim::engine::EventId>,
    /// Per-tier count of frames this request has pushed so far — the global
    /// visit index (in call order) each new frame is stamped with. Indexing
    /// per-visit demands this way generalizes from chains to DAGs; on a
    /// chain it equals the old parent-`calls_done` product fold because
    /// same-tier visits are strictly sequential.
    pub(crate) visit_counts: Vec<u32>,
}

impl std::fmt::Debug for RequestInFlight {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestInFlight")
            .field("id", &self.id)
            .field("profile", &self.profile)
            .field("frames", &self.frames)
            .field("submitted", &self.submitted)
            .field("has_callback", &self.on_complete.is_some())
            .finish()
    }
}

/// Generation-checked slab holding every in-flight request.
///
/// Requests are the per-event allocation hot spot at fleet scale: the seed
/// kept them in a `BTreeMap<RequestId, RequestInFlight>`, paying a tree walk
/// per lookup and node churn per insert/remove. The slab stores entries in a
/// dense `Vec` addressed by [`FlightId`] slot, recycles slots (and their
/// `frames` buffers, capacity retained) through a free list, and stamps each
/// slot with a generation so handles captured by cancelled timeout/retry
/// timers dereference to `None` instead of aliasing a later request.
#[derive(Debug, Default)]
pub(crate) struct RequestSlab {
    entries: Vec<Option<RequestInFlight>>,
    gens: Vec<u32>,
    free: Vec<u32>,
    live: usize,
    allocated: u64,
    reused: u64,
    /// Emptied `frames` buffers awaiting reuse.
    spare_frames: Vec<Vec<Frame>>,
    /// Retired `visit_counts` buffers awaiting reuse.
    spare_counts: Vec<Vec<u32>>,
}

impl RequestSlab {
    pub(crate) fn insert(&mut self, mut req: RequestInFlight) -> FlightId {
        if req.frames.is_empty() {
            if let Some(spare) = self.spare_frames.pop() {
                req.frames = spare;
            }
        }
        // Stamp the request with a zeroed per-tier visit counter, reusing a
        // retired buffer's capacity when one is available.
        if req.visit_counts.is_empty() {
            if let Some(mut spare) = self.spare_counts.pop() {
                spare.clear();
                req.visit_counts = spare;
            }
        }
        req.visit_counts.resize(req.profile.tiers(), 0);
        self.live += 1;
        match self.free.pop() {
            Some(slot) => {
                self.reused += 1;
                self.entries[slot as usize] = Some(req);
                FlightId::pack(slot, self.gens[slot as usize])
            }
            None => {
                let slot =
                    u32::try_from(self.entries.len()).expect("more than 2^32 in-flight requests");
                self.allocated += 1;
                self.entries.push(Some(req));
                self.gens.push(0);
                FlightId::pack(slot, 0)
            }
        }
    }

    pub(crate) fn get(&self, id: FlightId) -> Option<&RequestInFlight> {
        let slot = id.slot() as usize;
        if self.gens.get(slot).copied() != Some(id.gen()) {
            return None;
        }
        self.entries[slot].as_ref()
    }

    pub(crate) fn get_mut(&mut self, id: FlightId) -> Option<&mut RequestInFlight> {
        let slot = id.slot() as usize;
        if self.gens.get(slot).copied() != Some(id.gen()) {
            return None;
        }
        self.entries[slot].as_mut()
    }

    pub(crate) fn remove(&mut self, id: FlightId) -> Option<RequestInFlight> {
        let slot = id.slot() as usize;
        if self.gens.get(slot).copied() != Some(id.gen()) {
            return None;
        }
        let mut req = self.entries[slot].take()?;
        self.gens[slot] = self.gens[slot].wrapping_add(1);
        self.free.push(id.slot());
        self.live -= 1;
        // Requests leave with their call stack fully popped; keep the
        // buffer's capacity for the next request through this slab.
        if req.frames.is_empty() && req.frames.capacity() > 0 {
            self.spare_frames.push(std::mem::take(&mut req.frames));
        }
        if req.visit_counts.capacity() > 0 {
            let mut counts = std::mem::take(&mut req.visit_counts);
            counts.clear();
            self.spare_counts.push(counts);
        }
        Some(req)
    }

    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// Live entries in slot order (NOT public-id order; sort by
    /// [`RequestInFlight::id`] where accumulation order matters).
    pub(crate) fn iter(&self) -> impl Iterator<Item = (FlightId, &RequestInFlight)> {
        self.entries.iter().enumerate().filter_map(|(slot, e)| {
            e.as_ref()
                .map(|req| (FlightId::pack(slot as u32, self.gens[slot]), req))
        })
    }

    /// `(fresh slot allocations, free-list reuses)` since construction.
    pub(crate) fn stats(&self) -> (u64, u64) {
        (self.allocated, self.reused)
    }
}

/// Per-tier and per-edge traffic ledger maintained by the flow layer.
///
/// Every frame push is booked twice — once against its tier, once against
/// the `(parent tier → tier)` edge it arrived over (the client counts as
/// the virtual parent of tier 0) — and every frame that is unwound while
/// still waiting for a thread (and therefore records no span) is booked as
/// abandoned. The [`ConservationAuditor`](crate::audit::ConservationAuditor)
/// closes the loop: per tier, entries over a window must equal spans plus
/// abandoned waits plus the change in live frames, and the edge ledger must
/// re-sum to the tier ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowLedger {
    tiers: usize,
    tier_entries: Vec<u64>,
    tier_abandoned: Vec<u64>,
    /// Dense `(parent + 1) × tiers + child` matrix; row 0 is the client.
    edge_entries: Vec<u64>,
}

impl FlowLedger {
    fn new(tiers: usize) -> Self {
        FlowLedger {
            tiers,
            tier_entries: vec![0; tiers],
            tier_abandoned: vec![0; tiers],
            edge_entries: vec![0; (tiers + 1) * tiers],
        }
    }

    fn note_entry(&mut self, parent: Option<usize>, child: usize) {
        self.tier_entries[child] += 1;
        let row = parent.map_or(0, |p| p + 1);
        let idx = row * self.tiers + child;
        self.edge_entries[idx] += 1;
    }

    fn note_abandoned(&mut self, tier: usize) {
        self.tier_abandoned[tier] += 1;
    }

    /// Frames pushed per tier since system start.
    pub fn tier_entries(&self) -> &[u64] {
        &self.tier_entries
    }

    /// Frames unwound per tier while still awaiting a thread (no span).
    pub fn tier_abandoned(&self) -> &[u64] {
        &self.tier_abandoned
    }

    /// Frames pushed into `child` over the edge from `parent` (`None` =
    /// the client).
    pub fn edge_entries(&self, parent: Option<usize>, child: usize) -> u64 {
        let row = parent.map_or(0, |p| p + 1);
        let idx = row * self.tiers + child;
        self.edge_entries[idx]
    }

    /// Re-sums the edge matrix per child tier — must equal
    /// [`FlowLedger::tier_entries`] exactly.
    pub fn edge_entry_sums(&self) -> Vec<u64> {
        let mut sums = vec![0u64; self.tiers];
        for (idx, &n) in self.edge_entries.iter().enumerate() {
            sums[idx % self.tiers] += n;
        }
        sums
    }
}

/// The complete n-tier system state.
#[derive(Debug)]
pub struct System {
    tiers: Vec<Tier>,
    /// Every server ever launched, indexed densely by `ServerId::raw`.
    /// Servers are never removed from storage (retirement only drops tier
    /// membership), so the Vec is append-only and lookups are O(1).
    servers: Vec<Server>,
    pub(crate) requests: RequestSlab,
    request_ids: IdAllocator,
    pub(crate) counters: SystemCounters,
    /// Probability that a VM boot fails (failure injection; default 0).
    pub boot_failure_prob: f64,
    /// Probability that an individual request admission fails transiently
    /// at the moment a thread is granted (fault injection; default 0, in
    /// which case no RNG draw is made at all).
    pub transient_failure_prob: f64,
    /// Inter-tier retry policy; `None` rejects immediately when a tier has
    /// no routable server (the seed behaviour).
    pub inter_tier_retry: Option<InterTierRetry>,
    pub(crate) span_log: Option<Vec<crate::spans::Span>>,
    pub(crate) event_log: Option<Vec<crate::spans::ServerEvent>>,
    /// Per-tier / per-edge traffic counts for the flow-balance audit.
    flow_ledger: FlowLedger,
}

impl System {
    /// Builds a system with `initial[m]` running servers in tier `m`.
    ///
    /// # Panics
    ///
    /// Panics if `tiers` is empty, counts don't match, or any initial count
    /// is zero (every tier needs at least one server).
    pub fn new(tiers: Vec<TierSpec>, initial: &[u32], now: SimTime) -> Self {
        assert!(!tiers.is_empty(), "system needs at least one tier");
        assert_eq!(tiers.len(), initial.len(), "one count per tier");
        assert!(
            initial.iter().all(|&c| c > 0),
            "every tier needs at least one initial server"
        );
        let tier_count = tiers.len();
        let mut system = System {
            tiers: tiers
                .into_iter()
                .map(|spec| Tier {
                    balancer: Balancer::new(spec.balancer),
                    spec,
                    members: Vec::new(),
                    routable: Vec::new(),
                    launched_count: 0,
                    retired_vm_seconds: 0.0,
                    retired_vm_cost: 0.0,
                })
                .collect(),
            servers: Vec::new(),
            requests: RequestSlab::default(),
            request_ids: IdAllocator::new(),
            counters: SystemCounters::default(),
            boot_failure_prob: 0.0,
            transient_failure_prob: 0.0,
            inter_tier_retry: None,
            span_log: None,
            event_log: None,
            flow_ledger: FlowLedger::new(tier_count),
        };
        for (m, &count) in initial.iter().enumerate() {
            for _ in 0..count {
                system.add_server(TierId(m), now, ServerState::Running);
            }
        }
        system
    }

    /// Number of tiers.
    pub fn tier_count(&self) -> usize {
        self.tiers.len()
    }

    /// The tier at index `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn tier(&self, m: usize) -> &Tier {
        &self.tiers[m]
    }

    pub(crate) fn tier_mut(&mut self, m: usize) -> &mut Tier {
        &mut self.tiers[m]
    }

    /// The server with the given id, if it exists.
    pub fn server(&self, id: ServerId) -> Option<&Server> {
        self.servers.get(id.raw() as usize)
    }

    pub(crate) fn server_mut(&mut self, id: ServerId) -> Option<&mut Server> {
        self.servers.get_mut(id.raw() as usize)
    }

    /// All servers (including stopped), in id order.
    pub fn servers(&self) -> impl Iterator<Item = &Server> {
        self.servers.iter()
    }

    /// Marks a server `Running` (boot finished) and refreshes its tier's
    /// routable cache. Lifecycle transitions go through the [`System`] so
    /// the cache can never drift from server state.
    pub(crate) fn mark_server_running(&mut self, id: ServerId) {
        if let Some(s) = self.server_mut(id) {
            let tier = s.tier();
            s.mark_running();
            self.rebuild_routable(tier);
        }
    }

    /// Marks a server `Draining` and refreshes its tier's routable cache.
    pub(crate) fn mark_server_draining(&mut self, id: ServerId) {
        if let Some(s) = self.server_mut(id) {
            let tier = s.tier();
            s.mark_draining();
            self.rebuild_routable(tier);
        }
    }

    /// Marks a server `Stopped` at `now` and refreshes its tier's routable
    /// cache.
    pub(crate) fn mark_server_stopped(&mut self, id: ServerId, now: SimTime) {
        if let Some(s) = self.server_mut(id) {
            let tier = s.tier();
            s.mark_stopped(now);
            self.rebuild_routable(tier);
        }
    }

    /// Rebuilds one tier's routable-member cache from its member list.
    /// O(members), called only on lifecycle transitions.
    fn rebuild_routable(&mut self, tier: usize) {
        let t = &mut self.tiers[tier];
        let mut routable = std::mem::take(&mut t.routable);
        routable.clear();
        routable.extend(
            t.members
                .iter()
                .copied()
                .filter(|id| self.servers[id.raw() as usize].is_routable()),
        );
        self.tiers[tier].routable = routable;
    }

    /// Requests currently inside the system, counted from the live request
    /// slab (the independent side of the flow-balance audit).
    pub fn live_requests(&self) -> usize {
        self.requests.len()
    }

    /// The per-tier / per-edge traffic ledger.
    pub fn flow_ledger(&self) -> &FlowLedger {
        &self.flow_ledger
    }

    /// Books a frame push into `child` arriving over the edge from
    /// `parent` (`None` = the client).
    pub(crate) fn note_tier_entry(&mut self, parent: Option<usize>, child: usize) {
        self.flow_ledger.note_entry(parent, child);
    }

    /// Books a frame unwound while still awaiting a thread (records no
    /// span, so the flow-balance audit must not expect one).
    pub(crate) fn note_abandoned_wait(&mut self, tier: usize) {
        self.flow_ledger.note_abandoned(tier);
    }

    /// Live call-stack frames per tier across all in-flight requests — the
    /// instantaneous side of the per-tier flow-balance identity.
    pub fn live_frames_per_tier(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.tiers.len()];
        for (_, req) in self.requests.iter() {
            for f in &req.frames {
                counts[f.tier] += 1;
            }
        }
        counts
    }

    /// In-flight requests sorted by public id — a stable iteration order
    /// for auditors accumulating floats, independent of slab slot reuse.
    pub(crate) fn requests_by_id(&self) -> Vec<&RequestInFlight> {
        let mut reqs: Vec<&RequestInFlight> = self.requests.iter().map(|(_, r)| r).collect();
        reqs.sort_by_key(|r| r.id);
        reqs
    }

    /// `(fresh slot allocations, free-list reuses)` of the request slab —
    /// the slab hit-rate counters surfaced in perf artifacts.
    pub fn request_slab_stats(&self) -> (u64, u64) {
        self.requests.stats()
    }

    /// The outcome counters.
    pub fn counters(&self) -> SystemCounters {
        self.counters
    }

    /// Starts recording a [`Span`](crate::spans::Span) for every tier visit
    /// (off by default; spans accumulate unboundedly, so enable only for
    /// bounded analysis runs).
    pub fn enable_tracing(&mut self) {
        self.span_log.get_or_insert_with(Vec::new);
    }

    /// True when span recording is on.
    pub fn tracing_enabled(&self) -> bool {
        self.span_log.is_some()
    }

    /// Takes the recorded spans, leaving recording enabled.
    pub fn take_spans(&mut self) -> Vec<crate::spans::Span> {
        self.span_log
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    pub(crate) fn record_span(&mut self, span: crate::spans::Span) {
        if let Some(log) = self.span_log.as_mut() {
            log.push(span);
        }
    }

    /// Starts recording a [`ServerEvent`](crate::spans::ServerEvent) for
    /// every VM-lifecycle change (boots, drains, crashes, slowdowns). Off by
    /// default; the stream is tiny (one entry per scaling/fault action).
    pub fn enable_event_log(&mut self) {
        self.event_log.get_or_insert_with(Vec::new);
    }

    /// True when server-event recording is on.
    pub fn event_log_enabled(&self) -> bool {
        self.event_log.is_some()
    }

    /// Takes the recorded server events, leaving recording enabled.
    pub fn take_server_events(&mut self) -> Vec<crate::spans::ServerEvent> {
        self.event_log
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    pub(crate) fn record_server_event(&mut self, event: crate::spans::ServerEvent) {
        if let Some(log) = self.event_log.as_mut() {
            log.push(event);
        }
    }

    /// Allocates a request id.
    pub(crate) fn next_request_id(&mut self) -> RequestId {
        RequestId::new(self.request_ids.next_raw())
    }

    /// Creates and registers a server in `tier` with the tier's default
    /// spec, in the given lifecycle state. Returns its id.
    pub(crate) fn add_server(
        &mut self,
        tier: TierId,
        now: SimTime,
        state: ServerState,
    ) -> ServerId {
        let id = ServerId::new(self.servers.len() as u64);
        let t = &mut self.tiers[tier.index()];
        t.launched_count += 1;
        let name = format!("{}-{}", t.spec.name, t.launched_count);
        let spec = t.spec.server_spec(name, t.launched_count - 1);
        let server = Server::new(id, tier.index(), &spec, now, state);
        t.members.push(id);
        if server.is_routable() {
            t.routable.push(id);
        }
        self.servers.push(server);
        id
    }

    /// Updates the default soft resources newly launched servers of `tier`
    /// will boot with (the DCM APP-agent updates these alongside the live
    /// pools so a VM joining mid-burst starts with the right allocation).
    ///
    /// # Panics
    ///
    /// Panics if `tier` is out of range or `threads` is zero.
    pub fn set_tier_defaults(&mut self, tier: usize, threads: u32, conns: Option<u32>) {
        assert!(threads > 0, "default threads must be positive");
        let spec = &mut self.tiers[tier].spec;
        spec.default_threads = threads;
        if let Some(c) = conns {
            assert!(c > 0, "default conns must be positive");
            spec.default_conns = Some(c);
        }
    }

    /// Routable servers of a tier with their current load, for balancing
    /// policies that weigh load (and for control-plane callers). Built from
    /// the maintained routable cache; policies that ignore load should index
    /// [`Tier::routable_members`] directly instead of materializing this.
    pub fn routable(&self, tier: usize) -> Vec<(ServerId, u32)> {
        self.tiers[tier]
            .routable
            .iter()
            .map(|&id| (id, self.servers[id.raw() as usize].threads_in_use()))
            .collect()
    }

    /// Count of routable servers in a tier. O(1) from the routable cache.
    pub fn running_count(&self, tier: usize) -> usize {
        self.tiers[tier].routable.len()
    }

    /// Count of servers still booting in a tier.
    pub fn booting_count(&self, tier: usize) -> usize {
        self.tiers[tier]
            .members
            .iter()
            .filter(|id| {
                matches!(
                    self.servers[id.raw() as usize].state(),
                    ServerState::Starting { .. }
                )
            })
            .count()
    }

    /// Removes a stopped server from its tier's member list, accruing its
    /// VM-seconds into the tier's retired total.
    pub(crate) fn retire_server(&mut self, id: ServerId, now: SimTime) {
        if let Some(server) = self.server(id) {
            let tier = server.tier();
            let vm_secs = server.vm_seconds(now);
            let vm_cost = server.vm_cost(now);
            let t = &mut self.tiers[tier];
            t.members.retain(|&m| m != id);
            t.routable.retain(|&m| m != id);
            t.retired_vm_seconds += vm_secs;
            t.retired_vm_cost += vm_cost;
        }
    }

    /// Total VM-seconds consumed by a tier so far (running + retired) — the
    /// resource-cost metric for the efficiency comparison.
    pub fn vm_seconds(&self, tier: usize, now: SimTime) -> f64 {
        let live: f64 = self.tiers[tier]
            .members
            .iter()
            .map(|id| self.servers[id.raw() as usize].vm_seconds(now))
            .sum();
        live + self.tiers[tier].retired_vm_seconds
    }

    /// Total dollars consumed by a tier so far (running + retired) — the
    /// heterogeneous-fleet cost metric: with mixed VM flavors, equal
    /// VM-seconds no longer imply equal spend.
    pub fn vm_cost(&self, tier: usize, now: SimTime) -> f64 {
        let live: f64 = self.tiers[tier]
            .members
            .iter()
            .map(|id| self.servers[id.raw() as usize].vm_cost(now))
            .sum();
        live + self.tiers[tier].retired_vm_cost
    }

    /// Takes a monitoring sample from every non-stopped server.
    pub fn sample_all(&mut self, now: SimTime) -> Vec<ServerSample> {
        let member_ids: Vec<ServerId> = self
            .tiers
            .iter()
            .flat_map(|t| t.members.iter().copied())
            .collect();
        member_ids
            .into_iter()
            .filter_map(|id| {
                let server = self.servers.get_mut(id.raw() as usize)?;
                (!server.is_stopped()).then(|| server.sample(now))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::law::reference;

    fn specs() -> Vec<TierSpec> {
        vec![
            TierSpec {
                name: "web".into(),
                law: reference::apache(),
                default_threads: 1000,
                default_conns: None,
                balancer: BalancerPolicy::RoundRobin,
                boot_delay: SimDuration::from_secs(15),
                vm_policy: VmPolicy::default(),
            },
            TierSpec {
                name: "app".into(),
                law: reference::tomcat(),
                default_threads: 100,
                default_conns: Some(80),
                balancer: BalancerPolicy::RoundRobin,
                boot_delay: SimDuration::from_secs(15),
                vm_policy: VmPolicy::default(),
            },
            TierSpec {
                name: "db".into(),
                law: reference::mysql(),
                default_threads: 800,
                default_conns: None,
                balancer: BalancerPolicy::RoundRobin,
                boot_delay: SimDuration::from_secs(15),
                vm_policy: VmPolicy::default(),
            },
        ]
    }

    #[test]
    fn initial_topology_matches_counts() {
        let sys = System::new(specs(), &[1, 2, 1], SimTime::ZERO);
        assert_eq!(sys.tier_count(), 3);
        assert_eq!(sys.running_count(0), 1);
        assert_eq!(sys.running_count(1), 2);
        assert_eq!(sys.running_count(2), 1);
        assert_eq!(sys.servers().count(), 4);
    }

    #[test]
    fn server_names_follow_tier_and_order() {
        let sys = System::new(specs(), &[1, 2, 1], SimTime::ZERO);
        let names: Vec<&str> = sys.servers().map(|s| s.name()).collect();
        assert!(names.contains(&"web-1"));
        assert!(names.contains(&"app-1"));
        assert!(names.contains(&"app-2"));
        assert!(names.contains(&"db-1"));
    }

    #[test]
    fn booting_servers_are_not_routable() {
        let mut sys = System::new(specs(), &[1, 1, 1], SimTime::ZERO);
        let id = sys.add_server(
            TierId(1),
            SimTime::ZERO,
            ServerState::Starting {
                ready_at: SimTime::from_secs(15),
            },
        );
        assert_eq!(sys.running_count(1), 1);
        assert_eq!(sys.booting_count(1), 1);
        sys.mark_server_running(id);
        assert_eq!(sys.running_count(1), 2);
        // Launch order is preserved in the routable cache: the original
        // member still precedes the newly booted one.
        assert_eq!(sys.tier(1).routable_members().last(), Some(&id));
    }

    #[test]
    fn retire_accrues_vm_seconds() {
        let mut sys = System::new(specs(), &[1, 2, 1], SimTime::ZERO);
        let victim = sys.tier(1).members()[1];
        let now = SimTime::from_secs(100);
        sys.mark_server_stopped(victim, now);
        sys.retire_server(victim, now);
        assert_eq!(sys.running_count(1), 1);
        // Tier 1 cost: survivor 150 s + retired 100 s.
        let later = SimTime::from_secs(150);
        assert!((sys.vm_seconds(1, later) - 250.0).abs() < 1e-9);
    }

    #[test]
    fn sample_all_covers_live_servers() {
        let mut sys = System::new(specs(), &[1, 2, 1], SimTime::ZERO);
        let samples = sys.sample_all(SimTime::from_secs(1));
        assert_eq!(samples.len(), 4);
        assert!(samples.iter().all(|s| s.cpu_util == 0.0));
    }

    #[test]
    fn counters_start_clean() {
        let sys = System::new(specs(), &[1, 1, 1], SimTime::ZERO);
        assert_eq!(sys.counters(), SystemCounters::default());
        assert_eq!(sys.counters().in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one initial server")]
    fn zero_initial_servers_rejected() {
        let _ = System::new(specs(), &[1, 0, 1], SimTime::ZERO);
    }

    fn in_flight(id: u64) -> RequestInFlight {
        RequestInFlight {
            id: RequestId::new(id),
            profile: RequestProfile::new(
                vec![crate::request::StageDemand::pre_only(0.01)],
                vec![1],
                0,
            ),
            frames: Vec::new(),
            submitted: SimTime::ZERO,
            on_complete: None,
            timeout_event: None,
            entry_attempts: 0,
            retry_event: None,
            visit_counts: Vec::new(),
        }
    }

    #[test]
    fn request_slab_recycles_slots_and_stales_old_handles() {
        let mut slab = RequestSlab::default();
        let a = slab.insert(in_flight(0));
        let b = slab.insert(in_flight(1));
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a).unwrap().id, RequestId::new(0));

        let removed = slab.remove(a).unwrap();
        assert_eq!(removed.id, RequestId::new(0));
        assert!(slab.get(a).is_none(), "stale handle goes dead");
        assert!(slab.remove(a).is_none(), "double remove is a no-op");
        assert_eq!(slab.len(), 1);

        // The freed slot is recycled under a bumped generation.
        let c = slab.insert(in_flight(2));
        assert_eq!(c.slot(), a.slot());
        assert_ne!(c.gen(), a.gen());
        assert!(slab.get(a).is_none(), "old handle cannot alias new request");
        assert_eq!(slab.get(c).unwrap().id, RequestId::new(2));
        assert_eq!(slab.get(b).unwrap().id, RequestId::new(1));
        assert_eq!(slab.stats(), (2, 1), "two fresh slots, one reuse");
    }

    #[test]
    fn request_slab_iterates_live_entries_in_slot_order() {
        let mut slab = RequestSlab::default();
        let a = slab.insert(in_flight(0));
        let _b = slab.insert(in_flight(1));
        let _c = slab.insert(in_flight(2));
        slab.remove(a);
        let ids: Vec<u64> = slab.iter().map(|(_, r)| r.id.raw()).collect();
        assert_eq!(ids, vec![1, 2]);
    }
}
