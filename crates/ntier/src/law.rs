//! The multi-threading service-time law (paper §III-B, Eq. 5–7).
//!
//! A server processing `N` concurrent requests pays two overheads on top of
//! the single-threaded service time `S⁰`:
//!
//! * **thread contention** — linear in `N` (fine-grained multi-threading
//!   interleaves instruction streams round-robin): `α·(N−1)`;
//! * **crosstalk / coherency penalty** — quadratic, from invalidation
//!   traffic on shared state: `β·N·(N−1)`.
//!
//! giving the adjusted per-request time `S*(N) = S⁰ + α(N−1) + βN(N−1)` and
//! the effective service time `S(N) = S*(N)/N` — throughput rises with `N`
//! (pipelining) until the quadratic term wins, producing the concurrency
//! "dome" of the paper's Fig. 2(a) with its knee at
//! `N* = √((S⁰−α)/β)`.
//!
//! The simulated servers use this law as ground truth; the model-fitting in
//! `dcm-model` must then *recover* it from noisy measurements, closing the
//! same loop the paper closes against real hardware.

use serde::{Deserialize, Serialize};

/// Ground-truth concurrency law for one server: `S*(N) = s0 + α(N−1) + βN(N−1)`.
///
/// # Examples
///
/// ```
/// use dcm_ntier::law::ServiceLaw;
///
/// // The paper's fitted MySQL parameters (Table I).
/// let mysql = ServiceLaw::new(7.19e-3, 5.04e-3, 1.65e-6);
/// assert_eq!(mysql.optimal_concurrency(), 36);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceLaw {
    s0: f64,
    alpha: f64,
    beta: f64,
    /// Concurrency past which the thrash term engages.
    thrash_threshold: f64,
    /// Coefficient of the quadratic thrash term.
    thrash_coeff: f64,
}

impl ServiceLaw {
    /// Creates a law from single-threaded service time `s0`, contention
    /// coefficient `alpha`, and crosstalk coefficient `beta` (all seconds).
    ///
    /// # Panics
    ///
    /// Panics if `s0 <= 0`, any parameter is negative/non-finite, or
    /// `alpha >= s0` (which would put the optimum at zero threads).
    pub fn new(s0: f64, alpha: f64, beta: f64) -> Self {
        assert!(s0.is_finite() && s0 > 0.0, "s0 must be positive");
        assert!(alpha.is_finite() && alpha >= 0.0, "alpha must be >= 0");
        assert!(beta.is_finite() && beta >= 0.0, "beta must be >= 0");
        assert!(alpha < s0, "alpha must be < s0 for a meaningful optimum");
        ServiceLaw {
            s0,
            alpha,
            beta,
            thrash_threshold: f64::INFINITY,
            thrash_coeff: 0.0,
        }
    }

    /// Adds a super-quadratic **thrash term** past `threshold` concurrent
    /// threads: `S*(N) += coeff·(N−threshold)²` for `N > threshold`.
    ///
    /// Real servers degrade faster past saturation than the paper's
    /// quadratic model family can express (buffer-pool contention, context
    /// switching, lock convoys): the paper's own Table I MySQL fit is
    /// nearly flat past its knee, while its measured Fig. 2(a)/2(b) shows
    /// dramatic loss. A thrash term makes the *ground truth* realistic
    /// while keeping the model family (which cannot represent it — just as
    /// in the paper) as the controller's approximation.
    ///
    /// # Panics
    ///
    /// Panics if `threshold < 1` or `coeff < 0` or either is NaN.
    pub fn with_thrash(mut self, threshold: f64, coeff: f64) -> Self {
        assert!(threshold >= 1.0, "thrash threshold must be >= 1");
        assert!(
            coeff.is_finite() && coeff >= 0.0,
            "thrash coeff must be >= 0"
        );
        self.thrash_threshold = threshold;
        self.thrash_coeff = coeff;
        self
    }

    /// A law with no multi-threading penalty (ideal linear scaling); useful
    /// for pass-through tiers like the Apache web server in the paper's
    /// browse-only workload.
    pub fn frictionless(s0: f64) -> Self {
        ServiceLaw::new(s0, 0.0, 0.0)
    }

    /// Single-threaded service time `S⁰`.
    pub fn s0(&self) -> f64 {
        self.s0
    }

    /// Linear contention coefficient `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Quadratic crosstalk coefficient `β`.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Adjusted per-request service time `S*(N)` with `n` concurrent
    /// threads (Eq. 5). `n = 0` is treated as 1 (an idle server processes
    /// its next request single-threaded).
    pub fn adjusted_service_time(&self, n: u32) -> f64 {
        let n = f64::from(n.max(1));
        let excess = (n - self.thrash_threshold).max(0.0);
        self.s0
            + self.alpha * (n - 1.0)
            + self.beta * n * (n - 1.0)
            + self.thrash_coeff * excess * excess
    }

    /// Effective per-request service time `S(N) = S*(N)/N` (Eq. 6).
    pub fn effective_service_time(&self, n: u32) -> f64 {
        self.adjusted_service_time(n) / f64::from(n.max(1))
    }

    /// Work-inflation factor `f(N) = S*(N)/S⁰ ≥ 1`: how much longer a unit
    /// of work takes under concurrency `n` than alone.
    pub fn inflation(&self, n: u32) -> f64 {
        self.adjusted_service_time(n) / self.s0
    }

    /// Per-thread progress speed `1/f(N)` in work-seconds per second; the
    /// CPU scheduler advances every active burst at this speed.
    pub fn progress_speed(&self, n: u32) -> f64 {
        1.0 / self.inflation(n)
    }

    /// Saturated-server throughput at concurrency `n`: `N/S*(N)` requests
    /// per second (Eq. 7 with `γ·K = 1`).
    pub fn saturated_throughput(&self, n: u32) -> f64 {
        f64::from(n.max(1)) / self.adjusted_service_time(n)
    }

    /// The continuous optimum of the quadratic part, `N* = √((s0−α)/β)`;
    /// infinite when `β = 0`. Ignores any thrash term (which only engages
    /// past its threshold).
    pub fn optimal_concurrency_f64(&self) -> f64 {
        if self.beta == 0.0 {
            f64::INFINITY
        } else {
            ((self.s0 - self.alpha) / self.beta).sqrt()
        }
    }

    /// The integer concurrency maximizing [`ServiceLaw::saturated_throughput`],
    /// capped at `u32::MAX` for frictionless laws. With a thrash term the
    /// argmax is found numerically.
    pub fn optimal_concurrency(&self) -> u32 {
        let n_star = self.optimal_concurrency_f64();
        if !n_star.is_finite() && self.thrash_coeff == 0.0 {
            return u32::MAX;
        }
        if self.thrash_coeff == 0.0 {
            let lo = (n_star.floor() as u32).max(1);
            let hi = lo + 1;
            return if self.saturated_throughput(hi) > self.saturated_throughput(lo) {
                hi
            } else {
                lo
            };
        }
        // Thrash terms can pull the argmax below the analytic knee; the
        // search space is tiny, so scan.
        let upper = if n_star.is_finite() {
            (n_star.ceil() as u32).saturating_add(self.thrash_threshold as u32)
        } else {
            self.thrash_threshold as u32 + 4096
        }
        .clamp(2, 1 << 20);
        (1..=upper)
            .max_by(|&a, &b| {
                self.saturated_throughput(a)
                    .partial_cmp(&self.saturated_throughput(b))
                    .expect("finite throughput")
            })
            .expect("non-empty range")
    }

    /// Throughput at the optimal concurrency (per server, `γ = 1`).
    pub fn peak_throughput(&self) -> f64 {
        self.saturated_throughput(self.optimal_concurrency())
    }
}

/// Reference laws from the paper's Table I, used as simulator ground truth.
pub mod reference {
    use super::ServiceLaw;

    /// Tomcat application server, calibrated so the *system-level* fitted
    /// knee lands at the paper's `N_b = 20`.
    ///
    /// The paper's Table I knee is fitted from ⟨Tomcat concurrency, system
    /// throughput⟩ pairs, so it reflects the whole request path: time spent
    /// in Apache and in the MySQL queries shifts the measured optimum above
    /// the tier-local `√((S⁰−α)/β)`. These constants were solved
    /// numerically (together with the MySQL law) so the measured 1/1/1
    /// dome peaks at 20 with roughly the paper's +30 % optimal-vs-default
    /// margin (tier-local knee ≈ 17).
    pub fn tomcat() -> ServiceLaw {
        ServiceLaw::new(2.84e-2, 1.6e-2, 7.0e-5)
    }

    /// The literal Table I parameters for the Tomcat model (`S⁰ = 28.4 ms`,
    /// `α = 9.87 ms`, `β = 45.4 µs` → `N* ≈ 20`), kept for comparing
    /// fitted coefficients against the paper.
    pub fn tomcat_table1() -> ServiceLaw {
        ServiceLaw::new(2.84e-2, 9.87e-3, 4.54e-5)
    }

    /// MySQL database server (per query): knee `N* = 36` as in Table I,
    /// **plus a thrash term** past 60 concurrent queries.
    ///
    /// The thrash term reconciles the paper's model family with its
    /// measurements: a fitted quadratic curve is nearly flat past the knee,
    /// which cannot reproduce the measured Fig. 2(a) collapse or the
    /// Fig. 2(b) crossover where the scaled-out 1/2/1 system performs
    /// *worse* than 1/1/1 (real MySQL degrades super-quadratically once
    /// buffer-pool and lock contention set in).
    pub fn mysql() -> ServiceLaw {
        // Knee at 36 with peak ≈ 169 q/s (= 85 req/s at V₃ = 2): clearly
        // above one Tomcat's ~56 req/s and clearly below two Tomcats'
        // ~112 req/s, giving the paper's bottleneck structure (Tomcat-bound
        // at 1/1/1, MySQL-bound at 1/2/1). The rising flank is strong
        // (single-query throughput is 20 % of peak), matching the measured
        // Fig. 2(a) left side. The thrash cliff past 60
        // concurrent queries makes query time blow up once the connection
        // pools flood — the runaway that produces the measured Fig. 2(b)
        // crossover (a scaled-out 1/2/1 system *worse* than 1/1/1) and the
        // Fig. 5 EC2-AutoScale incidents.
        ServiceLaw::new(2.95501e-2, 4.53985e-3, 1.9298e-5).with_thrash(60.0, 2.0e-4)
    }

    /// The literal Table I parameters for the MySQL model (`S⁰ = 7.19 ms`,
    /// `α = 5.04 ms`, `β = 1.65 µs` → `N* ≈ 36`), kept for comparing fitted
    /// coefficients against the paper.
    pub fn mysql_table1() -> ServiceLaw {
        ServiceLaw::new(7.19e-3, 5.04e-3, 1.65e-6)
    }

    /// Apache web server: cheap pass-through that is never the bottleneck
    /// in the browse-only workload (its pool is fixed at 1000 in every
    /// experiment of the paper).
    pub fn apache() -> ServiceLaw {
        ServiceLaw::new(6.0e-4, 1.0e-5, 1.0e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_recovers_s0() {
        let law = ServiceLaw::new(0.02, 0.005, 1e-5);
        assert_eq!(law.adjusted_service_time(1), 0.02);
        assert_eq!(law.effective_service_time(1), 0.02);
        assert_eq!(law.inflation(1), 1.0);
        // n=0 treated as 1
        assert_eq!(law.adjusted_service_time(0), 0.02);
    }

    #[test]
    fn paper_table1_optima() {
        assert_eq!(reference::tomcat_table1().optimal_concurrency(), 20);
        assert_eq!(reference::mysql_table1().optimal_concurrency(), 36);
    }

    #[test]
    fn ground_truth_optima() {
        // Tier-local knees of the calibrated laws; the *measured* system
        // knees (including downstream time) land at the paper's 20/36.
        let tc = reference::tomcat().optimal_concurrency();
        assert!((13..=14).contains(&tc), "tomcat local knee {tc}");
        assert_eq!(reference::mysql().optimal_concurrency(), 36);
    }

    #[test]
    fn peak_throughput_scale() {
        // Per-server tier-local peaks (γ=1).
        let tc = reference::tomcat().peak_throughput();
        assert!((tc - 56.2).abs() < 1.5, "tomcat peak {tc}");
        let my = reference::mysql().peak_throughput();
        assert!((my - 169.2).abs() < 2.0, "mysql peak {my}");
    }

    #[test]
    fn mysql_thrash_reproduces_measured_degradation() {
        // The shapes Fig. 2(a)/2(b) hinge on: reasonable from 20–80,
        // substantial loss at 160 (the flooded scaled-out case), severe
        // loss at 600, and a real (if modest) rising flank.
        let law = reference::mysql();
        let peak = law.peak_throughput();
        let ratio = |n: u32| law.saturated_throughput(n) / peak;
        assert!(ratio(20) > 0.85, "r20 {}", ratio(20));
        assert!(ratio(80) > 0.75, "r80 {}", ratio(80));
        assert!(ratio(160) < 0.65, "r160 {}", ratio(160));
        assert!(ratio(600) < 0.25, "r600 {}", ratio(600));
        // Tomcat carries the strong rising flank (its dome is what Fig. 4(a)
        // sweeps); MySQL's fitted family is flat-rising like Table I.
        assert!(ratio(1) < 0.25, "mysql rising flank: {}", ratio(1));
        let tc = reference::tomcat();
        assert!(
            tc.saturated_throughput(1) < 0.70 * tc.peak_throughput(),
            "tomcat rising flank"
        );
    }

    #[test]
    fn thrash_term_only_engages_past_threshold() {
        let base = ServiceLaw::new(0.01, 0.001, 1e-5);
        let thrash = base.with_thrash(50.0, 1e-4);
        for n in [1, 10, 50] {
            assert_eq!(
                base.adjusted_service_time(n),
                thrash.adjusted_service_time(n)
            );
        }
        assert!(thrash.adjusted_service_time(100) > base.adjusted_service_time(100));
        let extra = thrash.adjusted_service_time(100) - base.adjusted_service_time(100);
        assert!((extra - 1e-4 * 50.0 * 50.0).abs() < 1e-12);
    }

    #[test]
    fn thrash_can_move_the_argmax_below_the_analytic_knee() {
        // Aggressive thrash right past 10 pulls the optimum down.
        let law = ServiceLaw::new(0.01, 0.0, 1e-6).with_thrash(10.0, 1e-2);
        let n = law.optimal_concurrency();
        assert!(n <= 13, "argmax {n}");
        // And it is a true argmax.
        let x = law.saturated_throughput(n);
        assert!(x >= law.saturated_throughput(n + 1));
        assert!(x >= law.saturated_throughput(n.saturating_sub(1).max(1)));
    }

    #[test]
    fn throughput_dome_shape() {
        let law = reference::mysql();
        let n_star = law.optimal_concurrency();
        // Rising flank, peak, falling flank.
        assert!(law.saturated_throughput(5) < law.saturated_throughput(20));
        assert!(law.saturated_throughput(20) < law.saturated_throughput(n_star));
        assert!(law.saturated_throughput(n_star) > law.saturated_throughput(100));
        assert!(law.saturated_throughput(100) > law.saturated_throughput(600));
    }

    #[test]
    fn optimum_beats_neighbours() {
        for law in [reference::tomcat(), reference::mysql()] {
            let n = law.optimal_concurrency();
            let x = law.saturated_throughput(n);
            assert!(x >= law.saturated_throughput(n - 1));
            assert!(x >= law.saturated_throughput(n + 1));
        }
    }

    #[test]
    fn frictionless_law_scales_linearly() {
        let law = ServiceLaw::frictionless(0.001);
        assert_eq!(law.inflation(100), 1.0);
        assert_eq!(law.optimal_concurrency(), u32::MAX);
        assert!((law.saturated_throughput(50) - 50_000.0).abs() < 1e-6);
    }

    #[test]
    fn progress_speed_is_inverse_inflation() {
        let law = reference::tomcat();
        for n in [1, 5, 20, 100] {
            let expected = 1.0 / law.inflation(n);
            assert!((law.progress_speed(n) - expected).abs() < 1e-12);
        }
        assert!(law.progress_speed(100) < law.progress_speed(10));
    }

    #[test]
    #[should_panic(expected = "alpha must be < s0")]
    fn rejects_alpha_exceeding_s0() {
        let _ = ServiceLaw::new(0.001, 0.002, 1e-6);
    }

    #[test]
    #[should_panic(expected = "s0 must be positive")]
    fn rejects_non_positive_s0() {
        let _ = ServiceLaw::new(0.0, 0.0, 0.0);
    }
}
