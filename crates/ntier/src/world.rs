//! The simulation world: system state plus the run's RNG stream.

use dcm_sim::engine::Engine;
use dcm_sim::rng::SimRng;

use crate::system::System;

/// Everything the event loop mutates: the n-tier system and the
/// deterministic RNG all stochastic choices draw from.
#[derive(Debug)]
pub struct World {
    /// The n-tier system.
    pub system: System,
    /// The run's random stream.
    pub rng: SimRng,
}

impl World {
    /// Creates a world around a system with the given RNG seed.
    pub fn new(system: System, seed: u64) -> Self {
        World {
            system,
            rng: SimRng::seed_from(seed),
        }
    }
}

/// The engine type all DCM simulations run on.
pub type SimEngine = Engine<World>;
