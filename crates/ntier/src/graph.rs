//! Microservice call-graph topologies.
//!
//! [`TopologyGraph`] generalizes the linear tier chain to a directed acyclic
//! call graph: nodes are tiers, and each edge `(from, to, calls)` says a
//! frame at tier `from` makes `calls` sequential calls into tier `to` per
//! visit. The classic chain is the special case where node `m` has exactly
//! one out-edge to node `m + 1` ([`TopologyGraph::chain`]); fan-out shapes
//! (one frame calling several downstream services in order) and cache-skip
//! shapes (an edge whose call count drops to zero for a cache hit) fall out
//! of the same representation.
//!
//! Nodes are topologically ordered by construction — every edge points from
//! a lower index to a strictly higher one — so a single forward pass
//! computes end-to-end visit ratios and the flow dispatcher never needs
//! cycle detection.
//!
//! This module is on the request hot path (the flow state machine consults
//! it on every downstream call), so all per-call accessors are allocation
//! free: edges live in one flat vector indexed by a per-node prefix table.

use serde::{Deserialize, Serialize};

/// One call edge: `calls` sequential invocations of tier `to` per visit of
/// the owning (`from`) tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphEdge {
    /// Callee tier index.
    pub to: u16,
    /// Calls per parent visit. May be zero (a skipped hop, e.g. on a cache
    /// hit) — the dispatcher then never visits `to` through this edge.
    pub calls: u32,
}

/// A DAG of tiers with per-edge call counts, stored as a flat edge list
/// with a per-node prefix index (`first_edge[m]..first_edge[m + 1]` are the
/// out-edges of node `m`, in call order).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopologyGraph {
    first_edge: Vec<u32>,
    edges: Vec<GraphEdge>,
}

impl TopologyGraph {
    /// The chain topology for the given per-hop visit counts (`visits[m]`
    /// calls from tier `m − 1` into tier `m`; `visits[0]` must be 1).
    ///
    /// # Panics
    ///
    /// Panics if `visits` is empty or `visits[0] != 1`.
    pub fn chain(visits: &[u32]) -> Self {
        assert!(!visits.is_empty(), "a chain needs at least one tier");
        assert_eq!(visits[0], 1, "the client makes exactly one front-tier call");
        let tiers = visits.len();
        let mut first_edge = Vec::with_capacity(tiers.saturating_add(1));
        let mut edges = Vec::with_capacity(tiers.saturating_sub(1));
        for (m, &calls) in visits.iter().enumerate().skip(1) {
            first_edge.push(edges.len() as u32);
            let to = m as u16;
            edges.push(GraphEdge { to, calls });
        }
        // The last node has no out-edges; close the prefix table.
        first_edge.push(edges.len() as u32);
        first_edge.push(edges.len() as u32);
        TopologyGraph { first_edge, edges }
    }

    /// Builds a graph over `tiers` nodes from `(from, to, calls)` edges.
    ///
    /// Node 0 is the entry tier (the client calls it once). Edges must point
    /// forward (`from < to`), every non-root node must be reachable (have at
    /// least one in-edge), and call counts must be at least 1. Edge order
    /// within a parent is preserved: it is the order the frame makes its
    /// downstream calls.
    ///
    /// # Panics
    ///
    /// Panics if `tiers == 0`, an edge is out of range or non-forward, a
    /// call count is 0, or a non-root node has no in-edge.
    pub fn from_edges(tiers: usize, edge_list: &[(usize, usize, u32)]) -> Self {
        assert!(tiers > 0, "a topology needs at least one tier");
        assert!(tiers <= usize::from(u16::MAX), "too many tiers");
        let mut reachable = Vec::with_capacity(tiers);
        reachable.resize(tiers, false);
        reachable[0] = true;
        for &(from, to, calls) in edge_list {
            assert!(from < tiers && to < tiers, "edge ({from},{to}) out of range");
            assert!(from < to, "edges must point forward: ({from},{to})");
            assert!(calls >= 1, "edge ({from},{to}) must carry at least one call");
            reachable[to] = true;
        }
        for (m, &ok) in reachable.iter().enumerate() {
            assert!(ok, "tier {m} is unreachable (no in-edge)");
        }
        let mut first_edge = Vec::with_capacity(tiers.saturating_add(1));
        let mut edges = Vec::with_capacity(edge_list.len());
        for m in 0..tiers {
            first_edge.push(edges.len() as u32);
            for &(from, to, calls) in edge_list {
                if from == m {
                    let to = to as u16;
                    edges.push(GraphEdge { to, calls });
                }
            }
        }
        first_edge.push(edges.len() as u32);
        TopologyGraph { first_edge, edges }
    }

    /// Number of tiers (nodes).
    pub fn tiers(&self) -> usize {
        self.first_edge.len().saturating_sub(1)
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The out-edges of node `m`, in call order.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn out_edges(&self, m: usize) -> &[GraphEdge] {
        let next = m.saturating_add(1);
        let lo = self.first_edge[m] as usize;
        let hi = self.first_edge[next] as usize;
        &self.edges[lo..hi]
    }

    /// Total downstream calls a frame at node `m` makes per visit.
    pub fn total_calls(&self, m: usize) -> u32 {
        let mut total = 0u32;
        for e in self.out_edges(m) {
            total = total.saturating_add(e.calls);
        }
        total
    }

    /// The callee tier of call number `k` (0-based, in call order) made by
    /// a frame at node `m`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not less than [`TopologyGraph::total_calls`]`(m)`.
    pub fn call_target(&self, m: usize, k: u32) -> usize {
        let mut seen = 0u32;
        for e in self.out_edges(m) {
            seen = seen.saturating_add(e.calls);
            if k < seen {
                return usize::from(e.to);
            }
        }
        panic!("call index {k} out of range at tier {m}");
    }

    /// Sum of in-edge call counts of node `m` (1 for the root): the calls
    /// made into `m` per visit of its parent(s) — the graph analogue of the
    /// chain's per-hop `visits[m]`.
    pub fn in_calls(&self, m: usize) -> u32 {
        if m == 0 {
            return 1;
        }
        let want = m as u16;
        let mut total = 0u32;
        for e in &self.edges {
            if e.to == want {
                total = total.saturating_add(e.calls);
            }
        }
        total
    }

    /// True when every node has at most one in-edge (the graph is a tree
    /// rooted at node 0) — the shape for which per-tier exclusive residence
    /// is well defined (a node's time minus its children's).
    pub fn is_tree(&self) -> bool {
        let tiers = self.tiers();
        let mut seen = Vec::with_capacity(tiers);
        seen.resize(tiers, false);
        for e in &self.edges {
            let to = usize::from(e.to);
            if seen[to] {
                return false;
            }
            seen[to] = true;
        }
        true
    }

    /// End-to-end visit ratios: `ratios[m]` is the expected number of times
    /// one client request visits node `m` (root = 1), the DAG analogue of
    /// the chain's cumulative visit product.
    pub fn visit_ratios(&self) -> Vec<u64> {
        let tiers = self.tiers();
        let mut ratios = Vec::with_capacity(tiers);
        ratios.resize(tiers, 0u64);
        ratios[0] = 1;
        for m in 0..tiers {
            let here = ratios[m];
            for e in self.out_edges(m) {
                let to = usize::from(e.to);
                ratios[to] = ratios[to].saturating_add(here.saturating_mul(u64::from(e.calls)));
            }
        }
        ratios
    }

    /// Invokes `f(from, to, calls)` for every edge, parents in index order.
    pub fn for_each_edge(&self, mut f: impl FnMut(usize, usize, u32)) {
        let tiers = self.tiers();
        for m in 0..tiers {
            for e in self.out_edges(m) {
                f(m, usize::from(e.to), e.calls);
            }
        }
    }

    /// Overrides the call count on edge `(from, to)` — used per request to
    /// drop a hop (e.g. a cache hit sets the cache → DB edge to 0 calls).
    ///
    /// # Panics
    ///
    /// Panics if no such edge exists.
    pub fn set_edge_calls(&mut self, from: usize, to: usize, calls: u32) {
        let next = from.saturating_add(1);
        let lo = self.first_edge[from] as usize;
        let hi = self.first_edge[next] as usize;
        let want = to as u16;
        for e in self.edges[lo..hi].iter_mut() {
            if e.to == want {
                e.calls = calls;
                return;
            }
        }
        panic!("no edge ({from},{to}) in topology");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_matches_visit_vector() {
        let g = TopologyGraph::chain(&[1, 1, 2]);
        assert_eq!(g.tiers(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.total_calls(0), 1);
        assert_eq!(g.total_calls(1), 2);
        assert_eq!(g.total_calls(2), 0);
        assert_eq!(g.call_target(0, 0), 1);
        assert_eq!(g.call_target(1, 0), 2);
        assert_eq!(g.call_target(1, 1), 2);
        assert_eq!(g.in_calls(0), 1);
        assert_eq!(g.in_calls(2), 2);
        assert_eq!(g.visit_ratios(), [1, 1, 2]);
        assert!(g.is_tree());
    }

    #[test]
    fn fan_out_dispatches_in_edge_order() {
        // 0 → 1 (once), then 1 → {2, 2, 3}: two service calls, one DB call.
        let g = TopologyGraph::from_edges(4, &[(0, 1, 1), (1, 2, 2), (1, 3, 1)]);
        assert_eq!(g.total_calls(1), 3);
        assert_eq!(g.call_target(1, 0), 2);
        assert_eq!(g.call_target(1, 1), 2);
        assert_eq!(g.call_target(1, 2), 3);
        assert_eq!(g.visit_ratios(), [1, 1, 2, 1]);
        assert!(g.is_tree());
    }

    #[test]
    fn diamond_is_not_a_tree_but_ratios_accumulate() {
        // 0 → {1, 2}, both → 3.
        let g = TopologyGraph::from_edges(4, &[(0, 1, 1), (0, 2, 1), (1, 3, 1), (2, 3, 2)]);
        assert!(!g.is_tree());
        assert_eq!(g.in_calls(3), 3);
        assert_eq!(g.visit_ratios(), [1, 1, 1, 3]);
    }

    #[test]
    fn set_edge_calls_zeroes_a_hop() {
        let mut g = TopologyGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1)]);
        g.set_edge_calls(1, 2, 0);
        assert_eq!(g.total_calls(1), 0);
        assert_eq!(g.visit_ratios(), [1, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn unreachable_node_rejected() {
        let _ = TopologyGraph::from_edges(3, &[(0, 1, 1)]);
    }

    #[test]
    #[should_panic(expected = "point forward")]
    fn backward_edge_rejected() {
        let _ = TopologyGraph::from_edges(2, &[(1, 0, 1), (0, 1, 1)]);
    }

    #[test]
    #[should_panic(expected = "call index")]
    fn call_target_out_of_range_panics() {
        let g = TopologyGraph::chain(&[1, 1]);
        let _ = g.call_target(0, 1);
    }
}
