//! The event-driven request flow and the scaling/reconfiguration actions.
//!
//! Everything here is a free function over `(&mut World, &mut SimEngine)` —
//! the idiomatic shape for logic driven from engine event closures. The
//! request state machine follows the recursion described in
//! [`crate::request`]; scaling actions implement the raw operations the
//! DCM/EC2 controllers invoke (boot a VM, drain a VM, resize a pool at
//! runtime).

use std::fmt;

use dcm_sim::time::{SimDuration, SimTime};

use crate::balancer::BalancerPolicy;
use crate::ids::{FlightId, RequestId, ServerId, TierId};
use crate::request::{Completion, Frame, Outcome, Phase, RequestProfile};
use crate::server::ServerState;
use crate::system::{CompletionCallback, RequestInFlight};
use crate::world::{SimEngine, World};

/// Error from a scaling action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleError {
    /// The tier index does not exist.
    NoSuchTier {
        /// The offending index.
        tier: usize,
    },
    /// Refusing to remove the last routable server of a tier.
    LastServer {
        /// The tier that would be emptied.
        tier: usize,
    },
}

impl fmt::Display for ScaleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScaleError::NoSuchTier { tier } => write!(f, "no such tier {tier}"),
            ScaleError::LastServer { tier } => {
                write!(f, "cannot remove the last routable server of tier {tier}")
            }
        }
    }
}

impl std::error::Error for ScaleError {}

// ---------------------------------------------------------------------------
// Request lifecycle
// ---------------------------------------------------------------------------

/// Submits a request with the given execution plan; `on_complete` fires when
/// it finishes or is rejected.
///
/// # Panics
///
/// Panics if the profile's tier count does not match the system's.
pub fn submit(
    world: &mut World,
    engine: &mut SimEngine,
    profile: RequestProfile,
    on_complete: CompletionCallback,
) -> RequestId {
    submit_inner(world, engine, profile, None, on_complete)
}

/// Like [`submit`], with a client deadline: if the request has not finished
/// within `deadline`, the client abandons it — every held thread,
/// connection, and CPU burst is released and the callback fires with
/// [`Outcome::TimedOut`].
///
/// # Panics
///
/// Panics if the profile's tier count does not match the system's.
pub fn submit_with_deadline(
    world: &mut World,
    engine: &mut SimEngine,
    profile: RequestProfile,
    deadline: SimDuration,
    on_complete: CompletionCallback,
) -> RequestId {
    submit_inner(world, engine, profile, Some(deadline), on_complete)
}

fn submit_inner(
    world: &mut World,
    engine: &mut SimEngine,
    profile: RequestProfile,
    deadline: Option<SimDuration>,
    on_complete: CompletionCallback,
) -> RequestId {
    assert_eq!(
        profile.tiers(),
        world.system.tier_count(),
        "profile must cover every tier"
    );
    let rid = world.system.next_request_id();
    world.system.counters.submitted += 1;
    let fid = world.system.requests.insert(RequestInFlight {
        id: rid,
        profile,
        frames: Vec::new(),
        submitted: engine.now(),
        on_complete: Some(on_complete),
        timeout_event: None,
        entry_attempts: 0,
        retry_event: None,
        visit_counts: Vec::new(),
    });
    if let Some(d) = deadline {
        let ev = engine.schedule_in(d, move |w: &mut World, e: &mut SimEngine| {
            abandon(w, e, fid);
        });
        world
            .system
            .requests
            .get_mut(fid)
            .expect("freshly inserted request")
            .timeout_event = Some(ev);
    }
    enter_tier(world, engine, fid, 0);
    rid
}

/// Client abandonment: unwind whatever the request holds and complete it
/// as timed out. A no-op if the request already finished (the slab handle's
/// generation check makes the stale timer closure inert).
fn abandon(world: &mut World, engine: &mut SimEngine, fid: FlightId) {
    if world.system.requests.get(fid).is_none() {
        return;
    }
    unwind(world, engine, fid, Outcome::TimedOut);
}

/// Routes the request behind `fid` into `tier`: picks a server, pushes a
/// frame, and contends
/// for a thread. When the tier momentarily has no routable server and the
/// system has an inter-tier retry policy, the request is parked and
/// re-attempted after an exponential backoff instead of being rejected —
/// this is what lets a crashed tier heal behind callers' backs while the
/// controller boots a replacement.
fn enter_tier(world: &mut World, engine: &mut SimEngine, fid: FlightId, tier: usize) {
    // Load-blind policies index the maintained routable cache directly; the
    // seed built a per-request `Vec<(ServerId, load)>` here, which at 1,000
    // servers/tier dominated the hot path. Both arms draw from the RNG (and
    // move the round-robin cursor) identically.
    let choice = match world.system.tier(tier).balancer().policy() {
        BalancerPolicy::LeastConnections => {
            let candidates = world.system.routable(tier);
            world
                .system
                .tier_mut(tier)
                .balancer_mut()
                .choose(&candidates, &mut world.rng)
        }
        _ => {
            let len = world.system.tier(tier).routable_members().len();
            world
                .system
                .tier_mut(tier)
                .balancer_mut()
                .choose_index(len, &mut world.rng)
                .map(|i| world.system.tier(tier).routable_members()[i])
        }
    };
    let Some(sid) = choice else {
        if let Some(policy) = world.system.inter_tier_retry {
            let attempts = world
                .system
                .requests
                .get(fid)
                .map_or(0, |r| r.entry_attempts);
            if attempts + 1 < policy.max_attempts {
                let backoff =
                    policy.base_backoff.as_secs_f64() * policy.multiplier.powi(attempts as i32);
                world.system.counters.retried += 1;
                let ev = engine.schedule_in(
                    SimDuration::from_secs_f64(backoff),
                    move |w: &mut World, e: &mut SimEngine| retry_entry(w, e, fid, tier),
                );
                let req = world
                    .system
                    .requests
                    .get_mut(fid)
                    .expect("parking a live request");
                req.entry_attempts = attempts + 1;
                req.retry_event = Some(ev);
                return;
            }
        }
        unwind_reject(world, engine, fid, tier);
        return;
    };
    let now = engine.now();
    let parent = {
        let req = world
            .system
            .requests
            .get_mut(fid)
            .expect("routing a live request");
        req.entry_attempts = 0;
        let parent = req.frames.last().map(|f| f.tier);
        // Stamp the frame with its global per-tier visit index (frames
        // pushed so far) — on a chain this equals the old parent
        // `calls_done` product fold (same-tier visits are sequential), and
        // it stays well defined on DAG topologies where the fold is not.
        let visit = u64::from(req.visit_counts[tier]);
        req.visit_counts[tier] += 1;
        req.frames.push(Frame::arriving(tier, sid, now, visit));
        parent
    };
    world.system.note_tier_entry(parent, tier);
    let granted = world
        .system
        .server_mut(sid)
        .expect("balancer returned live server")
        .acquire_thread(now, fid);
    resched_completion(world, engine, sid);
    if granted {
        thread_granted(world, engine, fid);
    }
}

/// A retry timer fired for a request parked on a capacity-less tier.
fn retry_entry(world: &mut World, engine: &mut SimEngine, fid: FlightId, tier: usize) {
    let Some(req) = world.system.requests.get_mut(fid) else {
        return; // Abandoned (e.g. client timeout) while parked.
    };
    req.retry_event = None;
    enter_tier(world, engine, fid, tier);
}

/// The top frame was granted its server thread: start the pre burst (or
/// fail immediately under an injected transient fault).
fn thread_granted(world: &mut World, engine: &mut SimEngine, fid: FlightId) {
    let now = engine.now();
    let (sid, tier, pre) = {
        let req = world
            .system
            .requests
            .get_mut(fid)
            .expect("granting thread to live request");
        let frame = req.frames.last_mut().expect("granted frame exists");
        let pre = req.profile.demand_for_visit(frame.tier, frame.visit).pre;
        frame.phase = Phase::PreBurst;
        frame.thread_since = now;
        (frame.server, frame.tier, pre)
    };
    // Transient per-request fault: drop the request at admission. The
    // frame is already in PreBurst with no burst started, so the normal
    // unwind releases the freshly granted thread (cancel_burst is a no-op).
    let p = world.system.transient_failure_prob;
    if p > 0.0 && world.rng.next_f64() < p {
        unwind(world, engine, fid, Outcome::Failed { at_tier: tier });
        return;
    }
    world
        .system
        .server_mut(sid)
        .expect("frame server exists")
        .start_burst(now, fid, pre);
    resched_completion(world, engine, sid);
}

/// Resumes a request that was parked in a pool queue and has now been handed
/// its permit.
fn resume_parked(world: &mut World, engine: &mut SimEngine, fid: FlightId) {
    let phase = world
        .system
        .requests
        .get(fid)
        .and_then(|r| r.frames.last())
        .map(|f| f.phase);
    match phase {
        Some(Phase::AwaitThread) => thread_granted(world, engine, fid),
        Some(Phase::AwaitConn) => conn_granted(world, engine, fid),
        other => panic!("resumed request {fid} in unexpected phase {other:?}"),
    }
}

/// Handles a server's CPU completion event: pops every due burst, advances
/// the owning requests, then re-arms the completion timer.
pub(crate) fn on_cpu_completion(world: &mut World, engine: &mut SimEngine, sid: ServerId) {
    loop {
        let now = engine.now();
        let Some(server) = world.system.server_mut(sid) else {
            return;
        };
        match server.cpu_mut().pop_completed(now) {
            Some(fid) => burst_finished(world, engine, fid),
            None => break,
        }
    }
    resched_completion(world, engine, sid);
}

/// A CPU burst belonging to `fid` finished.
fn burst_finished(world: &mut World, engine: &mut SimEngine, fid: FlightId) {
    let phase = world
        .system
        .requests
        .get(fid)
        .and_then(|r| r.frames.last())
        .map(|f| f.phase)
        .expect("burst owner is live with a frame");
    match phase {
        Phase::PreBurst => maybe_call(world, engine, fid),
        Phase::PostBurst => finish_frame(world, engine, fid),
        other => panic!("burst finished in non-burst phase {other:?}"),
    }
}

/// After the pre burst or a returned downstream call: issue the next
/// downstream call if any remain, otherwise run the post burst / finish.
fn maybe_call(world: &mut World, engine: &mut SimEngine, fid: FlightId) {
    let now = engine.now();
    enum Next {
        Call(ServerId),
        Post(ServerId, f64),
        Finish,
    }
    let next = {
        let req = world
            .system
            .requests
            .get_mut(fid)
            .expect("advancing live request");
        let frame = req.frames.last_mut().expect("frame exists");
        let total_calls = req.profile.total_calls_from(frame.tier);
        if frame.calls_done < total_calls {
            frame.phase = Phase::AwaitConn;
            Next::Call(frame.server)
        } else {
            let post = req.profile.demand_for_visit(frame.tier, frame.visit).post;
            if post > 0.0 {
                frame.phase = Phase::PostBurst;
                Next::Post(frame.server, post)
            } else {
                Next::Finish
            }
        }
    };
    match next {
        Next::Call(sid) => {
            let granted = world
                .system
                .server_mut(sid)
                .expect("frame server exists")
                .acquire_conn(now, fid);
            if granted {
                conn_granted(world, engine, fid);
            }
        }
        Next::Post(sid, post) => {
            world
                .system
                .server_mut(sid)
                .expect("frame server exists")
                .start_burst(now, fid, post);
            resched_completion(world, engine, sid);
        }
        Next::Finish => finish_frame(world, engine, fid),
    }
}

/// The top frame acquired its downstream connection: descend into the
/// child tier the profile's call graph routes this call to (always the
/// next tier on a chain; the edge target in call order on a DAG).
fn conn_granted(world: &mut World, engine: &mut SimEngine, fid: FlightId) {
    let (sid, child) = {
        let req = world
            .system
            .requests
            .get(fid)
            .expect("descending live request");
        let frame = req.frames.last().expect("frame exists");
        let child = req.profile.call_target(frame.tier, frame.calls_done);
        (frame.server, child)
    };
    // Only mark the permit when the server actually lends one (leaf servers
    // grant acquire_conn unconditionally without a pool).
    let has_pool = world
        .system
        .server(sid)
        .expect("frame server exists")
        .conn_pool()
        .is_some();
    let frame = world
        .system
        .requests
        .get_mut(fid)
        .expect("descending live request")
        .frames
        .last_mut()
        .expect("frame exists");
    frame.phase = Phase::InCall;
    frame.holds_conn = has_pool;
    enter_tier(world, engine, fid, child);
}

/// The top frame is done at its server: release the thread, reply upstream.
fn finish_frame(world: &mut World, engine: &mut SimEngine, fid: FlightId) {
    let now = engine.now();
    let (sid, dwell) = {
        let req = world
            .system
            .requests
            .get_mut(fid)
            .expect("finishing live request");
        let rid = req.id;
        let frame = req.frames.pop().expect("frame exists");
        world.system.record_span(crate::spans::Span {
            request: rid,
            tier: frame.tier,
            server: frame.server,
            arrived_at: frame.arrived_at,
            started_at: frame.thread_since,
            finished_at: now,
            status: crate::spans::SpanStatus::Completed,
        });
        (
            frame.server,
            now.saturating_since(frame.thread_since).as_secs_f64(),
        )
    };
    let waiter = world
        .system
        .server_mut(sid)
        .expect("frame server exists")
        .release_thread(now, dwell);
    resched_completion(world, engine, sid);
    if let Some(next) = waiter {
        resume_parked(world, engine, next);
    }
    maybe_finish_drain(world, engine, sid);

    let has_parent = world
        .system
        .requests
        .get(fid)
        .map(|r| !r.frames.is_empty())
        .expect("request still live");
    if !has_parent {
        complete(world, engine, fid, Outcome::Completed);
        return;
    }
    // Reply to the parent: return its connection, count the call.
    let (psid, held) = {
        let req = world
            .system
            .requests
            .get_mut(fid)
            .expect("request still live");
        let parent = req.frames.last_mut().expect("parent frame exists");
        parent.calls_done += 1;
        let held = parent.holds_conn;
        parent.holds_conn = false;
        (parent.server, held)
    };
    if held {
        let conn_waiter = world
            .system
            .server_mut(psid)
            .expect("parent server exists")
            .release_conn(now);
        if let Some(next) = conn_waiter {
            resume_parked(world, engine, next);
        }
    }
    maybe_call(world, engine, fid);
}

/// Finishes a request and fires its callback.
fn complete(world: &mut World, engine: &mut SimEngine, fid: FlightId, outcome: Outcome) {
    let now = engine.now();
    let mut req = world
        .system
        .requests
        .remove(fid)
        .expect("completing live request");
    match outcome {
        Outcome::Completed => world.system.counters.completed += 1,
        Outcome::Rejected { .. } => world.system.counters.rejected += 1,
        Outcome::TimedOut => world.system.counters.timed_out += 1,
        Outcome::Failed { .. } => world.system.counters.failed += 1,
    }
    if let Some(ev) = req.timeout_event.take() {
        engine.cancel(ev);
    }
    if let Some(ev) = req.retry_event.take() {
        engine.cancel(ev);
    }
    let completion = Completion {
        id: req.id,
        class: req.profile.class(),
        submitted: req.submitted,
        finished: now,
        outcome,
    };
    if let Some(cb) = req.on_complete.take() {
        cb(world, engine, completion);
    }
}

/// Rejection path: release every resource the request holds, bottom-up,
/// then complete with a rejected outcome.
fn unwind_reject(world: &mut World, engine: &mut SimEngine, fid: FlightId, at_tier: usize) {
    unwind(world, engine, fid, Outcome::Rejected { at_tier });
}

/// Releases every resource the request holds, innermost frame first, then
/// completes it with `outcome`.
///
/// Frames sitting on a *stopped* server (one that just crashed) release
/// nothing: its pools and CPU are being discarded wholesale, and handing a
/// permit to a waiter there would revive work on a dead machine. In normal
/// operation a server only stops once fully drained, so this branch is
/// reachable only through [`crash_server`].
fn unwind(world: &mut World, engine: &mut SimEngine, fid: FlightId, outcome: Outcome) {
    let now = engine.now();
    let status = crate::spans::SpanStatus::from_outcome(&outcome);
    let rid = world
        .system
        .requests
        .get(fid)
        .expect("unwinding live request")
        .id;
    while let Some(frame) = world
        .system
        .requests
        .get_mut(fid)
        .expect("unwinding live request")
        .frames
        .pop()
    {
        let sid = frame.server;
        let Some(server) = world.system.server_mut(sid) else {
            continue;
        };
        if server.is_stopped() {
            if frame.phase != Phase::AwaitThread {
                world.system.record_span(crate::spans::Span {
                    request: rid,
                    tier: frame.tier,
                    server: frame.server,
                    arrived_at: frame.arrived_at,
                    started_at: frame.thread_since,
                    finished_at: now,
                    status,
                });
            } else {
                world.system.note_abandoned_wait(frame.tier);
            }
            continue;
        }
        match frame.phase {
            Phase::AwaitThread => {
                server.cancel_thread_waiter(fid);
                world.system.note_abandoned_wait(frame.tier);
            }
            Phase::AwaitConn => {
                server.cancel_conn_waiter(fid);
                release_thread_during_unwind(world, engine, rid, sid, frame, now, status);
            }
            Phase::PreBurst | Phase::PostBurst => {
                server.cpu_mut().cancel_burst(now, fid);
                release_thread_during_unwind(world, engine, rid, sid, frame, now, status);
            }
            Phase::InCall => {
                if frame.holds_conn {
                    let conn_waiter = server.release_conn(now);
                    if let Some(next) = conn_waiter {
                        resume_parked(world, engine, next);
                    }
                }
                release_thread_during_unwind(world, engine, rid, sid, frame, now, status);
            }
        }
    }
    complete(world, engine, fid, outcome);
}

fn release_thread_during_unwind(
    world: &mut World,
    engine: &mut SimEngine,
    rid: RequestId,
    sid: ServerId,
    frame: Frame,
    now: SimTime,
    status: crate::spans::SpanStatus,
) {
    world.system.record_span(crate::spans::Span {
        request: rid,
        tier: frame.tier,
        server: frame.server,
        arrived_at: frame.arrived_at,
        started_at: frame.thread_since,
        finished_at: now,
        status,
    });
    let dwell = now.saturating_since(frame.thread_since).as_secs_f64();
    let waiter = world
        .system
        .server_mut(sid)
        .expect("unwind server exists")
        .release_thread(now, dwell);
    resched_completion(world, engine, sid);
    if let Some(next) = waiter {
        resume_parked(world, engine, next);
    }
    maybe_finish_drain(world, engine, sid);
}

/// Re-arms a server's CPU completion event after any change to its CPU
/// state (new burst, contention change, pop).
pub fn resched_completion(world: &mut World, engine: &mut SimEngine, sid: ServerId) {
    let now = engine.now();
    let Some(server) = world.system.server_mut(sid) else {
        return;
    };
    if let Some(ev) = server.completion_event.take() {
        engine.cancel(ev);
    }
    server.cpu_mut().advance(now);
    if let Some((at, _)) = server.cpu().next_completion(now) {
        let ev = engine.schedule_at(at, move |w, e| on_cpu_completion(w, e, sid));
        if let Some(server) = world.system.server_mut(sid) {
            server.completion_event = Some(ev);
        }
    }
}

/// Stops and retires a draining server once idle.
fn maybe_finish_drain(world: &mut World, engine: &mut SimEngine, sid: ServerId) {
    let now = engine.now();
    let Some(server) = world.system.server_mut(sid) else {
        return;
    };
    if server.drained() {
        if let Some(ev) = server.completion_event.take() {
            engine.cancel(ev);
        }
        world.system.mark_server_stopped(sid, now);
        world.system.retire_server(sid, now);
    }
}

// ---------------------------------------------------------------------------
// Scaling actions (what the VM-agent executes)
// ---------------------------------------------------------------------------

/// Boots a new VM+server in `tier` with the tier's default soft resources;
/// it becomes routable after the tier's boot delay (the paper's 15-second
/// preparation period). Returns the new server's id.
///
/// # Errors
///
/// [`ScaleError::NoSuchTier`] for a bad index.
pub fn provision_server(
    world: &mut World,
    engine: &mut SimEngine,
    tier: usize,
) -> Result<ServerId, ScaleError> {
    if tier >= world.system.tier_count() {
        return Err(ScaleError::NoSuchTier { tier });
    }
    let now = engine.now();
    let ready_at = now + world.system.tier(tier).spec().boot_delay;
    let sid = world
        .system
        .add_server(TierId(tier), now, ServerState::Starting { ready_at });
    world.system.record_server_event(crate::spans::ServerEvent {
        at: now,
        server: sid,
        tier,
        kind: crate::spans::ServerEventKind::BootRequested { ready_at },
    });
    engine.schedule_at(ready_at, move |w, e| boot_complete(w, e, sid));
    Ok(sid)
}

fn boot_complete(world: &mut World, engine: &mut SimEngine, sid: ServerId) {
    let now = engine.now();
    let p = world.system.boot_failure_prob;
    let failed = p > 0.0 && world.rng.next_f64() < p;
    let Some(server) = world.system.server_mut(sid) else {
        return;
    };
    if !matches!(server.state(), ServerState::Starting { .. }) {
        return;
    }
    let tier = server.tier();
    if failed {
        world.system.mark_server_stopped(sid, now);
        world.system.retire_server(sid, now);
    } else {
        world.system.mark_server_running(sid);
    }
    world.system.record_server_event(crate::spans::ServerEvent {
        at: now,
        server: sid,
        tier,
        kind: if failed {
            crate::spans::ServerEventKind::BootFailed
        } else {
            crate::spans::ServerEventKind::BootCompleted
        },
    });
    let _ = engine;
}

/// Drains and removes one server from `tier` (most recently launched
/// routable first, matching cloud scale-in of the newest instance). The
/// server stops accepting requests immediately and shuts down once idle.
///
/// # Errors
///
/// [`ScaleError::NoSuchTier`] or [`ScaleError::LastServer`].
pub fn decommission_one(
    world: &mut World,
    engine: &mut SimEngine,
    tier: usize,
) -> Result<ServerId, ScaleError> {
    if tier >= world.system.tier_count() {
        return Err(ScaleError::NoSuchTier { tier });
    }
    let routable = world.system.tier(tier).routable_members();
    if routable.len() <= 1 {
        return Err(ScaleError::LastServer { tier });
    }
    let victim = *routable.last().expect("checked non-empty");
    world.system.mark_server_draining(victim);
    world.system.record_server_event(crate::spans::ServerEvent {
        at: engine.now(),
        server: victim,
        tier,
        kind: crate::spans::ServerEventKind::DrainStarted,
    });
    maybe_finish_drain(world, engine, victim);
    Ok(victim)
}

// ---------------------------------------------------------------------------
// Fault injection (what the chaos scheduler executes)
// ---------------------------------------------------------------------------

/// Kills a server instantly: every in-flight request with a frame on it
/// fails with [`Outcome::Failed`], its pools and pending CPU work are
/// discarded, and the balancer stops routing to it (health ejection falls
/// out of [`System::routable`](crate::system::System) filtering on
/// `Running`). A no-op on an already-stopped server.
///
/// Unlike [`decommission_one`] this does not drain: it models a VM dying
/// mid-flight. The tier's monitor stops sampling the server immediately,
/// so a tier losing its last member goes *silent* — exactly the controller
/// blind spot the silent-tier rule in `dcm-core` exists to cover.
pub fn crash_server(world: &mut World, engine: &mut SimEngine, sid: ServerId) {
    let now = engine.now();
    let Some(server) = world.system.server_mut(sid) else {
        return;
    };
    if server.is_stopped() {
        return;
    }
    let tier = server.tier();
    // Dead first: cancel the CPU timer and leave Running before anything
    // else observes the server, so no unwound waiter can restart work here.
    if let Some(ev) = server.completion_event.take() {
        engine.cancel(ev);
    }
    world.system.mark_server_stopped(sid, now);
    world.system.record_server_event(crate::spans::ServerEvent {
        at: now,
        server: sid,
        tier,
        kind: crate::spans::ServerEventKind::Crashed,
    });
    // Sort by the public monotonic id so unwind order matches submission
    // order (the iteration order of the pre-slab id-keyed map).
    let mut victims: Vec<(RequestId, FlightId)> = world
        .system
        .requests
        .iter()
        .filter(|(_, req)| req.frames.iter().any(|f| f.server == sid))
        .map(|(fid, req)| (req.id, fid))
        .collect();
    victims.sort_by_key(|&(rid, _)| rid);
    for (_, fid) in victims {
        // A victim may already have been completed reentrantly (e.g. a
        // resumed waiter failing transiently) by an earlier unwind; its
        // slot generation no longer matches then.
        if world.system.requests.get(fid).is_some() {
            unwind(world, engine, fid, Outcome::Failed { at_tier: tier });
        }
    }
    world.system.retire_server(sid, now);
}

/// Sets a server's straggler multiplier: future CPU bursts cost
/// `factor ×` their nominal work (1.0 restores full speed). Bursts already
/// on the CPU keep their original cost. A no-op on a stopped server.
pub fn set_server_slowdown(world: &mut World, engine: &mut SimEngine, sid: ServerId, factor: f64) {
    let tier = match world.system.server_mut(sid) {
        Some(server) if !server.is_stopped() => {
            server.set_slowdown(factor);
            server.tier()
        }
        _ => return,
    };
    world.system.record_server_event(crate::spans::ServerEvent {
        at: engine.now(),
        server: sid,
        tier,
        kind: crate::spans::ServerEventKind::SlowdownSet { factor },
    });
}

// ---------------------------------------------------------------------------
// Soft-resource actions (what the APP-agent executes)
// ---------------------------------------------------------------------------

/// Sets the thread-pool size of every non-stopped server in `tier`,
/// resuming any requests the resize admits.
///
/// # Errors
///
/// [`ScaleError::NoSuchTier`] for a bad index.
pub fn set_tier_thread_pools(
    world: &mut World,
    engine: &mut SimEngine,
    tier: usize,
    size: u32,
) -> Result<(), ScaleError> {
    if tier >= world.system.tier_count() {
        return Err(ScaleError::NoSuchTier { tier });
    }
    // Index loop: membership cannot change inside the resize calls, and an
    // index walk avoids cloning the member list per scaling action.
    let n = world.system.tier(tier).members().len();
    for i in 0..n {
        let sid = world.system.tier(tier).members()[i];
        set_server_thread_pool(world, engine, sid, size);
    }
    Ok(())
}

/// Sets the downstream connection-pool size of every non-stopped server in
/// `tier`, resuming any requests the resize admits.
///
/// # Errors
///
/// [`ScaleError::NoSuchTier`] for a bad index.
pub fn set_tier_conn_pools(
    world: &mut World,
    engine: &mut SimEngine,
    tier: usize,
    size: u32,
) -> Result<(), ScaleError> {
    if tier >= world.system.tier_count() {
        return Err(ScaleError::NoSuchTier { tier });
    }
    // Index loop for the same reason as `set_tier_thread_pools`.
    let n = world.system.tier(tier).members().len();
    for i in 0..n {
        let sid = world.system.tier(tier).members()[i];
        set_server_conn_pool(world, engine, sid, size);
    }
    Ok(())
}

/// Resizes one server's thread pool at runtime.
pub fn set_server_thread_pool(world: &mut World, engine: &mut SimEngine, sid: ServerId, size: u32) {
    let now = engine.now();
    let admitted = match world.system.server_mut(sid) {
        Some(server) if !server.is_stopped() => server.resize_thread_pool(now, size),
        _ => return,
    };
    resched_completion(world, engine, sid);
    for fid in admitted {
        resume_parked(world, engine, fid);
    }
}

/// Resizes one server's downstream connection pool at runtime.
pub fn set_server_conn_pool(world: &mut World, engine: &mut SimEngine, sid: ServerId, size: u32) {
    let now = engine.now();
    let admitted = match world.system.server_mut(sid) {
        Some(server) if !server.is_stopped() => server.resize_conn_pool(now, size),
        _ => return,
    };
    for fid in admitted {
        resume_parked(world, engine, fid);
    }
}
