//! # dcm-ntier — n-tier web application simulator
//!
//! The substrate on which the DCM reproduction runs its experiments: a
//! discrete-event model of a multi-tier web deployment (the paper's
//! Apache → Tomcat → MySQL RUBBoS stack) with the properties the paper's
//! argument hinges on:
//!
//! * **Soft resources are first-class.** Every server has a thread
//!   [`pool::Pool`]; application servers additionally hold a downstream
//!   connection pool. Both are resizable *at runtime without disruption*
//!   (shrinks drain, grows admit waiters) — the APP-agent's actuation
//!   surface.
//! * **Concurrency hurts past a knee.** Server CPUs follow the paper's
//!   multi-threading law ([`law::ServiceLaw`], Eq. 5–7): throughput rises
//!   with concurrency, peaks at `N* = √((S⁰−α)/β)`, then falls. This is the
//!   mechanism behind Fig. 2(a)'s dome and everything DCM exploits.
//! * **Hardware scaling is VM-shaped.** Servers boot with a preparation
//!   delay, drain on decommission, and accrue VM-seconds for the
//!   resource-efficiency comparison ([`flow::provision_server`],
//!   [`flow::decommission_one`]).
//! * **Requests flow like RUBBoS interactions.** One HTTP request holds an
//!   Apache thread, triggers a Tomcat call which holds a thread across
//!   `V_db` sequential MySQL queries, each holding a DB connection
//!   ([`request::RequestProfile`]).
//!
//! ## Quick start
//!
//! ```
//! use dcm_ntier::flow;
//! use dcm_ntier::request::{RequestProfile, StageDemand};
//! use dcm_ntier::topology::ThreeTierBuilder;
//! use dcm_sim::time::SimTime;
//!
//! let (mut world, mut engine) = ThreeTierBuilder::new().build();
//!
//! let profile = RequestProfile::new(
//!     vec![
//!         StageDemand::pre_only(0.0006),  // Apache
//!         StageDemand::split(0.0284),     // Tomcat, split around DB calls
//!         StageDemand::pre_only(0.00719), // MySQL, per query
//!     ],
//!     vec![1, 1, 2], // one AJP call, two SQL queries
//!     0,
//! );
//! flow::submit(&mut world, &mut engine, profile, Box::new(|_w, _e, done| {
//!     assert!(done.is_success());
//! }));
//! engine.run_until(&mut world, SimTime::from_secs(10));
//! assert_eq!(world.system.counters().completed, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod audit;
pub mod balancer;
pub mod cpu;
pub mod faults;
pub mod flow;
pub mod graph;
pub mod ids;
pub mod law;
pub mod metrics;
pub mod pool;
pub mod request;
pub mod server;
pub mod snapshot;
pub mod spans;
pub mod system;
pub mod topology;
pub mod world;

pub use audit::{AuditReport, ConservationAuditor, Violation};
pub use balancer::{Balancer, BalancerPolicy};
pub use graph::{GraphEdge, TopologyGraph};
pub use ids::{RequestId, ServerId, TierId, VmId};
pub use law::ServiceLaw;
pub use metrics::ServerSample;
pub use pool::Pool;
pub use request::{Completion, Outcome, RequestProfile, StageDemand};
pub use server::{Server, ServerSpec, ServerState, VmType};
pub use snapshot::SystemSnapshot;
pub use spans::{ServerEvent, ServerEventKind, Span, SpanStatus};
pub use system::{FlowLedger, InterTierRetry, System, SystemCounters, TierSpec, VmPolicy, VmSelection};
pub use topology::{MeshBuilder, MeshNode, SoftConfig, ThreeTierBuilder};
pub use world::{SimEngine, World};
