//! Convenience construction of the paper's RUBBoS-style three-tier
//! deployment (`#W/#A/#D` hardware notation, `#W_T/#A_T/#A_C` soft-resource
//! notation).

use dcm_sim::time::SimDuration;

use crate::balancer::BalancerPolicy;
use crate::law::{reference, ServiceLaw};
use crate::system::{System, TierSpec};
use crate::world::{SimEngine, World};

/// The paper's soft-resource triple: Apache thread pool, Tomcat thread
/// pool, Tomcat→MySQL connection pool (e.g. the default `1000-100-80`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftConfig {
    /// Apache (web tier) thread-pool size, `#W_T`.
    pub web_threads: u32,
    /// Tomcat (app tier) thread-pool size per server, `#A_T`.
    pub app_threads: u32,
    /// Tomcat DB connection-pool size per server, `#A_C`.
    pub db_conns: u32,
}

impl SoftConfig {
    /// The paper's default allocation `1000-100-80`.
    pub const DEFAULT: SoftConfig = SoftConfig {
        web_threads: 1000,
        app_threads: 100,
        db_conns: 80,
    };

    /// Creates a triple.
    ///
    /// # Panics
    ///
    /// Panics if any pool size is zero.
    pub fn new(web_threads: u32, app_threads: u32, db_conns: u32) -> Self {
        assert!(
            web_threads > 0 && app_threads > 0 && db_conns > 0,
            "pool sizes must be positive"
        );
        SoftConfig {
            web_threads,
            app_threads,
            db_conns,
        }
    }
}

impl Default for SoftConfig {
    fn default() -> Self {
        SoftConfig::DEFAULT
    }
}

/// Builder for a three-tier (web/app/db) world.
///
/// # Examples
///
/// ```
/// use dcm_ntier::topology::{SoftConfig, ThreeTierBuilder};
///
/// // The paper's 1/2/1 scale-out with the default soft allocation.
/// let (world, engine) = ThreeTierBuilder::new()
///     .counts(1, 2, 1)
///     .soft(SoftConfig::DEFAULT)
///     .seed(42)
///     .build();
/// assert_eq!(world.system.running_count(1), 2);
/// drop((world, engine));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ThreeTierBuilder {
    web: u32,
    app: u32,
    db: u32,
    soft: SoftConfig,
    web_law: ServiceLaw,
    app_law: ServiceLaw,
    db_law: ServiceLaw,
    db_threads: u32,
    balancer: BalancerPolicy,
    boot_delay: SimDuration,
    seed: u64,
    db_load_balancer: bool,
}

impl Default for ThreeTierBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ThreeTierBuilder {
    /// Starts from the paper's baseline: `1/1/1` hardware, `1000-100-80`
    /// soft resources, Table I ground-truth laws, round-robin balancing,
    /// 15-second VM preparation.
    pub fn new() -> Self {
        ThreeTierBuilder {
            web: 1,
            app: 1,
            db: 1,
            soft: SoftConfig::DEFAULT,
            web_law: reference::apache(),
            app_law: reference::tomcat(),
            db_law: reference::mysql(),
            // MySQL max_connections: high enough that the *upstream*
            // connection pool is what actually caps DB concurrency, as in
            // the paper's deployment.
            db_threads: 800,
            balancer: BalancerPolicy::RoundRobin,
            boot_delay: SimDuration::from_secs(15),
            seed: 1,
            db_load_balancer: false,
        }
    }

    /// Sets the `#W/#A/#D` server counts.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero.
    pub fn counts(mut self, web: u32, app: u32, db: u32) -> Self {
        assert!(web > 0 && app > 0 && db > 0, "tier counts must be positive");
        self.web = web;
        self.app = app;
        self.db = db;
        self
    }

    /// Sets the soft-resource triple.
    pub fn soft(mut self, soft: SoftConfig) -> Self {
        self.soft = soft;
        self
    }

    /// Overrides the web-tier law.
    pub fn web_law(mut self, law: ServiceLaw) -> Self {
        self.web_law = law;
        self
    }

    /// Overrides the app-tier law.
    pub fn app_law(mut self, law: ServiceLaw) -> Self {
        self.app_law = law;
        self
    }

    /// Overrides the db-tier law.
    pub fn db_law(mut self, law: ServiceLaw) -> Self {
        self.db_law = law;
        self
    }

    /// Overrides the MySQL server-side thread cap (`max_connections`).
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn db_threads(mut self, threads: u32) -> Self {
        assert!(threads > 0, "db threads must be positive");
        self.db_threads = threads;
        self
    }

    /// Sets the balancing policy for the scalable tiers.
    pub fn balancer(mut self, policy: BalancerPolicy) -> Self {
        self.balancer = policy;
        self
    }

    /// Sets the VM preparation period.
    pub fn boot_delay(mut self, delay: SimDuration) -> Self {
        self.boot_delay = delay;
        self
    }

    /// Sets the world RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Inserts the paper's optional fourth tier: an HAProxy load-balancer
    /// tier in front of the databases (the "four-tier" RUBBoS deployment
    /// of Fig. 1). The LB is a cheap pass-through; queries still fan out
    /// over the DB servers, and the app tier's connection pool still caps
    /// DB concurrency. Workloads must then use four-tier request profiles
    /// (e.g. `ProfileFactory::rubbos_four_tier`).
    pub fn with_db_load_balancer(mut self) -> Self {
        self.db_load_balancer = true;
        self
    }

    /// The tier specs this builder would install (exposed for custom
    /// [`System`] construction).
    pub fn tier_specs(&self) -> Vec<TierSpec> {
        let mut specs = vec![
            TierSpec {
                name: "web".into(),
                law: self.web_law,
                default_threads: self.soft.web_threads,
                default_conns: None,
                balancer: self.balancer,
                boot_delay: self.boot_delay,
            },
            TierSpec {
                name: "app".into(),
                law: self.app_law,
                default_threads: self.soft.app_threads,
                default_conns: Some(self.soft.db_conns),
                balancer: self.balancer,
                boot_delay: self.boot_delay,
            },
        ];
        if self.db_load_balancer {
            specs.push(TierSpec {
                name: "lb".into(),
                // HAProxy forwards in O(100 µs) with negligible contention.
                law: ServiceLaw::new(1.0e-4, 1.0e-6, 1.0e-10),
                default_threads: 4096,
                default_conns: None,
                balancer: self.balancer,
                boot_delay: self.boot_delay,
            });
        }
        specs.push(TierSpec {
            name: "db".into(),
            law: self.db_law,
            default_threads: self.db_threads,
            default_conns: None,
            balancer: self.balancer,
            boot_delay: self.boot_delay,
        });
        specs
    }

    /// Builds the world and a fresh engine.
    pub fn build(&self) -> (World, SimEngine) {
        let counts: Vec<u32> = if self.db_load_balancer {
            vec![self.web, self.app, 1, self.db]
        } else {
            vec![self.web, self.app, self.db]
        };
        let system = System::new(self.tier_specs(), &counts, dcm_sim::time::SimTime::ZERO);
        (World::new(system, self.seed), SimEngine::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_baseline() {
        let (world, _engine) = ThreeTierBuilder::new().build();
        assert_eq!(world.system.tier_count(), 3);
        assert_eq!(world.system.running_count(0), 1);
        assert_eq!(world.system.running_count(1), 1);
        assert_eq!(world.system.running_count(2), 1);
        let app = world.system.tier(1);
        assert_eq!(app.spec().default_threads, 100);
        assert_eq!(app.spec().default_conns, Some(80));
    }

    #[test]
    fn soft_config_applies_to_servers() {
        let (world, _engine) = ThreeTierBuilder::new()
            .soft(SoftConfig::new(500, 20, 18))
            .counts(1, 2, 1)
            .build();
        for &sid in world.system.tier(1).members() {
            let s = world.system.server(sid).unwrap();
            assert_eq!(s.thread_pool().capacity(), 20);
            assert_eq!(s.conn_pool().unwrap().capacity(), 18);
        }
        let web = world.system.tier(0).members()[0];
        assert_eq!(
            world.system.server(web).unwrap().thread_pool().capacity(),
            500
        );
    }

    #[test]
    fn four_tier_inserts_lb() {
        let (world, _engine) = ThreeTierBuilder::new()
            .counts(1, 2, 2)
            .with_db_load_balancer()
            .build();
        assert_eq!(world.system.tier_count(), 4);
        assert_eq!(world.system.tier(2).spec().name, "lb");
        assert_eq!(world.system.running_count(2), 1);
        assert_eq!(world.system.running_count(3), 2);
    }

    #[test]
    #[should_panic(expected = "pool sizes must be positive")]
    fn zero_soft_config_rejected() {
        let _ = SoftConfig::new(0, 1, 1);
    }

    #[test]
    #[should_panic(expected = "tier counts must be positive")]
    fn zero_counts_rejected() {
        let _ = ThreeTierBuilder::new().counts(1, 0, 1);
    }
}
