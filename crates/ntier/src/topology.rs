//! Convenience construction of the paper's RUBBoS-style three-tier
//! deployment (`#W/#A/#D` hardware notation, `#W_T/#A_T/#A_C` soft-resource
//! notation).

use dcm_sim::time::SimDuration;

use crate::balancer::BalancerPolicy;
use crate::graph::TopologyGraph;
use crate::law::{reference, ServiceLaw};
use crate::system::{System, TierSpec, VmPolicy};
use crate::world::{SimEngine, World};

/// The paper's soft-resource triple: Apache thread pool, Tomcat thread
/// pool, Tomcat→MySQL connection pool (e.g. the default `1000-100-80`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftConfig {
    /// Apache (web tier) thread-pool size, `#W_T`.
    pub web_threads: u32,
    /// Tomcat (app tier) thread-pool size per server, `#A_T`.
    pub app_threads: u32,
    /// Tomcat DB connection-pool size per server, `#A_C`.
    pub db_conns: u32,
}

impl SoftConfig {
    /// The paper's default allocation `1000-100-80`.
    pub const DEFAULT: SoftConfig = SoftConfig {
        web_threads: 1000,
        app_threads: 100,
        db_conns: 80,
    };

    /// Creates a triple.
    ///
    /// # Panics
    ///
    /// Panics if any pool size is zero.
    pub fn new(web_threads: u32, app_threads: u32, db_conns: u32) -> Self {
        assert!(
            web_threads > 0 && app_threads > 0 && db_conns > 0,
            "pool sizes must be positive"
        );
        SoftConfig {
            web_threads,
            app_threads,
            db_conns,
        }
    }
}

impl Default for SoftConfig {
    fn default() -> Self {
        SoftConfig::DEFAULT
    }
}

/// Builder for a three-tier (web/app/db) world.
///
/// # Examples
///
/// ```
/// use dcm_ntier::topology::{SoftConfig, ThreeTierBuilder};
///
/// // The paper's 1/2/1 scale-out with the default soft allocation.
/// let (world, engine) = ThreeTierBuilder::new()
///     .counts(1, 2, 1)
///     .soft(SoftConfig::DEFAULT)
///     .seed(42)
///     .build();
/// assert_eq!(world.system.running_count(1), 2);
/// drop((world, engine));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ThreeTierBuilder {
    web: u32,
    app: u32,
    db: u32,
    soft: SoftConfig,
    web_law: ServiceLaw,
    app_law: ServiceLaw,
    db_law: ServiceLaw,
    db_threads: u32,
    balancer: BalancerPolicy,
    boot_delay: SimDuration,
    seed: u64,
    db_load_balancer: bool,
}

impl Default for ThreeTierBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ThreeTierBuilder {
    /// Starts from the paper's baseline: `1/1/1` hardware, `1000-100-80`
    /// soft resources, Table I ground-truth laws, round-robin balancing,
    /// 15-second VM preparation.
    pub fn new() -> Self {
        ThreeTierBuilder {
            web: 1,
            app: 1,
            db: 1,
            soft: SoftConfig::DEFAULT,
            web_law: reference::apache(),
            app_law: reference::tomcat(),
            db_law: reference::mysql(),
            // MySQL max_connections: high enough that the *upstream*
            // connection pool is what actually caps DB concurrency, as in
            // the paper's deployment.
            db_threads: 800,
            balancer: BalancerPolicy::RoundRobin,
            boot_delay: SimDuration::from_secs(15),
            seed: 1,
            db_load_balancer: false,
        }
    }

    /// Sets the `#W/#A/#D` server counts.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero.
    pub fn counts(mut self, web: u32, app: u32, db: u32) -> Self {
        assert!(web > 0 && app > 0 && db > 0, "tier counts must be positive");
        self.web = web;
        self.app = app;
        self.db = db;
        self
    }

    /// Sets the soft-resource triple.
    pub fn soft(mut self, soft: SoftConfig) -> Self {
        self.soft = soft;
        self
    }

    /// Overrides the web-tier law.
    pub fn web_law(mut self, law: ServiceLaw) -> Self {
        self.web_law = law;
        self
    }

    /// Overrides the app-tier law.
    pub fn app_law(mut self, law: ServiceLaw) -> Self {
        self.app_law = law;
        self
    }

    /// Overrides the db-tier law.
    pub fn db_law(mut self, law: ServiceLaw) -> Self {
        self.db_law = law;
        self
    }

    /// Overrides the MySQL server-side thread cap (`max_connections`).
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn db_threads(mut self, threads: u32) -> Self {
        assert!(threads > 0, "db threads must be positive");
        self.db_threads = threads;
        self
    }

    /// Sets the balancing policy for the scalable tiers.
    pub fn balancer(mut self, policy: BalancerPolicy) -> Self {
        self.balancer = policy;
        self
    }

    /// Sets the VM preparation period.
    pub fn boot_delay(mut self, delay: SimDuration) -> Self {
        self.boot_delay = delay;
        self
    }

    /// Sets the world RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Inserts the paper's optional fourth tier: an HAProxy load-balancer
    /// tier in front of the databases (the "four-tier" RUBBoS deployment
    /// of Fig. 1). The LB is a cheap pass-through; queries still fan out
    /// over the DB servers, and the app tier's connection pool still caps
    /// DB concurrency. Workloads must then use four-tier request profiles
    /// (e.g. `ProfileFactory::rubbos_four_tier`).
    pub fn with_db_load_balancer(mut self) -> Self {
        self.db_load_balancer = true;
        self
    }

    /// The tier specs this builder would install (exposed for custom
    /// [`System`] construction).
    pub fn tier_specs(&self) -> Vec<TierSpec> {
        let mut specs = vec![
            TierSpec {
                name: "web".into(),
                law: self.web_law,
                default_threads: self.soft.web_threads,
                default_conns: None,
                balancer: self.balancer,
                boot_delay: self.boot_delay,
                vm_policy: VmPolicy::default(),
            },
            TierSpec {
                name: "app".into(),
                law: self.app_law,
                default_threads: self.soft.app_threads,
                default_conns: Some(self.soft.db_conns),
                balancer: self.balancer,
                boot_delay: self.boot_delay,
                vm_policy: VmPolicy::default(),
            },
        ];
        if self.db_load_balancer {
            specs.push(TierSpec {
                name: "lb".into(),
                // HAProxy forwards in O(100 µs) with negligible contention.
                law: ServiceLaw::new(1.0e-4, 1.0e-6, 1.0e-10),
                default_threads: 4096,
                default_conns: None,
                balancer: self.balancer,
                boot_delay: self.boot_delay,
                vm_policy: VmPolicy::default(),
            });
        }
        specs.push(TierSpec {
            name: "db".into(),
            law: self.db_law,
            default_threads: self.db_threads,
            default_conns: None,
            balancer: self.balancer,
            boot_delay: self.boot_delay,
            vm_policy: VmPolicy::default(),
        });
        specs
    }

    /// Builds the world and a fresh engine.
    pub fn build(&self) -> (World, SimEngine) {
        let counts: Vec<u32> = if self.db_load_balancer {
            vec![self.web, self.app, 1, self.db]
        } else {
            vec![self.web, self.app, self.db]
        };
        let system = System::new(self.tier_specs(), &counts, dcm_sim::time::SimTime::ZERO);
        (World::new(system, self.seed), SimEngine::new())
    }
}

/// One tier of a [`MeshBuilder`] deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshNode {
    /// Display name (e.g. `"svc-a"`, `"cache"`).
    pub name: String,
    /// Multi-threading law for the node's servers.
    pub law: ServiceLaw,
    /// Thread-pool size per server.
    pub threads: u32,
    /// Downstream connection-pool size per server, if the node pools its
    /// outbound calls.
    pub conns: Option<u32>,
    /// Initial server count.
    pub count: u32,
    /// VM catalogue and selection rule for servers of this tier.
    pub vm_policy: VmPolicy,
}

impl MeshNode {
    /// A node with the given name, law, thread pool, and one server on the
    /// default (homogeneous `m1.small`) VM policy.
    pub fn new(name: impl Into<String>, law: ServiceLaw, threads: u32) -> Self {
        assert!(threads > 0, "pool sizes must be positive");
        MeshNode {
            name: name.into(),
            law,
            threads,
            conns: None,
            count: 1,
            vm_policy: VmPolicy::default(),
        }
    }

    /// Sets the outbound connection-pool size.
    pub fn conns(mut self, conns: u32) -> Self {
        assert!(conns > 0, "pool sizes must be positive");
        self.conns = Some(conns);
        self
    }

    /// Sets the initial server count.
    pub fn count(mut self, count: u32) -> Self {
        assert!(count > 0, "tier counts must be positive");
        self.count = count;
        self
    }

    /// Sets the VM policy (catalogue + selection rule) for this tier.
    pub fn vm_policy(mut self, policy: VmPolicy) -> Self {
        self.vm_policy = policy;
        self
    }
}

/// Builder for an arbitrary microservice-DAG world: one [`MeshNode`] per
/// tier, with the call structure supplied per-request via
/// [`crate::request::RequestProfile::with_graph`].
///
/// [`ThreeTierBuilder`] remains the chain special case; `MeshBuilder` is
/// the general form used by the `repro mesh` scenarios (fan-out services,
/// cache tiers, heterogeneous VM types).
///
/// # Examples
///
/// ```
/// use dcm_ntier::law::reference;
/// use dcm_ntier::topology::{MeshBuilder, MeshNode};
///
/// let (world, engine) = MeshBuilder::new()
///     .node(MeshNode::new("web", reference::apache(), 1000))
///     .node(MeshNode::new("app", reference::tomcat(), 100).conns(80).count(2))
///     .node(MeshNode::new("db", reference::mysql(), 800))
///     .seed(42)
///     .build();
/// assert_eq!(world.system.tier_count(), 3);
/// assert_eq!(world.system.running_count(1), 2);
/// drop((world, engine));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MeshBuilder {
    nodes: Vec<MeshNode>,
    balancer: BalancerPolicy,
    boot_delay: SimDuration,
    seed: u64,
}

impl Default for MeshBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl MeshBuilder {
    /// Starts an empty mesh with round-robin balancing and the 15-second
    /// VM preparation delay.
    pub fn new() -> Self {
        MeshBuilder {
            nodes: Vec::new(),
            balancer: BalancerPolicy::RoundRobin,
            boot_delay: SimDuration::from_secs(15),
            seed: 1,
        }
    }

    /// Appends a tier. Tier indices follow insertion order; the entry tier
    /// is the first node added.
    pub fn node(mut self, node: MeshNode) -> Self {
        self.nodes.push(node);
        self
    }

    /// Sets the balancing policy for every tier.
    pub fn balancer(mut self, policy: BalancerPolicy) -> Self {
        self.balancer = policy;
        self
    }

    /// Sets the VM preparation period.
    pub fn boot_delay(mut self, delay: SimDuration) -> Self {
        self.boot_delay = delay;
        self
    }

    /// Sets the world RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of tiers added so far.
    pub fn tier_count(&self) -> usize {
        self.nodes.len()
    }

    /// Asserts that `graph` is shaped for this mesh (same tier count).
    /// Call structure itself lives on request profiles, so this is a
    /// construction-time sanity check, not a stored field.
    ///
    /// # Panics
    ///
    /// Panics if the graph's tier count differs from the node count.
    pub fn check_graph(&self, graph: &TopologyGraph) -> &Self {
        assert_eq!(
            graph.tiers(),
            self.nodes.len(),
            "topology graph tier count must match mesh node count"
        );
        self
    }

    /// The tier specs this builder would install.
    pub fn tier_specs(&self) -> Vec<TierSpec> {
        let mut specs = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            specs.push(TierSpec {
                name: node.name.clone(),
                law: node.law,
                default_threads: node.threads,
                default_conns: node.conns,
                balancer: self.balancer,
                boot_delay: self.boot_delay,
                vm_policy: node.vm_policy.clone(),
            });
        }
        specs
    }

    /// Builds the world and a fresh engine.
    ///
    /// # Panics
    ///
    /// Panics if no nodes were added.
    pub fn build(&self) -> (World, SimEngine) {
        assert!(!self.nodes.is_empty(), "mesh needs at least one node");
        let counts: Vec<u32> = self.nodes.iter().map(|n| n.count).collect();
        let system = System::new(self.tier_specs(), &counts, dcm_sim::time::SimTime::ZERO);
        (World::new(system, self.seed), SimEngine::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_baseline() {
        let (world, _engine) = ThreeTierBuilder::new().build();
        assert_eq!(world.system.tier_count(), 3);
        assert_eq!(world.system.running_count(0), 1);
        assert_eq!(world.system.running_count(1), 1);
        assert_eq!(world.system.running_count(2), 1);
        let app = world.system.tier(1);
        assert_eq!(app.spec().default_threads, 100);
        assert_eq!(app.spec().default_conns, Some(80));
    }

    #[test]
    fn soft_config_applies_to_servers() {
        let (world, _engine) = ThreeTierBuilder::new()
            .soft(SoftConfig::new(500, 20, 18))
            .counts(1, 2, 1)
            .build();
        for &sid in world.system.tier(1).members() {
            let s = world.system.server(sid).unwrap();
            assert_eq!(s.thread_pool().capacity(), 20);
            assert_eq!(s.conn_pool().unwrap().capacity(), 18);
        }
        let web = world.system.tier(0).members()[0];
        assert_eq!(
            world.system.server(web).unwrap().thread_pool().capacity(),
            500
        );
    }

    #[test]
    fn four_tier_inserts_lb() {
        let (world, _engine) = ThreeTierBuilder::new()
            .counts(1, 2, 2)
            .with_db_load_balancer()
            .build();
        assert_eq!(world.system.tier_count(), 4);
        assert_eq!(world.system.tier(2).spec().name, "lb");
        assert_eq!(world.system.running_count(2), 1);
        assert_eq!(world.system.running_count(3), 2);
    }

    #[test]
    #[should_panic(expected = "pool sizes must be positive")]
    fn zero_soft_config_rejected() {
        let _ = SoftConfig::new(0, 1, 1);
    }

    #[test]
    #[should_panic(expected = "tier counts must be positive")]
    fn zero_counts_rejected() {
        let _ = ThreeTierBuilder::new().counts(1, 0, 1);
    }

    fn chain_mesh(three: &ThreeTierBuilder) -> MeshBuilder {
        MeshBuilder::new()
            .node(MeshNode::new("web", reference::apache(), 1000))
            .node(MeshNode::new("app", reference::tomcat(), 100).conns(80).count(2))
            .node(MeshNode::new("db", reference::mysql(), 800))
            .seed(7)
            .balancer(three.balancer)
            .boot_delay(three.boot_delay)
    }

    #[test]
    fn chain_shaped_mesh_specs_match_three_tier_builder() {
        // Degeneracy: a mesh configured as the paper's chain must install
        // the *same* tier specs as the dedicated chain builder.
        let three = ThreeTierBuilder::new().counts(1, 2, 1).seed(7);
        let mesh = chain_mesh(&three);
        assert_eq!(mesh.tier_specs(), three.tier_specs());
        let (mw, _me) = mesh.build();
        let (tw, _te) = three.build();
        assert_eq!(mw.system.tier_count(), tw.system.tier_count());
        for m in 0..3 {
            assert_eq!(mw.system.running_count(m), tw.system.running_count(m));
        }
    }

    #[test]
    fn mesh_check_graph_accepts_matching_shape() {
        let mesh = MeshBuilder::new()
            .node(MeshNode::new("web", reference::apache(), 1000))
            .node(MeshNode::new("svc", reference::tomcat(), 100).conns(80))
            .node(MeshNode::new("db", reference::mysql(), 800));
        let g = TopologyGraph::chain(&[1, 1, 2]);
        mesh.check_graph(&g);
        assert_eq!(mesh.tier_count(), 3);
    }

    #[test]
    #[should_panic(expected = "topology graph tier count must match")]
    fn mesh_check_graph_rejects_shape_mismatch() {
        let mesh = MeshBuilder::new().node(MeshNode::new("web", reference::apache(), 10));
        let g = TopologyGraph::chain(&[1, 1]);
        mesh.check_graph(&g);
    }

    #[test]
    fn mesh_heterogeneous_vm_policies_take_effect() {
        use crate::server::VmType;
        let (world, _engine) = MeshBuilder::new()
            .node(MeshNode::new("web", reference::apache(), 1000))
            .node(
                MeshNode::new("db", reference::mysql(), 800)
                    .count(2)
                    .vm_policy(VmPolicy::fixed(VmType::LARGE)),
            )
            .build();
        for &sid in world.system.tier(1).members() {
            let s = world.system.server(sid).unwrap();
            assert_eq!(s.vm_type(), VmType::LARGE);
        }
        let web = world.system.tier(0).members()[0];
        assert_eq!(world.system.server(web).unwrap().vm_type(), VmType::SMALL);
    }

    #[test]
    #[should_panic(expected = "mesh needs at least one node")]
    fn empty_mesh_rejected() {
        let _ = MeshBuilder::new().build();
    }
}
