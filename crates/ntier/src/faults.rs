//! Interpreting a [`FaultPlan`] against a live n-tier world.
//!
//! `dcm_sim::faults` describes *when* faults fire and which tier/rank they
//! strike; this module resolves those ranks against the tier's routable
//! members at fire time and executes the fault through the flow layer
//! ([`flow::crash_server`], [`flow::set_server_slowdown`]). Resolving at
//! fire time (rather than install time) keeps one plan meaningful across
//! controllers that grow and shrink tiers differently, and means a fault
//! aimed at a tier that momentarily has no routable member simply misses.

use dcm_sim::faults::{FaultKind, FaultPlan};
use dcm_sim::time::{SimDuration, SimTime};

use crate::flow;
use crate::world::{SimEngine, World};

/// Installs every event of `plan` into the engine and arms the plan's
/// transient per-request failure probability on the system.
///
/// Victims are resolved when the event fires: rank `victim` indexes the
/// tier's routable members modulo their count. Straggler recovery is
/// scheduled against the concrete server id, so a slowed server recovers
/// even if membership churned in between (and a crash of the straggler in
/// the meantime makes the recovery a no-op).
pub fn install_fault_plan(world: &mut World, engine: &mut SimEngine, plan: &FaultPlan) {
    world.system.transient_failure_prob = plan.transient_failure_prob;
    for event in &plan.events {
        let at = SimTime::from_secs_f64(event.at_secs);
        let tier = event.tier;
        let victim = event.victim;
        match event.kind {
            FaultKind::Crash => {
                engine.schedule_at(at, move |w: &mut World, e: &mut SimEngine| {
                    if let Some(sid) = resolve_victim(w, tier, victim) {
                        flow::crash_server(w, e, sid);
                    }
                });
            }
            FaultKind::Straggler {
                factor,
                duration_secs,
            } => {
                engine.schedule_at(at, move |w: &mut World, e: &mut SimEngine| {
                    let Some(sid) = resolve_victim(w, tier, victim) else {
                        return;
                    };
                    flow::set_server_slowdown(w, e, sid, factor);
                    e.schedule_in(
                        SimDuration::from_secs_f64(duration_secs),
                        move |w: &mut World, e: &mut SimEngine| {
                            flow::set_server_slowdown(w, e, sid, 1.0);
                        },
                    );
                });
            }
        }
    }
}

fn resolve_victim(world: &World, tier: usize, victim: usize) -> Option<crate::ids::ServerId> {
    if tier >= world.system.tier_count() {
        return None;
    }
    let members = world.system.routable(tier);
    if members.is_empty() {
        return None;
    }
    Some(members[victim % members.len()].0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ThreeTierBuilder;

    #[test]
    fn crash_event_kills_a_routable_member() {
        let (mut world, mut engine) = ThreeTierBuilder::new().counts(1, 2, 1).build();
        let plan = FaultPlan::none().with_crash(10.0, 1, 0);
        install_fault_plan(&mut world, &mut engine, &plan);
        assert_eq!(world.system.running_count(1), 2);
        engine.run_until(&mut world, SimTime::from_secs(11));
        assert_eq!(world.system.running_count(1), 1);
    }

    #[test]
    fn straggler_slows_then_recovers() {
        let (mut world, mut engine) = ThreeTierBuilder::new().build();
        let plan = FaultPlan::none().with_straggler(5.0, 1, 0, 4.0, 10.0);
        install_fault_plan(&mut world, &mut engine, &plan);
        engine.run_until(&mut world, SimTime::from_secs(6));
        let sid = world.system.tier(1).members()[0];
        assert_eq!(world.system.server(sid).unwrap().slowdown(), 4.0);
        engine.run_until(&mut world, SimTime::from_secs(16));
        assert_eq!(world.system.server(sid).unwrap().slowdown(), 1.0);
    }

    #[test]
    fn fault_on_empty_tier_misses() {
        let (mut world, mut engine) = ThreeTierBuilder::new().counts(1, 1, 1).build();
        let plan = FaultPlan::none()
            .with_crash(5.0, 1, 0)
            .with_crash(6.0, 1, 0);
        install_fault_plan(&mut world, &mut engine, &plan);
        engine.run_until(&mut world, SimTime::from_secs(7));
        // First crash empties the tier; the second finds no victim.
        assert_eq!(world.system.running_count(1), 0);
    }

    #[test]
    fn transient_prob_is_armed() {
        let (mut world, mut engine) = ThreeTierBuilder::new().build();
        let plan = FaultPlan::none().with_transient_failures(0.01);
        install_fault_plan(&mut world, &mut engine, &plan);
        assert_eq!(world.system.transient_failure_prob, 0.01);
    }
}
