//! Property-based tests for the n-tier simulator: pool accounting, the
//! concurrency law, the CPU scheduler, and whole-system conservation under
//! randomized workloads.

use proptest::prelude::*;

use dcm_ntier::cpu::CpuScheduler;
use dcm_ntier::flow;
use dcm_ntier::ids::RequestId;
use dcm_ntier::law::ServiceLaw;
use dcm_ntier::pool::Pool;
use dcm_ntier::request::{RequestProfile, StageDemand};
use dcm_ntier::topology::{SoftConfig, ThreeTierBuilder};
use dcm_ntier::world::{SimEngine, World};
use dcm_sim::time::SimTime;

#[derive(Debug, Clone)]
enum PoolOp {
    Acquire,
    Release,
    Resize(u32),
    Cancel,
}

fn pool_op() -> impl Strategy<Value = PoolOp> {
    prop_oneof![
        Just(PoolOp::Acquire),
        Just(PoolOp::Release),
        (1u32..32).prop_map(PoolOp::Resize),
        Just(PoolOp::Cancel),
    ]
}

proptest! {
    /// Pool accounting never goes negative, never exceeds capacity except
    /// transiently after a shrink, and each waiter is admitted at most
    /// once.
    #[test]
    fn pool_accounting_invariants(ops in prop::collection::vec(pool_op(), 1..300)) {
        let mut pool = Pool::new(8);
        let mut outstanding: u64 = 0; // permits we believe are held
        let mut queued: std::collections::HashSet<u64> = Default::default();
        let mut capacity = 8u32;
        let mut next_unique = 1000u64;
        for op in ops {
            match op {
                PoolOp::Acquire => {
                    // Use unique ids so waiter bookkeeping stays exact.
                    next_unique += 1;
                    let id = RequestId::new(next_unique);
                    if pool.try_acquire(id) {
                        outstanding += 1;
                    } else {
                        queued.insert(next_unique);
                    }
                }
                PoolOp::Release => {
                    if outstanding > 0 {
                        if let Some(handed) = pool.release() {
                            // A waiter got the permit: outstanding is
                            // unchanged (one out, one in).
                            prop_assert!(queued.remove(&handed.raw()), "unknown waiter");
                        } else {
                            outstanding -= 1;
                        }
                    }
                }
                PoolOp::Resize(c) => {
                    capacity = c;
                    for handed in pool.resize(c) {
                        prop_assert!(queued.remove(&handed.raw()), "unknown waiter admitted");
                        outstanding += 1;
                    }
                }
                PoolOp::Cancel => {
                    if let Some(&victim) = queued.iter().next() {
                        prop_assert!(pool.cancel_waiter(RequestId::new(victim)));
                        queued.remove(&victim);
                    }
                }
            }
            prop_assert_eq!(u64::from(pool.in_use()), outstanding);
            prop_assert_eq!(pool.queued(), queued.len());
            if !pool.is_overcommitted() {
                prop_assert!(pool.in_use() <= capacity);
            }
            // Queue is only non-empty when no permit is free.
            if pool.queued() > 0 {
                prop_assert_eq!(pool.available(), 0);
            }
        }
    }

    /// FIFO handoff order survives arbitrary interleavings of releases,
    /// resizes, and mid-queue cancellations; the lifetime counters only
    /// ever move forward and account for every admission exactly once; and
    /// a fully drained pool is always back within capacity.
    #[test]
    fn pool_fifo_handoff_and_monotone_counters(ops in prop::collection::vec(pool_op(), 1..300)) {
        let mut pool = Pool::new(4);
        let mut fifo: std::collections::VecDeque<u64> = Default::default();
        let mut next_unique = 0u64;
        let mut acquired_events = 0u64;
        let mut queued_events = 0u64;
        let (mut last_acq, mut last_q) = (0u64, 0u64);
        for op in ops {
            match op {
                PoolOp::Acquire => {
                    next_unique += 1;
                    if pool.try_acquire(RequestId::new(next_unique)) {
                        acquired_events += 1;
                    } else {
                        fifo.push_back(next_unique);
                        queued_events += 1;
                    }
                }
                PoolOp::Release => {
                    if pool.in_use() > 0 {
                        if let Some(handed) = pool.release() {
                            prop_assert_eq!(
                                Some(handed.raw()),
                                fifo.pop_front(),
                                "handoff must follow FIFO order"
                            );
                            acquired_events += 1;
                        }
                    }
                }
                PoolOp::Resize(c) => {
                    for handed in pool.resize(c) {
                        prop_assert_eq!(
                            Some(handed.raw()),
                            fifo.pop_front(),
                            "grow admissions must follow FIFO order"
                        );
                        acquired_events += 1;
                    }
                }
                PoolOp::Cancel => {
                    // Cancel from the middle of the queue to exercise
                    // non-head removal; the rest must keep their order.
                    if !fifo.is_empty() {
                        let victim = fifo.remove(fifo.len() / 2).unwrap();
                        prop_assert!(pool.cancel_waiter(RequestId::new(victim)));
                    }
                }
            }
            prop_assert!(pool.total_acquired() >= last_acq, "total_acquired went backwards");
            prop_assert!(pool.total_queued() >= last_q, "total_queued went backwards");
            last_acq = pool.total_acquired();
            last_q = pool.total_queued();
        }
        prop_assert_eq!(pool.total_acquired(), acquired_events);
        prop_assert_eq!(pool.total_queued(), queued_events);
        // Drain completely: remaining handoffs arrive in FIFO order, and a
        // drained pool is within capacity no matter what resizes happened.
        while pool.in_use() > 0 {
            if let Some(handed) = pool.release() {
                prop_assert_eq!(
                    Some(handed.raw()),
                    fifo.pop_front(),
                    "drain handoff must follow FIFO order"
                );
            }
        }
        prop_assert!(fifo.is_empty(), "every surviving waiter must be admitted");
        prop_assert_eq!(pool.queued(), 0);
        prop_assert!(pool.in_use() <= pool.capacity());
    }

    /// `optimal_concurrency` is a true argmax of the saturated-throughput
    /// curve for arbitrary valid laws (including thrash terms).
    #[test]
    fn law_optimum_is_argmax(
        s0 in 1e-4f64..0.1,
        alpha_frac in 0.0f64..0.95,
        beta in 1e-9f64..1e-3,
        thrash in prop::option::of((2.0f64..200.0, 1e-6f64..1e-2)),
    ) {
        let alpha = s0 * alpha_frac;
        let mut law = ServiceLaw::new(s0, alpha, beta);
        if let Some((thr, co)) = thrash {
            law = law.with_thrash(thr, co);
        }
        let n_star = law.optimal_concurrency();
        prop_assume!(n_star < 100_000);
        let x_star = law.saturated_throughput(n_star);
        for candidate in [
            1,
            n_star.saturating_sub(1).max(1),
            n_star + 1,
            n_star.saturating_mul(2),
            n_star / 2,
        ] {
            let candidate = candidate.max(1);
            prop_assert!(
                x_star >= law.saturated_throughput(candidate) - 1e-9,
                "X({n_star})={x_star} < X({candidate})={}",
                law.saturated_throughput(candidate)
            );
        }
    }

    /// The CPU scheduler conserves work: every added burst is eventually
    /// completed exactly once, in target order.
    #[test]
    fn cpu_conserves_bursts(works in prop::collection::vec(1e-6f64..0.1, 1..100)) {
        let law = ServiceLaw::new(0.01, 0.002, 1e-5);
        let mut cpu = CpuScheduler::new(law);
        let t0 = SimTime::ZERO;
        for (i, &w) in works.iter().enumerate() {
            cpu.add_burst(t0, RequestId::new(i as u64), w);
        }
        let mut completed = Vec::new();
        let mut now = t0;
        while let Some((at, _)) = cpu.next_completion(now) {
            prop_assert!(at >= now, "completion time went backwards");
            now = at;
            while let Some(req) = cpu.pop_completed(now) {
                completed.push(req.raw());
            }
        }
        prop_assert_eq!(completed.len(), works.len());
        let total_work: f64 = works.iter().sum();
        prop_assert!((cpu.completed_work() - total_work).abs() < 1e-9);
        prop_assert_eq!(cpu.active_bursts(), 0);
    }

    /// Full-system conservation: arbitrary request profiles through a
    /// randomly-sized topology all complete, and no soft resource leaks.
    #[test]
    fn system_conserves_requests(
        seed in any::<u64>(),
        n_requests in 1usize..120,
        app_servers in 1u32..3,
        threads in 2u32..40,
        conns in 1u32..40,
        queries in 1u32..4,
    ) {
        let (mut world, mut engine) = ThreeTierBuilder::new()
            .counts(1, app_servers, 1)
            .soft(SoftConfig::new(200, threads, conns))
            .seed(seed)
            .build();
        for i in 0..n_requests {
            let profile = RequestProfile::new(
                vec![
                    StageDemand::pre_only(0.0005),
                    StageDemand::split(0.004 + (i % 7) as f64 * 0.001),
                    StageDemand::pre_only(0.002),
                ],
                vec![1, 1, queries],
                0,
            );
            flow::submit(
                &mut world,
                &mut engine,
                profile,
                Box::new(|_: &mut World, _: &mut SimEngine, _| {}),
            );
        }
        engine.run(&mut world);
        let c = world.system.counters();
        prop_assert_eq!(c.submitted, n_requests as u64);
        prop_assert_eq!(c.completed, n_requests as u64);
        prop_assert_eq!(c.in_flight(), 0);
        for server in world.system.servers() {
            prop_assert_eq!(server.threads_in_use(), 0);
            prop_assert_eq!(server.cpu().active_bursts(), 0);
            if let Some(pool) = server.conn_pool() {
                prop_assert_eq!(pool.in_use(), 0);
                prop_assert_eq!(pool.queued(), 0);
            }
        }
        // MySQL processed exactly queries-per-request × requests.
        let db_total: u64 = world
            .system
            .servers()
            .filter(|s| s.tier() == 2)
            .map(|s| s.completed_total())
            .sum();
        prop_assert_eq!(db_total, u64::from(queries) * n_requests as u64);
    }

    /// Mid-run pool resizing never breaks conservation.
    #[test]
    fn resizing_under_load_is_safe(
        seed in any::<u64>(),
        resize_to in 1u32..50,
        resize_conns in 1u32..50,
    ) {
        let (mut world, mut engine) = ThreeTierBuilder::new()
            .soft(SoftConfig::new(200, 10, 5))
            .seed(seed)
            .build();
        for _ in 0..60 {
            let profile = RequestProfile::new(
                vec![
                    StageDemand::pre_only(0.0005),
                    StageDemand::split(0.01),
                    StageDemand::pre_only(0.003),
                ],
                vec![1, 1, 2],
                0,
            );
            flow::submit(&mut world, &mut engine, profile, Box::new(|_, _, _| {}));
        }
        engine.run_until(&mut world, SimTime::from_secs_f64(0.05));
        flow::set_tier_thread_pools(&mut world, &mut engine, 1, resize_to).unwrap();
        flow::set_tier_conn_pools(&mut world, &mut engine, 1, resize_conns).unwrap();
        engine.run(&mut world);
        let c = world.system.counters();
        prop_assert_eq!(c.completed, 60);
        prop_assert_eq!(c.in_flight(), 0);
    }
}
