//! End-to-end behaviour of the n-tier request flow: conservation, pool
//! capping, scaling, runtime reconfiguration, and rejection unwinding.

use std::cell::RefCell;
use std::rc::Rc;

use dcm_ntier::flow;
use dcm_ntier::request::{Completion, RequestProfile, StageDemand};
use dcm_ntier::topology::{SoftConfig, ThreeTierBuilder};
use dcm_ntier::world::{SimEngine, World};
use dcm_ntier::ServerState;
use dcm_sim::time::{SimDuration, SimTime};

fn rubbos_profile() -> RequestProfile {
    RequestProfile::new(
        vec![
            StageDemand::pre_only(0.0006),
            StageDemand::split(0.0284),
            StageDemand::pre_only(0.02955),
        ],
        vec![1, 1, 2],
        0,
    )
}

type CompletionCb = Box<dyn FnOnce(&mut World, &mut SimEngine, Completion)>;

fn collect_completions() -> (Rc<RefCell<Vec<Completion>>>, impl Fn() -> CompletionCb) {
    let log: Rc<RefCell<Vec<Completion>>> = Rc::new(RefCell::new(Vec::new()));
    let log2 = Rc::clone(&log);
    let make = move || {
        let log = Rc::clone(&log2);
        let cb: CompletionCb = Box::new(move |_w, _e, c| log.borrow_mut().push(c));
        cb
    };
    (log, make)
}

#[test]
fn single_request_traverses_all_tiers() {
    let (mut world, mut engine) = ThreeTierBuilder::new().build();
    let (log, cb) = collect_completions();
    flow::submit(&mut world, &mut engine, rubbos_profile(), cb());
    engine.run(&mut world);

    let done = log.borrow();
    assert_eq!(done.len(), 1);
    assert!(done[0].is_success());
    // Response time at least the sum of raw demands (single request, no
    // queueing): 0.0006 + 0.0284 + 2*0.02955 ≈ 0.0881 s.
    let rt = done[0].response_time().as_secs_f64();
    assert!((0.088..0.12).contains(&rt), "rt {rt}");

    // Each tier's server saw the request; MySQL saw two queries.
    let by_name = |name: &str| {
        world
            .system
            .servers()
            .find(|s| s.name() == name)
            .unwrap()
            .completed_total()
    };
    assert_eq!(by_name("web-1"), 1);
    assert_eq!(by_name("app-1"), 1);
    assert_eq!(by_name("db-1"), 2);
    assert_eq!(world.system.counters().completed, 1);
    assert_eq!(world.system.counters().in_flight(), 0);
}

#[test]
fn conservation_under_concurrent_load() {
    let (mut world, mut engine) = ThreeTierBuilder::new().seed(7).build();
    let (log, cb) = collect_completions();
    // 200 requests in a burst at t=0 plus stragglers.
    for i in 0..200 {
        let at = SimTime::from_secs_f64(i as f64 * 0.002);
        let profile = rubbos_profile();
        let cb = cb();
        engine.schedule_at(at, move |w: &mut World, e: &mut SimEngine| {
            flow::submit(w, e, profile, cb);
        });
    }
    engine.run(&mut world);
    assert_eq!(log.borrow().len(), 200);
    assert!(log.borrow().iter().all(Completion::is_success));
    let c = world.system.counters();
    assert_eq!(c.submitted, 200);
    assert_eq!(c.completed, 200);
    assert_eq!(c.rejected, 0);
    assert_eq!(c.in_flight(), 0);
    // No threads or connections leaked anywhere.
    for server in world.system.servers() {
        assert_eq!(
            server.threads_in_use(),
            0,
            "{} leaked threads",
            server.name()
        );
        if let Some(pool) = server.conn_pool() {
            assert_eq!(pool.in_use(), 0, "{} leaked conns", server.name());
        }
        assert_eq!(server.cpu().active_bursts(), 0);
    }
}

#[test]
fn db_concurrency_is_capped_by_upstream_conn_pool() {
    // One Tomcat with 4 DB connections: MySQL must never see more than 4
    // concurrent queries even with hundreds of concurrent requests.
    let (mut world, mut engine) = ThreeTierBuilder::new()
        .soft(SoftConfig::new(1000, 200, 4))
        .build();
    for _ in 0..100 {
        let profile = rubbos_profile();
        flow::submit(&mut world, &mut engine, profile, Box::new(|_, _, _| {}));
    }
    // Step the simulation, checking the invariant as we go.
    let db = world
        .system
        .servers()
        .find(|s| s.name() == "db-1")
        .unwrap()
        .id();
    let mut max_seen = 0;
    while engine.step(&mut world) {
        let in_use = world.system.server(db).unwrap().threads_in_use();
        max_seen = max_seen.max(in_use);
    }
    assert!(max_seen <= 4, "db concurrency {max_seen} exceeded conn cap");
    assert!(
        max_seen >= 3,
        "cap should actually be reached, saw {max_seen}"
    );
    assert_eq!(world.system.counters().completed, 100);
}

#[test]
fn scale_out_becomes_routable_after_boot_delay() {
    let (mut world, mut engine) = ThreeTierBuilder::new().build();
    let sid = flow::provision_server(&mut world, &mut engine, 1).unwrap();
    assert!(matches!(
        world.system.server(sid).unwrap().state(),
        ServerState::Starting { .. }
    ));
    assert_eq!(world.system.running_count(1), 1);
    engine.run_until(&mut world, SimTime::from_secs(14));
    assert_eq!(world.system.running_count(1), 1, "not ready before delay");
    engine.run_until(&mut world, SimTime::from_secs(16));
    assert_eq!(world.system.running_count(1), 2, "ready after 15 s");
}

#[test]
fn scale_in_drains_then_stops() {
    let (mut world, mut engine) = ThreeTierBuilder::new().counts(1, 2, 1).build();
    // Hold a request in flight through app tier, then decommission.
    let (log, cb) = collect_completions();
    for _ in 0..50 {
        flow::submit(&mut world, &mut engine, rubbos_profile(), cb());
    }
    // Run a few events so work lands on both app servers.
    for _ in 0..40 {
        engine.step(&mut world);
    }
    let victim = flow::decommission_one(&mut world, &mut engine, 1).unwrap();
    assert!(!world.system.server(victim).unwrap().is_routable());
    engine.run(&mut world);
    // All requests complete despite the drain; victim fully stopped.
    assert_eq!(log.borrow().len(), 50);
    assert!(log.borrow().iter().all(Completion::is_success));
    assert!(world.system.server(victim).unwrap().is_stopped());
    assert_eq!(world.system.running_count(1), 1);
}

#[test]
fn cannot_remove_last_server() {
    let (mut world, mut engine) = ThreeTierBuilder::new().build();
    let err = flow::decommission_one(&mut world, &mut engine, 1).unwrap_err();
    assert_eq!(err, flow::ScaleError::LastServer { tier: 1 });
    let err = flow::decommission_one(&mut world, &mut engine, 9).unwrap_err();
    assert_eq!(err, flow::ScaleError::NoSuchTier { tier: 9 });
}

#[test]
fn runtime_conn_pool_grow_admits_waiters() {
    let (mut world, mut engine) = ThreeTierBuilder::new()
        .soft(SoftConfig::new(1000, 200, 1))
        .build();
    let (log, cb) = collect_completions();
    for _ in 0..20 {
        flow::submit(&mut world, &mut engine, rubbos_profile(), cb());
    }
    // Let the system make some progress with the tiny pool, then widen it.
    engine.run_until(&mut world, SimTime::from_secs_f64(0.05));
    flow::set_tier_conn_pools(&mut world, &mut engine, 1, 40).unwrap();
    engine.run(&mut world);
    assert_eq!(log.borrow().len(), 20);
    assert!(log.borrow().iter().all(Completion::is_success));
}

#[test]
fn runtime_thread_pool_shrink_drains_without_disruption() {
    let (mut world, mut engine) = ThreeTierBuilder::new()
        .soft(SoftConfig::new(1000, 50, 40))
        .build();
    let (log, cb) = collect_completions();
    for _ in 0..100 {
        flow::submit(&mut world, &mut engine, rubbos_profile(), cb());
    }
    engine.run_until(&mut world, SimTime::from_secs_f64(0.05));
    // Shrink Tomcat pool hard mid-flight.
    flow::set_tier_thread_pools(&mut world, &mut engine, 1, 5).unwrap();
    engine.run(&mut world);
    assert_eq!(log.borrow().len(), 100);
    assert!(log.borrow().iter().all(Completion::is_success));
    let app = world
        .system
        .servers()
        .find(|s| s.name() == "app-1")
        .unwrap();
    assert_eq!(app.thread_pool().capacity(), 5);
    assert_eq!(app.thread_pool().in_use(), 0);
}

#[test]
fn faster_completion_with_optimal_concurrency_than_overload() {
    // Saturate a single MySQL at concurrency 150 vs 36 via the Tomcat conn
    // pool; the optimal allocation should finish the same batch sooner.
    let run = |conns: u32| -> f64 {
        let (mut world, mut engine) = ThreeTierBuilder::new()
            .soft(SoftConfig::new(1000, 400, conns))
            .seed(3)
            .build();
        for _ in 0..2000 {
            flow::submit(
                &mut world,
                &mut engine,
                RequestProfile::new(
                    vec![
                        StageDemand::pre_only(1e-6),
                        StageDemand::pre_only(1e-6), // negligible Tomcat work
                        StageDemand::pre_only(0.02955),
                    ],
                    vec![1, 1, 2],
                    0,
                ),
                Box::new(|_, _, _| {}),
            );
        }
        engine.run(&mut world);
        engine.now().as_secs_f64()
    };
    let t_optimal = run(36);
    let t_overload = run(150);
    assert!(
        t_optimal < t_overload * 0.65,
        "optimal {t_optimal} vs overload {t_overload}"
    );
}

#[test]
fn replace_server_then_refuse_emptying_tier() {
    // Provision a replacement app server, decommission the original once the
    // replacement is routable, and verify requests still complete and the
    // last server cannot be removed.
    let (mut world, mut engine) = ThreeTierBuilder::new().build();
    let replacement = flow::provision_server(&mut world, &mut engine, 1).unwrap();
    engine.run_until(&mut world, SimTime::from_secs(16));
    assert!(world.system.server(replacement).unwrap().is_routable());

    let original = flow::decommission_one(&mut world, &mut engine, 1).unwrap();
    engine.run_until(&mut world, engine.now() + SimDuration::from_secs(1));
    assert!(world.system.server(original).unwrap().is_stopped());
    assert!(flow::decommission_one(&mut world, &mut engine, 1).is_err());

    let (log, cb) = collect_completions();
    flow::submit(&mut world, &mut engine, rubbos_profile(), cb());
    engine.run(&mut world);
    assert_eq!(log.borrow().len(), 1);
    assert!(log.borrow()[0].is_success(), "tier stayed routable");
    assert_eq!(world.system.counters().in_flight(), 0);
}

#[test]
fn vm_seconds_accumulate_per_tier() {
    let (mut world, mut engine) = ThreeTierBuilder::new().counts(1, 2, 1).build();
    engine.run_until(&mut world, SimTime::from_secs(100));
    // Two app VMs for 100 s.
    assert!((world.system.vm_seconds(1, engine.now()) - 200.0).abs() < 1e-6);
    flow::decommission_one(&mut world, &mut engine, 1).unwrap();
    engine.run_until(&mut world, SimTime::from_secs(200));
    // One stopped at 100 s + one still running at 200 s.
    assert!((world.system.vm_seconds(1, engine.now()) - 300.0).abs() < 1e-6);
}

#[test]
fn boot_failure_injection_leaves_tier_short() {
    let (mut world, mut engine) = ThreeTierBuilder::new().seed(11).build();
    world.system.boot_failure_prob = 1.0;
    let sid = flow::provision_server(&mut world, &mut engine, 1).unwrap();
    engine.run_until(&mut world, SimTime::from_secs(20));
    assert!(world.system.server(sid).unwrap().is_stopped());
    assert_eq!(world.system.running_count(1), 1);
}

#[test]
fn deadline_abandons_stuck_requests_cleanly() {
    // A starved system: one DB connection, many requests; tight deadlines
    // force most clients to abandon mid-queue. Everything must unwind.
    let (mut world, mut engine) = ThreeTierBuilder::new()
        .soft(SoftConfig::new(1000, 200, 1))
        .build();
    let (log, cb) = collect_completions();
    for _ in 0..50 {
        flow::submit_with_deadline(
            &mut world,
            &mut engine,
            rubbos_profile(),
            SimDuration::from_millis(2500),
            cb(),
        );
    }
    engine.run(&mut world);
    let done = log.borrow();
    assert_eq!(done.len(), 50);
    let timed_out = done
        .iter()
        .filter(|c| c.outcome == dcm_ntier::request::Outcome::TimedOut)
        .count();
    let completed = done.iter().filter(|c| c.is_success()).count();
    assert_eq!(timed_out + completed, 50);
    assert!(
        timed_out > 5,
        "starvation should force abandonment: {timed_out}"
    );
    assert!(completed > 0, "some requests still finish: {completed}");
    // Timed-out requests report exactly their deadline as response time.
    for c in done.iter().filter(|c| !c.is_success()) {
        assert_eq!(c.response_time(), SimDuration::from_millis(2500));
    }
    // Conservation and zero leaks.
    let counters = world.system.counters();
    assert_eq!(counters.timed_out, timed_out as u64);
    assert_eq!(counters.in_flight(), 0);
    for server in world.system.servers() {
        assert_eq!(
            server.threads_in_use(),
            0,
            "{} leaked threads",
            server.name()
        );
        assert_eq!(
            server.cpu().active_bursts(),
            0,
            "{} leaked bursts",
            server.name()
        );
        if let Some(pool) = server.conn_pool() {
            assert_eq!(pool.in_use(), 0, "{} leaked conns", server.name());
            assert_eq!(pool.queued(), 0, "{} leaked waiters", server.name());
        }
    }
}

#[test]
fn generous_deadline_never_fires() {
    let (mut world, mut engine) = ThreeTierBuilder::new().build();
    let (log, cb) = collect_completions();
    for _ in 0..20 {
        flow::submit_with_deadline(
            &mut world,
            &mut engine,
            rubbos_profile(),
            SimDuration::from_secs(60),
            cb(),
        );
    }
    engine.run(&mut world);
    assert!(log.borrow().iter().all(Completion::is_success));
    assert_eq!(world.system.counters().timed_out, 0);
}

#[test]
fn span_tracing_records_tier_waterfalls() {
    use dcm_ntier::spans;

    let (mut world, mut engine) = ThreeTierBuilder::new().build();
    world.system.enable_tracing();
    assert!(world.system.tracing_enabled());
    let (log, cb) = collect_completions();
    let rid = flow::submit(&mut world, &mut engine, rubbos_profile(), cb());
    engine.run(&mut world);
    assert!(log.borrow()[0].is_success());

    let spans = world.system.take_spans();
    // One request: 1 web + 1 app + 2 db visits.
    assert_eq!(spans.len(), 4);
    let w = spans::waterfall(&spans, rid);
    assert_eq!(w[0].tier, 0);
    assert_eq!(w[1].tier, 1);
    assert_eq!(w[2].tier, 2);
    assert_eq!(w[3].tier, 2);
    assert!(spans.iter().all(|s| s.is_completed()));
    // The app span encloses both db spans (thread held across queries).
    assert!(w[1].started_at <= w[2].arrived_at);
    assert!(w[1].finished_at >= w[3].finished_at);
    // Idle system: no queueing anywhere.
    assert!(spans.iter().all(|s| s.queue_time().as_nanos() == 0));
    // Breakdown has all three tiers; db service ≈ its demand.
    let breakdown = spans::tier_breakdown(&spans);
    assert_eq!(breakdown.len(), 3);
    assert_eq!(breakdown[&2].visits, 2);
    assert!((breakdown[&2].mean_service - 0.02955).abs() < 0.002);

    // take_spans drains but keeps recording.
    assert!(world.system.take_spans().is_empty());
    flow::submit(&mut world, &mut engine, rubbos_profile(), cb());
    engine.run(&mut world);
    assert_eq!(world.system.take_spans().len(), 4);
}

#[test]
fn spans_capture_queueing_under_contention() {
    use dcm_ntier::spans;

    // Tiny DB conn pool: queries must queue at the conn pool, which shows
    // up as service time in the APP span, while DB spans keep zero queue
    // (the conn pool is upstream of the DB thread pool).
    let (mut world, mut engine) = ThreeTierBuilder::new()
        .soft(SoftConfig::new(1000, 200, 1))
        .build();
    world.system.enable_tracing();
    let (_log, cb) = collect_completions();
    for _ in 0..10 {
        flow::submit(&mut world, &mut engine, rubbos_profile(), cb());
    }
    engine.run(&mut world);
    let spans = world.system.take_spans();
    let breakdown = spans::tier_breakdown(&spans);
    // App dwell includes waiting for the single connection: far above the
    // raw app demand (0.0284 s × inflation).
    assert!(
        breakdown[&1].mean_service > 0.2,
        "app dwell should include conn-pool waits: {:?}",
        breakdown[&1]
    );
}
