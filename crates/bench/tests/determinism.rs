//! Regression tests for the parallel runner's core guarantee: running the
//! experiment fan-out on N workers produces bit-identical results to the
//! serial path, because every run derives its own seed and results are
//! reassembled in input order.

use std::sync::Mutex;

use dcm_bench::experiments::{chaos, fig2, Fidelity};
use dcm_core::training::{db_stress_sweep, SweepOptions};
use dcm_ntier::topology::{SoftConfig, ThreeTierBuilder};
use dcm_sim::runner::{run_ordered_with, set_jobs};
use dcm_sim::time::{SimDuration, SimTime};
use dcm_workload::generator::UserPopulation;
use dcm_workload::profile::ProfileFactory;

/// Serializes tests that mutate the process-wide jobs setting.
static JOBS_LOCK: Mutex<()> = Mutex::new(());

fn quick_sweep_options() -> SweepOptions {
    SweepOptions {
        warmup: SimDuration::from_secs(5),
        measure: SimDuration::from_secs(15),
        seed: 1234,
        deterministic: false,
    }
}

#[test]
fn run_ordered_serial_and_parallel_sweeps_are_bit_identical() {
    // Drive the real simulation workload through the runner at both worker
    // counts; SweepPoint's PartialEq compares the f64 fields exactly, so
    // equality here is bit-for-bit on every measured value.
    let options = quick_sweep_options();
    let levels: Vec<u32> = vec![4, 9, 16, 25, 36, 49, 64, 81];
    let serial = run_ordered_with(1, levels.clone(), |c| {
        dcm_core::training::db_stress_point(c, &options)
    });
    let parallel = run_ordered_with(4, levels, |c| {
        dcm_core::training::db_stress_point(c, &options)
    });
    assert_eq!(serial, parallel);
}

#[test]
fn fig2_tables_are_byte_identical_across_jobs() {
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_jobs(1);
    let serial_a = fig2::run_fig2a(Fidelity::Quick).table().to_csv();
    let serial_b = fig2::run_fig2b(Fidelity::Quick).table().to_csv();
    set_jobs(4);
    let parallel_a = fig2::run_fig2a(Fidelity::Quick).table().to_csv();
    let parallel_b = fig2::run_fig2b(Fidelity::Quick).table().to_csv();
    set_jobs(0);
    assert_eq!(serial_a, parallel_a, "fig2a CSV must not depend on --jobs");
    assert_eq!(serial_b, parallel_b, "fig2b CSV must not depend on --jobs");
}

#[test]
fn chaos_outputs_are_byte_identical_across_jobs() {
    // Fault injection, retries, and timeouts all draw from derived RNG
    // streams, so the chaos experiment must stay bit-deterministic under
    // the parallel runner exactly like the steady-state figures.
    let models = || {
        let app = dcm_ntier::law::reference::tomcat();
        let db = dcm_ntier::law::reference::mysql();
        dcm_core::controller::DcmModels {
            app: dcm_model::concurrency::ConcurrencyModel::new(
                app.s0(),
                app.alpha(),
                app.beta(),
                1.0,
                1,
            ),
            db: dcm_model::concurrency::ConcurrencyModel::new(
                db.s0(),
                db.alpha(),
                db.beta(),
                1.0,
                1,
            ),
        }
    };
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_jobs(1);
    let serial = chaos::run_chaos(Fidelity::Quick, models());
    set_jobs(4);
    let parallel = chaos::run_chaos(Fidelity::Quick, models());
    set_jobs(0);
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "chaos JSON must not depend on --jobs"
    );
    assert_eq!(
        serial.table().to_csv(),
        parallel.table().to_csv(),
        "chaos CSV must not depend on --jobs"
    );
}

#[test]
fn training_sweep_respects_global_jobs_setting() {
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let options = quick_sweep_options();
    let levels = [2u32, 8, 20, 36, 60];
    set_jobs(1);
    let serial = db_stress_sweep(&levels, &options);
    set_jobs(4);
    let parallel = db_stress_sweep(&levels, &options);
    set_jobs(0);
    assert_eq!(serial, parallel);
}

#[test]
fn identical_runs_execute_identical_event_counts() {
    // Two engines built from the same seed must execute exactly the same
    // number of events — the strictest cheap proxy for "the same run".
    let run = || {
        let (mut world, mut engine) = ThreeTierBuilder::new()
            .counts(1, 1, 1)
            .soft(SoftConfig::DEFAULT)
            .seed(dcm_sim::rng::derive_seed(777, 3))
            .build();
        let horizon = SimTime::from_secs(20);
        let _population = UserPopulation::start_closed_loop(
            &mut world,
            &mut engine,
            ProfileFactory::rubbos(),
            25,
            horizon,
        );
        engine.run_until(&mut world, horizon);
        engine.executed()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second);
    assert!(first > 0, "run must simulate something");
}
