//! Perf gate for the zero-cost-when-disabled claim: offering spans to a
//! disabled [`SpanRecorder`] must cost at most 2 % over the same loop with
//! no recorder at all. Run by CI in release mode:
//!
//! ```text
//! cargo test --release -p dcm-bench --test obs_overhead -- --ignored
//! ```
//!
//! The comparison interleaves baseline and recorder batches and takes the
//! median of an odd number of batches, so one scheduling hiccup cannot
//! decide the verdict.

use std::hint::black_box;
use std::time::Instant;

use dcm_ntier::ids::{RequestId, ServerId};
use dcm_ntier::spans::{Span, SpanStatus};
use dcm_obs::recorder::SpanRecorder;
use dcm_sim::time::SimTime;

const SPANS: usize = 20_000;
const BATCHES: usize = 31;
/// Passes per timed batch: one pass is ~20 µs, far below scheduler noise
/// on a busy CI box; 32 passes makes each sample ~0.7 ms.
const PASSES_PER_BATCH: usize = 32;

fn make_spans(n: usize) -> Vec<Span> {
    (0..n as u64)
        .map(|i| Span {
            request: RequestId::new(i / 3),
            tier: (i % 3) as usize,
            server: ServerId::new(i % 7),
            arrived_at: SimTime::from_nanos(i * 1_000),
            started_at: SimTime::from_nanos(i * 1_000 + 350),
            finished_at: SimTime::from_nanos(i * 1_000 + 4_200),
            status: SpanStatus::Completed,
        })
        .collect()
}

/// The per-span work the simulation hot path does around the record call
/// (folding dwell accounting into running sums); identical in both loops.
#[inline]
fn fold(acc: u64, span: &Span) -> u64 {
    acc.wrapping_add(span.finished_at.as_nanos() - span.started_at.as_nanos())
        .wrapping_add(span.started_at.as_nanos() - span.arrived_at.as_nanos())
        .wrapping_add(span.request.raw())
}

fn baseline_pass(spans: &[Span]) -> u64 {
    let mut acc = 0u64;
    for span in spans {
        acc = fold(acc, black_box(span));
    }
    acc
}

fn recorder_pass(spans: &[Span], recorder: &mut SpanRecorder) -> u64 {
    let mut acc = 0u64;
    for span in spans {
        recorder.record(black_box(span));
        acc = fold(acc, black_box(span));
    }
    acc
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

#[test]
#[ignore = "perf gate; run in CI with --release"]
fn disabled_recorder_overhead_is_at_most_two_percent() {
    let spans = make_spans(SPANS);
    let mut recorder = SpanRecorder::off();
    // Warm both paths (page in, settle frequency scaling).
    for _ in 0..3 {
        black_box(baseline_pass(&spans));
        black_box(recorder_pass(&spans, &mut recorder));
    }
    let mut base = Vec::with_capacity(BATCHES);
    let mut with_off = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        let t = Instant::now();
        for _ in 0..PASSES_PER_BATCH {
            black_box(baseline_pass(&spans));
        }
        base.push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        for _ in 0..PASSES_PER_BATCH {
            black_box(recorder_pass(&spans, &mut recorder));
        }
        with_off.push(t.elapsed().as_secs_f64());
    }
    assert!(!recorder.is_on(), "recorder must have stayed off");
    assert_eq!(recorder.stats().seen, 0, "off recorder counted spans");
    let base_med = median(base);
    let off_med = median(with_off);
    let ratio = off_med / base_med;
    println!(
        "disabled-recorder overhead: median ratio {ratio:.4} \
         (baseline {:.2} µs, with off-recorder {:.2} µs per {}-span batch)",
        base_med * 1e6,
        off_med * 1e6,
        SPANS * PASSES_PER_BATCH,
    );
    assert!(
        ratio <= 1.02,
        "disabled recorder costs {:.2}% (> 2% gate) over the no-recorder baseline",
        (ratio - 1.0) * 100.0
    );
}
