//! Replays every pinned fuzzing regression under `tests/regressions/`.
//!
//! Each file is a self-contained scenario in the `repro hunt` kv format:
//! the seed, the minimized configuration, and (in comments) the invariant
//! it once violated. The campaign harness writes these automatically when
//! a violation survives shrinking; this test re-runs each through its
//! oracle forever after, so a fixed bug stays fixed.

use std::path::PathBuf;

use dcm_bench::experiments::hunt::{check, HuntScenario};

fn regressions_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/regressions")
}

#[test]
fn every_pinned_scenario_passes_its_oracle() {
    let dir = regressions_dir();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("regressions dir {} missing: {e}", dir.display()))
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "txt"))
        .collect();
    entries.sort();
    assert!(
        !entries.is_empty(),
        "no pinned regression cases under {}",
        dir.display()
    );
    for path in entries {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("unreadable {}: {e}", path.display()));
        let scenario = HuntScenario::from_kv(&text)
            .unwrap_or_else(|e| panic!("malformed {}: {e}", path.display()));
        let outcome = check(&scenario);
        assert!(
            outcome.violation.is_none(),
            "{} regressed — {} oracle rejected the pinned scenario: {}",
            path.display(),
            scenario.oracle.label(),
            outcome.violation.unwrap()
        );
    }
}
