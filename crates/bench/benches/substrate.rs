//! Microbenchmarks of the substrate crates: event engine, CPU scheduler,
//! pools, broker, RNG, statistics, the span recorder, and the model
//! fitter.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use dcm_bus::{Broker, GroupConsumer, Retention};
use dcm_model::concurrency::{fit_throughput_curve, ConcurrencyModel, FitOptions};
use dcm_ntier::cpu::CpuScheduler;
use dcm_ntier::ids::RequestId;
use dcm_ntier::law::reference;
use dcm_ntier::pool::Pool;
use dcm_ntier::spans::{Span, SpanStatus};
use dcm_obs::recorder::{SamplerConfig, SpanRecorder};
use dcm_sim::engine::Engine;
use dcm_sim::rng::SimRng;
use dcm_sim::stats::{OnlineStats, P2Quantile};
use dcm_sim::time::SimTime;

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine_schedule_run_10k", |b| {
        b.iter(|| {
            let mut engine: Engine<u64> = Engine::new();
            let mut world = 0u64;
            for i in 0..10_000u64 {
                engine.schedule_at(SimTime::from_nanos(i), |w: &mut u64, _| *w += 1);
            }
            engine.run(&mut world);
            black_box(world)
        })
    });
    // The timeout pattern that motivated the slot/generation scheme: every
    // request schedules a guard event that is almost always cancelled before
    // it fires (a completion supersedes it). 10k schedules, 9k cancels.
    c.bench_function("engine_cancel_heavy_10k", |b| {
        b.iter(|| {
            let mut engine: Engine<u64> = Engine::new();
            let mut world = 0u64;
            let mut timeouts = Vec::with_capacity(10_000);
            for i in 0..10_000u64 {
                timeouts.push(
                    engine
                        .schedule_at(SimTime::from_nanos(1_000_000 + i), |w: &mut u64, _| *w += 1),
                );
                engine.schedule_at(SimTime::from_nanos(i), |w: &mut u64, _| *w += 1);
            }
            for (i, id) in timeouts.into_iter().enumerate() {
                if i % 10 != 0 {
                    engine.cancel(id);
                }
            }
            engine.run(&mut world);
            black_box(world)
        })
    });
    // Churn pattern: cancel-then-reschedule inside a bounded live window,
    // exercising slot reuse (or, before the rework, HashSet insert/remove).
    c.bench_function("engine_timeout_churn_10k", |b| {
        b.iter(|| {
            let mut engine: Engine<u64> = Engine::new();
            let mut world = 0u64;
            let mut pending = std::collections::VecDeque::with_capacity(64);
            for i in 0..10_000u64 {
                if pending.len() == 64 {
                    let id = pending.pop_front().expect("non-empty");
                    engine.cancel(id);
                }
                pending.push_back(
                    engine.schedule_at(SimTime::from_nanos(i + 100_000), |w: &mut u64, _| *w += 1),
                );
            }
            engine.run(&mut world);
            black_box(world)
        })
    });
}

fn bench_cpu_scheduler(c: &mut Criterion) {
    c.bench_function("cpu_saturated_1k_completions", |b| {
        let law = reference::mysql();
        b.iter(|| {
            let mut cpu = CpuScheduler::new(law);
            let mut now = SimTime::ZERO;
            for i in 0..36u64 {
                cpu.add_burst(now, RequestId::new(i), law.s0());
            }
            for next_id in 36u64..1036 {
                let (at, _) = cpu.next_completion(now).expect("busy cpu");
                now = at;
                let done = cpu.pop_completed(now).expect("due");
                black_box(done);
                cpu.add_burst(now, RequestId::new(next_id), law.s0());
            }
        })
    });
}

fn bench_pool(c: &mut Criterion) {
    c.bench_function("pool_acquire_release_handoff", |b| {
        b.iter(|| {
            let mut pool = Pool::new(16);
            for i in 0..64u64 {
                pool.try_acquire(RequestId::new(i));
            }
            for _ in 0..48 {
                black_box(pool.release());
            }
            black_box(pool.in_use())
        })
    });
}

fn bench_broker(c: &mut Criterion) {
    c.bench_function("broker_produce_consume_1k", |b| {
        b.iter(|| {
            let mut broker: Broker<u64> = Broker::new();
            broker
                .create_topic("t", 4, Retention::UNBOUNDED)
                .expect("fresh topic");
            for i in 0..1000u64 {
                broker
                    .produce("t", i, Some(format!("k{}", i % 16)), i)
                    .expect("topic exists");
            }
            let mut consumer = GroupConsumer::new("g", "t", &broker).expect("topic exists");
            let batch = consumer.poll(&broker, 2000).expect("topic exists");
            black_box(batch.len())
        })
    });
}

fn bench_rng_and_stats(c: &mut Criterion) {
    c.bench_function("rng_100k_doubles", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed_from(1);
            let mut acc = 0.0;
            for _ in 0..100_000 {
                acc += rng.next_f64();
            }
            black_box(acc)
        })
    });
    c.bench_function("stats_online_p2_100k", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed_from(2);
            let mut stats = OnlineStats::new();
            let mut p95 = P2Quantile::new(0.95);
            for _ in 0..100_000 {
                let x = rng.next_f64();
                stats.record(x);
                p95.record(x);
            }
            black_box((stats.mean(), p95.estimate()))
        })
    });
}

fn bench_recorder(c: &mut Criterion) {
    let spans: Vec<Span> = (0..10_000u64)
        .map(|i| Span {
            request: RequestId::new(i / 3),
            tier: (i % 3) as usize,
            server: dcm_ntier::ids::ServerId::new(i % 7),
            arrived_at: SimTime::from_nanos(i * 1_000),
            started_at: SimTime::from_nanos(i * 1_000 + 350),
            finished_at: SimTime::from_nanos(i * 1_000 + 4_200),
            status: SpanStatus::Completed,
        })
        .collect();
    // The zero-cost-when-disabled claim, as a tracked number.
    c.bench_function("recorder_off_10k_spans", |b| {
        b.iter(|| {
            let mut r = SpanRecorder::off();
            for s in &spans {
                r.record(black_box(s));
            }
            black_box(r.stats())
        })
    });
    c.bench_function("recorder_sampled_10k_spans", |b| {
        b.iter(|| {
            let mut r = SpanRecorder::new(SamplerConfig {
                rate: 0.1,
                seed: 7,
                capacity: 4096,
            });
            for s in &spans {
                r.record(black_box(s));
            }
            black_box(r.stats())
        })
    });
}

fn bench_model_fit(c: &mut Criterion) {
    c.bench_function("lm_fit_throughput_curve_120pts", |b| {
        let truth = ConcurrencyModel::new(0.0284, 0.016, 7.0e-5, 1.0, 1);
        let data: Vec<(f64, f64)> = (1..=120)
            .map(|n| (f64::from(n), truth.predict_throughput(f64::from(n))))
            .collect();
        b.iter(|| {
            let report =
                fit_throughput_curve(black_box(&data), 1, FitOptions::default()).expect("fits");
            black_box(report.model.optimal_concurrency())
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_engine, bench_cpu_scheduler, bench_pool, bench_broker,
              bench_rng_and_stats, bench_recorder, bench_model_fit
}
criterion_main!(benches);
