//! Benchmarks regenerating Fig. 4: steady-state validation measurements of
//! the optimal vs default soft allocations.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use dcm_core::experiment::{steady_state_throughput, SteadyStateOptions};
use dcm_ntier::topology::SoftConfig;
use dcm_sim::time::SimDuration;

fn options() -> SteadyStateOptions {
    SteadyStateOptions {
        warmup: SimDuration::from_secs(2),
        measure: SimDuration::from_secs(8),
        think_time_secs: 3.0,
        seed: 1,
        ..SteadyStateOptions::default()
    }
}

fn bench_fig4a(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4a");
    for threads in [20u32, 100] {
        group.bench_function(format!("threads_{threads}_300u"), |b| {
            b.iter(|| {
                let r = steady_state_throughput(
                    (1, 1, 1),
                    SoftConfig::new(1000, threads, 80),
                    300,
                    &options(),
                );
                black_box(r.throughput)
            })
        });
    }
    group.finish();
}

fn bench_fig4b(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4b");
    for conns in [18u32, 80] {
        group.bench_function(format!("conns_{conns}_300u"), |b| {
            b.iter(|| {
                let r = steady_state_throughput(
                    (1, 2, 1),
                    SoftConfig::new(1000, 100, conns),
                    300,
                    &options(),
                );
                black_box(r.throughput)
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_fig4a, bench_fig4b
}
criterion_main!(benches);
