//! Benchmarks regenerating Fig. 5: short trace-driven runs of both
//! controllers (the full 700 s runs live in the `repro` binary).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use dcm_core::controller::{Dcm, DcmConfig, DcmModels, Ec2AutoScale};
use dcm_core::experiment::{run_trace_experiment, TraceExperimentConfig};
use dcm_core::policy::ScalingConfig;
use dcm_model::concurrency::ConcurrencyModel;
use dcm_ntier::law::reference;
use dcm_sim::time::SimTime;
use dcm_workload::traces;

fn models() -> DcmModels {
    let app = reference::tomcat();
    let db = reference::mysql();
    DcmModels {
        app: ConcurrencyModel::new(app.s0(), app.alpha(), app.beta(), 1.0, 1),
        db: ConcurrencyModel::new(db.s0(), db.alpha(), db.beta(), 1.0, 1),
    }
}

fn short_config() -> TraceExperimentConfig {
    let mut config = TraceExperimentConfig::figure5(traces::large_variation());
    config.horizon = SimTime::from_secs(120);
    config
}

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_120s");
    group.bench_function("ec2_autoscale", |b| {
        b.iter(|| {
            let run = run_trace_experiment(&short_config(), |bus| {
                Ec2AutoScale::new(bus, ScalingConfig::default())
            });
            black_box(run.counters.completed)
        })
    });
    group.bench_function("dcm", |b| {
        let m = models();
        b.iter(|| {
            let run = run_trace_experiment(&short_config(), |bus| {
                Dcm::new(bus, DcmConfig::default(), m)
            });
            black_box(run.counters.completed)
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(10))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_fig5
}
criterion_main!(benches);
