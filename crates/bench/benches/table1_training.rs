//! Benchmarks regenerating Table I: one training sweep point and the
//! least-squares fit over a full sweep.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use dcm_core::training::{fit_sweep_robust, measure_steady_state, SweepOptions, SweepPoint};
use dcm_ntier::topology::SoftConfig;
use dcm_sim::time::SimDuration;

fn quick_options() -> SweepOptions {
    SweepOptions {
        warmup: SimDuration::from_secs(2),
        measure: SimDuration::from_secs(8),
        seed: 1,
        deterministic: false,
    }
}

fn bench_training_point(c: &mut Criterion) {
    c.bench_function("table1_app_sweep_point_20u", |b| {
        b.iter(|| {
            let p = measure_steady_state((1, 1, 1), SoftConfig::DEFAULT, 1, 20, &quick_options());
            black_box(p.throughput)
        })
    });
}

fn bench_fit(c: &mut Criterion) {
    // Synthetic sweep shaped like a real one, so the bench isolates the
    // fitter cost.
    let truth = dcm_model::concurrency::ConcurrencyModel::new(0.05, 0.012, 1.1e-4, 1.0, 1);
    let points: Vec<SweepPoint> = (1..=60)
        .map(|n| SweepPoint {
            offered: n,
            concurrency: f64::from(n),
            throughput: truth.predict_throughput(f64::from(n)),
        })
        .collect();
    c.bench_function("table1_robust_fit_60pts", |b| {
        b.iter(|| {
            let report = fit_sweep_robust(black_box(&points), 1, 0.25).expect("fits");
            black_box(report.model.optimal_concurrency())
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_training_point, bench_fit
}
criterion_main!(benches);
