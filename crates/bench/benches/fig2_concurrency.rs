//! Benchmarks regenerating Fig. 2: one direct-stress measurement point of
//! the MySQL dome (2a) and one steady-state point of the scale-out
//! comparison (2b).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use dcm_core::experiment::{steady_state_throughput, SteadyStateOptions};
use dcm_core::training::{db_stress_point, SweepOptions};
use dcm_ntier::topology::SoftConfig;
use dcm_sim::time::SimDuration;

fn quick_sweep_options() -> SweepOptions {
    SweepOptions {
        warmup: SimDuration::from_secs(2),
        measure: SimDuration::from_secs(8),
        seed: 1,
        deterministic: false,
    }
}

fn bench_fig2a_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2a");
    for concurrency in [20u32, 36, 160] {
        group.bench_function(format!("stress_n{concurrency}"), |b| {
            b.iter(|| {
                let p = db_stress_point(black_box(concurrency), &quick_sweep_options());
                black_box(p.throughput)
            })
        });
    }
    group.finish();
}

fn bench_fig2b_point(c: &mut Criterion) {
    let options = SteadyStateOptions {
        warmup: SimDuration::from_secs(2),
        measure: SimDuration::from_secs(8),
        think_time_secs: 3.0,
        seed: 1,
        ..SteadyStateOptions::default()
    };
    let mut group = c.benchmark_group("fig2b");
    for (label, counts) in [("1_1_1", (1u32, 1u32, 1u32)), ("1_2_1", (1, 2, 1))] {
        group.bench_function(format!("steady_state_{label}_300u"), |b| {
            b.iter(|| {
                let r = steady_state_throughput(counts, SoftConfig::DEFAULT, 300, &options);
                black_box(r.throughput)
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_fig2a_point, bench_fig2b_point
}
criterion_main!(benches);
