//! Event-queue microbenchmarks: the calendar engine vs a binary-heap
//! reference.
//!
//! The engine's calendar (ladder) queue replaced a `BinaryHeap` with
//! tombstoned cancellation. These microbenchmarks drive both backends with
//! identical, seeded operation streams through three profiles that bracket
//! the simulator's real access patterns:
//!
//! * **hold** — the classic hold model: a steady pending set where every
//!   pop schedules one replacement at `now + Exp(1)`. This is the pure
//!   schedule/pop path (no cancellations).
//! * **cancel** — cancel-heavy churn: every iteration schedules two
//!   events and immediately cancels one of them (~50 % of scheduled
//!   events never run), the regime where tombstones make the heap pay
//!   for work it will discard.
//! * **churn** — timeout churn: every completion event carries a far
//!   timeout that is cancelled when the completion pops first — exactly
//!   the request-timeout pattern on the simulator's hot path, where
//!   almost every timeout is armed and then cancelled.
//!
//! The heap reference reproduces the pre-calendar engine faithfully:
//! a `BinaryHeap` ordered by `(time, seq)` storing boxed closures, with
//! O(1) cancellation via generation-stamped tombstones that are discarded
//! lazily when they surface. Timing uses wall clocks, so the results are
//! machine-dependent and live in `results/perf.json` (exempt from the
//! bit-identity rule); the *operation streams* are seeded and identical
//! across backends, so both sides always do the same virtual work.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

use dcm_sim::engine::Engine;
use dcm_sim::rng::SimRng;
use dcm_sim::time::{SimDuration, SimTime};
use dcm_sim::Sample;

use crate::format::{num, TextTable};

use super::Fidelity;

/// Seed for the operation streams (same for both backends).
const SEED: u64 = 7_2026_0807;

/// Pending events held by the hold/churn profiles.
const HELD: usize = 65_536;

/// Operations per profile at each fidelity.
fn iterations(fidelity: Fidelity) -> u64 {
    match fidelity {
        Fidelity::Quick => 100_000,
        Fidelity::Full => 4_000_000,
    }
}

// ---------------------------------------------------------------------------
// The binary-heap reference backend (the pre-calendar engine, distilled).
// ---------------------------------------------------------------------------

struct HeapEntry {
    at: SimTime,
    seq: u64,
    slot: u32,
    gen: u32,
    #[allow(dead_code)]
    action: Box<dyn FnOnce()>,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on (time, seq) via reversed comparison.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A `BinaryHeap` event queue with generation-stamped tombstone
/// cancellation — the engine's data structure before the calendar queue.
struct HeapQueue {
    heap: BinaryHeap<HeapEntry>,
    gens: Vec<u32>,
    free: Vec<u32>,
    next_seq: u64,
    now: SimTime,
    executed: u64,
}

/// Handle for cancelling a heap-queue event.
#[derive(Clone, Copy)]
struct HeapEventId {
    slot: u32,
    gen: u32,
}

impl HeapQueue {
    fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            gens: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            executed: 0,
        }
    }

    fn schedule_at(&mut self, at: SimTime, action: Box<dyn FnOnce()>) -> HeapEventId {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                let slot = u32::try_from(self.gens.len()).expect("too many events");
                self.gens.push(0);
                slot
            }
        };
        let gen = self.gens[slot as usize];
        self.heap.push(HeapEntry {
            at,
            seq,
            slot,
            gen,
            action,
        });
        HeapEventId { slot, gen }
    }

    fn cancel(&mut self, id: HeapEventId) -> bool {
        if self.gens[id.slot as usize] != id.gen {
            return false;
        }
        self.gens[id.slot as usize] = self.gens[id.slot as usize].wrapping_add(1);
        self.free.push(id.slot);
        true
    }

    /// Pops the next live event, discarding tombstones that surface.
    fn step(&mut self) -> bool {
        while let Some(entry) = self.heap.pop() {
            if self.gens[entry.slot as usize] != entry.gen {
                continue; // tombstone
            }
            self.gens[entry.slot as usize] = self.gens[entry.slot as usize].wrapping_add(1);
            self.free.push(entry.slot);
            self.now = entry.at;
            self.executed += 1;
            return true;
        }
        false
    }
}

// ---------------------------------------------------------------------------
// Profiles: each drives one backend with the same seeded operation stream.
// ---------------------------------------------------------------------------

fn exp_delay(rng: &mut SimRng) -> SimDuration {
    SimDuration::from_secs_f64(dcm_sim::dist::Dist::exponential(1.0).sample(rng))
}

/// The hold model: `HELD` pending events; every pop schedules one
/// replacement. Returns (operations, wall seconds).
fn hold_calendar(iters: u64) -> (u64, f64) {
    let mut engine: Engine<()> = Engine::new();
    let mut rng = SimRng::seed_from(SEED);
    for _ in 0..HELD {
        let at = SimTime::ZERO + exp_delay(&mut rng);
        engine.schedule_at(at, |_, _| {});
    }
    let start = Instant::now();
    for _ in 0..iters {
        engine.step(&mut ());
        let at = engine.now() + exp_delay(&mut rng);
        engine.schedule_at(at, |_, _| {});
    }
    (2 * iters, start.elapsed().as_secs_f64())
}

fn hold_heap(iters: u64) -> (u64, f64) {
    let mut queue = HeapQueue::new();
    let mut rng = SimRng::seed_from(SEED);
    for _ in 0..HELD {
        let at = SimTime::ZERO + exp_delay(&mut rng);
        queue.schedule_at(at, Box::new(|| {}));
    }
    let start = Instant::now();
    for _ in 0..iters {
        queue.step();
        let at = queue.now + exp_delay(&mut rng);
        queue.schedule_at(at, Box::new(|| {}));
    }
    (2 * iters, start.elapsed().as_secs_f64())
}

/// Cancel-heavy churn: schedule two, cancel one, pop one.
fn cancel_calendar(iters: u64) -> (u64, f64) {
    let mut engine: Engine<()> = Engine::new();
    let mut rng = SimRng::seed_from(SEED);
    let start = Instant::now();
    for _ in 0..iters {
        let keep = engine.now() + exp_delay(&mut rng);
        engine.schedule_at(keep, |_, _| {});
        let drop_at = engine.now() + exp_delay(&mut rng);
        let doomed = engine.schedule_at(drop_at, |_, _| {});
        engine.cancel(doomed);
        engine.step(&mut ());
    }
    (4 * iters, start.elapsed().as_secs_f64())
}

fn cancel_heap(iters: u64) -> (u64, f64) {
    let mut queue = HeapQueue::new();
    let mut rng = SimRng::seed_from(SEED);
    let start = Instant::now();
    for _ in 0..iters {
        let keep = queue.now + exp_delay(&mut rng);
        queue.schedule_at(keep, Box::new(|| {}));
        let drop_at = queue.now + exp_delay(&mut rng);
        let doomed = queue.schedule_at(drop_at, Box::new(|| {}));
        queue.cancel(doomed);
        queue.step();
    }
    (4 * iters, start.elapsed().as_secs_f64())
}

/// Timeout churn: a held set where every pop schedules a near completion
/// plus a far timeout, and cancels the previous far timeout (the
/// request-timeout pattern: armed, then cancelled on completion).
fn churn_calendar(iters: u64) -> (u64, f64) {
    let mut engine: Engine<()> = Engine::new();
    let mut rng = SimRng::seed_from(SEED);
    let mut timeouts = Vec::with_capacity(HELD);
    for _ in 0..HELD {
        let at = SimTime::ZERO + exp_delay(&mut rng);
        engine.schedule_at(at, |_, _| {});
        let far = SimTime::ZERO + SimDuration::from_secs(1000) + exp_delay(&mut rng);
        timeouts.push(engine.schedule_at(far, |_, _| {}));
    }
    let start = Instant::now();
    for i in 0..iters {
        engine.step(&mut ());
        let slot = (i % HELD as u64) as usize;
        engine.cancel(timeouts[slot]);
        let at = engine.now() + exp_delay(&mut rng);
        engine.schedule_at(at, |_, _| {});
        let far = engine.now() + SimDuration::from_secs(1000) + exp_delay(&mut rng);
        timeouts[slot] = engine.schedule_at(far, |_, _| {});
    }
    (4 * iters, start.elapsed().as_secs_f64())
}

fn churn_heap(iters: u64) -> (u64, f64) {
    let mut queue = HeapQueue::new();
    let mut rng = SimRng::seed_from(SEED);
    let mut timeouts = Vec::with_capacity(HELD);
    for _ in 0..HELD {
        let at = SimTime::ZERO + exp_delay(&mut rng);
        queue.schedule_at(at, Box::new(|| {}));
        let far = SimTime::ZERO + SimDuration::from_secs(1000) + exp_delay(&mut rng);
        timeouts.push(queue.schedule_at(far, Box::new(|| {})));
    }
    let start = Instant::now();
    for i in 0..iters {
        queue.step();
        let slot = (i % HELD as u64) as usize;
        queue.cancel(timeouts[slot]);
        let at = queue.now + exp_delay(&mut rng);
        queue.schedule_at(at, Box::new(|| {}));
        let far = queue.now + SimDuration::from_secs(1000) + exp_delay(&mut rng);
        timeouts[slot] = queue.schedule_at(far, Box::new(|| {}));
    }
    (4 * iters, start.elapsed().as_secs_f64())
}

/// One (profile, backend) measurement.
#[derive(Debug, Clone)]
pub struct QueueBenchPoint {
    /// Profile name: `hold`, `cancel`, or `churn`.
    pub profile: &'static str,
    /// Backend name: `calendar` or `heap`.
    pub backend: &'static str,
    /// Queue operations performed (schedules + pops + cancels).
    pub ops: u64,
    /// Wall-clock seconds for the measured loop.
    pub wall_secs: f64,
}

impl QueueBenchPoint {
    /// Operations per wall-clock second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.ops as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// The microbenchmark results, calendar and heap side by side.
#[derive(Debug, Clone)]
pub struct QueueBench {
    /// Measurements in (profile, backend) order.
    pub points: Vec<QueueBenchPoint>,
}

/// A microbenchmark body: takes the iteration count, returns (ops, wall secs).
type ProfileFn = fn(u64) -> (u64, f64);

/// Runs all three profiles on both backends. Wall-clock timing: run on an
/// otherwise idle machine for stable numbers.
pub fn run_queuebench(fidelity: Fidelity) -> QueueBench {
    let iters = iterations(fidelity);
    let mut points = Vec::new();
    let profiles: [(&'static str, ProfileFn, ProfileFn); 3] = [
        ("hold", hold_calendar, hold_heap),
        ("cancel", cancel_calendar, cancel_heap),
        ("churn", churn_calendar, churn_heap),
    ];
    for (profile, calendar, heap) in profiles {
        let (ops, wall_secs) = calendar(iters);
        points.push(QueueBenchPoint {
            profile,
            backend: "calendar",
            ops,
            wall_secs,
        });
        let (ops, wall_secs) = heap(iters);
        points.push(QueueBenchPoint {
            profile,
            backend: "heap",
            ops,
            wall_secs,
        });
    }
    QueueBench { points }
}

impl QueueBench {
    /// Speedup of the calendar backend over the heap for one profile.
    pub fn speedup(&self, profile: &str) -> Option<f64> {
        let rate = |backend: &str| {
            self.points
                .iter()
                .find(|p| p.profile == profile && p.backend == backend)
                .map(QueueBenchPoint::ops_per_sec)
        };
        match (rate("calendar"), rate("heap")) {
            (Some(c), Some(h)) if h > 0.0 => Some(c / h),
            _ => None,
        }
    }

    /// The side-by-side table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(["profile", "backend", "ops", "wall(s)", "Mops/s", "speedup"]);
        for p in &self.points {
            let speedup = if p.backend == "calendar" {
                self.speedup(p.profile)
                    .map(|s| format!("{s:.2}x"))
                    .unwrap_or_default()
            } else {
                String::new()
            };
            t.row([
                p.profile.to_string(),
                p.backend.to_string(),
                p.ops.to_string(),
                num(p.wall_secs, 3),
                num(p.ops_per_sec() / 1e6, 2),
                speedup,
            ]);
        }
        t
    }

    /// Summary of the calendar-vs-heap comparison.
    pub fn findings(&self) -> Vec<String> {
        let mut out = Vec::new();
        for profile in ["hold", "cancel", "churn"] {
            if let Some(s) = self.speedup(profile) {
                out.push(format!(
                    "{profile}: calendar queue at {s:.2}x the binary-heap \
                     reference (identical seeded operation stream)"
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_backends_agree_on_virtual_work() {
        // The heap reference must execute the same number of live events
        // as the calendar engine for the same operation stream.
        let iters = 2_000;
        let mut engine: Engine<()> = Engine::new();
        let mut queue = HeapQueue::new();
        let mut rng_a = SimRng::seed_from(SEED);
        let mut rng_b = SimRng::seed_from(SEED);
        for i in 0..iters {
            let da = exp_delay(&mut rng_a);
            let db = exp_delay(&mut rng_b);
            assert_eq!(da, db);
            let a = engine.schedule_at(engine.now() + da, |_, _| {});
            let b = queue.schedule_at(queue.now + db, Box::new(|| {}));
            if i % 3 == 0 {
                assert_eq!(engine.cancel(a), queue.cancel(b));
            }
            engine.step(&mut ());
            queue.step();
        }
        while engine.step(&mut ()) {}
        while queue.step() {}
        assert_eq!(engine.executed(), queue.executed);
        assert_eq!(engine.now(), queue.now);
    }

    #[test]
    fn all_tombstone_bucket_purge_never_reorders() {
        // Regression for the calendar's tombstone-purge path: when a
        // bucket drains to nothing but tombstones, the cursor advance
        // must stop at the far list's minimum bucket — sliding past it
        // would later replay the far event behind the clock and reorder
        // execution. Build that shape deliberately, round after round:
        // a jittered cluster of near events landing in one ~1 ms bucket,
        // one live event parked beyond the 64-bucket ring window, then
        // cancel the whole cluster so the purge path runs. Both backends
        // consume the same seeded stream and must pop the same instants.
        use rand::RngCore;
        let mut engine: Engine<()> = Engine::new();
        let mut queue = HeapQueue::new();
        let mut rng = SimRng::seed_from(SEED ^ 0x700B_570E);
        for round in 0..256 {
            let near = engine.now() + SimDuration::from_millis(2);
            let cluster: Vec<_> = (0..1 + rng.next_u64() % 6)
                .map(|_| {
                    let at = near + SimDuration::from_nanos(rng.next_u64() % 1_000);
                    (
                        engine.schedule_at(at, |_, _| {}),
                        queue.schedule_at(at, Box::new(|| {})),
                    )
                })
                .collect();
            let far = engine.now() + SimDuration::from_millis(80 + rng.next_u64() % 40);
            engine.schedule_at(far, |_, _| {});
            queue.schedule_at(far, Box::new(|| {}));
            for (a, b) in cluster {
                assert_eq!(engine.cancel(a), queue.cancel(b));
            }
            // The only live event left this round is the far one; any
            // cursor overshoot during the all-tombstone purge would trip
            // the engine's release-mode ordering assert on a later pop.
            assert!(engine.step(&mut ()));
            assert!(queue.step());
            assert_eq!(engine.now(), queue.now, "diverged at round {round}");
        }
        while engine.step(&mut ()) {}
        while queue.step() {}
        assert_eq!(engine.executed(), queue.executed);
        assert_eq!(engine.now(), queue.now);
    }

    #[test]
    fn quick_bench_produces_all_points() {
        let bench = run_queuebench(Fidelity::Quick);
        assert_eq!(bench.points.len(), 6);
        for p in &bench.points {
            assert!(p.ops > 0);
            assert!(p.wall_secs >= 0.0);
        }
        assert_eq!(bench.findings().len(), 3);
        assert_eq!(bench.table().len(), 6);
    }
}
