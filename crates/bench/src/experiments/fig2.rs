//! Fig. 2(a): the MySQL concurrency dome under direct stress.
//! Fig. 2(b): throughput vs users for `1/1/1` and `1/2/1`, both with the
//! default soft allocation — the scale-out-made-it-worse crossover.

use dcm_core::experiment::{steady_state_throughput, SteadyStateOptions, SteadyStateReport};
use dcm_core::training::{db_stress_sweep, SweepOptions, SweepPoint};
use dcm_ntier::topology::SoftConfig;

use crate::format::{num, TextTable};

use super::Fidelity;

/// Fig. 2(a) result: the measured MySQL dome.
#[derive(Debug, Clone)]
pub struct Fig2a {
    /// `(controlled concurrency, measured concurrency, queries/s)` points.
    pub points: Vec<SweepPoint>,
}

/// Runs the Fig. 2(a) direct-stress sweep (concurrency 5 → 600).
pub fn run_fig2a(fidelity: Fidelity) -> Fig2a {
    let levels: Vec<u32> = match fidelity {
        Fidelity::Quick => vec![5, 20, 36, 80, 160, 400],
        Fidelity::Full => vec![
            1, 5, 10, 15, 20, 25, 30, 36, 42, 50, 60, 70, 80, 100, 120, 160, 200, 300, 400, 600,
        ],
    };
    let options = SweepOptions {
        warmup: fidelity.warmup(),
        measure: fidelity.measure(),
        seed: 20170605,
        deterministic: false,
    };
    Fig2a {
        points: db_stress_sweep(&levels, &options),
    }
}

impl Fig2a {
    /// The figure's data series.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(["concurrency", "measured_n", "queries_per_sec"]);
        for p in &self.points {
            t.row([
                p.offered.to_string(),
                num(p.concurrency, 1),
                num(p.throughput, 1),
            ]);
        }
        t
    }

    /// Peak throughput across the sweep.
    pub fn peak(&self) -> (u32, f64) {
        self.points
            .iter()
            .map(|p| (p.offered, p.throughput))
            .fold((0, 0.0), |acc, p| if p.1 > acc.1 { p } else { acc })
    }

    /// Self-checks against the paper's qualitative claims.
    pub fn findings(&self) -> Vec<String> {
        let mut out = Vec::new();
        let (peak_n, peak_x) = self.peak();
        out.push(format!(
            "peak {:.1} q/s at concurrency {} (paper: knee ≈ 36–40)",
            peak_x, peak_n
        ));
        let at = |n: u32| {
            self.points
                .iter()
                .find(|p| p.offered == n)
                .map(|p| p.throughput)
        };
        if let (Some(lo), Some(hi)) = (at(5), at(600).or_else(|| at(400))) {
            out.push(format!(
                "low-concurrency (5) at {:.0} % of peak; deep saturation at {:.0} % \
                 (paper: both flanks fall off, 'reasonable between 20 and 80')",
                100.0 * lo / peak_x,
                100.0 * hi / peak_x
            ));
        }
        out
    }
}

/// Fig. 2(b) result: throughput-vs-users curves for the two hardware
/// configurations under the default soft allocation.
#[derive(Debug, Clone)]
pub struct Fig2b {
    /// `1/1/1` curve.
    pub baseline: Vec<SteadyStateReport>,
    /// `1/2/1` curve (scaled out, soft resources untouched).
    pub scaled_out: Vec<SteadyStateReport>,
}

/// Runs the Fig. 2(b) comparison.
pub fn run_fig2b(fidelity: Fidelity) -> Fig2b {
    let users: Vec<u32> = match fidelity {
        Fidelity::Quick => vec![100, 250, 400],
        Fidelity::Full => vec![50, 100, 150, 200, 250, 300, 350, 400, 450, 500],
    };
    let options = SteadyStateOptions {
        warmup: fidelity.warmup(),
        measure: fidelity.measure(),
        think_time_secs: 3.0,
        seed: 20170602,
        ..SteadyStateOptions::default()
    };
    let soft = SoftConfig::DEFAULT; // 1000-100-80
                                    // Both curves' runs fan out together; results come back in input order,
                                    // so the split below reproduces the serial curves exactly.
    let configs = [(1u32, 1u32, 1u32), (1, 2, 1)];
    let descriptors: Vec<((u32, u32, u32), u32)> = configs
        .iter()
        .flat_map(|&counts| users.iter().map(move |&u| (counts, u)))
        .collect();
    let mut reports = dcm_sim::runner::run_ordered(descriptors, |(counts, u)| {
        steady_state_throughput(counts, soft, u, &options)
    });
    let scaled_out = reports.split_off(users.len());
    Fig2b {
        baseline: reports,
        scaled_out,
    }
}

impl Fig2b {
    /// The figure's data series.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(["users", "x_1/1/1", "x_1/2/1", "rt_1/1/1", "rt_1/2/1"]);
        for (a, b) in self.baseline.iter().zip(self.scaled_out.iter()) {
            t.row([
                a.users.to_string(),
                num(a.throughput, 1),
                num(b.throughput, 1),
                num(a.mean_rt, 3),
                num(b.mean_rt, 3),
            ]);
        }
        t
    }

    /// The lowest user level at which the scaled-out system performs worse
    /// than the baseline (the paper's headline crossover), if any.
    pub fn crossover(&self) -> Option<u32> {
        self.baseline
            .iter()
            .zip(self.scaled_out.iter())
            .find(|(a, b)| b.throughput < a.throughput * 0.97)
            .map(|(a, _)| a.users)
    }

    /// Self-checks against the paper's qualitative claims.
    pub fn findings(&self) -> Vec<String> {
        let mut out = Vec::new();
        match self.crossover() {
            Some(users) => out.push(format!(
                "scaled-out 1/2/1 falls below 1/1/1 from {users} users \
                 (paper: 'system throughput significantly decreased under high workload after scaling-out')"
            )),
            None => out.push("no crossover observed (paper expects one)".into()),
        }
        if let (Some(a), Some(b)) = (self.baseline.last(), self.scaled_out.last()) {
            out.push(format!(
                "at {} users: 1/1/1 {:.1} req/s vs 1/2/1 {:.1} req/s ({:+.0} %)",
                a.users,
                a.throughput,
                b.throughput,
                100.0 * (b.throughput - a.throughput) / a.throughput
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2a_quick_shows_dome() {
        let result = run_fig2a(Fidelity::Quick);
        let (peak_n, peak_x) = result.peak();
        assert!((20..=80).contains(&peak_n), "peak at {peak_n}");
        let at_400 = result
            .points
            .iter()
            .find(|p| p.offered == 400)
            .unwrap()
            .throughput;
        assert!(at_400 < 0.3 * peak_x, "deep saturation collapses");
        assert!(!result.table().is_empty());
        assert_eq!(result.findings().len(), 2);
    }

    #[test]
    fn fig2b_quick_shows_crossover() {
        let result = run_fig2b(Fidelity::Quick);
        assert!(
            result.crossover().is_some(),
            "expected the scale-out crossover: {:?}",
            result.table().render()
        );
    }
}
