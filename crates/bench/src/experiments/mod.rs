//! The reproduction experiments, one module per paper artefact.
//!
//! Every experiment returns a structured result with a `table()` renderer
//! and a `findings()` self-check that verifies the paper's qualitative
//! claims against the measured data (these are the assertions
//! EXPERIMENTS.md reports).

pub mod ablation;
pub mod chaos;
pub mod fig2;
pub mod fig4;
pub mod fig5;
pub mod fleet;
pub mod gamma;
pub mod hunt;
pub mod league;
pub mod mesh;
pub mod queuebench;
pub mod table1;
pub mod trace_export;
pub mod validate;

use dcm_sim::time::SimDuration;

/// Experiment size: `Quick` for smoke tests and Criterion, `Full` for the
/// numbers reported in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Short windows, coarse sweeps.
    Quick,
    /// Paper-scale runs.
    Full,
}

impl Fidelity {
    /// Warm-up period for steady-state measurements.
    pub fn warmup(self) -> SimDuration {
        match self {
            Fidelity::Quick => SimDuration::from_secs(5),
            Fidelity::Full => SimDuration::from_secs(20),
        }
    }

    /// Measurement window for steady-state measurements.
    pub fn measure(self) -> SimDuration {
        match self {
            Fidelity::Quick => SimDuration::from_secs(20),
            Fidelity::Full => SimDuration::from_secs(60),
        }
    }
}
