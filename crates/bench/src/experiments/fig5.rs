//! Fig. 5: DCM vs EC2-AutoScale under the "Large Variation" bursty trace —
//! response-time/throughput timelines, per-tier scaling activity, CPU
//! utilization, and the resource-efficiency summary.

use dcm_core::controller::{Dcm, DcmConfig, DcmModels, Ec2AutoScale};
use dcm_core::experiment::{run_trace_experiment, TraceExperimentConfig, TraceRunResult};
use dcm_core::policy::ScalingConfig;
use dcm_core::training::{train_app_model, train_db_model, SweepOptions};
use dcm_model::lsq::FitError;
use dcm_sim::time::{SimDuration, SimTime};
use dcm_workload::traces;

use crate::format::{num, TextTable};

use super::Fidelity;

/// Both Fig. 5 runs plus the models that drove DCM.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// The DCM run (panels a/c/e).
    pub dcm: TraceRunResult,
    /// The EC2-AutoScale run (panels b/d/f).
    pub ec2: TraceRunResult,
    /// The offline-trained models DCM used.
    pub models: DcmModels,
}

/// Trains the models (paper §V-A) and returns them for DCM use.
///
/// # Errors
///
/// Propagates [`FitError`] if training fails.
pub fn train_models(fidelity: Fidelity) -> Result<DcmModels, FitError> {
    let options = SweepOptions {
        warmup: fidelity.warmup(),
        measure: fidelity.measure(),
        seed: 20170601,
        deterministic: false,
    };
    Ok(DcmModels {
        app: train_app_model(&options)?.report.model,
        db: train_db_model(&options)?.report.model,
    })
}

/// The experiment configuration for the given fidelity (full = the paper's
/// 700 s horizon).
pub fn fig5_config(fidelity: Fidelity) -> TraceExperimentConfig {
    let mut config = TraceExperimentConfig::figure5(traces::large_variation());
    if fidelity == Fidelity::Quick {
        config.horizon = SimTime::from_secs(200);
    }
    config
}

/// Runs both controllers on an arbitrary external trace.
pub fn run_fig5_on_trace(
    fidelity: Fidelity,
    models: DcmModels,
    trace: traces::WorkloadTrace,
) -> Fig5 {
    let mut config = fig5_config(fidelity);
    config.horizon = config
        .horizon
        .max(trace.last_change() + dcm_sim::time::SimDuration::from_secs(30));
    config.trace = trace;
    run_with_config(&config, models)
}

/// Runs both controllers on the same trace with the given models.
pub fn run_fig5(fidelity: Fidelity, models: DcmModels) -> Fig5 {
    let config = fig5_config(fidelity);
    run_with_config(&config, models)
}

fn run_with_config(config: &TraceExperimentConfig, models: DcmModels) -> Fig5 {
    let config = config.clone();
    // The two controller runs are independent (each builds its own world
    // from the shared config), so they execute concurrently when jobs > 1.
    let (ec2, dcm) = dcm_sim::runner::join(
        || {
            run_trace_experiment(&config, |bus| {
                Ec2AutoScale::new(bus, ScalingConfig::default())
            })
        },
        || run_trace_experiment(&config, |bus| Dcm::new(bus, DcmConfig::default(), models)),
    );
    Fig5 { dcm, ec2, models }
}

/// Trains models then runs the comparison.
///
/// # Errors
///
/// Propagates [`FitError`] from training.
pub fn run_fig5_with_training(fidelity: Fidelity) -> Result<Fig5, FitError> {
    let models = train_models(fidelity)?;
    Ok(run_fig5(fidelity, models))
}

/// Summary metrics of one run, used in the comparison table.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunSummary {
    /// Successful completions.
    pub completed: u64,
    /// Mean throughput (req/s).
    pub throughput: f64,
    /// Mean response time (s).
    pub mean_rt: f64,
    /// 95th-percentile response time (s).
    pub p95_rt: f64,
    /// Worst 5-second-window mean response time (s).
    pub worst_window_rt: f64,
    /// 5-second windows with mean response time above 1 s (the paper's
    /// spike criterion).
    pub windows_over_1s: usize,
    /// Total VM-seconds consumed across tiers.
    pub vm_seconds: f64,
    /// Completed requests per VM-second (resource efficiency).
    pub efficiency: f64,
    /// Fraction of requests meeting a 1-second response-time SLA.
    pub sla_1s: f64,
}

/// Replicated comparison: each metric as mean ± 95 % CI over several
/// seeds of the same trace.
#[derive(Debug, Clone)]
pub struct ReplicatedFig5 {
    /// Per-metric replications for DCM.
    pub dcm: Vec<(&'static str, dcm_sim::stats::Replications)>,
    /// Per-metric replications for EC2-AutoScale.
    pub ec2: Vec<(&'static str, dcm_sim::stats::Replications)>,
    /// The seeds used.
    pub seeds: Vec<u64>,
}

/// Runs the Fig. 5 comparison under each seed and aggregates with
/// Student-t confidence intervals.
pub fn run_fig5_replicated(fidelity: Fidelity, models: DcmModels, seeds: &[u64]) -> ReplicatedFig5 {
    fn metric_set() -> Vec<(&'static str, dcm_sim::stats::Replications)> {
        vec![
            ("throughput (req/s)", dcm_sim::stats::Replications::new()),
            ("mean RT (s)", dcm_sim::stats::Replications::new()),
            ("p95 RT (s)", dcm_sim::stats::Replications::new()),
            (
                "worst 5s-window RT (s)",
                dcm_sim::stats::Replications::new(),
            ),
            (
                "requests per VM-second",
                dcm_sim::stats::Replications::new(),
            ),
        ]
    }
    let mut out = ReplicatedFig5 {
        dcm: metric_set(),
        ec2: metric_set(),
        seeds: seeds.to_vec(),
    };
    // Every (seed, controller) run is independent; fan them all out and
    // aggregate the in-order summaries serially so each Replications sees
    // values in exactly the seed order the serial loop produced.
    let descriptors: Vec<(u64, bool)> = seeds
        .iter()
        .flat_map(|&seed| [(seed, true), (seed, false)])
        .collect();
    let summaries = dcm_sim::runner::run_ordered(descriptors, |(seed, is_dcm)| {
        let mut config = fig5_config(fidelity);
        config.seed = seed;
        let run = if is_dcm {
            run_trace_experiment(&config, |bus| Dcm::new(bus, DcmConfig::default(), models))
        } else {
            run_trace_experiment(&config, |bus| {
                Ec2AutoScale::new(bus, ScalingConfig::default())
            })
        };
        summarize(&run)
    });
    for pair in summaries.chunks(2) {
        for (s, slot) in [(pair[0], &mut out.dcm), (pair[1], &mut out.ec2)] {
            slot[0].1.record(s.throughput);
            slot[1].1.record(s.mean_rt);
            slot[2].1.record(s.p95_rt);
            slot[3].1.record(s.worst_window_rt);
            slot[4].1.record(s.efficiency);
        }
    }
    out
}

impl ReplicatedFig5 {
    /// The mean ± CI comparison table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(["metric", "DCM (95% CI)", "EC2-AutoScale (95% CI)"]);
        for ((name, d), (_, e)) in self.dcm.iter().zip(self.ec2.iter()) {
            t.row([(*name).to_string(), d.display(2), e.display(2)]);
        }
        t
    }
}

/// Summarizes one run.
pub fn summarize(run: &TraceRunResult) -> RunSummary {
    let mut overall = run.overall();
    let series = run.series(SimDuration::from_secs(5));
    let worst = series.mean_rt.max().unwrap_or(0.0);
    let over: usize = series.mean_rt.iter().filter(|&(_, v)| v > 1.0).count();
    let vm_seconds = run.total_vm_seconds();
    RunSummary {
        completed: overall.completed(),
        throughput: overall.throughput(),
        mean_rt: overall.mean_response_time(),
        p95_rt: overall.response_time_quantile(0.95).unwrap_or(0.0),
        worst_window_rt: worst,
        windows_over_1s: over,
        vm_seconds,
        efficiency: if vm_seconds > 0.0 {
            overall.completed() as f64 / vm_seconds
        } else {
            0.0
        },
        sla_1s: overall.sla_attainment(1.0),
    }
}

impl Fig5 {
    /// The head-to-head summary table.
    pub fn summary_table(&self) -> TextTable {
        let d = summarize(&self.dcm);
        let e = summarize(&self.ec2);
        let mut t = TextTable::new(["metric", "DCM", "EC2-AutoScale"]);
        t.row([
            "completed".to_string(),
            d.completed.to_string(),
            e.completed.to_string(),
        ]);
        t.row([
            "throughput (req/s)".to_string(),
            num(d.throughput, 1),
            num(e.throughput, 1),
        ]);
        t.row([
            "mean RT (s)".to_string(),
            num(d.mean_rt, 3),
            num(e.mean_rt, 3),
        ]);
        t.row(["p95 RT (s)".to_string(), num(d.p95_rt, 3), num(e.p95_rt, 3)]);
        t.row([
            "worst 5s-window RT (s)".to_string(),
            num(d.worst_window_rt, 2),
            num(e.worst_window_rt, 2),
        ]);
        t.row([
            "5s windows with RT > 1s".to_string(),
            d.windows_over_1s.to_string(),
            e.windows_over_1s.to_string(),
        ]);
        t.row([
            "SLA attainment (RT <= 1s)".to_string(),
            num(d.sla_1s, 3),
            num(e.sla_1s, 3),
        ]);
        t.row([
            "VM-seconds".to_string(),
            num(d.vm_seconds, 0),
            num(e.vm_seconds, 0),
        ]);
        t.row([
            "requests per VM-second".to_string(),
            num(d.efficiency, 2),
            num(e.efficiency, 2),
        ]);
        t
    }

    /// A downsampled timeline of one run (`every` seconds per row):
    /// offered users, throughput, mean RT, app/db VM counts and CPU util.
    pub fn timeline_table(&self, run: &TraceRunResult, every: u64) -> TextTable {
        let series = run.series(SimDuration::from_secs(every));
        let mut t = TextTable::new([
            "t(s)", "users", "x(req/s)", "rt(s)", "app_vms", "db_vms", "app_util", "db_util",
        ]);
        for ((at, x), (_, rt)) in series.throughput.iter().zip(series.mean_rt.iter()) {
            let end = at + SimDuration::from_secs(every);
            let users = run
                .offered
                .iter()
                .take_while(|&(w, _)| w <= at)
                .last()
                .map_or(0.0, |(_, v)| v);
            let vm = |tier: usize| {
                run.tier_vm_counts[tier]
                    .range(at, end)
                    .map(|(_, v)| v)
                    .fold(0.0f64, f64::max)
            };
            let util = |tier: usize| {
                let pts: Vec<f64> = run.tier_cpu_util[tier]
                    .range(at, end)
                    .map(|(_, v)| v)
                    .collect();
                if pts.is_empty() {
                    0.0
                } else {
                    pts.iter().sum::<f64>() / pts.len() as f64
                }
            };
            t.row([
                num(at.as_secs_f64(), 0),
                num(users, 0),
                num(x, 1),
                num(rt, 2),
                num(vm(1), 0),
                num(vm(2), 0),
                num(util(1), 2),
                num(util(2), 2),
            ]);
        }
        t
    }

    /// Self-checks against the paper's qualitative claims.
    pub fn findings(&self) -> Vec<String> {
        let d = summarize(&self.dcm);
        let e = summarize(&self.ec2);
        let mut out = Vec::new();
        out.push(format!(
            "stability: DCM worst 5s-window RT {:.2} s vs EC2 {:.2} s; windows over 1 s: {} vs {} \
             (paper: DCM 'much more stable', EC2 has large spikes)",
            d.worst_window_rt, e.worst_window_rt, d.windows_over_1s, e.windows_over_1s
        ));
        out.push(format!(
            "throughput: DCM {:.1} req/s vs EC2 {:.1} req/s ({:+.0} %); \
             no-throughput-loss claim holds: {}",
            d.throughput,
            e.throughput,
            100.0 * (d.throughput - e.throughput) / e.throughput,
            d.throughput >= e.throughput
        ));
        out.push(format!(
            "efficiency: DCM {:.2} req/VM-s vs EC2 {:.2} req/VM-s (paper: 'higher resource efficiency')",
            d.efficiency, e.efficiency
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcm_model::concurrency::ConcurrencyModel;
    use dcm_ntier::law::reference;

    fn cheap_models() -> DcmModels {
        // Ground-truth laws as stand-in fitted models (skips training in
        // the quick test).
        let app = reference::tomcat();
        let db = reference::mysql();
        DcmModels {
            app: ConcurrencyModel::new(app.s0(), app.alpha(), app.beta(), 1.0, 1).with_servers(1),
            db: ConcurrencyModel::new(db.s0(), db.alpha(), db.beta(), 1.0, 1).with_servers(1),
        }
    }

    #[test]
    fn quick_fig5_dcm_is_more_stable_than_ec2() {
        let result = run_fig5(Fidelity::Quick, cheap_models());
        let d = summarize(&result.dcm);
        let e = summarize(&result.ec2);
        assert!(d.completed > 0 && e.completed > 0);
        assert!(
            d.p95_rt <= e.p95_rt,
            "DCM p95 {} should not exceed EC2 {}",
            d.p95_rt,
            e.p95_rt
        );
        assert!(d.throughput >= e.throughput * 0.95);
        let table = result.summary_table();
        assert_eq!(table.len(), 9);
        assert_eq!(result.findings().len(), 3);
        let tl = result.timeline_table(&result.dcm, 20);
        assert!(tl.len() >= 8);
    }
}
