//! Ablations beyond the paper: which half of DCM's soft-resource actuation
//! carries the benefit, and how sensitive DCM is to mis-estimated optima.

use dcm_core::controller::{Dcm, DcmConfig, DcmModels, Ec2AutoScale};
use dcm_core::experiment::{run_trace_experiment, TraceExperimentConfig};
use dcm_core::policy::ScalingConfig;

use crate::format::{num, TextTable};

use super::fig5::{fig5_config, summarize, RunSummary};
use super::Fidelity;

/// How one ablation variant drives its run.
#[derive(Debug, Clone)]
enum VariantSpec {
    Ec2,
    Dcm(DcmConfig),
    DcmRefit(DcmConfig),
}

/// Runs every `(label, config, spec)` variant in parallel (each builds its
/// own world) and collects summaries in the given presentation order.
fn run_variants(
    models: DcmModels,
    specs: Vec<(String, TraceExperimentConfig, VariantSpec)>,
) -> Ablation {
    let variants = dcm_sim::runner::run_ordered(specs, |(label, config, spec)| {
        let run = match spec {
            VariantSpec::Ec2 => run_trace_experiment(&config, |bus| {
                Ec2AutoScale::new(bus, ScalingConfig::default())
            }),
            VariantSpec::Dcm(dcm_config) => {
                run_trace_experiment(&config, |bus| Dcm::new(bus, dcm_config, models))
            }
            VariantSpec::DcmRefit(dcm_config) => run_trace_experiment(&config, |bus| {
                Dcm::new(bus, dcm_config, models).with_online_refit(16, 4)
            }),
        };
        Variant {
            label,
            summary: summarize(&run),
        }
    });
    Ablation { variants }
}

/// One ablation variant's outcome.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Variant label.
    pub label: String,
    /// Its run summary.
    pub summary: RunSummary,
}

/// Ablation result set.
#[derive(Debug, Clone)]
pub struct Ablation {
    /// All variants, in presentation order.
    pub variants: Vec<Variant>,
}

/// Runs the actuation ablation: full DCM, threads-only, conns-only, and
/// the hardware-only baseline, all on the same trace and models.
pub fn run_actuation_ablation(fidelity: Fidelity, models: DcmModels) -> Ablation {
    let config = fig5_config(fidelity);
    let dcm_variant = |label: &str, adapt_threads: bool, adapt_conns: bool| {
        (
            label.to_string(),
            config.clone(),
            VariantSpec::Dcm(DcmConfig {
                adapt_threads,
                adapt_conns,
                ..DcmConfig::default()
            }),
        )
    };
    run_variants(
        models,
        vec![
            dcm_variant("DCM (both)", true, true),
            dcm_variant("DCM threads-only", true, false),
            dcm_variant("DCM conns-only", false, true),
            (
                "EC2-AutoScale (neither)".into(),
                config.clone(),
                VariantSpec::Ec2,
            ),
        ],
    )
}

/// Runs the controller-extension comparison: plain reactive DCM vs the
/// predictive variant (Holt trend forecast one boot-delay ahead) vs online
/// model refitting.
pub fn run_extensions(fidelity: Fidelity, models: DcmModels) -> Ablation {
    let config = fig5_config(fidelity);
    let variant = |label: &str, make_config: DcmConfig, refit: bool| {
        let spec = if refit {
            VariantSpec::DcmRefit(make_config)
        } else {
            VariantSpec::Dcm(make_config)
        };
        (label.to_string(), config.clone(), spec)
    };
    run_variants(
        models,
        vec![
            variant("DCM reactive", DcmConfig::default(), false),
            variant(
                "DCM predictive",
                DcmConfig {
                    predictive: Some(dcm_core::predictor::HoltConfig::default()),
                    ..DcmConfig::default()
                },
                false,
            ),
            variant("DCM online-refit", DcmConfig::default(), true),
            variant(
                "DCM dwell-SLA trigger",
                DcmConfig {
                    scaling: ScalingConfig {
                        trigger: dcm_core::policy::TriggerSignal::DwellPressure { sla_secs: 0.5 },
                        ..ScalingConfig::default()
                    },
                    ..DcmConfig::default()
                },
                false,
            ),
        ],
    )
}

/// Runs the fault-injection comparison: DCM vs EC2-AutoScale when a
/// fraction of VM boots fail (a failure mode absent from the paper's
/// evaluation but routine in real clouds). Controllers that suppress
/// repeat scale-outs while a boot is pending must retry after the failure
/// surfaces.
pub fn run_fault_injection(
    fidelity: Fidelity,
    models: DcmModels,
    failure_probs: &[f64],
) -> Ablation {
    let specs = failure_probs
        .iter()
        .flat_map(|&p| {
            let mut config = fig5_config(fidelity);
            config.boot_failure_prob = p;
            [
                (
                    format!("DCM, {:.0}% boot failures", p * 100.0),
                    config.clone(),
                    VariantSpec::Dcm(DcmConfig::default()),
                ),
                (
                    format!("EC2, {:.0}% boot failures", p * 100.0),
                    config,
                    VariantSpec::Ec2,
                ),
            ]
        })
        .collect();
    run_variants(models, specs)
}

/// Runs the N*-sensitivity sweep: DCM with the pool targets scaled by each
/// factor (a mis-trained model over/under-shooting the true optimum).
pub fn run_sensitivity(fidelity: Fidelity, models: DcmModels, factors: &[f64]) -> Ablation {
    let config = fig5_config(fidelity);
    let specs = factors
        .iter()
        .map(|&factor| {
            (
                format!("N* x {factor:.2}"),
                config.clone(),
                VariantSpec::Dcm(DcmConfig {
                    headroom: 1.1 * factor,
                    ..DcmConfig::default()
                }),
            )
        })
        .collect();
    run_variants(models, specs)
}

impl Ablation {
    /// The comparison table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new([
            "variant",
            "x(req/s)",
            "mean_rt(s)",
            "p95_rt(s)",
            "worst_win(s)",
            "wins>1s",
            "req/vm-s",
        ]);
        for v in &self.variants {
            let s = v.summary;
            t.row([
                v.label.clone(),
                num(s.throughput, 1),
                num(s.mean_rt, 3),
                num(s.p95_rt, 2),
                num(s.worst_window_rt, 2),
                s.windows_over_1s.to_string(),
                num(s.efficiency, 2),
            ]);
        }
        t
    }

    /// The variant with the highest throughput.
    pub fn best_throughput(&self) -> Option<&Variant> {
        self.variants.iter().max_by(|a, b| {
            a.summary
                .throughput
                .partial_cmp(&b.summary.throughput)
                .expect("finite throughput")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcm_model::concurrency::ConcurrencyModel;
    use dcm_ntier::law::reference;

    fn models() -> DcmModels {
        let app = reference::tomcat();
        let db = reference::mysql();
        DcmModels {
            app: ConcurrencyModel::new(app.s0(), app.alpha(), app.beta(), 1.0, 1),
            db: ConcurrencyModel::new(db.s0(), db.alpha(), db.beta(), 1.0, 1),
        }
    }

    #[test]
    fn actuation_ablation_orders_variants() {
        let result = run_actuation_ablation(Fidelity::Quick, models());
        assert_eq!(result.variants.len(), 4);
        let full = &result.variants[0].summary;
        let none = &result.variants[3].summary;
        assert!(
            full.throughput >= none.throughput * 0.95,
            "full DCM {:.1} vs baseline {:.1}\n{}",
            full.throughput,
            none.throughput,
            result.table().render()
        );
    }

    #[test]
    fn extensions_all_function() {
        let result = run_extensions(Fidelity::Quick, models());
        assert_eq!(result.variants.len(), 4);
        for v in &result.variants {
            assert!(v.summary.completed > 0, "{} produced nothing", v.label);
        }
    }

    #[test]
    fn fault_injection_degrades_gracefully() {
        let result = run_fault_injection(Fidelity::Quick, models(), &[0.0, 0.5]);
        assert_eq!(result.variants.len(), 4);
        let healthy = &result.variants[0].summary;
        let faulty = &result.variants[2].summary;
        // Both complete work; failures cost some throughput but never wedge
        // the controller.
        assert!(faulty.completed > 0);
        assert!(
            faulty.throughput > healthy.throughput * 0.5,
            "50% boot failures should degrade, not collapse: {:.1} vs {:.1}",
            faulty.throughput,
            healthy.throughput
        );
    }

    #[test]
    fn sensitivity_covers_factors() {
        let result = run_sensitivity(Fidelity::Quick, models(), &[0.5, 1.0]);
        assert_eq!(result.variants.len(), 2);
        assert!(result.best_throughput().is_some());
    }
}
