//! Fig. 4: model validation under realistic (think-time) workload.
//!
//! * (a) `1/1/1`, five Tomcat thread allocations including the model's
//!   optimum — the optimum should dominate, ≈ +30 % over the default 100.
//! * (b) `1/2/1`, five DB connection allocations including the optimum
//!   split (paper: 18 per Tomcat ≈ 36/2) — the optimum should dominate,
//!   with the default 80 (→ 160 at MySQL) far behind.

use dcm_core::experiment::{steady_state_throughput, SteadyStateOptions, SteadyStateReport};
use dcm_ntier::topology::SoftConfig;

use crate::format::{num, TextTable};

use super::Fidelity;

/// One allocation's throughput-vs-users curve.
#[derive(Debug, Clone)]
pub struct AllocationCurve {
    /// Label, e.g. `1000/20/80`.
    pub label: String,
    /// The varied pool size.
    pub size: u32,
    /// One point per user level.
    pub points: Vec<SteadyStateReport>,
}

/// A Fig. 4 panel: several allocations swept over user counts.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// Panel name (`fig4a` / `fig4b`).
    pub name: &'static str,
    /// The pool being varied.
    pub varied: &'static str,
    /// The model-predicted optimal size.
    pub optimal: u32,
    /// All measured curves.
    pub curves: Vec<AllocationCurve>,
}

fn user_levels(fidelity: Fidelity) -> Vec<u32> {
    match fidelity {
        Fidelity::Quick => vec![100, 250, 400],
        Fidelity::Full => vec![50, 100, 150, 200, 250, 300, 350, 400],
    }
}

/// Runs Fig. 4(a): Tomcat thread-pool validation on `1/1/1`.
///
/// `optimal` is the trained model's `N*` (pass 20 to mirror the paper
/// exactly).
pub fn run_fig4a(fidelity: Fidelity, optimal: u32) -> Fig4 {
    let mut sizes = vec![5, 20, optimal, 100, 200];
    sizes.sort_unstable();
    sizes.dedup();
    let options = SteadyStateOptions {
        warmup: fidelity.warmup(),
        measure: fidelity.measure(),
        think_time_secs: 3.0,
        seed: 20170603,
        ..SteadyStateOptions::default()
    };
    let users = user_levels(fidelity);
    let curves = sweep_allocations(&sizes, &users, &options, |threads| {
        (
            format!("1000/{threads}/80"),
            (1, 1, 1),
            SoftConfig::new(1000, threads, 80),
        )
    });
    Fig4 {
        name: "fig4a",
        varied: "tomcat threads",
        optimal,
        curves,
    }
}

/// Measures every `(allocation, user level)` combination in one parallel
/// batch and regroups the in-order results into per-allocation curves —
/// identical to nested serial loops over `sizes` then `users`.
fn sweep_allocations(
    sizes: &[u32],
    users: &[u32],
    options: &SteadyStateOptions,
    configure: impl Fn(u32) -> (String, (u32, u32, u32), SoftConfig),
) -> Vec<AllocationCurve> {
    let descriptors: Vec<((u32, u32, u32), SoftConfig, u32)> = sizes
        .iter()
        .flat_map(|&size| {
            let (_, counts, soft) = configure(size);
            users.iter().map(move |&u| (counts, soft, u))
        })
        .collect();
    let mut points = dcm_sim::runner::run_ordered(descriptors, |(counts, soft, u)| {
        steady_state_throughput(counts, soft, u, options)
    })
    .into_iter();
    sizes
        .iter()
        .map(|&size| {
            let (label, _, _) = configure(size);
            AllocationCurve {
                label,
                size,
                points: points.by_ref().take(users.len()).collect(),
            }
        })
        .collect()
}

/// Runs Fig. 4(b): DB connection-pool validation on `1/2/1`.
///
/// `optimal_per_server` is the trained db `N*` split across the two app
/// servers (pass 18 to mirror the paper exactly).
pub fn run_fig4b(fidelity: Fidelity, optimal_per_server: u32) -> Fig4 {
    let mut sizes = vec![4, 9, 18, optimal_per_server, 40, 80];
    sizes.sort_unstable();
    sizes.dedup();
    let options = SteadyStateOptions {
        warmup: fidelity.warmup(),
        measure: fidelity.measure(),
        think_time_secs: 3.0,
        seed: 20170604,
        ..SteadyStateOptions::default()
    };
    let users = user_levels(fidelity);
    let curves = sweep_allocations(&sizes, &users, &options, |conns| {
        (
            format!("1000/100/{conns}"),
            (1, 2, 1),
            SoftConfig::new(1000, 100, conns),
        )
    });
    Fig4 {
        name: "fig4b",
        varied: "db conns per app server",
        optimal: optimal_per_server,
        curves,
    }
}

impl Fig4 {
    /// Throughput table: one row per user level, one column per allocation.
    pub fn table(&self) -> TextTable {
        let mut headers = vec!["users".to_string()];
        headers.extend(self.curves.iter().map(|c| c.label.clone()));
        let mut t = TextTable::new(headers);
        let levels = self.curves.first().map_or(0, |c| c.points.len());
        for i in 0..levels {
            let mut row = vec![self.curves[0].points[i].users.to_string()];
            row.extend(self.curves.iter().map(|c| num(c.points[i].throughput, 1)));
            t.row(row);
        }
        t
    }

    /// Throughput of the allocation `size` at the highest user level.
    pub fn saturated_throughput(&self, size: u32) -> Option<f64> {
        self.curves
            .iter()
            .find(|c| c.size == size)
            .and_then(|c| c.points.last())
            .map(|p| p.throughput)
    }

    /// The best allocation at the highest user level.
    pub fn best_at_saturation(&self) -> Option<(u32, f64)> {
        self.curves
            .iter()
            .filter_map(|c| c.points.last().map(|p| (c.size, p.throughput)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite throughput"))
    }

    /// Self-checks against the paper's qualitative claims.
    pub fn findings(&self) -> Vec<String> {
        let mut out = Vec::new();
        let Some((best_size, best_x)) = self.best_at_saturation() else {
            return out;
        };
        out.push(format!(
            "{}: best saturated allocation is {} = {} at {:.1} req/s \
             (model optimum {})",
            self.name, self.varied, best_size, best_x, self.optimal
        ));
        let default_size = if self.name == "fig4a" { 100 } else { 80 };
        if let (Some(opt), Some(default)) = (
            self.saturated_throughput(self.optimal).or(Some(best_x)),
            self.saturated_throughput(default_size),
        ) {
            out.push(format!(
                "optimal vs default ({}): {:+.0} % (paper: ≈ +30 % for fig4a; \
                 optimum dominates for fig4b)",
                default_size,
                100.0 * (opt - default) / default
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4a_optimum_beats_default_and_extremes() {
        let result = run_fig4a(Fidelity::Quick, 20);
        let best = result.best_at_saturation().expect("curves measured");
        assert!(
            (18..=30).contains(&best.0),
            "best allocation should be near the knee, got {} \n{}",
            best.0,
            result.table().render()
        );
        let opt = result.saturated_throughput(20).unwrap();
        let default = result.saturated_throughput(100).unwrap();
        let tiny = result.saturated_throughput(5).unwrap();
        assert!(opt > default * 1.1, "optimal {opt} vs default {default}");
        assert!(opt > tiny * 1.2, "optimal {opt} vs tiny pool {tiny}");
    }

    #[test]
    fn fig4b_optimum_beats_flooding_default() {
        let result = run_fig4b(Fidelity::Quick, 18);
        let opt = result.saturated_throughput(18).unwrap();
        let default = result.saturated_throughput(80).unwrap();
        assert!(
            opt > default * 1.2,
            "optimal {opt} vs flooded default {default}\n{}",
            result.table().render()
        );
    }
}
