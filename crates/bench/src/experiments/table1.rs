//! Table I: model training parameters and prediction results, compared
//! against the paper's fitted values.

use dcm_core::training::{train_app_model, train_db_model, SweepOptions, TrainingRun};
use dcm_model::bootstrap::bootstrap_fit;
use dcm_model::lsq::FitError;

use crate::format::{num, TextTable};

use super::Fidelity;

/// Paper Table I, for side-by-side comparison.
#[derive(Debug, Clone, Copy)]
pub struct PaperColumn {
    /// Single-thread service time.
    pub s0: f64,
    /// Linear coefficient.
    pub alpha: f64,
    /// Quadratic coefficient.
    pub beta: f64,
    /// Scale correction.
    pub gamma: f64,
    /// Reported fit quality.
    pub r_squared: f64,
    /// Predicted optimal concurrency.
    pub n_star: u32,
    /// Predicted maximum throughput.
    pub x_max: f64,
}

/// The paper's Tomcat column.
pub const PAPER_TOMCAT: PaperColumn = PaperColumn {
    s0: 2.84e-2,
    alpha: 9.87e-3,
    beta: 4.54e-5,
    gamma: 11.03,
    r_squared: 0.96,
    n_star: 20,
    x_max: 946.0,
};

/// The paper's MySQL column.
pub const PAPER_MYSQL: PaperColumn = PaperColumn {
    s0: 7.19e-3,
    alpha: 5.04e-3,
    beta: 1.65e-6,
    gamma: 4.45,
    r_squared: 0.97,
    n_star: 36,
    x_max: 865.0,
};

/// Table I result: both trained models.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// App-tier (Tomcat) training run.
    pub app: TrainingRun,
    /// DB-tier (MySQL) training run.
    pub db: TrainingRun,
}

/// Trains both models at the requested fidelity.
///
/// # Errors
///
/// Propagates [`FitError`] if either fit fails to converge.
pub fn run_table1(fidelity: Fidelity) -> Result<Table1, FitError> {
    let options = SweepOptions {
        warmup: fidelity.warmup(),
        measure: fidelity.measure(),
        seed: 20170601,
        deterministic: false,
    };
    Ok(Table1 {
        app: train_app_model(&options)?,
        db: train_db_model(&options)?,
    })
}

impl Table1 {
    /// The comparison table (paper vs measured, per model).
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new([
            "parameter",
            "tomcat(paper)",
            "tomcat(ours)",
            "mysql(paper)",
            "mysql(ours)",
        ]);
        let a = &self.app.report;
        let d = &self.db.report;
        let rows: [(&str, f64, f64, f64, f64, usize); 7] = [
            (
                "S0",
                PAPER_TOMCAT.s0,
                a.model.s0,
                PAPER_MYSQL.s0,
                d.model.s0,
                4,
            ),
            (
                "alpha",
                PAPER_TOMCAT.alpha,
                a.model.alpha,
                PAPER_MYSQL.alpha,
                d.model.alpha,
                5,
            ),
            (
                "beta",
                PAPER_TOMCAT.beta,
                a.model.beta,
                PAPER_MYSQL.beta,
                d.model.beta,
                7,
            ),
            (
                "gamma",
                PAPER_TOMCAT.gamma,
                a.model.gamma,
                PAPER_MYSQL.gamma,
                d.model.gamma,
                3,
            ),
            (
                "R^2",
                PAPER_TOMCAT.r_squared,
                a.r_squared,
                PAPER_MYSQL.r_squared,
                d.r_squared,
                3,
            ),
            (
                "N*",
                f64::from(PAPER_TOMCAT.n_star),
                f64::from(a.model.optimal_concurrency()),
                f64::from(PAPER_MYSQL.n_star),
                f64::from(d.model.optimal_concurrency()),
                0,
            ),
            (
                "Xmax",
                PAPER_TOMCAT.x_max,
                a.model.predicted_max_throughput(),
                PAPER_MYSQL.x_max,
                d.model.predicted_max_throughput(),
                1,
            ),
        ];
        for (name, tp, to, mp, mo, decimals) in rows {
            t.row([
                name.to_string(),
                num(tp, decimals),
                num(to, decimals),
                num(mp, decimals),
                num(mo, decimals),
            ]);
        }
        t
    }

    /// Self-checks against the paper's qualitative claims, including
    /// bootstrap uncertainty for the knees (the dome's peak region is
    /// flat, so `N*` is only identified to a band).
    pub fn findings(&self) -> Vec<String> {
        let a = &self.app.report;
        let d = &self.db.report;
        let interval = |run: &TrainingRun| -> String {
            let data: Vec<(f64, f64)> = run
                .points
                .iter()
                .map(|p| (p.concurrency, p.throughput))
                .collect();
            match bootstrap_fit(&data, 1, 60, 99)
                .ok()
                .and_then(|b| b.n_star_interval(0.95))
            {
                Some((lo, hi)) => format!("95 % bootstrap N* interval [{lo:.0}, {hi:.0}]"),
                None => "bootstrap unavailable".to_string(),
            }
        };
        vec![
            format!(
                "app model: N* = {} (paper 20), R² = {:.3} (paper 0.96), {} — absolute \
                 coefficients differ (our substrate is a simulator; what transfers is the knee and fit quality)",
                a.model.optimal_concurrency(),
                a.r_squared,
                interval(&self.app)
            ),
            format!(
                "db model: N* = {} (paper 36), R² = {:.3} (paper 0.97), {}",
                d.model.optimal_concurrency(),
                d.r_squared,
                interval(&self.db)
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table1_trains_both_models() {
        let result = run_table1(Fidelity::Quick).expect("fits converge");
        assert!(result.app.report.r_squared > 0.9);
        assert!(result.db.report.r_squared > 0.85);
        let table = result.table();
        assert_eq!(table.len(), 7);
        let text = table.render();
        assert!(text.contains("N*"));
        assert!(text.contains("gamma"));
        assert_eq!(result.findings().len(), 2);
    }
}
