//! Mesh bench: the controllers leave the chain.
//!
//! Every prior controller experiment ran the paper's fixed three-tier
//! chain. This one runs the generalized topology the `dcm-ntier` DAG
//! dispatch supports — a fan-out microservice mesh with a **warming cache**
//! and a **mixed-flavor VM fleet** — and asks whether the controllers'
//! rankings survive the move:
//!
//! * **Topology.** `web → app → {db×2, svc}`: the app tier calls the DB
//!   twice and a side service once per request (tree-shaped call graph,
//!   per-request [`dcm_ntier::graph::TopologyGraph`]).
//! * **Cache.** The app tier caches DB responses; the hit ratio warms from
//!   0 toward its steady-state maximum over served requests
//!   ([`dcm_workload::CacheDynamics`]), so the bottleneck *migrates* from
//!   the DB toward the app/service tiers mid-run — a regime change no
//!   static-threshold controller was tuned for.
//! * **VM types.** The DB tier launches alternating small/large flavors
//!   ([`VmPolicy::cycle`]) and the app tier buys the cheapest capacity per
//!   dollar from a large/xlarge catalog, so the cost metric is **dollars**
//!   ([`TraceRunResult::vm_cost`]), not VM-hours.
//!
//! DCM, MPC, and EC2-AutoScale each face the step and flash-crowd traces.
//! Every cell builds its own world from the same seed, so the matrix is
//! bit-identical for every `--jobs` value.

use dcm_core::controller::{Dcm, DcmConfig, DcmModels, Ec2AutoScale};
use dcm_core::experiment::{
    run_mesh_trace_experiment, MeshExperimentConfig, TraceExperimentConfig, TraceRunResult,
};
use dcm_core::mpc::{ModelPredictive, MpcConfig};
use dcm_core::policy::ScalingConfig;
use dcm_ntier::graph::TopologyGraph;
use dcm_ntier::law::reference;
use dcm_ntier::server::VmType;
use dcm_ntier::system::{VmPolicy, VmSelection};
use dcm_ntier::topology::MeshNode;
use dcm_sim::dist::Dist;
use dcm_sim::time::{SimDuration, SimTime};
use dcm_workload::cache::CacheDynamics;
use dcm_workload::profile::{CacheEdge, NodeDemand};
use dcm_workload::traces;

use crate::format::{num, TextTable};

use super::Fidelity;

/// Response-time windows used for SLO accounting, in seconds.
const WINDOW_SECS: f64 = 5.0;
/// The response-time SLO every controller is judged against.
const SLO_SECS: f64 = 1.0;
/// Shared seed: every cell differs only in controller and trace.
const SEED: u64 = 4242;

/// The mesh bench's contestants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeshController {
    /// The paper's two-level controller (hardware + soft resources).
    Dcm,
    /// MVA-predictive planner over candidate topologies and pools.
    Mpc,
    /// Hardware-only threshold baseline.
    Ec2,
}

impl MeshController {
    /// All contestants, in matrix order.
    pub const ALL: [MeshController; 3] = [
        MeshController::Dcm,
        MeshController::Mpc,
        MeshController::Ec2,
    ];

    /// Display name (matches each controller's `Controller::name`).
    pub fn name(self) -> &'static str {
        match self {
            MeshController::Dcm => "DCM",
            MeshController::Mpc => "MPC",
            MeshController::Ec2 => "EC2-AutoScale",
        }
    }
}

/// The traces every contestant faces on the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeshTrace {
    /// Ramp to a plateau (the cache warms through the ramp).
    Step,
    /// Flash crowd arriving before the cache has warmed.
    Flash,
}

impl MeshTrace {
    /// All traces, in matrix order.
    pub const ALL: [MeshTrace; 2] = [MeshTrace::Step, MeshTrace::Flash];

    /// Short artifact name.
    pub fn name(self) -> &'static str {
        match self {
            MeshTrace::Step => "step",
            MeshTrace::Flash => "flash",
        }
    }
}

/// Steady-state cache hit ratio the app→db edge warms toward.
pub const CACHE_MAX_HIT: f64 = 0.6;
/// Requests over which the cache warms to `1 − 1/e` of its maximum.
pub const CACHE_WARMUP_REQUESTS: f64 = 3000.0;

/// The mesh every cell runs: topology, demands, cache, VM policies.
/// Public so the degeneracy tests and `repro explain` can inspect it.
pub fn mesh_experiment_config(trace: MeshTrace, fidelity: Fidelity) -> MeshExperimentConfig {
    let horizon_secs = match fidelity {
        Fidelity::Quick => 240.0,
        Fidelity::Full => 600.0,
    };
    let trace = match trace {
        MeshTrace::Step => traces::step(60, 240, 30.0),
        MeshTrace::Flash => {
            traces::flash_crowd(60, 280, horizon_secs * 0.35, horizon_secs * 0.25)
        }
    };
    let mut run = TraceExperimentConfig::figure5(trace);
    run.horizon = SimTime::from_secs_f64(horizon_secs);
    run.seed = SEED;
    run.control_period = SimDuration::from_secs(15);
    // web(0) → app(1) → db(2) ×2 calls, app(1) → svc(3) ×1 call. The DB
    // keeps tier index 2, so DcmConfig/MpcConfig defaults (app tier 1, DB
    // tier 2) target the same tiers they do on the chain.
    let graph = TopologyGraph::from_edges(4, &[(0, 1, 1), (1, 2, 2), (1, 3, 1)]);
    MeshExperimentConfig {
        run,
        nodes: vec![
            MeshNode::new("web", reference::apache(), 1000),
            MeshNode::new("app", reference::tomcat(), 200).conns(40).vm_policy(VmPolicy {
                types: vec![VmType::LARGE, VmType::XLARGE],
                selection: VmSelection::CheapestPerCapacity,
            }),
            MeshNode::new("db", reference::mysql(), 800)
                .vm_policy(VmPolicy::cycle(vec![VmType::SMALL, VmType::LARGE])),
            MeshNode::new("svc", reference::tomcat(), 50).count(2),
        ],
        graph,
        demands: vec![
            NodeDemand::split(Dist::constant(0.002)),
            NodeDemand::split(Dist::constant(0.008)),
            NodeDemand::leaf(Dist::exponential_mean(0.02)).iid_visits(),
            NodeDemand::leaf(Dist::exponential_mean(0.012)).iid_visits(),
        ],
        cache: Some(CacheEdge {
            from: 1,
            to: 2,
            dynamics: CacheDynamics::new(CACHE_MAX_HIT, CACHE_WARMUP_REQUESTS),
        }),
    }
}

/// One (controller, trace) cell of the mesh matrix.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MeshCell {
    /// Controller display name.
    pub controller: &'static str,
    /// Trace name.
    pub trace: &'static str,
    /// Successful completions over the run.
    pub completed: u64,
    /// Completions per second over the run.
    pub goodput: f64,
    /// Fraction of requests meeting the 1 s SLO.
    pub slo_attainment_1s: f64,
    /// Seconds spent in 5 s windows whose mean RT exceeded the SLO.
    pub slo_violation_secs: f64,
    /// Total VM-seconds across tiers, in hours.
    pub vm_hours: f64,
    /// Total dollars across tiers — the metric that separates flavors
    /// VM-hours cannot.
    pub vm_dollars: f64,
    /// Candidate-plan evaluations (deterministic decision-latency proxy).
    pub planner_evals: u64,
    /// Scaling actions the controller actually applied.
    pub actions: usize,
}

/// Reduces one mesh run to its cell metrics.
pub fn summarize_mesh_cell(
    controller: MeshController,
    trace: MeshTrace,
    run: &TraceRunResult,
) -> MeshCell {
    let overall = run.overall();
    let series = run.series(SimDuration::from_secs_f64(WINDOW_SECS));
    let violated = series.mean_rt.iter().filter(|&(_, v)| v > SLO_SECS).count();
    MeshCell {
        controller: controller.name(),
        trace: trace.name(),
        completed: run.counters.completed,
        goodput: overall.throughput(),
        slo_attainment_1s: overall.sla_attainment(SLO_SECS),
        slo_violation_secs: violated as f64 * WINDOW_SECS,
        vm_hours: run.total_vm_seconds() / 3600.0,
        vm_dollars: run.total_vm_cost(),
        planner_evals: run.planner_evals,
        actions: run.actions.len(),
    }
}

/// The full mesh bench result.
#[derive(Debug, Clone)]
pub struct MeshBench {
    /// All cells, controller-major in [`MeshController::ALL`] order, traces
    /// in [`MeshTrace::ALL`] order.
    pub cells: Vec<MeshCell>,
    /// Run length per cell in seconds.
    pub horizon_secs: f64,
}

fn run_cell(controller: MeshController, trace: MeshTrace, fidelity: Fidelity, models: DcmModels) -> TraceRunResult {
    let config = mesh_experiment_config(trace, fidelity);
    match controller {
        MeshController::Dcm => {
            run_mesh_trace_experiment(&config, |bus| Dcm::new(bus, DcmConfig::default(), models))
        }
        MeshController::Mpc => run_mesh_trace_experiment(&config, |bus| {
            ModelPredictive::new(bus, MpcConfig::default(), models)
        }),
        MeshController::Ec2 => run_mesh_trace_experiment(&config, |bus| {
            Ec2AutoScale::new(bus, ScalingConfig::default())
        }),
    }
}

/// Runs the full mesh matrix (cells fan out across workers; each builds
/// its own world from the same seed, so the result is bit-identical for
/// every `--jobs` value).
pub fn run_mesh(fidelity: Fidelity, models: DcmModels) -> MeshBench {
    let descriptors: Vec<(MeshController, MeshTrace)> = MeshController::ALL
        .iter()
        .flat_map(|&c| MeshTrace::ALL.iter().map(move |&t| (c, t)))
        .collect();
    let cells = dcm_sim::runner::run_ordered(descriptors, |(controller, trace)| {
        let run = run_cell(controller, trace, fidelity, models);
        summarize_mesh_cell(controller, trace, &run)
    });
    let horizon_secs = match fidelity {
        Fidelity::Quick => 240.0,
        Fidelity::Full => 600.0,
    };
    MeshBench {
        cells,
        horizon_secs,
    }
}

impl MeshBench {
    /// A cell by controller and trace kind.
    pub fn cell(&self, controller: MeshController, trace: MeshTrace) -> &MeshCell {
        self.cells
            .iter()
            .find(|c| c.controller == controller.name() && c.trace == trace.name())
            .expect("every (controller, trace) pair ran")
    }

    /// The matrix table, one row per cell.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new([
            "controller",
            "trace",
            "completed",
            "goodput",
            "SLO att.",
            "SLO-viol (s)",
            "VM-hours",
            "dollars",
            "plan evals",
            "actions",
        ]);
        for c in &self.cells {
            t.row([
                c.controller.to_string(),
                c.trace.to_string(),
                c.completed.to_string(),
                num(c.goodput, 1),
                num(c.slo_attainment_1s, 3),
                num(c.slo_violation_secs, 0),
                num(c.vm_hours, 3),
                num(c.vm_dollars, 4),
                c.planner_evals.to_string(),
                c.actions.to_string(),
            ]);
        }
        t
    }

    /// Stable JSON for `results/mesh.json` (hand-rolled; keys and shapes
    /// are fixed for downstream tooling and the determinism check).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\n  \"horizon_secs\": {:.6},\n  \"cache_max_hit\": {:.6},\n  \
             \"cache_warmup_requests\": {:.6},\n  \"cells\": [\n",
            self.horizon_secs, CACHE_MAX_HIT, CACHE_WARMUP_REQUESTS
        );
        for (i, c) in self.cells.iter().enumerate() {
            let sep = if i + 1 < self.cells.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"controller\": \"{}\", \"trace\": \"{}\", \
                 \"completed\": {}, \"goodput\": {:.6}, \
                 \"slo_attainment_1s\": {:.6}, \"slo_violation_secs\": {:.6}, \
                 \"vm_hours\": {:.6}, \"vm_dollars\": {:.6}, \
                 \"planner_evals\": {}, \"actions\": {}}}{sep}\n",
                c.controller,
                c.trace,
                c.completed,
                c.goodput,
                c.slo_attainment_1s,
                c.slo_violation_secs,
                c.vm_hours,
                c.vm_dollars,
                c.planner_evals,
                c.actions,
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// CSV of the matrix for `results/mesh.csv`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "controller,trace,completed,goodput,slo_attainment_1s,\
             slo_violation_secs,vm_hours,vm_dollars,planner_evals,actions\n",
        );
        for c in &self.cells {
            out.push_str(&format!(
                "{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{},{}\n",
                c.controller,
                c.trace,
                c.completed,
                c.goodput,
                c.slo_attainment_1s,
                c.slo_violation_secs,
                c.vm_hours,
                c.vm_dollars,
                c.planner_evals,
                c.actions,
            ));
        }
        out
    }

    /// Self-checks against the mesh bench's qualitative claims.
    pub fn findings(&self) -> Vec<String> {
        let mut out = Vec::new();
        out.push(format!(
            "topology: web → app → {{db×2, svc}} with a cache on the app→db \
             edge warming to {:.0}% hits over ~{:.0} requests — the DB \
             bottleneck softens mid-run as V_db falls toward {:.1}",
            100.0 * CACHE_MAX_HIT,
            CACHE_WARMUP_REQUESTS,
            2.0 * (1.0 - CACHE_MAX_HIT),
        ));
        for trace in MeshTrace::ALL {
            let dcm = self.cell(MeshController::Dcm, trace);
            let ec2 = self.cell(MeshController::Ec2, trace);
            out.push(format!(
                "{}: DCM attains {:.3} of the 1 s SLO for ${:.4} vs \
                 EC2-AutoScale {:.3} for ${:.4} (mixed small/large DB fleet, \
                 cheapest-per-capacity app fleet — costs are dollars, not \
                 VM-hours)",
                trace.name(),
                dcm.slo_attainment_1s,
                dcm.vm_dollars,
                ec2.slo_attainment_1s,
                ec2.vm_dollars,
            ));
        }
        let mpc = self.cell(MeshController::Mpc, MeshTrace::Step);
        out.push(format!(
            "decision latency: MPC paid {} plan evaluations on the mesh; \
             DCM and EC2-AutoScale paid 0",
            mpc.planner_evals
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcm_model::concurrency::ConcurrencyModel;

    fn models() -> DcmModels {
        let app = reference::tomcat();
        let db = reference::mysql();
        DcmModels {
            app: ConcurrencyModel::new(app.s0(), app.alpha(), app.beta(), 1.0, 1),
            db: ConcurrencyModel::new(db.s0(), db.alpha(), db.beta(), 1.0, 1),
        }
    }

    #[test]
    fn mesh_matrix_runs_every_cell_with_real_work() {
        let bench = run_mesh(Fidelity::Quick, models());
        assert_eq!(
            bench.cells.len(),
            MeshController::ALL.len() * MeshTrace::ALL.len()
        );
        for cell in &bench.cells {
            assert!(cell.completed > 0, "{cell:?}");
            assert!(cell.vm_hours > 0.0, "{cell:?}");
            assert!(cell.vm_dollars > 0.0, "{cell:?}");
        }
        // The mixed fleet separates the dollar metric from VM-hours: with
        // everything priced at the small flavor's rate, hours × price would
        // equal dollars; the large DB / large app flavors must push real
        // spend strictly above that floor.
        for cell in &bench.cells {
            let small_floor = cell.vm_hours * VmType::SMALL.price_per_hour;
            assert!(
                cell.vm_dollars > small_floor * 1.05,
                "mixed fleet must out-price the all-small floor: {cell:?}"
            );
        }
        // Only MPC plans.
        for trace in MeshTrace::ALL {
            assert!(bench.cell(MeshController::Mpc, trace).planner_evals > 0);
            assert_eq!(bench.cell(MeshController::Dcm, trace).planner_evals, 0);
            assert_eq!(bench.cell(MeshController::Ec2, trace).planner_evals, 0);
        }
        // Artifacts are well-formed.
        assert!(bench.to_json().ends_with("}\n"));
        assert_eq!(bench.to_csv().lines().count(), 1 + bench.cells.len());
        assert!(bench.findings().len() >= 4);
    }

    #[test]
    fn mesh_is_identical_across_worker_counts() {
        // The determinism contract behind `--jobs`: re-running the matrix
        // must reproduce the artifacts byte for byte.
        dcm_sim::runner::set_jobs(1);
        let serial = run_mesh(Fidelity::Quick, models());
        dcm_sim::runner::set_jobs(4);
        let parallel = run_mesh(Fidelity::Quick, models());
        dcm_sim::runner::set_jobs(0);
        assert_eq!(serial.to_json(), parallel.to_json());
        assert_eq!(serial.to_csv(), parallel.to_csv());
    }
}
