//! Adversarial scenario fuzzing: `repro hunt`.
//!
//! A seed-deterministic campaign harness that generates random full-stack
//! scenarios — topology, workload shape, fault schedule, controller
//! configuration — runs each through the simulator, and checks the result
//! against invariant oracles. A quarter of the trace-driven scenarios
//! (those whose [`mesh_active`] coin lands) swap the three-tier chain for
//! a fan-out microservice mesh with a warming cache and, optionally, a
//! mixed small/large VM fleet, so the conservation, replay, and league
//! oracles continuously fuzz the DAG dispatch path too:
//!
//! * **conservation** — a faulted, controller-driven trace run must end
//!   with a clean [`ConservationAuditor`] report and zero in-flight
//!   requests (every submitted request is accounted for).
//! * **replay** — running the identical scenario twice must be
//!   bit-identical: same completion log, same counters, same VM-seconds.
//!   This is the campaign's permutation oracle: tier servers are
//!   symmetric, so any observable difference between two runs of the same
//!   seed is a nondeterminism bug of exactly the kind a true
//!   server-permutation would expose.
//! * **cohort** — the cohort-aggregated generator at `cohort_size = 1`
//!   must be bit-identical to the per-user generator, and at size `C`
//!   must conserve users and stay within a stationary-throughput band.
//! * **doubling** — at moderate (think-limited) utilization, doubling
//!   every tier's server count must leave steady-state throughput
//!   invariant within measurement tolerance.
//! * **mva** — where the product-form model applies (zero-overhead laws),
//!   the DES must conform to exact MVA within tolerance and respect the
//!   asymptotic throughput bound.
//! * **league** — no controller in the zoo (EC2-AutoScale, DCM, MPC,
//!   M/M/c threshold, Holt-Winters) may exceed its configured VM cap or
//!   per-tick step limit in any sampled scenario, and no controller may
//!   drain a tier to zero servers.
//!
//! Campaigns are bit-identical across `--jobs`: every scenario is derived
//! from the campaign seed via [`derive_seed`] streams, runs fan out
//! through [`dcm_sim::runner::run_ordered`], and the results are folded
//! into a digest in campaign-index order. On a violation, a greedy
//! delta-debugging shrinker minimizes the scenario while preserving the
//! violation, and the minimized case is written as a self-contained
//! key-value file under `tests/regressions/` (replayed by the
//! `regressions` integration test forever after).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use dcm_core::agents::Action;
use dcm_core::controller::{Controller, Dcm, DcmConfig, DcmModels, Ec2AutoScale};
use dcm_core::experiment::{
    run_mesh_trace_experiment, run_trace_experiment, steady_state_throughput,
    MeshExperimentConfig, SteadyStateOptions, TraceExperimentConfig, TraceRunResult,
};
use dcm_core::monitor::MetricsBus;
use dcm_core::mpc::{ModelPredictive, MpcConfig};
use dcm_core::policy::ScalingConfig;
use dcm_core::predictor::HoltConfig;
use dcm_core::zoo::{HoltWinters, StaffingConfig, ThresholdMmc};
use dcm_model::concurrency::ConcurrencyModel;
use dcm_ntier::graph::TopologyGraph;
use dcm_ntier::law::{reference, ServiceLaw};
use dcm_ntier::server::VmType;
use dcm_ntier::system::{InterTierRetry, VmPolicy};
use dcm_ntier::topology::{MeshNode, SoftConfig, ThreeTierBuilder};
use dcm_workload::cache::CacheDynamics;
use dcm_workload::profile::{CacheEdge, NodeDemand};
use dcm_obs::FailureLog;
use dcm_oracle::{run_scenario, Scenario, ScenarioKind};
use dcm_sim::dist::Dist;
use dcm_sim::faults::FaultPlan;
use dcm_sim::rng::{derive_seed, SimRng};
use dcm_sim::time::{SimDuration, SimTime};
use dcm_workload::generator::{RetryPolicy, UserPopulation};
use dcm_workload::profile::ProfileFactory;
use dcm_workload::{traces, CohortPopulation};

use crate::format::TextTable;

/// Default campaign seed (the date this harness landed).
pub const SEED: u64 = 2026_0808;

/// RNG stream tag for scenario generation (any fixed constant works; this
/// keeps generation draws disjoint from the run's own seed).
const GEN_STREAM: u64 = 0x6875_6e74;

/// Upper bound on oracle re-runs the shrinker may spend per violation.
const SHRINK_BUDGET: u32 = 48;

/// Tolerance for the server-doubling invariance check. Doubling runs are
/// think-limited (utilization well under 50 %), where the residual
/// throughput shift from shorter queues is a couple of percent; the rest
/// of the band absorbs sampling noise over the measurement window.
const DOUBLING_TOLERANCE: f64 = 0.12;

/// Tolerance for DES-vs-MVA conformance (max relative error across
/// throughput and per-tier residences). Looser than `repro validate`'s
/// full-fidelity 2 % because hunt campaigns use short windows.
const MVA_TOLERANCE: f64 = 0.15;

/// Band for the cohort-C stationary-throughput agreement check.
const COHORT_BAND: f64 = 0.25;

/// The invariant an individual scenario is checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OracleKind {
    /// Conservation audit + in-flight accounting on a faulted trace run.
    Conservation,
    /// Same-seed replay bit-identity (the permutation oracle).
    Replay,
    /// Cohort-aggregation equivalence to the per-user generator.
    Cohort,
    /// Server-doubling throughput invariance at moderate utilization.
    Doubling,
    /// Exact-MVA conformance where product-form applies.
    Mva,
    /// Controller-zoo actuation discipline: VM caps, per-tick step
    /// limits, and never draining a tier to zero.
    League,
}

impl OracleKind {
    /// Stable lowercase label (used in JSON, filenames, and kv files).
    pub fn label(self) -> &'static str {
        match self {
            OracleKind::Conservation => "conservation",
            OracleKind::Replay => "replay",
            OracleKind::Cohort => "cohort",
            OracleKind::Doubling => "doubling",
            OracleKind::Mva => "mva",
            OracleKind::League => "league",
        }
    }

    /// Inverse of [`OracleKind::label`].
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "conservation" => Ok(OracleKind::Conservation),
            "replay" => Ok(OracleKind::Replay),
            "cohort" => Ok(OracleKind::Cohort),
            "doubling" => Ok(OracleKind::Doubling),
            "mva" => Ok(OracleKind::Mva),
            "league" => Ok(OracleKind::League),
            other => Err(format!("unknown oracle {other:?}")),
        }
    }

    /// All oracles, in campaign rotation order. `League` is appended at
    /// the end so indices 0–4 keep generating the same scenarios as
    /// before the zoo landed.
    pub fn all() -> [OracleKind; 6] {
        [
            OracleKind::Conservation,
            OracleKind::Replay,
            OracleKind::Cohort,
            OracleKind::Doubling,
            OracleKind::Mva,
            OracleKind::League,
        ]
    }
}

/// Workload trace shape for the trace-driven oracles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceShape {
    /// One step from `users_low` to `users_high`.
    Step,
    /// A flash crowd: base load with a temporary peak.
    Flash,
    /// A sampled sine oscillation between the two levels.
    Sine,
}

impl TraceShape {
    fn label(self) -> &'static str {
        match self {
            TraceShape::Step => "step",
            TraceShape::Flash => "flash",
            TraceShape::Sine => "sine",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "step" => Ok(TraceShape::Step),
            "flash" => Ok(TraceShape::Flash),
            "sine" => Ok(TraceShape::Sine),
            other => Err(format!("unknown trace shape {other:?}")),
        }
    }
}

/// Which controller drives the trace-driven oracles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerKind {
    /// The utilization-threshold baseline.
    Ec2,
    /// The paper's dynamic concurrency manager.
    Dcm,
    /// The MVA-planning model-predictive controller.
    Mpc,
    /// The M/M/c threshold-staffing baseline.
    Mmc,
    /// Holt-Winters forecast staffing.
    Hw,
}

impl ControllerKind {
    fn label(self) -> &'static str {
        match self {
            ControllerKind::Ec2 => "ec2",
            ControllerKind::Dcm => "dcm",
            ControllerKind::Mpc => "mpc",
            ControllerKind::Mmc => "mmc",
            ControllerKind::Hw => "hw",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "ec2" => Ok(ControllerKind::Ec2),
            "dcm" => Ok(ControllerKind::Dcm),
            "mpc" => Ok(ControllerKind::Mpc),
            "mmc" => Ok(ControllerKind::Mmc),
            "hw" => Ok(ControllerKind::Hw),
            other => Err(format!("unknown controller {other:?}")),
        }
    }
}

/// One generated scenario: everything a run needs, flat so the shrinker
/// and the kv serialization treat every knob uniformly. Fields not used by
/// a scenario's oracle are still generated (the draw order is fixed) and
/// simply ignored by [`check`].
#[derive(Debug, Clone, PartialEq)]
pub struct HuntScenario {
    /// The invariant this scenario is checked against.
    pub oracle: OracleKind,
    /// The run seed (derived from the campaign seed and index).
    pub seed: u64,
    /// Web-tier server count.
    pub web: u32,
    /// App-tier server count.
    pub app: u32,
    /// DB-tier server count.
    pub db: u32,
    /// Web thread-pool size (`#W_T`).
    pub web_threads: u32,
    /// App thread-pool size per server (`#A_T`).
    pub app_threads: u32,
    /// DB connection-pool size per app server (`#A_C`).
    pub db_conns: u32,
    /// Trace shape for trace-driven runs.
    pub shape: TraceShape,
    /// Low user level of the trace.
    pub users_low: u32,
    /// High user level of the trace.
    pub users_high: u32,
    /// Mean client think time for trace-driven runs (seconds).
    pub think_secs: f64,
    /// Trace-run horizon (seconds).
    pub horizon_secs: f64,
    /// App-tier VM crash time (seconds; 0 disables).
    pub crash_at_secs: f64,
    /// Tier index the crash strikes (1 = app, 2 = db).
    pub crash_tier: u32,
    /// Straggler episode start (seconds; 0 disables).
    pub straggler_at_secs: f64,
    /// Tier index the straggler strikes.
    pub straggler_tier: u32,
    /// Straggler service-time multiplier.
    pub straggler_factor: f64,
    /// Straggler episode length (seconds).
    pub straggler_secs: f64,
    /// Transient per-request failure probability (0 disables).
    pub transient_prob: f64,
    /// Install the default client retry policy.
    pub client_retry: bool,
    /// Per-request client deadline (seconds; 0 disables).
    pub deadline_secs: f64,
    /// Install the default inter-tier retry layer.
    pub inter_tier_retry: bool,
    /// Controller for trace-driven runs.
    pub controller: ControllerKind,
    /// Scale-out utilization threshold.
    pub up_threshold: f64,
    /// Scale-in utilization threshold.
    pub down_threshold: f64,
    /// Consecutive low periods before scale-in.
    pub down_consecutive: u32,
    /// Per-tier server cap.
    pub max_servers: u32,
    /// DCM pool-size headroom multiplier.
    pub headroom: f64,
    /// Steady-state population for the cohort and doubling oracles.
    pub users: u32,
    /// Cohort size for the cohort oracle.
    pub cohort_size: u32,
    /// Think time for the steady-state oracles (seconds).
    pub think_z: f64,
    /// DB thread pool per server for the MVA oracle (station `c`).
    pub db_threads: u32,
    /// Constant web demand for the MVA oracle (seconds).
    pub web_demand: f64,
    /// Constant app demand for the MVA oracle (seconds).
    pub app_demand: f64,
    /// Mean exponential per-visit DB demand for the MVA oracle (seconds).
    pub db_demand: f64,
    /// DB queries per request for the MVA oracle.
    pub db_visits: u32,
    /// Target DB utilization the MVA population is sized for.
    pub mva_util: f64,
    /// Mean response-time SLO the MPC plans against (seconds).
    pub mpc_slo_secs: f64,
    /// MPC scale-in hysteresis margin.
    pub mpc_scale_in_margin: f64,
    /// Per-server utilization target for the staffing controllers.
    pub rho_target: f64,
    /// Holt-Winters level smoothing factor.
    pub hw_level_alpha: f64,
    /// Holt-Winters trend smoothing factor.
    pub hw_trend_beta: f64,
    /// Per-tick VM step limit for the MPC and staffing controllers.
    pub step_limit: u32,
    /// Mesh activation draw: below [`MESH_PROB`] the trace-driven oracles
    /// run the fan-out mesh world instead of the three-tier chain.
    pub mesh_coin: f64,
    /// Calls per request on the fan-out app→db edge of the mesh.
    pub fanout_calls: u32,
    /// Steady-state maximum hit ratio of the mesh's app→db cache
    /// (0 disables the cache).
    pub cache_hit: f64,
    /// Requests over which the mesh cache warms to `1 − 1/e` of its max.
    pub cache_warmup: f64,
    /// CPU-capacity multiplier of the large VM flavor in mixed fleets.
    pub vm_large_capacity: f64,
    /// Launch the mesh DB tier as an alternating small/large fleet.
    pub vm_mix: bool,
}

/// Fraction of trace-driven scenarios that run the mesh world. The draw
/// sits at the end of the generation stream, so pre-mesh campaigns keep
/// every earlier knob bit-identical.
pub const MESH_PROB: f64 = 0.25;

/// True when this scenario's trace-driven oracles run the mesh world.
pub fn mesh_active(s: &HuntScenario) -> bool {
    s.mesh_coin < MESH_PROB
}

fn uni(rng: &mut SimRng, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.next_f64()
}

fn uni_u32(rng: &mut SimRng, lo: u32, hi: u32) -> u32 {
    debug_assert!(hi >= lo);
    let span = f64::from(hi - lo) + 1.0;
    (lo + (rng.next_f64() * span) as u32).min(hi)
}

fn coin(rng: &mut SimRng, p: f64) -> bool {
    rng.next_f64() < p
}

/// Generates the scenario at `index` of the campaign rooted at
/// `campaign_seed`. Pure function of its arguments: every knob is drawn
/// from a dedicated `derive_seed` stream in a fixed order, so campaigns
/// are identical regardless of how runs are scheduled across workers.
pub fn generate(campaign_seed: u64, index: u64) -> HuntScenario {
    let seed = derive_seed(campaign_seed, index);
    let mut rng = SimRng::seed_from(derive_seed(seed, GEN_STREAM));
    let oracle = OracleKind::all()[(index % 6) as usize];

    let web = uni_u32(&mut rng, 1, 2);
    let app = uni_u32(&mut rng, 1, 3);
    let db = uni_u32(&mut rng, 1, 2);
    let web_threads = uni_u32(&mut rng, 200, 1200);
    let app_threads = uni_u32(&mut rng, 50, 300);
    let db_conns = uni_u32(&mut rng, 10, 80);

    let shape = match uni_u32(&mut rng, 0, 2) {
        0 => TraceShape::Step,
        1 => TraceShape::Flash,
        _ => TraceShape::Sine,
    };
    let users_low = uni_u32(&mut rng, 5, 60);
    let users_high = users_low + uni_u32(&mut rng, 20, 180);
    let think_secs = uni(&mut rng, 0.5, 3.0);
    let horizon_secs = uni(&mut rng, 60.0, 120.0).round();

    let (crash_at_secs, crash_tier) = if coin(&mut rng, 0.5) {
        (
            uni(&mut rng, 15.0, 0.6 * horizon_secs).round(),
            uni_u32(&mut rng, 1, 2),
        )
    } else {
        // Draw anyway to keep the stream aligned, then disable.
        let _ = uni(&mut rng, 15.0, 0.6 * horizon_secs);
        let _ = uni_u32(&mut rng, 1, 2);
        (0.0, 1)
    };
    let (straggler_at_secs, straggler_tier, straggler_factor, straggler_secs) =
        if coin(&mut rng, 0.5) {
            (
                uni(&mut rng, 15.0, 0.7 * horizon_secs).round(),
                uni_u32(&mut rng, 1, 2),
                uni(&mut rng, 2.0, 6.0),
                uni(&mut rng, 10.0, 40.0).round(),
            )
        } else {
            let _ = uni(&mut rng, 15.0, 0.7 * horizon_secs);
            let _ = uni_u32(&mut rng, 1, 2);
            let _ = uni(&mut rng, 2.0, 6.0);
            let _ = uni(&mut rng, 10.0, 40.0);
            (0.0, 1, 2.0, 10.0)
        };
    let transient_prob = if coin(&mut rng, 0.4) {
        uni(&mut rng, 0.001, 0.008)
    } else {
        let _ = uni(&mut rng, 0.001, 0.008);
        0.0
    };
    let client_retry = coin(&mut rng, 0.5);
    let deadline_secs = if coin(&mut rng, 0.5) {
        uni(&mut rng, 5.0, 15.0).round()
    } else {
        let _ = uni(&mut rng, 5.0, 15.0);
        0.0
    };
    let inter_tier_retry = coin(&mut rng, 0.5);

    // One draw, like the old ec2/dcm coin, so every later field keeps its
    // position in the stream.
    let controller = match (rng.next_f64() * 5.0) as usize {
        0 => ControllerKind::Ec2,
        1 => ControllerKind::Dcm,
        2 => ControllerKind::Mpc,
        3 => ControllerKind::Mmc,
        _ => ControllerKind::Hw,
    };
    let up_threshold = uni(&mut rng, 0.6, 0.9);
    let down_threshold = uni(&mut rng, 0.15, up_threshold - 0.25);
    let down_consecutive = uni_u32(&mut rng, 2, 4);
    let max_servers = uni_u32(&mut rng, 4, 8);
    let headroom = uni(&mut rng, 1.0, 1.5);

    let users = uni_u32(&mut rng, 8, 24);
    let cohort_size = uni_u32(&mut rng, 2, 32);
    let think_z = uni(&mut rng, 0.5, 2.0);

    let db_threads = uni_u32(&mut rng, 1, 4);
    let web_demand = uni(&mut rng, 0.002, 0.01);
    let app_demand = uni(&mut rng, 0.005, 0.02);
    let db_demand = uni(&mut rng, 0.02, 0.08);
    let db_visits = uni_u32(&mut rng, 1, 2);
    let mva_util = uni(&mut rng, 0.25, 0.55);

    // Zoo knobs, appended after every pre-existing draw so older fields
    // keep their values for a given (seed, index).
    let mpc_slo_secs = uni(&mut rng, 0.7, 2.0);
    let mpc_scale_in_margin = uni(&mut rng, 0.6, 0.95);
    let rho_target = uni(&mut rng, 0.45, 0.85);
    let hw_level_alpha = uni(&mut rng, 0.2, 0.8);
    let hw_trend_beta = uni(&mut rng, 0.05, 0.45);
    let step_limit = uni_u32(&mut rng, 1, 3);

    // Mesh knobs, appended after every pre-existing draw (including the
    // zoo's) so older fields keep their values for a given (seed, index).
    let mesh_coin = rng.next_f64();
    let fanout_calls = uni_u32(&mut rng, 1, 3);
    let cache_hit = if coin(&mut rng, 0.6) {
        uni(&mut rng, 0.2, 0.7)
    } else {
        let _ = uni(&mut rng, 0.2, 0.7);
        0.0
    };
    let cache_warmup = uni(&mut rng, 100.0, 2000.0).round();
    let vm_large_capacity = uni(&mut rng, 1.5, 4.0);
    let vm_mix = coin(&mut rng, 0.5);

    HuntScenario {
        oracle,
        seed,
        web,
        app,
        db,
        web_threads,
        app_threads,
        db_conns,
        shape,
        users_low,
        users_high,
        think_secs,
        horizon_secs,
        crash_at_secs,
        crash_tier,
        straggler_at_secs,
        straggler_tier,
        straggler_factor,
        straggler_secs,
        transient_prob,
        client_retry,
        deadline_secs,
        inter_tier_retry,
        controller,
        up_threshold,
        down_threshold,
        down_consecutive,
        max_servers,
        headroom,
        users,
        cohort_size,
        think_z,
        db_threads,
        web_demand,
        app_demand,
        db_demand,
        db_visits,
        mva_util,
        mpc_slo_secs,
        mpc_scale_in_margin,
        rho_target,
        hw_level_alpha,
        hw_trend_beta,
        step_limit,
        mesh_coin,
        fanout_calls,
        cache_hit,
        cache_warmup,
        vm_large_capacity,
        vm_mix,
    }
}

/// What one scenario check produced: a deterministic fingerprint of the
/// run (folded into the campaign digest) and the violation, if any.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckOutcome {
    /// FNV-1a fingerprint over the run's virtual quantities.
    pub fingerprint: u64,
    /// `Some(detail)` when the oracle rejected the run.
    pub violation: Option<String>,
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

fn trace_for(s: &HuntScenario) -> dcm_workload::WorkloadTrace {
    let step_at = (0.2 * s.horizon_secs).max(10.0);
    match s.shape {
        TraceShape::Step => traces::step(s.users_low, s.users_high, step_at),
        TraceShape::Flash => traces::flash_crowd(
            s.users_low,
            s.users_high,
            step_at,
            (0.4 * s.horizon_secs).max(20.0),
        ),
        TraceShape::Sine => traces::sine(
            s.users_low,
            s.users_high,
            0.5 * s.horizon_secs,
            s.horizon_secs,
            5.0,
        ),
    }
}

fn fault_plan_for(s: &HuntScenario) -> Option<FaultPlan> {
    let mut plan = FaultPlan::none();
    let mut any = false;
    if s.crash_at_secs > 0.0 {
        plan = plan.with_crash(s.crash_at_secs, s.crash_tier as usize, 0);
        any = true;
    }
    if s.straggler_at_secs > 0.0 {
        plan = plan.with_straggler(
            s.straggler_at_secs,
            s.straggler_tier as usize,
            0,
            s.straggler_factor,
            s.straggler_secs,
        );
        any = true;
    }
    if s.transient_prob > 0.0 {
        plan = plan.with_transient_failures(s.transient_prob);
        any = true;
    }
    any.then_some(plan)
}

fn trace_config_for(s: &HuntScenario) -> TraceExperimentConfig {
    TraceExperimentConfig {
        trace: trace_for(s),
        horizon: SimTime::from_secs_f64(s.horizon_secs),
        think_time_secs: s.think_secs,
        initial_soft: SoftConfig::new(s.web_threads, s.app_threads, s.db_conns),
        initial_counts: (s.web, s.app, s.db),
        control_period: SimDuration::from_secs(15),
        seed: s.seed,
        boot_failure_prob: 0.0,
        fault_plan: fault_plan_for(s),
        client_retry: s.client_retry.then(RetryPolicy::default),
        request_deadline_secs: (s.deadline_secs > 0.0).then_some(s.deadline_secs),
        inter_tier_retry: s.inter_tier_retry.then(InterTierRetry::default),
        audit: true,
        audit_tolerant: true,
        obs: None,
    }
}

fn scaling_config_for(s: &HuntScenario) -> ScalingConfig {
    ScalingConfig {
        up_threshold: s.up_threshold,
        down_threshold: s.down_threshold,
        down_consecutive: s.down_consecutive,
        max_servers: s.max_servers as usize,
        ..ScalingConfig::default()
    }
}

fn dcm_models() -> DcmModels {
    let app = reference::tomcat();
    let db = reference::mysql();
    DcmModels {
        app: ConcurrencyModel::new(app.s0(), app.alpha(), app.beta(), 1.0, 1),
        db: ConcurrencyModel::new(db.s0(), db.alpha(), db.beta(), 1.0, 1),
    }
}

fn staffing_config_for(s: &HuntScenario) -> StaffingConfig {
    StaffingConfig {
        rho_target: s.rho_target,
        max_servers: s.max_servers as usize,
        step_limit: s.step_limit as usize,
        ..StaffingConfig::default()
    }
}

/// The mesh world a mesh-active scenario runs: `web → app → {db×fanout,
/// svc}`, the scenario's pool sizes and tier counts on the first three
/// nodes, an optional warming cache on the app→db edge, and (when
/// `vm_mix`) an alternating small/large DB fleet whose large flavor has
/// the scenario's capacity multiplier.
fn mesh_config_for(s: &HuntScenario) -> MeshExperimentConfig {
    let graph = TopologyGraph::from_edges(4, &[(0, 1, 1), (1, 2, s.fanout_calls), (1, 3, 1)]);
    let db_policy = if s.vm_mix {
        let large = VmType {
            name: "hunt-large",
            capacity: s.vm_large_capacity,
            price_per_hour: VmType::SMALL.price_per_hour * s.vm_large_capacity * 1.2,
        };
        VmPolicy::cycle(vec![VmType::SMALL, large])
    } else {
        VmPolicy::default()
    };
    MeshExperimentConfig {
        run: trace_config_for(s),
        nodes: vec![
            MeshNode::new("web", reference::apache(), s.web_threads).count(s.web),
            MeshNode::new("app", reference::tomcat(), s.app_threads)
                .conns(s.db_conns)
                .count(s.app),
            MeshNode::new("db", reference::mysql(), 800)
                .count(s.db)
                .vm_policy(db_policy),
            MeshNode::new("svc", reference::tomcat(), 50),
        ],
        graph,
        demands: vec![
            NodeDemand::split(Dist::constant(0.002)),
            NodeDemand::split(Dist::constant(0.008)),
            NodeDemand::leaf(Dist::exponential_mean(0.02)).iid_visits(),
            NodeDemand::leaf(Dist::exponential_mean(0.012)).iid_visits(),
        ],
        cache: (s.cache_hit > 0.0).then(|| CacheEdge {
            from: 1,
            to: 2,
            dynamics: CacheDynamics::new(s.cache_hit, s.cache_warmup),
        }),
    }
}

/// Runs one trace-driven scenario on whichever world its mesh coin chose.
fn drive<C, F>(s: &HuntScenario, make: F) -> TraceRunResult
where
    C: Controller + 'static,
    F: FnOnce(MetricsBus) -> C,
{
    if mesh_active(s) {
        run_mesh_trace_experiment(&mesh_config_for(s), make)
    } else {
        run_trace_experiment(&trace_config_for(s), make)
    }
}

fn run_trace_scenario(s: &HuntScenario) -> TraceRunResult {
    match s.controller {
        ControllerKind::Ec2 => drive(s, |bus| Ec2AutoScale::new(bus, scaling_config_for(s))),
        ControllerKind::Dcm => drive(s, |bus| {
            let dcm_config = DcmConfig {
                scaling: scaling_config_for(s),
                headroom: s.headroom,
                ..DcmConfig::default()
            };
            Dcm::new(bus, dcm_config, dcm_models())
        }),
        ControllerKind::Mpc => drive(s, |bus| {
            let mpc_config = MpcConfig {
                slo_secs: s.mpc_slo_secs,
                think_time_secs: s.think_secs,
                max_servers: s.max_servers as usize,
                step_limit: s.step_limit as usize,
                scale_in_margin: s.mpc_scale_in_margin,
                ..MpcConfig::default()
            };
            ModelPredictive::new(bus, mpc_config, dcm_models())
        }),
        ControllerKind::Mmc => drive(s, |bus| ThresholdMmc::new(bus, staffing_config_for(s))),
        ControllerKind::Hw => drive(s, |bus| {
            let holt = HoltConfig {
                level_alpha: s.hw_level_alpha,
                trend_beta: s.hw_trend_beta,
                ..HoltConfig::default()
            };
            HoltWinters::new(bus, staffing_config_for(s), holt)
        }),
    }
}

fn fingerprint_run(fnv: &mut Fnv, run: &TraceRunResult) {
    let c = run.counters;
    fnv.u64(c.submitted);
    fnv.u64(c.completed);
    fnv.u64(c.rejected);
    fnv.u64(c.timed_out);
    fnv.u64(c.failed);
    fnv.u64(c.retried);
    fnv.u64(run.completions.len() as u64);
    fnv.u64(run.actions.len() as u64);
    for vs in &run.vm_seconds {
        fnv.f64(*vs);
    }
    for vc in &run.vm_cost {
        fnv.f64(*vc);
    }
}

fn check_conservation(s: &HuntScenario) -> CheckOutcome {
    let run = run_trace_scenario(s);
    let mut fnv = Fnv::new();
    fingerprint_run(&mut fnv, &run);
    let mut problems = Vec::new();
    let in_flight = run.counters.in_flight();
    if in_flight != 0 {
        problems.push(format!(
            "{in_flight} requests unaccounted for at drain ({:?})",
            run.counters
        ));
    }
    let report = run.audit.as_ref().expect("audit was requested");
    if !report.is_clean() {
        problems.push(format!("audit: {}", report.summary()));
    }
    CheckOutcome {
        fingerprint: fnv.0,
        violation: (!problems.is_empty()).then(|| problems.join("; ")),
    }
}

fn check_replay(s: &HuntScenario) -> CheckOutcome {
    let a = run_trace_scenario(s);
    let b = run_trace_scenario(s);
    let mut fnv = Fnv::new();
    fingerprint_run(&mut fnv, &a);
    let mut problems = Vec::new();
    if a.counters != b.counters {
        problems.push(format!(
            "counters diverged: {:?} vs {:?}",
            a.counters, b.counters
        ));
    }
    if a.completions != b.completions {
        problems.push(format!(
            "completion logs diverged ({} vs {} entries)",
            a.completions.len(),
            b.completions.len()
        ));
    }
    if a.actions.len() != b.actions.len() {
        problems.push(format!(
            "actuation timelines diverged ({} vs {} actions)",
            a.actions.len(),
            b.actions.len()
        ));
    }
    if a.vm_seconds
        .iter()
        .map(|v| v.to_bits())
        .ne(b.vm_seconds.iter().map(|v| v.to_bits()))
    {
        problems.push(format!(
            "vm-seconds diverged: {:?} vs {:?}",
            a.vm_seconds, b.vm_seconds
        ));
    }
    if a.vm_cost
        .iter()
        .map(|v| v.to_bits())
        .ne(b.vm_cost.iter().map(|v| v.to_bits()))
    {
        problems.push(format!(
            "vm-dollars diverged: {:?} vs {:?}",
            a.vm_cost, b.vm_cost
        ));
    }
    CheckOutcome {
        fingerprint: fnv.0,
        violation: (!problems.is_empty()).then(|| problems.join("; ")),
    }
}

fn check_cohort(s: &HuntScenario) -> CheckOutcome {
    let think = Some(Dist::exponential_mean(s.think_z.clamp(0.2, 1.0)));
    let horizon = SimTime::from_secs(20);
    let run = |cohort: Option<u32>| {
        let (mut world, mut engine) = ThreeTierBuilder::new()
            .counts(s.web, s.app, s.db)
            .soft(SoftConfig::new(
                s.web_threads.max(200),
                s.app_threads.max(100),
                s.db_conns.max(30),
            ))
            .seed(s.seed)
            .build();
        let completions = match cohort {
            None => {
                let pop = UserPopulation::start_with_think_dist(
                    &mut world,
                    &mut engine,
                    ProfileFactory::rubbos(),
                    s.users,
                    think.clone(),
                    horizon,
                );
                engine.run(&mut world);
                pop.completions()
            }
            Some(size) => {
                let pop = CohortPopulation::start_with_think_dist(
                    &mut world,
                    &mut engine,
                    ProfileFactory::rubbos(),
                    s.users,
                    size,
                    think.clone(),
                    horizon,
                );
                engine.run(&mut world);
                pop.with_completions(|log| log.to_vec())
            }
        };
        (completions, engine.executed(), world.system.counters())
    };

    let (per_user, per_user_events, _) = run(None);
    let (unit, unit_events, _) = run(Some(1));
    let (batched, _, batched_counters) = run(Some(s.cohort_size));

    let mut fnv = Fnv::new();
    fnv.u64(per_user.len() as u64);
    fnv.u64(per_user_events);
    fnv.u64(batched.len() as u64);
    fnv.u64(batched_counters.submitted);

    let mut problems = Vec::new();
    if per_user != unit {
        problems.push(format!(
            "cohort_size=1 completion log diverged from per-user ({} vs {} entries)",
            unit.len(),
            per_user.len()
        ));
    }
    if per_user_events != unit_events {
        problems.push(format!(
            "cohort_size=1 event count diverged from per-user ({unit_events} vs {per_user_events})"
        ));
    }
    if batched_counters.in_flight() != 0 {
        problems.push(format!(
            "cohort_size={} leaked {} in-flight requests",
            s.cohort_size,
            batched_counters.in_flight()
        ));
    }
    let a = per_user.len() as f64;
    let b = batched.len() as f64;
    if a > 0.0 && ((a - b).abs() / a) > COHORT_BAND {
        problems.push(format!(
            "cohort_size={} moved throughput beyond {:.0}%: {} vs {} completions",
            s.cohort_size,
            COHORT_BAND * 100.0,
            batched.len(),
            per_user.len()
        ));
    }
    CheckOutcome {
        fingerprint: fnv.0,
        violation: (!problems.is_empty()).then(|| problems.join("; ")),
    }
}

fn check_doubling(s: &HuntScenario) -> CheckOutcome {
    let soft = SoftConfig::new(
        s.web_threads.max(200),
        s.app_threads.max(100),
        s.db_conns.max(30),
    );
    let options = SteadyStateOptions {
        warmup: SimDuration::from_secs(30),
        measure: SimDuration::from_secs(120),
        think_time_secs: s.think_z.max(1.5),
        seed: s.seed,
        audit: false,
    };
    // Think-limited by construction: <= 24 users at >= 1.5 s think offer
    // <= 16 req/s against >= 56 req/s of single-server app capacity.
    let users = s.users.clamp(8, 24);
    let base = steady_state_throughput((s.web, s.app, s.db), soft, users, &options);
    let doubled = steady_state_throughput((2 * s.web, 2 * s.app, 2 * s.db), soft, users, &options);

    let mut fnv = Fnv::new();
    fnv.f64(base.throughput);
    fnv.f64(doubled.throughput);
    fnv.f64(base.mean_rt);
    fnv.f64(doubled.mean_rt);

    let violation = if base.throughput <= 0.0 {
        Some(format!(
            "no completions in the base run (users={users}, counts=({},{},{}))",
            s.web, s.app, s.db
        ))
    } else {
        let ratio = doubled.throughput / base.throughput;
        ((ratio - 1.0).abs() > DOUBLING_TOLERANCE).then(|| {
            format!(
                "doubling ({},{},{}) -> ({},{},{}) moved throughput {:.2} -> {:.2} req/s \
                 (ratio {ratio:.3}, tolerance {DOUBLING_TOLERANCE})",
                s.web,
                s.app,
                s.db,
                2 * s.web,
                2 * s.app,
                2 * s.db,
                base.throughput,
                doubled.throughput,
            )
        })
    };
    CheckOutcome {
        fingerprint: fnv.0,
        violation,
    }
}

/// The MVA oracle's population: sized so each DB station sits at the
/// scenario's target utilization (clamped to a small, fast sweep).
fn mva_population(s: &HuntScenario) -> u32 {
    let x_sat = f64::from(s.db_threads * s.db) / (s.db_demand * f64::from(s.db_visits));
    let demand_total = s.web_demand + s.app_demand + s.db_demand * f64::from(s.db_visits);
    let n = s.mva_util * x_sat * (s.think_z + demand_total);
    (n as u32).clamp(2, 48)
}

fn check_mva(s: &HuntScenario) -> CheckOutcome {
    let scenario = Scenario {
        name: "hunt",
        kind: ScenarioKind::ZeroOverhead,
        counts: (s.web, s.app, s.db),
        db_threads: s.db_threads,
        web_demand: s.web_demand,
        app_demand: s.app_demand,
        db_demand: s.db_demand,
        db_visits: s.db_visits,
        think: s.think_z,
        db_law: ServiceLaw::frictionless(s.db_demand),
        populations: &[],
        warmup: 40.0,
        measure: 300.0,
    };
    let population = mva_population(s);
    let point = run_scenario(&scenario, population, s.seed);

    let mut fnv = Fnv::new();
    fnv.u64(u64::from(population));
    fnv.u64(point.completions);
    fnv.f64(point.throughput.des);
    fnv.f64(point.db_queue.des);

    let mut problems = Vec::new();
    let err = point.max_rel_err();
    if err > MVA_TOLERANCE {
        problems.push(format!(
            "max relative error {err:.4} exceeds {MVA_TOLERANCE} at N={population} \
             (throughput {:.3} vs MVA {:.3})",
            point.throughput.des, point.throughput.mva
        ));
    }
    if !point.bound_ok {
        problems.push(format!(
            "throughput {:.3} violates the asymptotic bound {:.3}",
            point.throughput.des, point.throughput_bound
        ));
    }
    if point.audit_violations > 0 {
        problems.push(format!(
            "{} conservation-audit violations in the measurement window",
            point.audit_violations
        ));
    }
    CheckOutcome {
        fingerprint: fnv.0,
        violation: (!problems.is_empty()).then(|| problems.join("; ")),
    }
}

/// Per-tick net-VM-change allowance for the league oracle. The threshold
/// policies move one VM per decision; the MPC and staffing controllers
/// are configured with the scenario's step limit. A crash frees a slot
/// that the desired-capacity memory legitimately refills in the same tick
/// as a regular step, so crash scenarios get one extra.
fn league_step_allowance(s: &HuntScenario) -> i64 {
    let base = match s.controller {
        ControllerKind::Ec2 | ControllerKind::Dcm => 1,
        ControllerKind::Mpc | ControllerKind::Mmc | ControllerKind::Hw => i64::from(s.step_limit),
    };
    base + i64::from(s.crash_at_secs > 0.0)
}

fn check_league(s: &HuntScenario) -> CheckOutcome {
    let run = run_trace_scenario(s);
    let mut fnv = Fnv::new();
    fingerprint_run(&mut fnv, &run);
    let mut problems = Vec::new();

    // Fold the actuation log into per-tier VM counts. Crashes are not in
    // the log, so the folded count is an upper bound on live servers; a
    // crash scenario may exceed the cap by the one replacement it boots.
    let cap = i64::from(s.max_servers) + i64::from(s.crash_at_secs > 0.0);
    let allowance = league_step_allowance(s);
    let mut counts = [i64::from(s.web), i64::from(s.app), i64::from(s.db)];
    let mut tick: Option<SimTime> = None;
    let mut deltas = [0i64; 3];
    let flush = |at: Option<SimTime>, deltas: &mut [i64; 3], problems: &mut Vec<String>| {
        for (tier, d) in deltas.iter().enumerate() {
            if d.abs() > allowance {
                problems.push(format!(
                    "tier {tier} moved {d:+} VMs in one tick at t={:.0}s (allowance {allowance})",
                    at.map_or(0.0, SimTime::as_secs_f64)
                ));
            }
        }
        *deltas = [0; 3];
    };
    for rec in &run.actions {
        if tick != Some(rec.at) {
            flush(tick, &mut deltas, &mut problems);
            tick = Some(rec.at);
        }
        let moved = match rec.action {
            Action::ScaleOut { tier } if tier < 3 => Some((tier, 1)),
            Action::ScaleIn { tier } if tier < 3 => Some((tier, -1)),
            _ => None,
        };
        if let Some((tier, delta)) = moved {
            counts[tier] += delta;
            deltas[tier] += delta;
            if counts[tier] > cap {
                problems.push(format!(
                    "tier {tier} reached {} VMs (cap {cap}) at t={:.0}s",
                    counts[tier],
                    rec.at.as_secs_f64()
                ));
            }
            if counts[tier] < 1 {
                problems.push(format!(
                    "tier {tier} drained to {} servers at t={:.0}s",
                    counts[tier],
                    rec.at.as_secs_f64()
                ));
            }
        }
    }
    flush(tick, &mut deltas, &mut problems);

    CheckOutcome {
        fingerprint: fnv.0,
        violation: (!problems.is_empty()).then(|| problems.join("; ")),
    }
}

/// Runs one scenario through its oracle.
pub fn check(s: &HuntScenario) -> CheckOutcome {
    match s.oracle {
        OracleKind::Conservation => check_conservation(s),
        OracleKind::Replay => check_replay(s),
        OracleKind::Cohort => check_cohort(s),
        OracleKind::Doubling => check_doubling(s),
        OracleKind::Mva => check_mva(s),
        OracleKind::League => check_league(s),
    }
}

/// Result of shrinking one violating scenario.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The minimized scenario (still violating its oracle).
    pub scenario: HuntScenario,
    /// Accepted reduction steps.
    pub steps: u32,
    /// The minimized scenario's violation detail.
    pub detail: String,
}

/// The ordered reduction candidates: disable faults and client machinery
/// first (the usual irrelevancies), then walk sizes and knobs toward their
/// floors. Each returns `None` when it would not change the scenario.
fn reductions(s: &HuntScenario) -> Vec<HuntScenario> {
    let mut out = Vec::new();
    let mut push = |f: &dyn Fn(&mut HuntScenario)| {
        let mut c = s.clone();
        f(&mut c);
        if c != *s {
            out.push(c);
        }
    };
    // Mesh knobs first: a violation that survives the walk back to the
    // chain (or with the cache, mixed fleet, and fan-out stripped) is not
    // a mesh bug, and the pinned case should say so.
    push(&|c| c.mesh_coin = 1.0);
    push(&|c| c.cache_hit = 0.0);
    push(&|c| c.vm_mix = false);
    push(&|c| c.fanout_calls = 1);
    push(&|c| c.vm_large_capacity = 2.0);
    push(&|c| c.cache_warmup = 1000.0);
    push(&|c| c.transient_prob = 0.0);
    push(&|c| c.straggler_at_secs = 0.0);
    push(&|c| c.crash_at_secs = 0.0);
    push(&|c| c.client_retry = false);
    push(&|c| c.deadline_secs = 0.0);
    push(&|c| c.inter_tier_retry = false);
    push(&|c| {
        c.users_high = c.users_low + ((c.users_high - c.users_low) / 2).max(20);
    });
    push(&|c| c.users_low = (c.users_low / 2).max(5));
    push(&|c| c.horizon_secs = (c.horizon_secs / 2.0).max(60.0).round());
    push(&|c| {
        c.shape = match c.shape {
            TraceShape::Sine => TraceShape::Flash,
            TraceShape::Flash | TraceShape::Step => TraceShape::Step,
        };
    });
    push(&|c| c.controller = ControllerKind::Ec2);
    push(&|c| c.mpc_slo_secs = 1.0);
    push(&|c| c.mpc_scale_in_margin = 0.8);
    push(&|c| c.rho_target = 0.6);
    push(&|c| c.hw_level_alpha = 0.5);
    push(&|c| c.hw_trend_beta = 0.3);
    push(&|c| c.step_limit = c.step_limit.min(2));
    push(&|c| c.web = (c.web - 1).max(1));
    push(&|c| c.app = (c.app - 1).max(1));
    push(&|c| c.db = (c.db - 1).max(1));
    push(&|c| c.web_threads = (c.web_threads / 2).max(200));
    push(&|c| c.app_threads = (c.app_threads / 2).max(50));
    push(&|c| c.db_conns = (c.db_conns / 2).max(10));
    push(&|c| c.up_threshold = 0.8);
    push(&|c| c.down_threshold = 0.4);
    push(&|c| c.down_consecutive = 3);
    push(&|c| c.max_servers = (c.max_servers - 1).max(4));
    push(&|c| c.headroom = 1.0);
    push(&|c| c.users = (c.users / 2).max(8));
    push(&|c| c.cohort_size = (c.cohort_size / 2).max(2));
    push(&|c| c.think_secs = 1.0);
    push(&|c| c.think_z = 1.0);
    push(&|c| c.db_threads = (c.db_threads - 1).max(1));
    push(&|c| c.db_visits = 1);
    push(&|c| c.mva_util = 0.3);
    out
}

/// Greedy delta-debugging: repeatedly tries each reduction in order,
/// keeping any candidate that still violates the oracle, until a full
/// pass accepts nothing (or the re-run budget is exhausted).
pub fn shrink(original: &HuntScenario, detail: &str) -> ShrinkResult {
    let mut current = original.clone();
    let mut current_detail = detail.to_string();
    let mut steps = 0u32;
    let mut spent = 0u32;
    loop {
        let mut improved = false;
        for candidate in reductions(&current) {
            if spent >= SHRINK_BUDGET {
                return ShrinkResult {
                    scenario: current,
                    steps,
                    detail: current_detail,
                };
            }
            spent += 1;
            let outcome = check(&candidate);
            if let Some(d) = outcome.violation {
                current = candidate;
                current_detail = d;
                steps += 1;
                improved = true;
                break;
            }
        }
        if !improved {
            return ShrinkResult {
                scenario: current,
                steps,
                detail: current_detail,
            };
        }
    }
}

/// Fixed kv field order for [`HuntScenario::to_kv`] / [`from_kv`]. The
/// zoo and mesh fields sit at the end and default when absent, so
/// regression files pinned before either landed still parse.
const KV_FIELDS: [&str; 50] = [
    "oracle",
    "seed",
    "web",
    "app",
    "db",
    "web_threads",
    "app_threads",
    "db_conns",
    "shape",
    "users_low",
    "users_high",
    "think_secs",
    "horizon_secs",
    "crash_at_secs",
    "crash_tier",
    "straggler_at_secs",
    "straggler_tier",
    "straggler_factor",
    "straggler_secs",
    "transient_prob",
    "client_retry",
    "deadline_secs",
    "inter_tier_retry",
    "controller",
    "up_threshold",
    "down_threshold",
    "down_consecutive",
    "max_servers",
    "headroom",
    "users",
    "cohort_size",
    "think_z",
    "db_threads",
    "web_demand",
    "app_demand",
    "db_demand",
    "db_visits",
    "mva_util",
    "mpc_slo_secs",
    "mpc_scale_in_margin",
    "rho_target",
    "hw_level_alpha",
    "hw_trend_beta",
    "step_limit",
    "mesh_coin",
    "fanout_calls",
    "cache_hit",
    "cache_warmup",
    "vm_large_capacity",
    "vm_mix",
];

/// Defaults for the zoo fields when parsing pre-zoo regression files.
const KV_ZOO_DEFAULTS: (f64, f64, f64, f64, f64, u32) = (1.0, 0.8, 0.6, 0.5, 0.3, 2);

/// Defaults for the mesh fields when parsing pre-mesh regression files.
/// `mesh_coin = 1.0` keeps every pinned chain scenario on the chain.
const KV_MESH_DEFAULTS: (f64, u32, f64, f64, f64, bool) = (1.0, 2, 0.0, 1000.0, 2.0, false);

impl HuntScenario {
    /// Serializes the scenario as `key value` lines in a fixed order.
    /// Floats use Rust's shortest round-trip formatting, so
    /// [`HuntScenario::from_kv`] reconstructs bit-identical values.
    pub fn to_kv(&self) -> String {
        let mut out = String::new();
        for key in KV_FIELDS {
            let value = match key {
                "oracle" => self.oracle.label().to_string(),
                "seed" => self.seed.to_string(),
                "web" => self.web.to_string(),
                "app" => self.app.to_string(),
                "db" => self.db.to_string(),
                "web_threads" => self.web_threads.to_string(),
                "app_threads" => self.app_threads.to_string(),
                "db_conns" => self.db_conns.to_string(),
                "shape" => self.shape.label().to_string(),
                "users_low" => self.users_low.to_string(),
                "users_high" => self.users_high.to_string(),
                "think_secs" => self.think_secs.to_string(),
                "horizon_secs" => self.horizon_secs.to_string(),
                "crash_at_secs" => self.crash_at_secs.to_string(),
                "crash_tier" => self.crash_tier.to_string(),
                "straggler_at_secs" => self.straggler_at_secs.to_string(),
                "straggler_tier" => self.straggler_tier.to_string(),
                "straggler_factor" => self.straggler_factor.to_string(),
                "straggler_secs" => self.straggler_secs.to_string(),
                "transient_prob" => self.transient_prob.to_string(),
                "client_retry" => self.client_retry.to_string(),
                "deadline_secs" => self.deadline_secs.to_string(),
                "inter_tier_retry" => self.inter_tier_retry.to_string(),
                "controller" => self.controller.label().to_string(),
                "up_threshold" => self.up_threshold.to_string(),
                "down_threshold" => self.down_threshold.to_string(),
                "down_consecutive" => self.down_consecutive.to_string(),
                "max_servers" => self.max_servers.to_string(),
                "headroom" => self.headroom.to_string(),
                "users" => self.users.to_string(),
                "cohort_size" => self.cohort_size.to_string(),
                "think_z" => self.think_z.to_string(),
                "db_threads" => self.db_threads.to_string(),
                "web_demand" => self.web_demand.to_string(),
                "app_demand" => self.app_demand.to_string(),
                "db_demand" => self.db_demand.to_string(),
                "db_visits" => self.db_visits.to_string(),
                "mva_util" => self.mva_util.to_string(),
                "mpc_slo_secs" => self.mpc_slo_secs.to_string(),
                "mpc_scale_in_margin" => self.mpc_scale_in_margin.to_string(),
                "rho_target" => self.rho_target.to_string(),
                "hw_level_alpha" => self.hw_level_alpha.to_string(),
                "hw_trend_beta" => self.hw_trend_beta.to_string(),
                "step_limit" => self.step_limit.to_string(),
                "mesh_coin" => self.mesh_coin.to_string(),
                "fanout_calls" => self.fanout_calls.to_string(),
                "cache_hit" => self.cache_hit.to_string(),
                "cache_warmup" => self.cache_warmup.to_string(),
                "vm_large_capacity" => self.vm_large_capacity.to_string(),
                "vm_mix" => self.vm_mix.to_string(),
                _ => unreachable!("field list is exhaustive"),
            };
            let _ = writeln!(out, "{key} {value}");
        }
        out
    }

    /// Parses the kv format written by [`HuntScenario::to_kv`]. Lines
    /// starting with `#` and blank lines are ignored; every field must be
    /// present exactly once.
    pub fn from_kv(text: &str) -> Result<HuntScenario, String> {
        let mut map: BTreeMap<&str, &str> = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once(' ')
                .ok_or_else(|| format!("malformed line {line:?}"))?;
            if map.insert(key, value.trim()).is_some() {
                return Err(format!("duplicate key {key:?}"));
            }
        }
        let get = |key: &str| -> Result<&str, String> {
            map.get(key)
                .copied()
                .ok_or_else(|| format!("missing key {key:?}"))
        };
        let get_u32 = |key: &str| -> Result<u32, String> {
            get(key)?
                .parse::<u32>()
                .map_err(|e| format!("bad u32 for {key:?}: {e}"))
        };
        let get_u64 = |key: &str| -> Result<u64, String> {
            get(key)?
                .parse::<u64>()
                .map_err(|e| format!("bad u64 for {key:?}: {e}"))
        };
        let get_f64 = |key: &str| -> Result<f64, String> {
            get(key)?
                .parse::<f64>()
                .map_err(|e| format!("bad f64 for {key:?}: {e}"))
        };
        let get_bool = |key: &str| -> Result<bool, String> {
            get(key)?
                .parse::<bool>()
                .map_err(|e| format!("bad bool for {key:?}: {e}"))
        };
        let get_f64_or = |key: &str, default: f64| -> Result<f64, String> {
            match map.get(key) {
                None => Ok(default),
                Some(v) => v
                    .parse::<f64>()
                    .map_err(|e| format!("bad f64 for {key:?}: {e}")),
            }
        };
        let get_u32_or = |key: &str, default: u32| -> Result<u32, String> {
            match map.get(key) {
                None => Ok(default),
                Some(v) => v
                    .parse::<u32>()
                    .map_err(|e| format!("bad u32 for {key:?}: {e}")),
            }
        };
        let get_bool_or = |key: &str, default: bool| -> Result<bool, String> {
            match map.get(key) {
                None => Ok(default),
                Some(v) => v
                    .parse::<bool>()
                    .map_err(|e| format!("bad bool for {key:?}: {e}")),
            }
        };
        let (d_slo, d_margin, d_rho, d_alpha, d_beta, d_step) = KV_ZOO_DEFAULTS;
        let (d_coin, d_fanout, d_hit, d_warm, d_cap, d_mix) = KV_MESH_DEFAULTS;
        Ok(HuntScenario {
            oracle: OracleKind::parse(get("oracle")?)?,
            seed: get_u64("seed")?,
            web: get_u32("web")?,
            app: get_u32("app")?,
            db: get_u32("db")?,
            web_threads: get_u32("web_threads")?,
            app_threads: get_u32("app_threads")?,
            db_conns: get_u32("db_conns")?,
            shape: TraceShape::parse(get("shape")?)?,
            users_low: get_u32("users_low")?,
            users_high: get_u32("users_high")?,
            think_secs: get_f64("think_secs")?,
            horizon_secs: get_f64("horizon_secs")?,
            crash_at_secs: get_f64("crash_at_secs")?,
            crash_tier: get_u32("crash_tier")?,
            straggler_at_secs: get_f64("straggler_at_secs")?,
            straggler_tier: get_u32("straggler_tier")?,
            straggler_factor: get_f64("straggler_factor")?,
            straggler_secs: get_f64("straggler_secs")?,
            transient_prob: get_f64("transient_prob")?,
            client_retry: get_bool("client_retry")?,
            deadline_secs: get_f64("deadline_secs")?,
            inter_tier_retry: get_bool("inter_tier_retry")?,
            controller: ControllerKind::parse(get("controller")?)?,
            up_threshold: get_f64("up_threshold")?,
            down_threshold: get_f64("down_threshold")?,
            down_consecutive: get_u32("down_consecutive")?,
            max_servers: get_u32("max_servers")?,
            headroom: get_f64("headroom")?,
            users: get_u32("users")?,
            cohort_size: get_u32("cohort_size")?,
            think_z: get_f64("think_z")?,
            db_threads: get_u32("db_threads")?,
            web_demand: get_f64("web_demand")?,
            app_demand: get_f64("app_demand")?,
            db_demand: get_f64("db_demand")?,
            db_visits: get_u32("db_visits")?,
            mva_util: get_f64("mva_util")?,
            mpc_slo_secs: get_f64_or("mpc_slo_secs", d_slo)?,
            mpc_scale_in_margin: get_f64_or("mpc_scale_in_margin", d_margin)?,
            rho_target: get_f64_or("rho_target", d_rho)?,
            hw_level_alpha: get_f64_or("hw_level_alpha", d_alpha)?,
            hw_trend_beta: get_f64_or("hw_trend_beta", d_beta)?,
            step_limit: get_u32_or("step_limit", d_step)?,
            mesh_coin: get_f64_or("mesh_coin", d_coin)?,
            fanout_calls: get_u32_or("fanout_calls", d_fanout)?,
            cache_hit: get_f64_or("cache_hit", d_hit)?,
            cache_warmup: get_f64_or("cache_warmup", d_warm)?,
            vm_large_capacity: get_f64_or("vm_large_capacity", d_cap)?,
            vm_mix: get_bool_or("vm_mix", d_mix)?,
        })
    }

    /// The canonical regression filename for this scenario.
    pub fn regression_filename(&self) -> String {
        format!("hunt_{}_{}.txt", self.oracle.label(), self.seed)
    }
}

/// One confirmed violation, with its minimized form.
#[derive(Debug, Clone)]
pub struct HuntFinding {
    /// Campaign index of the violating scenario.
    pub index: u64,
    /// The oracle that rejected it.
    pub oracle: OracleKind,
    /// The minimized scenario's violation detail.
    pub detail: String,
    /// The scenario as generated.
    pub original: HuntScenario,
    /// The shrunk scenario (still violating).
    pub minimized: HuntScenario,
    /// Accepted shrink steps.
    pub shrink_steps: u32,
}

/// A whole campaign's results.
#[derive(Debug, Clone)]
pub struct Hunt {
    /// Scenarios checked.
    pub budget: u64,
    /// Campaign seed.
    pub seed: u64,
    /// Order-sensitive FNV digest over every run's fingerprint; CI
    /// byte-compares it (inside `results/hunt.json`) across `--jobs`.
    pub digest: u64,
    /// Scenarios checked per oracle.
    pub oracle_counts: BTreeMap<&'static str, u64>,
    /// Confirmed violations, shrunk and ready to pin.
    pub violations: Vec<HuntFinding>,
    /// The failure journal (why each violating run failed).
    pub log: FailureLog,
}

/// Runs a `budget`-scenario campaign rooted at `seed`. Checks fan out
/// through the deterministic runner; everything order-sensitive (digest,
/// shrinking, the failure journal) happens sequentially in campaign-index
/// order afterwards, so results are identical for every `--jobs` value.
pub fn run_hunt(budget: u64, seed: u64) -> Hunt {
    let scenarios: Vec<(u64, HuntScenario)> = (0..budget).map(|i| (i, generate(seed, i))).collect();
    let outcomes = dcm_sim::runner::run_ordered(scenarios.clone(), |(_, s)| check(&s));

    let mut digest = Fnv::new();
    let mut oracle_counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    for kind in OracleKind::all() {
        oracle_counts.insert(kind.label(), 0);
    }
    let mut log = FailureLog::new();
    let mut violations = Vec::new();
    for ((index, scenario), outcome) in scenarios.into_iter().zip(outcomes) {
        digest.u64(index);
        digest.u64(outcome.fingerprint);
        *oracle_counts.entry(scenario.oracle.label()).or_insert(0) += 1;
        if let Some(detail) = outcome.violation {
            log.record(index, scenario.oracle.label(), &detail);
            let shrunk = shrink(&scenario, &detail);
            violations.push(HuntFinding {
                index,
                oracle: scenario.oracle,
                detail: shrunk.detail,
                original: scenario,
                minimized: shrunk.scenario,
                shrink_steps: shrunk.steps,
            });
        }
    }
    Hunt {
        budget,
        seed,
        digest: digest.0,
        oracle_counts,
        violations,
        log,
    }
}

impl Hunt {
    /// True when no oracle rejected any scenario.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Per-oracle campaign summary.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(["oracle", "scenarios", "violations"]);
        for (oracle, count) in &self.oracle_counts {
            let bad = self
                .violations
                .iter()
                .filter(|v| v.oracle.label() == *oracle)
                .count();
            t.row([(*oracle).to_string(), count.to_string(), bad.to_string()]);
        }
        t
    }

    /// Human-readable campaign findings.
    pub fn findings(&self) -> Vec<String> {
        let mut out = vec![format!(
            "campaign: {} scenarios from seed {} across {} oracles, digest {:016x}",
            self.budget,
            self.seed,
            self.oracle_counts.len(),
            self.digest
        )];
        if self.passed() {
            out.push("no oracle rejected any scenario".to_string());
        } else {
            for v in &self.violations {
                out.push(format!(
                    "scenario {} violated {} (shrunk {} steps): {}",
                    v.index,
                    v.oracle.label(),
                    v.shrink_steps,
                    v.detail
                ));
            }
        }
        out
    }

    /// Stable JSON for `results/hunt.json`. Virtual quantities only — CI
    /// byte-compares this file across `--jobs 1` and `--jobs 4`.
    pub fn to_json(&self) -> String {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"budget\": {},", self.budget);
        let _ = writeln!(json, "  \"seed\": {},", self.seed);
        let _ = writeln!(json, "  \"digest\": \"{:016x}\",", self.digest);
        json.push_str("  \"oracles\": {\n");
        for (i, (oracle, count)) in self.oracle_counts.iter().enumerate() {
            let comma = if i + 1 < self.oracle_counts.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(json, "    \"{oracle}\": {count}{comma}");
        }
        json.push_str("  },\n");
        json.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str("\n    {\n");
            let _ = writeln!(json, "      \"index\": {},", v.index);
            let _ = writeln!(json, "      \"oracle\": \"{}\",", v.oracle.label());
            let _ = writeln!(json, "      \"shrink_steps\": {},", v.shrink_steps);
            let _ = writeln!(json, "      \"detail\": \"{}\",", json_escape(&v.detail));
            let _ = writeln!(
                json,
                "      \"minimized\": \"{}\"",
                json_escape(&v.minimized.to_kv())
            );
            json.push_str("    }");
        }
        if !self.violations.is_empty() {
            json.push_str("\n  ");
        }
        json.push_str("],\n");
        let _ = writeln!(json, "  \"failures\": {},", self.log.to_json_array());
        let _ = writeln!(json, "  \"passed\": {}", self.passed());
        json.push_str("}\n");
        json
    }

    /// Writes each minimized violation as a self-contained regression
    /// case under `dir` (created if missing). Returns the paths written.
    pub fn write_regressions(
        &self,
        dir: &std::path::Path,
    ) -> std::io::Result<Vec<std::path::PathBuf>> {
        let mut written = Vec::new();
        if self.violations.is_empty() {
            return Ok(written);
        }
        std::fs::create_dir_all(dir)?;
        for v in &self.violations {
            let path = dir.join(v.minimized.regression_filename());
            let mut body = String::new();
            let _ = writeln!(
                body,
                "# pinned by `repro hunt` (campaign seed {})",
                self.seed
            );
            let _ = writeln!(body, "# campaign index {}", v.index);
            let _ = writeln!(body, "# violated {}: {}", v.oracle.label(), v.detail);
            body.push_str(&v.minimized.to_kv());
            std::fs::write(&path, body)?;
            written.push(path);
        }
        Ok(written)
    }
}

/// Minimal JSON string escaping for campaign details and kv payloads.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_a_pure_function_of_seed_and_index() {
        for i in 0..40 {
            let a = generate(SEED, i);
            let b = generate(SEED, i);
            assert_eq!(a, b, "index {i} not deterministic");
            assert!(a.users_high > a.users_low);
            assert!(a.down_threshold < a.up_threshold);
            assert!(a.horizon_secs >= 60.0 && a.horizon_secs <= 120.0);
        }
        // Different indices actually explore the space.
        assert_ne!(generate(SEED, 0).seed, generate(SEED, 1).seed);
    }

    #[test]
    fn kv_round_trips_bit_identically() {
        for i in 0..10 {
            let s = generate(SEED, i);
            let parsed = HuntScenario::from_kv(&s.to_kv()).expect("round trip");
            assert_eq!(s, parsed, "kv round trip diverged at index {i}");
        }
        assert!(HuntScenario::from_kv("oracle mva\n").is_err());
        assert!(HuntScenario::from_kv("garbage").is_err());
    }

    #[test]
    fn small_campaign_is_deterministic_and_clean() {
        let a = run_hunt(6, SEED);
        let b = run_hunt(6, SEED);
        assert_eq!(a.to_json(), b.to_json(), "campaign is not deterministic");
        assert!(
            a.passed(),
            "campaign found violations:\n{}",
            a.log.render_text()
        );
        assert_eq!(a.oracle_counts.values().sum::<u64>(), 6);
        assert_eq!(a.table().len(), 6);
        // The sixth scenario is the first league check.
        assert_eq!(generate(SEED, 5).oracle, OracleKind::League);
    }

    #[test]
    fn zoo_fields_default_when_absent_from_kv() {
        // A pre-zoo kv payload: serialize a scenario, drop the zoo lines,
        // and parse — the zoo knobs must come back as the documented
        // defaults while everything else round-trips.
        let s = generate(SEED, 7);
        let pre_zoo: String = s
            .to_kv()
            .lines()
            .filter(|l| {
                let key = l.split(' ').next().unwrap_or("");
                !matches!(
                    key,
                    "mpc_slo_secs"
                        | "mpc_scale_in_margin"
                        | "rho_target"
                        | "hw_level_alpha"
                        | "hw_trend_beta"
                        | "step_limit"
                )
            })
            .map(|l| format!("{l}\n"))
            .collect();
        let parsed = HuntScenario::from_kv(&pre_zoo).expect("pre-zoo kv parses");
        let (d_slo, d_margin, d_rho, d_alpha, d_beta, d_step) = KV_ZOO_DEFAULTS;
        assert_eq!(parsed.mpc_slo_secs, d_slo);
        assert_eq!(parsed.mpc_scale_in_margin, d_margin);
        assert_eq!(parsed.rho_target, d_rho);
        assert_eq!(parsed.hw_level_alpha, d_alpha);
        assert_eq!(parsed.hw_trend_beta, d_beta);
        assert_eq!(parsed.step_limit, d_step);
        assert_eq!(parsed.seed, s.seed);
        assert_eq!(parsed.controller, s.controller);
    }

    #[test]
    fn mesh_fields_default_when_absent_from_kv() {
        // A pre-mesh kv payload must parse with the mesh coin inactive, so
        // every pinned chain regression keeps replaying on the chain.
        let s = generate(SEED, 11);
        let pre_mesh: String = s
            .to_kv()
            .lines()
            .filter(|l| {
                let key = l.split(' ').next().unwrap_or("");
                !matches!(
                    key,
                    "mesh_coin"
                        | "fanout_calls"
                        | "cache_hit"
                        | "cache_warmup"
                        | "vm_large_capacity"
                        | "vm_mix"
                )
            })
            .map(|l| format!("{l}\n"))
            .collect();
        let parsed = HuntScenario::from_kv(&pre_mesh).expect("pre-mesh kv parses");
        let (d_coin, d_fanout, d_hit, d_warm, d_cap, d_mix) = KV_MESH_DEFAULTS;
        assert_eq!(parsed.mesh_coin, d_coin);
        assert!(!mesh_active(&parsed));
        assert_eq!(parsed.fanout_calls, d_fanout);
        assert_eq!(parsed.cache_hit, d_hit);
        assert_eq!(parsed.cache_warmup, d_warm);
        assert_eq!(parsed.vm_large_capacity, d_cap);
        assert_eq!(parsed.vm_mix, d_mix);
        assert_eq!(parsed.seed, s.seed);
    }

    #[test]
    fn mesh_active_scenario_drives_the_dag_world_cleanly() {
        // Force a conservation-oracle scenario onto the mesh with the
        // cache and the mixed fleet both on: the audit (per-edge flow
        // balance included) and the in-flight accounting must stay clean,
        // and replaying it must be bit-identical.
        let mut s = generate(SEED, 0);
        assert_eq!(s.oracle, OracleKind::Conservation);
        s.mesh_coin = 0.0;
        s.fanout_calls = 2;
        s.cache_hit = 0.5;
        s.cache_warmup = 300.0;
        s.vm_mix = true;
        s.vm_large_capacity = 2.0;
        s.horizon_secs = 60.0;
        assert!(mesh_active(&s));
        let outcome = check(&s);
        assert!(
            outcome.violation.is_none(),
            "mesh conservation flagged: {:?}",
            outcome.violation
        );
        s.oracle = OracleKind::Replay;
        let outcome = check(&s);
        assert!(
            outcome.violation.is_none(),
            "mesh replay flagged: {:?}",
            outcome.violation
        );
    }

    #[test]
    fn league_oracle_rejects_cap_and_step_breaches() {
        // Drive the checker's folding logic through a scenario whose
        // controller is known to respect its limits (a clean pass), then
        // assert the allowance arithmetic flags the crash headroom.
        let mut s = generate(SEED, 5);
        assert_eq!(s.oracle, OracleKind::League);
        let outcome = check(&s);
        assert!(
            outcome.violation.is_none(),
            "clean controller flagged: {:?}",
            outcome.violation
        );
        // Crash scenarios get exactly one extra step and one cap slot.
        let without_crash = {
            s.crash_at_secs = 0.0;
            league_step_allowance(&s)
        };
        s.crash_at_secs = 30.0;
        assert_eq!(league_step_allowance(&s), without_crash + 1);
    }

    #[test]
    fn shrinker_reaches_a_violating_fixed_point() {
        // A synthetic violation: doubling tolerance can't hold if the base
        // run produces nothing, which a zero-user clamp can't trigger, so
        // instead pin a scenario class we can force — the MVA oracle with
        // an absurd tolerance is not forceable either, so exercise the
        // machinery directly: shrink a clean scenario's *reductions* list.
        let s = generate(SEED, 3); // index 3 -> doubling oracle
        assert_eq!(s.oracle, OracleKind::Doubling);
        let candidates = reductions(&s);
        assert!(!candidates.is_empty());
        for c in &candidates {
            assert_ne!(c, &s, "reductions must change the scenario");
            assert_eq!(c.oracle, s.oracle, "reductions must preserve the oracle");
        }
    }
}
