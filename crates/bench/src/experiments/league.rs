//! Controller league: every controller in the repo — DCM, the
//! EC2-AutoScale baseline, the MVA-predictive MPC planner, and the
//! baseline zoo (M/M/c threshold staffing, Holt-Winters predictive
//! staffing) — runs the same trace library (step, flash crowd, sine, and
//! a chaos trace with an app-VM crash, a DB straggler, and transient
//! faults) and is ranked on the numbers that matter operationally:
//!
//! * **SLO-violation seconds** — 5-second windows whose mean response
//!   time exceeds the 1 s SLO, times the window length.
//! * **VM-hours** — the resource bill.
//! * **decision latency** — candidate-plan evaluations the controller
//!   performed ([`dcm_core::controller::Controller::planner_evals`]), a
//!   deterministic proxy (wall clocks are banned in Strict crates).
//! * **retry amplification** — tier-entry attempts per logical request
//!   (only the chaos trace arms client retries).
//!
//! Every cell builds its own world from the same seed, so the matrix is
//! bit-identical for every `--jobs` value. The MPC step-trace run also
//! captures its decision journal (plan provenance: candidates evaluated,
//! predicted throughput/response, chosen plan, rolling prediction error),
//! exported as `results/league_mpc.journal.json`.

use dcm_core::controller::{Dcm, DcmConfig, DcmModels, Ec2AutoScale};
use dcm_core::experiment::{
    run_trace_experiment, ObsConfig, TraceExperimentConfig, TraceRunResult,
};
use dcm_core::mpc::{ModelPredictive, MpcConfig};
use dcm_core::policy::ScalingConfig;
use dcm_core::predictor::HoltConfig;
use dcm_core::zoo::{HoltWinters, StaffingConfig, ThresholdMmc};
use dcm_ntier::system::InterTierRetry;
use dcm_sim::faults::FaultPlan;
use dcm_sim::time::{SimDuration, SimTime};
use dcm_workload::generator::RetryPolicy;
use dcm_workload::traces;

use crate::format::{num, TextTable};

use super::Fidelity;

/// Response-time windows used for SLO accounting, in seconds.
const WINDOW_SECS: f64 = 5.0;
/// The response-time SLO every controller is judged against.
const SLO_SECS: f64 = 1.0;

/// The league's contestants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerKind {
    /// The paper's two-level controller (hardware + soft resources).
    Dcm,
    /// Hardware-only threshold baseline.
    Ec2,
    /// MVA-predictive planner over candidate topologies and pools.
    Mpc,
    /// M/M/c-style utilization-law staffing.
    Mmc,
    /// Holt-trend predictive staffing.
    HoltWinters,
}

impl ControllerKind {
    /// All contestants, in ranking-table order.
    pub const ALL: [ControllerKind; 5] = [
        ControllerKind::Dcm,
        ControllerKind::Ec2,
        ControllerKind::Mpc,
        ControllerKind::Mmc,
        ControllerKind::HoltWinters,
    ];

    /// Display name (matches each controller's `Controller::name`).
    pub fn name(self) -> &'static str {
        match self {
            ControllerKind::Dcm => "DCM",
            ControllerKind::Ec2 => "EC2-AutoScale",
            ControllerKind::Mpc => "MPC",
            ControllerKind::Mmc => "MMC-Threshold",
            ControllerKind::HoltWinters => "Holt-Winters",
        }
    }
}

/// The trace library every contestant faces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Fig. 5-style ramp to a plateau.
    Step,
    /// Flash crowd: sudden spike, then back to base load.
    Flash,
    /// Slow sinusoidal swing (tests scale-in as much as scale-out).
    Sine,
    /// The step trace plus the chaos fault schedule (crash, straggler,
    /// transient failures) with client retries and deadlines armed.
    Chaos,
}

impl TraceKind {
    /// All traces, in matrix order.
    pub const ALL: [TraceKind; 4] = [
        TraceKind::Step,
        TraceKind::Flash,
        TraceKind::Sine,
        TraceKind::Chaos,
    ];

    /// Short artifact name.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Step => "step",
            TraceKind::Flash => "flash",
            TraceKind::Sine => "sine",
            TraceKind::Chaos => "chaos",
        }
    }
}

/// The experiment configuration one league cell runs under. Identical for
/// every controller facing the same trace (same seed, same horizon), so
/// the matrix compares controllers and nothing else.
pub fn league_trace_config(kind: TraceKind, fidelity: Fidelity) -> TraceExperimentConfig {
    let horizon_secs = match fidelity {
        Fidelity::Quick => 240.0,
        Fidelity::Full => 600.0,
    };
    let trace = match kind {
        TraceKind::Step | TraceKind::Chaos => traces::step(60, 240, 30.0),
        TraceKind::Flash => traces::flash_crowd(60, 280, horizon_secs * 0.35, horizon_secs * 0.25),
        TraceKind::Sine => traces::sine(60, 220, horizon_secs / 2.0, horizon_secs, 10.0),
    };
    let mut config = TraceExperimentConfig::figure5(trace);
    config.horizon = SimTime::from_secs_f64(horizon_secs);
    config.seed = 4242;
    if kind == TraceKind::Chaos {
        let crash_at = horizon_secs / 2.0;
        config.fault_plan = Some(
            FaultPlan::none()
                .with_crash(crash_at, 1, 0)
                .with_straggler(crash_at + 60.0, 2, 0, 4.0, 45.0)
                .with_transient_failures(0.002),
        );
        config.client_retry = Some(RetryPolicy::default());
        config.request_deadline_secs = Some(8.0);
        config.inter_tier_retry = Some(InterTierRetry::default());
    }
    config
}

/// One (controller, trace) cell of the league matrix.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LeagueCell {
    /// Controller display name.
    pub controller: &'static str,
    /// Trace name.
    pub trace: &'static str,
    /// Successful completions over the run.
    pub completed: u64,
    /// Completions per second over the run.
    pub goodput: f64,
    /// Fraction of requests meeting the 1 s SLO.
    pub slo_attainment_1s: f64,
    /// Seconds spent in 5 s windows whose mean RT exceeded the SLO.
    pub slo_violation_secs: f64,
    /// Total VM-seconds across tiers, in hours.
    pub vm_hours: f64,
    /// Candidate-plan evaluations (deterministic decision-latency proxy).
    pub planner_evals: u64,
    /// Tier-entry attempts per logical client request.
    pub retry_amplification: f64,
    /// Scaling actions the controller actually applied.
    pub actions: usize,
}

/// Reduces one run to its league metrics.
pub fn summarize_cell(
    controller: ControllerKind,
    trace: TraceKind,
    run: &TraceRunResult,
) -> LeagueCell {
    let overall = run.overall();
    let series = run.series(SimDuration::from_secs_f64(WINDOW_SECS));
    let violated = series.mean_rt.iter().filter(|&(_, v)| v > SLO_SECS).count();
    let logical = run.completions.len().max(1) as u64;
    LeagueCell {
        controller: controller.name(),
        trace: trace.name(),
        completed: run.counters.completed,
        goodput: overall.throughput(),
        slo_attainment_1s: overall.sla_attainment(SLO_SECS),
        slo_violation_secs: violated as f64 * WINDOW_SECS,
        vm_hours: run.total_vm_seconds() / 3600.0,
        planner_evals: run.planner_evals,
        retry_amplification: run.counters.submitted as f64 / logical as f64,
        actions: run.actions.len(),
    }
}

/// One controller's aggregate across the whole trace library, ranked.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LeagueStanding {
    /// 1-based rank (1 = winner).
    pub rank: usize,
    /// Controller display name.
    pub controller: &'static str,
    /// SLO-violation seconds summed across traces.
    pub slo_violation_secs: f64,
    /// VM-hours summed across traces.
    pub vm_hours: f64,
    /// Plan evaluations summed across traces.
    pub planner_evals: u64,
    /// Mean retry amplification across traces.
    pub retry_amplification: f64,
}

/// The full league result: the raw matrix, the ranking, and the MPC
/// decision journal captured from the step-trace run.
#[derive(Debug, Clone)]
pub struct League {
    /// All cells, controller-major in [`ControllerKind::ALL`] order, traces
    /// in [`TraceKind::ALL`] order.
    pub cells: Vec<LeagueCell>,
    /// Controllers ranked by (SLO-violation seconds, VM-hours, plan
    /// evaluations) ascending.
    pub standings: Vec<LeagueStanding>,
    /// Run length per cell in seconds.
    pub horizon_secs: f64,
    /// Stable JSON of the MPC step-trace decision journal (plan
    /// provenance: candidates, predictions, chosen plan, prediction
    /// error). Written to `results/league_mpc.journal.json`.
    pub mpc_journal_json: String,
    /// Human-readable journal (for `repro explain league`).
    pub mpc_journal_explain: String,
}

fn run_cell(
    controller: ControllerKind,
    trace: TraceKind,
    fidelity: Fidelity,
    models: DcmModels,
) -> TraceRunResult {
    let mut config = league_trace_config(trace, fidelity);
    if controller == ControllerKind::Mpc && trace == TraceKind::Step {
        // Capture plan provenance once, on the clean ramp.
        config.obs = Some(ObsConfig::default());
    }
    match controller {
        ControllerKind::Dcm => {
            run_trace_experiment(&config, |bus| Dcm::new(bus, DcmConfig::default(), models))
        }
        ControllerKind::Ec2 => run_trace_experiment(&config, |bus| {
            Ec2AutoScale::new(bus, ScalingConfig::default())
        }),
        ControllerKind::Mpc => run_trace_experiment(&config, |bus| {
            ModelPredictive::new(bus, MpcConfig::default(), models)
        }),
        ControllerKind::Mmc => run_trace_experiment(&config, |bus| {
            ThresholdMmc::new(bus, StaffingConfig::default())
        }),
        ControllerKind::HoltWinters => run_trace_experiment(&config, |bus| {
            HoltWinters::new(bus, StaffingConfig::default(), HoltConfig::default())
        }),
    }
}

/// Runs the full matrix (in parallel when jobs > 1; each cell builds its
/// own world from the same per-trace seed, so the result is bit-identical
/// for every `--jobs` value) and ranks the contestants.
pub fn run_league(fidelity: Fidelity, models: DcmModels) -> League {
    let descriptors: Vec<(ControllerKind, TraceKind)> = ControllerKind::ALL
        .iter()
        .flat_map(|&c| TraceKind::ALL.iter().map(move |&t| (c, t)))
        .collect();
    let runs = dcm_sim::runner::run_ordered(descriptors, |(controller, trace)| {
        let run = run_cell(controller, trace, fidelity, models);
        let cell = summarize_cell(controller, trace, &run);
        let journal = (controller == ControllerKind::Mpc && trace == TraceKind::Step).then(|| {
            let obs = run
                .obs
                .as_ref()
                .expect("MPC step cell runs with obs enabled");
            (obs.journal.to_json(), obs.journal.render_explain(false))
        });
        (cell, journal)
    });

    let mut cells = Vec::with_capacity(runs.len());
    let mut mpc_journal_json = String::new();
    let mut mpc_journal_explain = String::new();
    for (cell, journal) in runs {
        if let Some((json, explain)) = journal {
            mpc_journal_json = json;
            mpc_journal_explain = explain;
        }
        cells.push(cell);
    }

    let horizon_secs = match fidelity {
        Fidelity::Quick => 240.0,
        Fidelity::Full => 600.0,
    };
    let standings = standings_of(&cells);
    League {
        cells,
        standings,
        horizon_secs,
        mpc_journal_json,
        mpc_journal_explain,
    }
}

fn standings_of(cells: &[LeagueCell]) -> Vec<LeagueStanding> {
    let mut standings: Vec<LeagueStanding> = ControllerKind::ALL
        .iter()
        .map(|&c| {
            let mine: Vec<&LeagueCell> = cells
                .iter()
                .filter(|cell| cell.controller == c.name())
                .collect();
            let n = mine.len().max(1) as f64;
            LeagueStanding {
                rank: 0,
                controller: c.name(),
                slo_violation_secs: mine.iter().map(|c| c.slo_violation_secs).sum(),
                vm_hours: mine.iter().map(|c| c.vm_hours).sum(),
                planner_evals: mine.iter().map(|c| c.planner_evals).sum(),
                retry_amplification: mine.iter().map(|c| c.retry_amplification).sum::<f64>() / n,
            }
        })
        .collect();
    standings.sort_by(|a, b| {
        a.slo_violation_secs
            .total_cmp(&b.slo_violation_secs)
            .then(a.vm_hours.total_cmp(&b.vm_hours))
            .then(a.planner_evals.cmp(&b.planner_evals))
            .then(a.controller.cmp(b.controller))
    });
    for (i, s) in standings.iter_mut().enumerate() {
        s.rank = i + 1;
    }
    standings
}

impl League {
    /// A cell by controller and trace kind.
    pub fn cell(&self, controller: ControllerKind, trace: TraceKind) -> &LeagueCell {
        self.cells
            .iter()
            .find(|c| c.controller == controller.name() && c.trace == trace.name())
            .expect("every (controller, trace) pair ran")
    }

    /// The ranking table (the headline of `repro explain league`).
    pub fn standings_table(&self) -> TextTable {
        let mut t = TextTable::new([
            "rank",
            "controller",
            "SLO-violation (s)",
            "VM-hours",
            "plan evals",
            "retry amp",
        ]);
        for s in &self.standings {
            t.row([
                s.rank.to_string(),
                s.controller.to_string(),
                num(s.slo_violation_secs, 0),
                num(s.vm_hours, 3),
                s.planner_evals.to_string(),
                num(s.retry_amplification, 3),
            ]);
        }
        t
    }

    /// The full matrix table, one row per cell.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new([
            "controller",
            "trace",
            "completed",
            "goodput",
            "SLO att.",
            "SLO-viol (s)",
            "VM-hours",
            "plan evals",
            "retry amp",
            "actions",
        ]);
        for c in &self.cells {
            t.row([
                c.controller.to_string(),
                c.trace.to_string(),
                c.completed.to_string(),
                num(c.goodput, 1),
                num(c.slo_attainment_1s, 3),
                num(c.slo_violation_secs, 0),
                num(c.vm_hours, 3),
                c.planner_evals.to_string(),
                num(c.retry_amplification, 3),
                c.actions.to_string(),
            ]);
        }
        t
    }

    /// Stable JSON for `results/league.json` (hand-rolled; keys and shapes
    /// are fixed for downstream tooling and the determinism check).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\n  \"horizon_secs\": {:.6},\n  \"standings\": [\n",
            self.horizon_secs
        );
        for (i, s) in self.standings.iter().enumerate() {
            let sep = if i + 1 < self.standings.len() {
                ","
            } else {
                ""
            };
            out.push_str(&format!(
                "    {{\"rank\": {}, \"controller\": \"{}\", \
                 \"slo_violation_secs\": {:.6}, \"vm_hours\": {:.6}, \
                 \"planner_evals\": {}, \"retry_amplification\": {:.6}}}{sep}\n",
                s.rank,
                s.controller,
                s.slo_violation_secs,
                s.vm_hours,
                s.planner_evals,
                s.retry_amplification,
            ));
        }
        out.push_str("  ],\n  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let sep = if i + 1 < self.cells.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"controller\": \"{}\", \"trace\": \"{}\", \
                 \"completed\": {}, \"goodput\": {:.6}, \
                 \"slo_attainment_1s\": {:.6}, \"slo_violation_secs\": {:.6}, \
                 \"vm_hours\": {:.6}, \"planner_evals\": {}, \
                 \"retry_amplification\": {:.6}, \"actions\": {}}}{sep}\n",
                c.controller,
                c.trace,
                c.completed,
                c.goodput,
                c.slo_attainment_1s,
                c.slo_violation_secs,
                c.vm_hours,
                c.planner_evals,
                c.retry_amplification,
                c.actions,
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// CSV of the raw matrix for `results/league.csv`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "controller,trace,completed,goodput,slo_attainment_1s,\
             slo_violation_secs,vm_hours,planner_evals,retry_amplification,actions\n",
        );
        for c in &self.cells {
            out.push_str(&format!(
                "{},{},{},{:.6},{:.6},{:.6},{:.6},{},{:.6},{}\n",
                c.controller,
                c.trace,
                c.completed,
                c.goodput,
                c.slo_attainment_1s,
                c.slo_violation_secs,
                c.vm_hours,
                c.planner_evals,
                c.retry_amplification,
                c.actions,
            ));
        }
        out
    }

    /// Self-checks against the league's qualitative claims.
    pub fn findings(&self) -> Vec<String> {
        let mut out = Vec::new();
        let winner = &self.standings[0];
        out.push(format!(
            "ranking: {} wins the league ({} SLO-violation seconds, {:.3} \
             VM-hours across {} traces)",
            winner.controller,
            num(winner.slo_violation_secs, 0),
            winner.vm_hours,
            TraceKind::ALL.len()
        ));
        for trace in [TraceKind::Step, TraceKind::Flash] {
            let mpc = self.cell(ControllerKind::Mpc, trace);
            let dcm = self.cell(ControllerKind::Dcm, trace);
            out.push(format!(
                "{}: MPC SLO attainment {:.3} at {:.3} VM-hours vs DCM {:.3} \
                 at {:.3} VM-hours (the planner buys the SLO no dearer than \
                 the reactive controller)",
                trace.name(),
                mpc.slo_attainment_1s,
                mpc.vm_hours,
                dcm.slo_attainment_1s,
                dcm.vm_hours,
            ));
        }
        let chaos_mpc = self.cell(ControllerKind::Mpc, TraceKind::Chaos);
        out.push(format!(
            "chaos: MPC keeps retry amplification at {:.3} with {} \
             SLO-violation seconds under crash + straggler + transient faults",
            chaos_mpc.retry_amplification,
            num(chaos_mpc.slo_violation_secs, 0),
        ));
        out.push(format!(
            "decision latency: MPC paid {} plan evaluations; every model-free \
             baseline paid 0",
            self.cell(ControllerKind::Mpc, TraceKind::Step)
                .planner_evals
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcm_model::concurrency::ConcurrencyModel;
    use dcm_ntier::law::reference;

    fn models() -> DcmModels {
        let app = reference::tomcat();
        let db = reference::mysql();
        DcmModels {
            app: ConcurrencyModel::new(app.s0(), app.alpha(), app.beta(), 1.0, 1),
            db: ConcurrencyModel::new(db.s0(), db.alpha(), db.beta(), 1.0, 1),
        }
    }

    #[test]
    fn league_ranks_all_controllers_on_all_traces() {
        let league = run_league(Fidelity::Quick, models());
        assert_eq!(
            league.cells.len(),
            ControllerKind::ALL.len() * TraceKind::ALL.len()
        );
        assert_eq!(league.standings.len(), ControllerKind::ALL.len());
        // Ranks are a permutation 1..=n and the sort keys are respected.
        for (i, s) in league.standings.iter().enumerate() {
            assert_eq!(s.rank, i + 1);
        }
        for pair in league.standings.windows(2) {
            assert!(
                pair[0].slo_violation_secs <= pair[1].slo_violation_secs
                    || (pair[0].slo_violation_secs == pair[1].slo_violation_secs
                        && pair[0].vm_hours <= pair[1].vm_hours)
            );
        }
        // Every cell did real work.
        for cell in &league.cells {
            assert!(cell.completed > 0, "{cell:?}");
            assert!(cell.vm_hours > 0.0, "{cell:?}");
        }
        // Only MPC plans; every baseline is model-free per the proxy.
        for trace in TraceKind::ALL {
            assert!(league.cell(ControllerKind::Mpc, trace).planner_evals > 0);
            for kind in [
                ControllerKind::Dcm,
                ControllerKind::Ec2,
                ControllerKind::Mmc,
                ControllerKind::HoltWinters,
            ] {
                assert_eq!(league.cell(kind, trace).planner_evals, 0);
            }
        }
        // Chaos is the only trace that arms client retries.
        assert!(
            league
                .cell(ControllerKind::Dcm, TraceKind::Chaos)
                .retry_amplification
                >= 1.0
        );
        // Artifacts are well-formed.
        assert!(league.to_json().ends_with("}\n"));
        assert_eq!(league.to_csv().lines().count(), 1 + league.cells.len());
        assert!(league.findings().len() >= 4);
        assert!(league.mpc_journal_json.contains("\"plan\""));
        assert!(!league.mpc_journal_explain.is_empty());
    }

    #[test]
    fn mpc_meets_slo_no_dearer_than_dcm_on_step_and_flash() {
        // The acceptance claim, at quick fidelity: on the step and flash
        // traces MPC holds the SLO as well as DCM (within one accounting
        // window — the shared ramp transient dominates a 240 s run) while
        // spending no more than DCM plus a 5 % tolerance. At full
        // fidelity (the committed artifact) MPC is strictly cheaper than
        // DCM on both traces; the quick bounds here are the regression
        // guard that keeps that result from silently rotting.
        let league = run_league(Fidelity::Quick, models());
        for trace in [TraceKind::Step, TraceKind::Flash] {
            let mpc = league.cell(ControllerKind::Mpc, trace);
            let dcm = league.cell(ControllerKind::Dcm, trace);
            assert!(
                mpc.slo_violation_secs <= dcm.slo_violation_secs + WINDOW_SECS,
                "MPC must hold the SLO as well as DCM on {}: MPC {} s vs DCM {} s violated",
                trace.name(),
                mpc.slo_violation_secs,
                dcm.slo_violation_secs
            );
            assert!(
                mpc.vm_hours <= dcm.vm_hours * 1.05,
                "MPC must not out-spend DCM on {}: MPC {:.4} vs DCM {:.4} VM-hours",
                trace.name(),
                mpc.vm_hours,
                dcm.vm_hours
            );
        }
        // On the flash crowd the planner's pre-provisioning pays off
        // outright: strictly better attainment than the reactive DCM.
        let mpc = league.cell(ControllerKind::Mpc, TraceKind::Flash);
        let dcm = league.cell(ControllerKind::Dcm, TraceKind::Flash);
        assert!(
            mpc.slo_attainment_1s > dcm.slo_attainment_1s,
            "MPC must beat DCM's attainment on flash: {:.3} vs {:.3}",
            mpc.slo_attainment_1s,
            dcm.slo_attainment_1s
        );
    }

    #[test]
    fn mpc_journal_records_prediction_error() {
        // Satellite: the full-stack half of predicted-vs-realized
        // conformance. The MPC journal from the clean step ramp must carry
        // plan provenance with a rolling prediction error, and once the
        // plateau settles the planner's throughput prediction must track
        // the realized rate to within 15 %.
        let league = run_league(Fidelity::Quick, models());
        let json = &league.mpc_journal_json;
        for field in [
            "\"candidates\"",
            "\"predicted_throughput\"",
            "\"predicted_response\"",
            "\"chosen\"",
            "\"reason\"",
            "\"prediction_error\"",
        ] {
            assert!(json.contains(field), "journal missing {field}");
        }
        let errors: Vec<f64> = json
            .lines()
            .filter_map(|line| {
                let idx = line.find("\"prediction_error\": ")?;
                let rest = &line[idx + "\"prediction_error\": ".len()..];
                let end = rest.find(['}', ','])?;
                rest[..end].trim().parse::<f64>().ok()
            })
            .collect();
        assert!(
            !errors.is_empty(),
            "at least one tick must realize a prior prediction"
        );
        let tail = &errors[errors.len() - errors.len().min(10)..];
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(
            mean < 0.15,
            "late-run prediction error must settle under 15 %: mean {mean:.3} of {tail:?}"
        );
    }

    #[test]
    fn league_is_identical_across_worker_counts() {
        // The determinism contract behind `--jobs`: re-running the matrix
        // must reproduce the artifacts byte for byte.
        dcm_sim::runner::set_jobs(1);
        let serial = run_league(Fidelity::Quick, models());
        dcm_sim::runner::set_jobs(4);
        let parallel = run_league(Fidelity::Quick, models());
        dcm_sim::runner::set_jobs(0);
        assert_eq!(serial.to_json(), parallel.to_json());
        assert_eq!(serial.to_csv(), parallel.to_csv());
        assert_eq!(serial.mpc_journal_json, parallel.mpc_journal_json);
    }
}
