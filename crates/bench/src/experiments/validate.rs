//! Validate: the DES against exact queueing theory.
//!
//! Sweeps the [`dcm_oracle`] conformance grid — topologies whose analytic
//! steady state is known exactly (product-form networks solved by
//! load-dependent MVA) — and reports the relative error of the simulator's
//! throughput, per-tier residence, and DB queue length at every
//! `(scenario, population)` point. Zero-overhead points must land within
//! 2 %, load-dependent points within 5 %, the asymptotic bounds must never
//! be violated, and every point's conservation audit must be clean.

use dcm_oracle::{
    default_grid, default_mesh_grid, run_mesh_scenario, run_scenario, run_scenario_cohort,
    ConformancePoint, MeshPoint, ScenarioKind,
};
use dcm_sim::rng::derive_seed;

use crate::format::{num, TextTable};

use super::Fidelity;

/// Base seed for the conformance sweep (point seeds derive from it).
const SEED: u64 = 20170607;

/// Cohort size for the aggregated-generator column: every grid point is
/// re-run with users multiplexed into cohorts of this size, and gated
/// against the same oracle.
const COHORT_SIZE: u32 = 16;

/// Tolerances for (zero-overhead, load-dependent) points at each fidelity.
/// Quick shrinks the measurement windows 10×, so the Monte-Carlo noise
/// floor rises by ~√10 and the gates widen accordingly.
fn tolerances(fidelity: Fidelity) -> (f64, f64) {
    match fidelity {
        Fidelity::Quick => (0.10, 0.12),
        Fidelity::Full => (0.02, 0.05),
    }
}

/// One grid point measured twice: once with the per-user generator, once
/// with the cohort-aggregated generator (same seed, same oracle).
#[derive(Debug, Clone)]
pub struct ValidatePoint {
    /// The per-user DES measurement.
    pub per_user: ConformancePoint,
    /// The cohort-aggregated DES measurement.
    pub cohort: ConformancePoint,
}

/// The conformance sweep results.
#[derive(Debug, Clone)]
pub struct Validate {
    /// Every measured grid point, in grid order.
    pub points: Vec<ValidatePoint>,
    /// Every mesh grid point (fan-out DAG, steady-state cache,
    /// heterogeneous VM capacity), in grid order. All mesh scenarios are
    /// frictionless, so the zero-overhead tolerance gates them.
    pub mesh_points: Vec<MeshPoint>,
    /// The zero-overhead tolerance applied.
    pub tol_zero: f64,
    /// The load-dependent tolerance applied.
    pub tol_law: f64,
    /// Cohort size used for the aggregated column.
    pub cohort_size: u32,
}

/// Runs the whole conformance grid (points fan out across workers;
/// each builds its own world, so results are bit-identical for every
/// `--jobs` value).
pub fn run_validate(fidelity: Fidelity) -> Validate {
    let (tol_zero, tol_law) = tolerances(fidelity);
    let mut jobs = Vec::new();
    for (i, scenario) in default_grid().into_iter().enumerate() {
        let scale = match fidelity {
            Fidelity::Quick => 0.1,
            Fidelity::Full => 1.0,
        };
        for (j, &population) in scenario.populations.iter().enumerate() {
            let mut s = scenario.clone();
            s.warmup *= scale;
            s.measure *= scale;
            let seed = derive_seed(SEED, (i as u64) << 8 | j as u64);
            jobs.push((s, population, seed));
        }
    }
    let points = dcm_sim::runner::run_ordered(jobs, |(scenario, population, seed)| ValidatePoint {
        per_user: run_scenario(&scenario, population, seed),
        cohort: run_scenario_cohort(&scenario, population, seed, COHORT_SIZE),
    });
    let mut mesh_jobs = Vec::new();
    for (i, scenario) in default_mesh_grid().into_iter().enumerate() {
        let scale = match fidelity {
            Fidelity::Quick => 0.1,
            Fidelity::Full => 1.0,
        };
        for (j, &population) in scenario.populations.iter().enumerate() {
            let mut s = scenario.clone();
            s.warmup *= scale;
            s.measure *= scale;
            // Distinct index space from the chain grid's `(i << 8) | j`.
            let seed = derive_seed(SEED, (0x4D << 16) | (i as u64) << 8 | j as u64);
            mesh_jobs.push((s, population, seed));
        }
    }
    let mesh_points = dcm_sim::runner::run_ordered(mesh_jobs, |(scenario, population, seed)| {
        run_mesh_scenario(&scenario, population, seed)
    });
    Validate {
        points,
        mesh_points,
        tol_zero,
        tol_law,
        cohort_size: COHORT_SIZE,
    }
}

impl Validate {
    /// The tolerance gating one point, by its oracle kind.
    fn tolerance(&self, kind: ScenarioKind) -> f64 {
        match kind {
            ScenarioKind::ZeroOverhead => self.tol_zero,
            ScenarioKind::LoadDependent => self.tol_law,
        }
    }

    /// Whether one measurement satisfies its gate: errors within
    /// tolerance, bound respected, audit clean.
    pub fn point_ok(&self, p: &ConformancePoint) -> bool {
        p.max_rel_err() <= self.tolerance(p.kind) && p.bound_ok && p.audit_violations == 0
    }

    /// Whether one mesh measurement satisfies its gate. Mesh scenarios are
    /// all frictionless, so the zero-overhead tolerance applies.
    pub fn mesh_point_ok(&self, p: &MeshPoint) -> bool {
        p.max_rel_err() <= self.tol_zero && p.bound_ok && p.audit_violations == 0
    }

    /// Whether every point passed — per-user, cohort, and mesh alike.
    pub fn passed(&self) -> bool {
        self.points
            .iter()
            .all(|p| self.point_ok(&p.per_user) && self.point_ok(&p.cohort))
            && self.mesh_points.iter().all(|p| self.mesh_point_ok(p))
    }

    /// The largest relative error across the mesh grid.
    pub fn mesh_max_rel_err(&self) -> f64 {
        self.mesh_points
            .iter()
            .map(MeshPoint::max_rel_err)
            .fold(0.0, f64::max)
    }

    /// The largest per-user relative error across points of the given kind.
    pub fn max_rel_err(&self, kind: ScenarioKind) -> f64 {
        self.points
            .iter()
            .map(|p| &p.per_user)
            .filter(|p| p.kind == kind)
            .map(ConformancePoint::max_rel_err)
            .fold(0.0, f64::max)
    }

    /// The largest cohort-aggregated relative error across points of the
    /// given kind.
    pub fn cohort_max_rel_err(&self, kind: ScenarioKind) -> f64 {
        self.points
            .iter()
            .map(|p| &p.cohort)
            .filter(|p| p.kind == kind)
            .map(ConformancePoint::max_rel_err)
            .fold(0.0, f64::max)
    }

    /// The per-point conformance table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new([
            "scenario",
            "kind",
            "N",
            "X des",
            "X mva",
            "X err%",
            "R_web err%",
            "R_app err%",
            "R_db err%",
            "Q_db err%",
            "bound ok",
            "audits",
            "pass",
            "coh X err%",
            "coh max err%",
            "coh pass",
        ]);
        for pair in &self.points {
            let p = &pair.per_user;
            let c = &pair.cohort;
            t.row([
                p.scenario.to_string(),
                kind_label(p.kind).to_string(),
                p.population.to_string(),
                num(p.throughput.des, 3),
                num(p.throughput.mva, 3),
                num(100.0 * p.throughput.rel_err, 3),
                num(100.0 * p.residence[0].rel_err, 3),
                num(100.0 * p.residence[1].rel_err, 3),
                num(100.0 * p.residence[2].rel_err, 3),
                num(100.0 * p.db_queue.rel_err, 3),
                if p.bound_ok { "yes" } else { "NO" }.to_string(),
                p.audit_violations.to_string(),
                if self.point_ok(p) { "yes" } else { "NO" }.to_string(),
                num(100.0 * c.throughput.rel_err, 3),
                num(100.0 * c.max_rel_err(), 3),
                if self.point_ok(c) { "yes" } else { "NO" }.to_string(),
            ]);
        }
        for p in &self.mesh_points {
            // Mesh rows reuse the chain columns: the first two residence
            // slots are nodes 0 and 1, the third is the worst remaining
            // node; cohort columns do not apply.
            let r0 = p.residence.first().map_or(0.0, |t| t.rel_err);
            let r1 = p.residence.get(1).map_or(0.0, |t| t.rel_err);
            let rest = p
                .residence
                .iter()
                .skip(2)
                .map(|t| t.rel_err)
                .fold(0.0, f64::max);
            t.row([
                p.scenario.to_string(),
                "mesh".to_string(),
                p.population.to_string(),
                num(p.throughput.des, 3),
                num(p.throughput.mva, 3),
                num(100.0 * p.throughput.rel_err, 3),
                num(100.0 * r0, 3),
                num(100.0 * r1, 3),
                num(100.0 * rest, 3),
                "-".to_string(),
                if p.bound_ok { "yes" } else { "NO" }.to_string(),
                p.audit_violations.to_string(),
                if self.mesh_point_ok(p) { "yes" } else { "NO" }.to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]);
        }
        t
    }

    /// Stable JSON for `results/validate.json` (hand-rolled; keys and
    /// shapes are fixed for downstream tooling and the CI tolerance gate).
    pub fn to_json(&self) -> String {
        let mut json = String::from("{\n");
        json.push_str(&format!(
            "  \"tolerance_zero_overhead\": {:.6},\n",
            self.tol_zero
        ));
        json.push_str(&format!(
            "  \"tolerance_load_dependent\": {:.6},\n",
            self.tol_law
        ));
        json.push_str(&format!(
            "  \"max_rel_err_zero_overhead\": {:.6},\n",
            self.max_rel_err(ScenarioKind::ZeroOverhead)
        ));
        json.push_str(&format!(
            "  \"max_rel_err_load_dependent\": {:.6},\n",
            self.max_rel_err(ScenarioKind::LoadDependent)
        ));
        json.push_str(&format!("  \"cohort_size\": {},\n", self.cohort_size));
        json.push_str(&format!(
            "  \"cohort_max_rel_err_zero_overhead\": {:.6},\n",
            self.cohort_max_rel_err(ScenarioKind::ZeroOverhead)
        ));
        json.push_str(&format!(
            "  \"cohort_max_rel_err_load_dependent\": {:.6},\n",
            self.cohort_max_rel_err(ScenarioKind::LoadDependent)
        ));
        json.push_str(&format!(
            "  \"max_rel_err_mesh\": {:.6},\n",
            self.mesh_max_rel_err()
        ));
        json.push_str(&format!("  \"passed\": {},\n", self.passed()));
        json.push_str("  \"points\": [\n");
        for (i, pair) in self.points.iter().enumerate() {
            let p = &pair.per_user;
            let c = &pair.cohort;
            json.push_str(&format!(
                "    {{\"scenario\": \"{}\", \"kind\": \"{}\", \"population\": {}, \
                 \"completions\": {}, \
                 \"throughput_des\": {:.6}, \"throughput_mva\": {:.6}, \
                 \"throughput_rel_err\": {:.6}, \
                 \"residence_rel_err\": [{:.6}, {:.6}, {:.6}], \
                 \"db_queue_rel_err\": {:.6}, \
                 \"throughput_bound\": {:.6}, \"bound_ok\": {}, \
                 \"audit_violations\": {}, \"pass\": {}, \
                 \"cohort_throughput_rel_err\": {:.6}, \
                 \"cohort_max_rel_err\": {:.6}, \"cohort_pass\": {}}}{}\n",
                p.scenario,
                kind_label(p.kind),
                p.population,
                p.completions,
                p.throughput.des,
                p.throughput.mva,
                p.throughput.rel_err,
                p.residence[0].rel_err,
                p.residence[1].rel_err,
                p.residence[2].rel_err,
                p.db_queue.rel_err,
                p.throughput_bound,
                p.bound_ok,
                p.audit_violations,
                self.point_ok(p),
                c.throughput.rel_err,
                c.max_rel_err(),
                self.point_ok(c),
                if i + 1 < self.points.len() { "," } else { "" }
            ));
        }
        json.push_str("  ],\n");
        json.push_str("  \"mesh_points\": [\n");
        for (i, p) in self.mesh_points.iter().enumerate() {
            let nodes: Vec<String> = p
                .node_names
                .iter()
                .zip(&p.residence)
                .map(|(name, r)| format!("{{\"node\": \"{name}\", \"rel_err\": {:.6}}}", r.rel_err))
                .collect();
            json.push_str(&format!(
                "    {{\"scenario\": \"{}\", \"population\": {}, \
                 \"completions\": {}, \
                 \"throughput_des\": {:.6}, \"throughput_mva\": {:.6}, \
                 \"throughput_rel_err\": {:.6}, \
                 \"residence\": [{}], \
                 \"throughput_bound\": {:.6}, \"bound_ok\": {}, \
                 \"audit_violations\": {}, \"pass\": {}}}{}\n",
                p.scenario,
                p.population,
                p.completions,
                p.throughput.des,
                p.throughput.mva,
                p.throughput.rel_err,
                nodes.join(", "),
                p.throughput_bound,
                p.bound_ok,
                p.audit_violations,
                self.mesh_point_ok(p),
                if i + 1 < self.mesh_points.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        json
    }

    /// Self-checks against the conformance claims.
    pub fn findings(&self) -> Vec<String> {
        let zero = self.max_rel_err(ScenarioKind::ZeroOverhead);
        let law = self.max_rel_err(ScenarioKind::LoadDependent);
        let zero_points = self
            .points
            .iter()
            .filter(|p| p.per_user.kind == ScenarioKind::ZeroOverhead)
            .count();
        let law_points = self.points.len() - zero_points;
        let audits: usize = self
            .points
            .iter()
            .map(|p| p.per_user.audit_violations + p.cohort.audit_violations)
            .sum();
        vec![
            format!(
                "zero-overhead conformance: {zero_points} points, worst error \
                 {:.3}% (gate {:.0}%) — delay tiers + M/M/c DB match exact MVA",
                100.0 * zero,
                100.0 * self.tol_zero
            ),
            format!(
                "load-dependent conformance: {law_points} points, worst error \
                 {:.3}% (gate {:.0}%) — lawful DB matches MVA driven by the \
                 ground-truth S*(N)",
                100.0 * law,
                100.0 * self.tol_law
            ),
            format!(
                "cohort aggregation (size {}): worst error {:.3}% zero-overhead / \
                 {:.3}% load-dependent under the same gates — batching users \
                 onto shared timers leaves the stationary distribution intact",
                self.cohort_size,
                100.0 * self.cohort_max_rel_err(ScenarioKind::ZeroOverhead),
                100.0 * self.cohort_max_rel_err(ScenarioKind::LoadDependent)
            ),
            format!(
                "asymptotic bounds: {} of {} points under X <= min(N/(Z+D), 1/D_max); \
                 conservation audits: {audits} violations across all windows",
                self.points
                    .iter()
                    .filter(|p| p.per_user.bound_ok && p.cohort.bound_ok)
                    .count(),
                self.points.len()
            ),
            format!(
                "mesh conformance: {} points (fan-out DAG, steady-state cache, \
                 heterogeneous VM capacity), worst error {:.3}% (gate {:.0}%) — \
                 DAG visit ratios, Bernoulli cache routing, and capacity-rescaled \
                 stations stay exact product-form",
                self.mesh_points.len(),
                100.0 * self.mesh_max_rel_err(),
                100.0 * self.tol_zero
            ),
        ]
    }
}

fn kind_label(kind: ScenarioKind) -> &'static str {
    match kind {
        ScenarioKind::ZeroOverhead => "zero-overhead",
        ScenarioKind::LoadDependent => "load-dependent",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_validate_passes_and_serializes() {
        let result = run_validate(Fidelity::Quick);
        assert!(result.points.len() >= 18, "grid too small");
        assert!(result.mesh_points.len() >= 9, "mesh grid too small");
        assert!(
            result.passed(),
            "conformance gate failed:\n{}",
            result.table().render()
        );
        let json = result.to_json();
        assert!(json.contains("\"passed\": true"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"cohort_max_rel_err\""));
        assert!(json.contains("\"mesh_points\""));
        assert!(json.contains("\"max_rel_err_mesh\""));
        assert_eq!(result.findings().len(), 5);
        assert_eq!(
            result.table().len(),
            result.points.len() + result.mesh_points.len()
        );
    }
}
